//! Ablation benches: partitioning scheme, cache size, replacement policy,
//! partial-page semantics, the timing extension, and the automatic scheme
//! search built on the plan API.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sa_core::search::{search, SearchSpace};
use sa_core::{estimate_timing, simulate, CountingOracle};
use sa_loops::{k01_hydro, k06_glre};
use sa_machine::{CachePolicy, MachineConfig, PartialPagePolicy, PartitionScheme};

fn bench_partition(c: &mut Criterion) {
    let kernel = k01_hydro::build(1001);
    let mut g = c.benchmark_group("ablation_partition");
    g.sample_size(20);
    for scheme in [
        PartitionScheme::Modulo,
        PartitionScheme::Block,
        PartitionScheme::BlockCyclic { block_pages: 4 },
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &s| {
                let cfg = MachineConfig::new(16, 32).with_partition(s);
                b.iter(|| simulate(black_box(&kernel.program), &cfg).unwrap())
            },
        );
    }
    g.finish();
}

fn bench_cache_size(c: &mut Criterion) {
    let kernel = k06_glre::build(64);
    let mut g = c.benchmark_group("ablation_cache_size");
    g.sample_size(20);
    for elems in [0usize, 256, 1024, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(elems), &elems, |b, &e| {
            let cfg = MachineConfig::new(16, 32).with_cache_elems(e);
            b.iter(|| simulate(black_box(&kernel.program), &cfg).unwrap())
        });
    }
    g.finish();
}

fn bench_policy_and_partial(c: &mut Criterion) {
    let kernel = k01_hydro::build(1001);
    let mut g = c.benchmark_group("ablation_policy");
    g.sample_size(20);
    for (name, policy) in [
        ("lru", CachePolicy::Lru),
        ("fifo", CachePolicy::Fifo),
        ("random", CachePolicy::Random { seed: 7 }),
    ] {
        g.bench_function(name, |b| {
            let cfg = MachineConfig::new(16, 32).with_cache_policy(policy);
            b.iter(|| simulate(black_box(&kernel.program), &cfg).unwrap())
        });
    }
    g.bench_function("partial_refetch", |b| {
        let cfg = MachineConfig::new(16, 32).with_partial_pages(PartialPagePolicy::Refetch);
        b.iter(|| simulate(black_box(&kernel.program), &cfg).unwrap())
    });
    g.finish();
}

fn bench_timing_extension(c: &mut Criterion) {
    let kernel = k01_hydro::build(1001);
    let mut g = c.benchmark_group("timing_extension");
    g.sample_size(10);
    g.bench_function("estimate_timing_16pe", |b| {
        let cfg = MachineConfig::new(16, 32);
        b.iter(|| {
            estimate_timing(black_box(&kernel.program), &cfg)
                .unwrap()
                .total_cycles
        })
    });
    g.finish();
}

fn bench_scheme_search(c: &mut Criterion) {
    // The full default space (4 schemes × 6 page sizes, evaluated through
    // the parallel plan engine) for one Skewed kernel.
    let kernel = k01_hydro::build(1001);
    let space = SearchSpace::default();
    let mut g = c.benchmark_group("scheme_search");
    g.sample_size(10);
    g.bench_function("k1_default_space", |b| {
        b.iter(|| search(black_box(&kernel.program), &space, &CountingOracle).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_partition,
    bench_cache_size,
    bench_policy_and_partial,
    bench_timing_extension,
    bench_scheme_search
);
criterion_main!(benches);
