//! Figure 1 bench: simulate the Hydro Fragment (SD, skew 11) at the
//! figure's reference points, and regenerate the full figure grid.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sa_core::simulate;
use sa_loops::k01_hydro;
use sa_machine::MachineConfig;

fn bench(c: &mut Criterion) {
    let kernel = k01_hydro::build(1001);
    let mut g = c.benchmark_group("fig1_hydro");
    g.sample_size(20);

    g.bench_function("sim_8pe_ps32_cache", |b| {
        let cfg = MachineConfig::new(8, 32);
        b.iter(|| simulate(black_box(&kernel.program), &cfg).unwrap())
    });
    g.bench_function("sim_8pe_ps32_nocache", |b| {
        let cfg = MachineConfig::new(8, 32).with_cache_elems(0);
        b.iter(|| simulate(black_box(&kernel.program), &cfg).unwrap())
    });
    g.bench_function("full_figure_grid", |b| b.iter(|| black_box(bench::fig1())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
