//! Figure 2 bench: ICCG (CD) at the figure's reference points plus the
//! full grid regeneration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sa_core::simulate;
use sa_loops::k02_iccg;
use sa_machine::MachineConfig;

fn bench(c: &mut Criterion) {
    let kernel = k02_iccg::build(1001);
    let mut g = c.benchmark_group("fig2_iccg");
    g.sample_size(20);

    g.bench_function("sim_32pe_ps64_cache", |b| {
        let cfg = MachineConfig::new(32, 64);
        b.iter(|| simulate(black_box(&kernel.program), &cfg).unwrap())
    });
    g.bench_function("sim_32pe_ps64_nocache", |b| {
        let cfg = MachineConfig::new(32, 64).with_cache_elems(0);
        b.iter(|| simulate(black_box(&kernel.program), &cfg).unwrap())
    });
    g.bench_function("full_figure_grid", |b| b.iter(|| black_box(bench::fig2())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
