//! Figure 3 bench: multi-pass 2-D Explicit Hydrodynamics (CD).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sa_core::simulate;
use sa_loops::k18_hydro2d;
use sa_machine::MachineConfig;

fn bench(c: &mut Criterion) {
    let kernel = k18_hydro2d::build_with_passes(101, 5);
    let mut g = c.benchmark_group("fig3_hydro2d");
    g.sample_size(10);

    g.bench_function("sim_16pe_ps32_cache_5passes", |b| {
        let cfg = MachineConfig::new(16, 32);
        b.iter(|| simulate(black_box(&kernel.program), &cfg).unwrap())
    });
    g.bench_function("full_figure_grid", |b| b.iter(|| black_box(bench::fig3())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
