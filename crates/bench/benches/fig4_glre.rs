//! Figure 4 bench: GLRE (RD) — the thrashing regime.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sa_core::simulate;
use sa_loops::k06_glre;
use sa_machine::MachineConfig;

fn bench(c: &mut Criterion) {
    let kernel = k06_glre::build(64);
    let mut g = c.benchmark_group("fig4_glre");
    g.sample_size(20);

    g.bench_function("sim_16pe_ps32_cache", |b| {
        let cfg = MachineConfig::new(16, 32);
        b.iter(|| simulate(black_box(&kernel.program), &cfg).unwrap())
    });
    g.bench_function("sim_16pe_ps32_bigcache", |b| {
        let cfg = MachineConfig::new(16, 32).with_cache_elems(4096);
        b.iter(|| simulate(black_box(&kernel.program), &cfg).unwrap())
    });
    g.bench_function("full_figure_grid", |b| b.iter(|| black_box(bench::fig4())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
