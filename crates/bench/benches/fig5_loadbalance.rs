//! Figure 5 bench: the 64-PE load-balance run (paper-scale K18).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sa_core::simulate;
use sa_loops::k18_hydro2d;
use sa_machine::{load_balance, MachineConfig};

fn bench(c: &mut Criterion) {
    let kernel = k18_hydro2d::build_with_passes(1022, 2);
    let mut g = c.benchmark_group("fig5_loadbalance");
    g.sample_size(10);

    g.bench_function("sim_64pe_ps32", |b| {
        let cfg = MachineConfig::new(64, 32);
        b.iter(|| {
            let rep = simulate(black_box(&kernel.program), &cfg).unwrap();
            let lb = load_balance(&rep.stats.local_reads_per_pe());
            black_box(lb.cv)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
