//! Microbenchmarks of the machine substrate's hot paths: classified reads,
//! cache probes, ownership arithmetic, network routing, and the
//! single-assignment memory cells.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sa_machine::machine::{ArraySpec, DistributedMachine};
use sa_machine::{
    CachePolicy, MachineConfig, NetworkTopology, PageCache, PageKey, PartialPagePolicy,
    PartitionScheme,
};
use sa_mem::{SaArray, TagBits};

fn machine_with_data(cfg: MachineConfig) -> DistributedMachine {
    DistributedMachine::new(
        cfg,
        vec![ArraySpec {
            name: "B".into(),
            len: 4096,
            dims: vec![],
            init: (0..4096).map(|i| i as f64).collect(),
        }],
    )
    .unwrap()
}

fn bench_reads(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_read");
    g.bench_function("local", |b| {
        let mut m = machine_with_data(MachineConfig::new(4, 32));
        b.iter(|| m.read(0, 0, black_box(5)).unwrap().0)
    });
    g.bench_function("cached", |b| {
        let mut m = machine_with_data(MachineConfig::new(4, 32));
        m.read(0, 0, 40).unwrap(); // warm the page
        b.iter(|| m.read(0, 0, black_box(41)).unwrap().0)
    });
    g.bench_function("remote_nocache", |b| {
        let mut m = machine_with_data(MachineConfig::new(4, 32).with_cache_elems(0));
        b.iter(|| m.read(0, 0, black_box(40)).unwrap().0)
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_cache");
    g.bench_function("probe_hit", |b| {
        let mut cache = PageCache::new(8, CachePolicy::Lru);
        let key = PageKey {
            array: 0,
            page: 3,
            generation: 0,
        };
        cache.insert(key, None);
        b.iter(|| cache.probe(black_box(key), 0, PartialPagePolicy::Ignore))
    });
    g.bench_function("insert_evict", |b| {
        let mut cache = PageCache::new(8, CachePolicy::Lru);
        let mut p = 0usize;
        b.iter(|| {
            p += 1;
            cache.insert(
                PageKey {
                    array: 0,
                    page: p,
                    generation: 0,
                },
                None,
            )
        })
    });
    g.finish();
}

fn bench_partition_and_network(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.bench_function("owner_modulo", |b| {
        b.iter(|| PartitionScheme::Modulo.owner(black_box(123), 251, 64))
    });
    g.bench_function("owner_block", |b| {
        b.iter(|| PartitionScheme::Block.owner(black_box(123), 251, 64))
    });
    g.bench_function("owner_tile2d", |b| {
        let pl = sa_machine::Placement::new(
            PartitionScheme::Tile2D {
                tile_rows: 32,
                tile_cols: 32,
            },
            32,
            16,
            sa_machine::ArrayShape::from_dims(&[512, 512]),
        );
        b.iter(|| pl.page_owner(black_box(1234)))
    });
    g.bench_function("mesh_hops", |b| {
        b.iter(|| NetworkTopology::Mesh2D.hops(64, black_box(3), black_box(60)))
    });
    g.bench_function("hypercube_hops", |b| {
        b.iter(|| NetworkTopology::Hypercube.hops(64, black_box(3), black_box(60)))
    });
    g.finish();
}

fn bench_sa_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("sa_memory");
    g.bench_function("array_write_read", |b| {
        b.iter(|| {
            let mut a = SaArray::new("A", 1024);
            for i in 0..1024 {
                a.write(i, i as f64).unwrap();
            }
            black_box(*a.read(1023).unwrap().unwrap())
        })
    });
    g.bench_function("tagbits_set_scan", |b| {
        b.iter(|| {
            let mut t = TagBits::new(4096);
            for i in (0..4096).step_by(3) {
                t.set(i);
            }
            black_box(t.count_ones())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_reads,
    bench_cache,
    bench_partition_and_network,
    bench_sa_memory
);
criterion_main!(benches);
