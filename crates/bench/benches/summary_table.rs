//! Summary-table bench: the whole Livermore suite at the reference
//! configuration — the §8 claims table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sa_core::simulate;
use sa_loops::suite;
use sa_machine::MachineConfig;

fn bench(c: &mut Criterion) {
    let kernels = suite();
    let mut g = c.benchmark_group("summary_table");
    g.sample_size(10);

    g.bench_function("all_kernels_16pe_ps32", |b| {
        let cfg = MachineConfig::new(16, 32);
        b.iter(|| {
            let mut acc = 0.0;
            for k in &kernels {
                acc += simulate(black_box(&k.program), &cfg).unwrap().remote_pct();
            }
            black_box(acc)
        })
    });
    // Static classification of the whole suite (compiler-side cost).
    g.bench_function("classify_suite_static", |b| {
        b.iter(|| {
            kernels
                .iter()
                .map(|k| sa_ir::classify_program(black_box(&k.program)).class)
                .max()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
