//! Regenerate every figure/table of the paper (plus the ablations and the
//! timing extension) as markdown + ASCII charts.
//!
//! ```text
//! cargo run -p bench --release --bin figures            # everything
//! cargo run -p bench --release --bin figures -- fig1    # one artifact
//! ```
//!
//! Each artifact streams to stdout as soon as it is rendered; the heavy
//! lifting inside an artifact — its `(n_pes, page_size, cached)` sweep
//! grid — already fans out across all cores via `sa_core::parallel`, so
//! the artifacts themselves run one at a time to keep the cores busy
//! without oversubscribing them.

use bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");

    type Artifact = (&'static str, fn() -> String);
    let artifacts: [Artifact; 12] = [
        ("fig1", fig1),
        ("fig2", fig2),
        ("fig3", fig3),
        ("fig4", fig4),
        ("fig5", fig5),
        ("summary", summary),
        ("scale", scale_workloads),
        ("ablation-partition", ablation_partition),
        ("ablation-cache", ablation_cache),
        ("ablation-pagesize", ablation_pagesize),
        ("ablation-policy", ablation_policy),
        ("timing", timing),
    ];
    let mut ran = false;
    for (name, f) in artifacts {
        if want(name) {
            println!("{}", f());
            ran = true;
        }
    }
    if !ran {
        eprintln!(
            "unknown artifact; choose from: fig1..fig5, summary, scale, ablation-partition, \
             ablation-cache, ablation-pagesize, ablation-policy, timing, all"
        );
        std::process::exit(2);
    }
}
