//! `lint_bench` — wall-clock measurement of the static-analysis passes
//! across the workload registry, emitted as a machine-readable JSON
//! artifact (`BENCH_lint.json`) for CI trend tracking.
//!
//! ```console
//! $ cargo run -p bench --release --bin lint_bench                  # writes BENCH_lint.json
//! $ cargo run -p bench --release --bin lint_bench -- out.json      # custom path
//! ```
//!
//! Per workload it reports:
//!
//! * `lint_ms` — full `lint_program` wall-clock (all four passes,
//!   including the SA008 deadlock proof at the default machine shape);
//! * `graph_ms` — generation-level dependence-graph build time, with the
//!   resulting node/edge counts;
//! * `estimate_ms` / `simulate_ms` / `estimator_speedup` — the
//!   zero-execution communication estimator against the counting
//!   simulator on the same config (`null` where the workload's runtime
//!   indirection makes it inestimable — the typed-rejection path).

use std::time::Instant;

use sa_lint::{lint_program, DepGraph, LintConfig};
use sa_loops::suite;
use sa_machine::MachineConfig;

/// Milliseconds with microsecond resolution, as a JSON number.
fn ms(from: Instant) -> f64 {
    (from.elapsed().as_secs_f64() * 1e3 * 1e3).round() / 1e3
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_lint.json".to_string());
    let lint_cfg = LintConfig::default();
    let machine = MachineConfig::new(lint_cfg.n_pes, lint_cfg.page_size).with_cache_elems(0);

    let mut entries = Vec::new();
    let mut total_lint = 0.0f64;
    let mut total_graph = 0.0f64;
    for k in suite() {
        let t0 = Instant::now();
        let diags = lint_program(&k.program, &lint_cfg);
        let lint_ms = ms(t0);

        let t0 = Instant::now();
        let graph = DepGraph::build(&k.program);
        let graph_ms = ms(t0);

        let t0 = Instant::now();
        let estimate = sa_lint::estimate(&k.program, &machine);
        let estimate_ms = ms(t0);
        let (est_field, sim_field, speedup_field) = match estimate {
            Ok(est) => {
                let t0 = Instant::now();
                let sim = sa_core::exec::simulate(&k.program, &machine).expect("simulator runs");
                let simulate_ms = ms(t0);
                assert_eq!(
                    est.network_messages, sim.network_messages,
                    "{}: estimator drifted from the simulator",
                    k.code
                );
                (
                    json_f64(estimate_ms),
                    json_f64(simulate_ms),
                    json_f64(simulate_ms / estimate_ms.max(1e-6)),
                )
            }
            Err(_) => ("null".into(), "null".into(), "null".into()),
        };

        total_lint += lint_ms;
        total_graph += graph_ms;
        entries.push(format!(
            "    {{\"code\": \"{}\", \"lint_ms\": {}, \"diagnostics\": {}, \
             \"graph_ms\": {}, \"nodes\": {}, \"edges\": {}, \
             \"estimate_ms\": {}, \"simulate_ms\": {}, \"estimator_speedup\": {}}}",
            k.code,
            json_f64(lint_ms),
            diags.len(),
            json_f64(graph_ms),
            graph.nodes.len(),
            graph.edges.len(),
            est_field,
            sim_field,
            speedup_field,
        ));
    }

    let doc = format!(
        "{{\n  \"bench\": \"lint\",\n  \"config\": {{\"n_pes\": {}, \"page_size\": {}, \
         \"scheme\": \"{}\"}},\n  \"totals\": {{\"lint_ms\": {}, \"graph_ms\": {}}},\n  \
         \"workloads\": [\n{}\n  ]\n}}\n",
        lint_cfg.n_pes,
        lint_cfg.page_size,
        lint_cfg.scheme.name(),
        json_f64((total_lint * 1e3).round() / 1e3),
        json_f64((total_graph * 1e3).round() / 1e3),
        entries.join(",\n"),
    );
    std::fs::write(&out_path, &doc).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!(
        "wrote {out_path}: {} workloads, lint {total_lint:.1} ms total, \
         graphs {total_graph:.1} ms total",
        suite().len()
    );
}
