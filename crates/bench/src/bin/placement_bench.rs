//! `placement_bench` — locality comparison of the partitioning schemes on
//! the 512×512 5-point Jacobi stencil, emitted as a machine-readable JSON
//! artifact (`BENCH_placement.json`) for CI trend tracking.
//!
//! ```console
//! $ cargo run -p bench --release --bin placement_bench             # writes BENCH_placement.json
//! $ cargo run -p bench --release --bin placement_bench -- out.json # custom path
//! ```
//!
//! Per scheme it reports remote-read percentage, modeled messages, total
//! hops and the heaviest-link load on a 2-D mesh — the figures the
//! ROADMAP's multi-dimensional-placement item is about: geometry-aware
//! schemes (`rowband`, `tile2d`) keep a stencil's halo exchanges between
//! neighbouring owners, where round-robin page placement (`modulo`)
//! scatters every row boundary across the whole machine.
//!
//! The run aborts if `tile2d` fails to beat `modulo` on remote reads —
//! this artifact doubles as a regression gate on the placement layer.

use sa_core::replay::counts;
use sa_machine::{MachineConfig, NetworkTopology, PartitionScheme};

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_placement.json".to_string());
    let (nx, ny, sweeps) = (512usize, 512usize, 2usize);
    let (n_pes, page_size) = (16usize, 32usize);
    let k = sa_loops::stencil::build_jacobi5(nx, ny, sweeps);

    let schemes = [
        PartitionScheme::Modulo,
        PartitionScheme::Block,
        PartitionScheme::BlockCyclic { block_pages: 4 },
        PartitionScheme::RowBand,
        PartitionScheme::Tile2D {
            tile_rows: 128,
            tile_cols: 128,
        },
    ];

    let mut entries = Vec::new();
    let mut remote_pct = std::collections::HashMap::new();
    for scheme in schemes {
        // Uncached so remote reads are purely a function of placement, on
        // a 2-D mesh so link loads expose contention differences.
        let cfg = MachineConfig::new(n_pes, page_size)
            .with_cache_elems(0)
            .with_partition(scheme)
            .with_network(NetworkTopology::Mesh2D);
        let rep = counts(&k.program, &cfg).expect("replay handles the stencil");
        let pct = rep.stats.remote_read_pct();
        remote_pct.insert(scheme.name(), pct);
        entries.push(format!(
            "    {{\"scheme\": \"{}\", \"remote_pct\": {}, \"remote_reads\": {}, \
             \"messages\": {}, \"hops\": {}, \"max_link_load\": {}}}",
            scheme.name(),
            json_f64((pct * 1e4).round() / 1e4),
            rep.stats.remote_reads(),
            rep.network_messages,
            rep.network_hops,
            rep.max_link_load,
        ));
        println!(
            "{:<18} remote {:>6.2}%  messages {:>8}  hops {:>8}  max link load {:>7}",
            scheme.name(),
            pct,
            rep.network_messages,
            rep.network_hops,
            rep.max_link_load,
        );
    }

    let modulo = remote_pct["modulo"];
    let tile = remote_pct["tile2d(128x128)"];
    assert!(
        tile < modulo,
        "placement regression: tile2d remote {tile:.3}% is not below modulo {modulo:.3}%"
    );

    let doc = format!(
        "{{\n  \"bench\": \"placement\",\n  \"config\": {{\"workload\": \"ST5\", \
         \"dims\": \"{nx}x{ny}\", \"sweeps\": {sweeps}, \"n_pes\": {n_pes}, \
         \"page_size\": {page_size}, \"cache_elems\": 0, \"network\": \"mesh2d\"}},\n  \
         \"schemes\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    std::fs::write(&out_path, &doc).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!(
        "wrote {out_path}: tile2d(128x128) remote {tile:.2}% vs modulo {modulo:.2}% \
         on ST5 {nx}x{ny}"
    );
}
