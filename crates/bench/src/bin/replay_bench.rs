//! `replay_bench` — wall-clock comparison of the compiled access replay
//! (`sa_core::replay`) against the counting interpreter on K18-style 2-D
//! hydrodynamics nests, the ISSUE/ROADMAP acceptance workload.
//!
//! ```console
//! $ cargo run -p bench --release --bin replay_bench            # n = 100_000
//! $ cargo run -p bench --release --bin replay_bench -- 250000  # custom n
//! $ cargo run -p bench --release --bin replay_bench -- 100000 --assert-speedup 10
//! ```
//!
//! Prints a table of interpreter vs replay wall-clock per machine config
//! and the speedup; with `--assert-speedup F` the process exits non-zero
//! if any measured speedup falls below `F` (used as a checked-in
//! regression gate for the "≥ 10× at n ≥ 100_000" acceptance criterion).

use std::time::Instant;

use sa_core::exec::simulate;
use sa_core::replay;
use sa_core::report::markdown_table;
use sa_machine::MachineConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n: usize = 100_000;
    let mut assert_speedup: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--assert-speedup" => {
                assert_speedup = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-speedup F"),
                );
            }
            v => n = v.parse().expect("problem size N"),
        }
    }

    // One pass of K18 at inner extent n: three stencil nests over
    // (n+2)×8-element planes — the ROADMAP's "K18-style nest".
    let kernel = sa_loops::k18_hydro2d::build(n);
    let program = &kernel.program;
    println!(
        "K18-style nest, n = {n} ({} statement instances, {} array elements)\n",
        program
            .nests()
            .map(|x| x.iteration_count() * x.body.len())
            .sum::<usize>(),
        program.total_elements(),
    );

    let configs = [
        ("16 PEs, ps 32, cache", MachineConfig::new(16, 32)),
        ("64 PEs, ps 32, cache", MachineConfig::new(64, 32)),
        (
            "64 PEs, ps 32, no cache",
            MachineConfig::new(64, 32).with_cache_elems(0),
        ),
    ];

    let mut rows = Vec::new();
    let mut min_speedup = f64::INFINITY;
    for (label, cfg) in &configs {
        let t0 = Instant::now();
        let sim = simulate(program, cfg).expect("interpreter");
        let t_interp = t0.elapsed();

        let t0 = Instant::now();
        let rep = replay::counts(program, cfg).expect("replay");
        let t_replay = t0.elapsed();

        assert_eq!(rep.stats, sim.stats, "{label}: counts must be identical");
        assert_eq!(rep.network_messages, sim.network_messages, "{label}");

        let speedup = t_interp.as_secs_f64() / t_replay.as_secs_f64().max(1e-9);
        min_speedup = min_speedup.min(speedup);
        rows.push(vec![
            label.to_string(),
            format!("{:.0} ms", t_interp.as_secs_f64() * 1e3),
            format!("{:.1} ms", t_replay.as_secs_f64() * 1e3),
            format!("{speedup:.1}×"),
            format!("{:.2}%", rep.remote_pct()),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &["config", "interpreter", "replay", "speedup", "remote"],
            &rows
        )
    );

    if let Some(floor) = assert_speedup {
        if min_speedup < floor {
            eprintln!("FAIL: minimum speedup {min_speedup:.1}× below the required {floor}×");
            std::process::exit(1);
        }
        println!("\nOK: every speedup ≥ {floor}× (min {min_speedup:.1}×)");
    }
}
