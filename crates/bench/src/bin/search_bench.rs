//! `search_bench` — oracle evaluations and wall-clock of the guided
//! search strategies (`sa_core::search::strategy`) against exhaustion on
//! the PR-9-expanded ST5 space, emitted as `BENCH_search.json` — the
//! first entry of the search-performance trajectory.
//!
//! ```console
//! $ cargo run -p bench --release --bin search_bench              # writes BENCH_search.json
//! $ cargo run -p bench --release --bin search_bench -- out.json  # custom path
//! $ cargo run -p bench --release --bin search_bench -- --assert-saving 5
//! ```
//!
//! The space is the expanded grid the annealer exists for: nine schemes
//! (all five families, three tile shapes, two block-cyclic factors) ×
//! six page sizes × all seven interconnect topologies = 378 candidates.
//! Exhaustion measures every one; `anneal` and `propagate` run under the
//! default budget through the shared memo cache. Per strategy the
//! artifact reports evaluations, wall-clock, the winner, its score gap
//! to the exhaustive optimum, and the evaluations-saved factor.
//!
//! The run aborts unless both guided strategies save at least the
//! `--assert-saving` factor (default 5×) in oracle evaluations, and
//! unless a cached re-query is answered with zero new oracle calls —
//! this artifact doubles as the regression gate on the strategy layer.

use std::time::Instant;

use sa_core::search::strategy::{Searcher, Strategy, StrategyOracle, StrategyParams};
use sa_core::search::{search_exhaustive_with, Objective, SearchSpace};
use sa_machine::{NetworkTopology, PartitionScheme};

fn expanded_space() -> SearchSpace {
    SearchSpace {
        schemes: vec![
            PartitionScheme::Modulo,
            PartitionScheme::Block,
            PartitionScheme::BlockCyclic { block_pages: 2 },
            PartitionScheme::BlockCyclic { block_pages: 4 },
            PartitionScheme::RowBand,
            PartitionScheme::Tile2D {
                tile_rows: 16,
                tile_cols: 16,
            },
            PartitionScheme::Tile2D {
                tile_rows: 32,
                tile_cols: 32,
            },
            PartitionScheme::Tile2D {
                tile_rows: 64,
                tile_cols: 64,
            },
            PartitionScheme::Tile2D {
                tile_rows: 128,
                tile_cols: 128,
            },
        ],
        page_sizes: vec![8, 16, 32, 64, 128, 256],
        networks: vec![
            NetworkTopology::Ideal,
            NetworkTopology::Crossbar,
            NetworkTopology::Bus,
            NetworkTopology::Ring,
            NetworkTopology::Mesh2D,
            NetworkTopology::Torus2D,
            NetworkTopology::Hypercube,
        ],
        n_pes: 16,
        cache_elems: 256,
    }
}

fn main() {
    let mut out_path = "BENCH_search.json".to_string();
    let mut floor = 5.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--assert-saving" {
            floor = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--assert-saving N");
        } else {
            out_path = a;
        }
    }

    let (nx, ny, sweeps) = (256usize, 256usize, 2usize);
    let k = sa_loops::stencil::build_jacobi5(nx, ny, sweeps);
    let space = expanded_space();
    let size = space.schemes.len() * space.page_sizes.len() * space.networks.len();
    let (seed, budget) = (7u64, 64usize);

    // Exhaustion baseline: the un-pruned parallel sweep measures every
    // candidate — the denominator of the evaluations-saved factor.
    let t0 = Instant::now();
    let exhaustive = search_exhaustive_with(
        &k.program,
        &space,
        &StrategyOracle::default(),
        Objective::default(),
    )
    .expect("exhaustive sweep handles the stencil");
    let exhaustive_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "{:<12} {:>4} evaluations  {:>8.1} ms  winner {}/page {} score {:.4}",
        "exhaustive",
        exhaustive.evaluated,
        exhaustive_ms,
        exhaustive.scheme.name(),
        exhaustive.page_size,
        exhaustive.score,
    );

    let mut entries = Vec::new();
    for strategy in [Strategy::Anneal, Strategy::Propagate] {
        let searcher = Searcher::new(
            &space,
            Box::<StrategyOracle>::default(),
            StrategyParams {
                strategy,
                seed,
                budget,
                ..StrategyParams::default()
            },
        )
        .expect("space is valid");
        let t = Instant::now();
        let rep = searcher
            .search(&k.program)
            .expect("guided search handles the stencil");
        let ms = t.elapsed().as_secs_f64() * 1e3;
        // The memo cache must answer an identical re-query for free.
        let requery = searcher.search(&k.program).expect("re-query");
        assert_eq!(
            requery.oracle_evals,
            0,
            "{}: cached re-query paid {} oracle calls",
            strategy.name(),
            requery.oracle_evals
        );
        assert_eq!(
            requery.best,
            rep.best,
            "{}: re-query diverged",
            strategy.name()
        );
        let saving = exhaustive.evaluated as f64 / rep.oracle_evals as f64;
        let gap = rep.best.score - exhaustive.score;
        println!(
            "{:<12} {:>4} evaluations  {:>8.1} ms  winner {}/page {} score {:.4}  \
             gap {:+.4}  saved {:.1}x",
            strategy.name(),
            rep.oracle_evals,
            ms,
            rep.best.scheme.name(),
            rep.best.page_size,
            rep.best.score,
            gap,
            saving,
        );
        assert!(
            saving >= floor,
            "search regression: {} used {} of {} evaluations — {saving:.2}x saved, \
             below the {floor}x floor",
            strategy.name(),
            rep.oracle_evals,
            exhaustive.evaluated,
        );
        entries.push(format!(
            "    {{\"strategy\": \"{}\", \"evaluations\": {}, \"pruned\": {}, \
             \"wall_ms\": {:.2}, \"scheme\": \"{}\", \"page_size\": {}, \
             \"network\": \"{}\", \"score\": {:.6}, \"winner_gap\": {:.6}, \
             \"evaluations_saved_factor\": {:.2}, \"cached_requery_evals\": {}}}",
            strategy.name(),
            rep.oracle_evals,
            rep.best.pruned,
            ms,
            rep.best.scheme.name(),
            rep.best.page_size,
            rep.record.cfg.network.model().name(),
            rep.best.score,
            gap,
            saving,
            requery.oracle_evals,
        ));
    }

    let doc = format!(
        "{{\n  \"bench\": \"search\",\n  \"config\": {{\"workload\": \"ST5\", \
         \"dims\": \"{nx}x{ny}\", \"sweeps\": {sweeps}, \"n_pes\": 16, \
         \"cache_elems\": 256, \"candidates\": {size}, \"budget\": {budget}, \
         \"seed\": {seed}}},\n  \
         \"exhaustive\": {{\"evaluations\": {}, \"wall_ms\": {:.2}, \
         \"scheme\": \"{}\", \"page_size\": {}, \"score\": {:.6}}},\n  \
         \"strategies\": [\n{}\n  ]\n}}\n",
        exhaustive.evaluated,
        exhaustive_ms,
        exhaustive.scheme.name(),
        exhaustive.page_size,
        exhaustive.score,
        entries.join(",\n"),
    );
    std::fs::write(&out_path, &doc).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!(
        "wrote {out_path}: {size} candidates, exhaustive {} evaluations vs budget {budget}",
        exhaustive.evaluated,
    );
}
