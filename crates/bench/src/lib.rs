//! Figure-regeneration harness: one function per paper artifact.
//!
//! Each `fig*`/`ablation*` function runs the exact workload/parameter grid
//! of the corresponding figure in the paper's evaluation (§7) and renders
//! the same series as a markdown table plus an ASCII chart. The `figures`
//! binary prints them; the criterion benches under `benches/` measure the
//! simulator's wall-clock cost of regenerating each one.

use sa_core::experiment::{cache_sweep, partition_sweep, pe_sweep, policy_sweep, speedup_sweep};
use sa_core::parallel::par_map;
use sa_core::report::{ascii_chart, fmt_pct, markdown_table, Series};
use sa_core::{estimate_timing, simulate, SimError};
use sa_ir::Program;
use sa_loops::{suite, Kernel};
use sa_machine::{
    load_balance, AccessCosts, CachePolicy, MachineConfig, NetworkTopology, PartitionScheme,
};

/// PE counts on the paper's x-axes.
pub const PES: [usize; 6] = [1, 2, 4, 8, 16, 32];
/// Figure 3's x-axis (the paper plots 4–16 PEs for 2-D Explicit Hydro).
pub const PES_FIG3: [usize; 5] = [1, 2, 4, 8, 16];
/// Page sizes of the paper's figure legends.
pub const PAGE_SIZES: [usize; 2] = [32, 64];

/// Render one remote-percentage figure for `program` (the shared shape of
/// Figures 1–4): four series — {Cache, No Cache} × {ps 32, ps 64}.
pub fn remote_pct_figure(title: &str, program: &Program) -> String {
    remote_pct_figure_at(title, program, &PES)
}

/// [`remote_pct_figure`] over an explicit PE axis.
pub fn remote_pct_figure_at(title: &str, program: &Program, pes: &[usize]) -> String {
    let pts = pe_sweep(program, pes, &PAGE_SIZES, &[true, false])
        .expect("paper kernels simulate cleanly");
    let mut rows = Vec::new();
    for &n in pes {
        let cell = |ps: usize, cached: bool| -> String {
            let p = pts
                .iter()
                .find(|p| p.n_pes == n && p.page_size == ps && p.cached == cached)
                .expect("grid point");
            fmt_pct(p.remote_pct)
        };
        rows.push(vec![
            n.to_string(),
            cell(32, true),
            cell(32, false),
            cell(64, true),
            cell(64, false),
        ]);
    }
    let table = markdown_table(
        &[
            "PEs",
            "Cache ps32",
            "NoCache ps32",
            "Cache ps64",
            "NoCache ps64",
        ],
        &rows,
    );
    let series: Vec<Series> = [(32, true), (32, false), (64, true), (64, false)]
        .iter()
        .map(|&(ps, cached)| Series {
            label: format!("{} ps {}", if cached { "Cache" } else { "No Cache" }, ps),
            points: pts
                .iter()
                .filter(|p| p.page_size == ps && p.cached == cached)
                .map(|p| (p.n_pes as f64, p.remote_pct))
                .collect(),
        })
        .collect();
    format!(
        "## {title}\n\n{table}\n{}\n",
        ascii_chart("% of Reads Remote vs PEs", &series, 48, 14)
    )
}

fn kernel_by_code(code: &str) -> Kernel {
    suite()
        .into_iter()
        .find(|k| k.code == code)
        .unwrap_or_else(|| panic!("kernel {code}"))
}

/// Figure 1 — Skewed access pattern (Hydro Fragment, skew 11).
pub fn fig1() -> String {
    remote_pct_figure(
        "Figure 1: Hydro Fragment (SD, skew 11)",
        &kernel_by_code("K1").program,
    )
}

/// Figure 2 — Cyclic access pattern (ICCG).
pub fn fig2() -> String {
    remote_pct_figure(
        "Figure 2: Incomplete Cholesky-Conjugate Gradient (CD)",
        &kernel_by_code("K2").program,
    )
}

/// Figure 3 — Cyclic+skewed combination (2-D Explicit Hydrodynamics).
///
/// Run at the official LFK size (n=101) over three harness passes so the
/// warm-cache steady state dominates, as in the paper's measurements.
pub fn fig3() -> String {
    let k = sa_loops::k18_hydro2d::build_with_passes(101, 5);
    remote_pct_figure_at(
        "Figure 3: 2-D Explicit Hydrodynamics Fragment (CD)",
        &k.program,
        &PES_FIG3,
    )
}

/// Figure 4 — Random access pattern (GLRE).
pub fn fig4() -> String {
    remote_pct_figure(
        "Figure 4: General Linear Recurrence Equations (RD)",
        &kernel_by_code("K6").program,
    )
}

/// Figure 5 — Load balance of a typical loop (K18 on 64 PEs, page 32):
/// remote and local reads per PE, with and without the cache.
///
/// Uses a page-aligned problem size (jd = 1024 → exactly 4 pages per PE on
/// 64 PEs) and two passes, giving per-PE read counts of the paper's
/// magnitude (~7k local reads per PE).
pub fn fig5() -> String {
    let program = sa_loops::k18_hydro2d::build_with_passes(1022, 2).program;
    let cached = simulate(&program, &MachineConfig::paper(64, 32)).expect("sim");
    let uncached = simulate(&program, &MachineConfig::paper_no_cache(64, 32)).expect("sim");

    let r_c = cached.stats.remote_reads_per_pe();
    let r_u = uncached.stats.remote_reads_per_pe();
    let l_c = cached.stats.local_reads_per_pe();
    let l_u = uncached.stats.local_reads_per_pe();
    let mut rows = Vec::new();
    for pe in 0..64 {
        rows.push(vec![
            pe.to_string(),
            r_c[pe].to_string(),
            r_u[pe].to_string(),
            l_c[pe].to_string(),
            l_u[pe].to_string(),
        ]);
    }
    let table = markdown_table(
        &[
            "PE",
            "Remote (cache)",
            "Remote (no cache)",
            "Local (cache)",
            "Local (no cache)",
        ],
        &rows,
    );
    let lb = |v: &[u64]| {
        let b = load_balance(v);
        format!(
            "mean {:.1}, min {}, max {}, cv {:.3}, jain {:.4}",
            b.mean, b.min, b.max, b.cv, b.jain
        )
    };
    format!(
        "## Figure 5: Load balance (2-D Explicit Hydro, 64 PEs, page size 32)\n\n{table}\n\
         Balance — remote w/ cache: {}\n\
         Balance — remote no cache: {}\n\
         Balance — local  w/ cache: {}\n\
         Balance — local  no cache: {}\n",
        lb(&r_c),
        lb(&r_u),
        lb(&l_c),
        lb(&l_u)
    )
}

/// The §8 summary table: every kernel's class (static + paper) and remote
/// percentages at the reference configuration (16 PEs, ps 32, 256-element
/// cache vs no cache).
pub fn summary() -> String {
    let kernels = suite();
    let rows: Vec<Vec<String>> = par_map(&kernels, |k| {
        let cached = simulate(&k.program, &MachineConfig::paper(16, 32))?;
        let uncached = simulate(&k.program, &MachineConfig::paper_no_cache(16, 32))?;
        Ok::<_, SimError>(vec![
            k.code.to_string(),
            k.name.to_string(),
            k.class_abbrev().to_string(),
            k.paper_class.unwrap_or("—").to_string(),
            fmt_pct(cached.remote_pct()),
            fmt_pct(uncached.remote_pct()),
        ])
    })
    .expect("sim");
    format!(
        "## Summary (all kernels, 16 PEs, page 32, cache 256 elems)\n\n{}",
        markdown_table(
            &[
                "kernel",
                "name",
                "class",
                "paper",
                "remote% (cache)",
                "remote% (no cache)"
            ],
            &rows
        )
    )
}

/// Ablation — modulo vs division (block) vs block-cyclic placement (§9).
pub fn ablation_partition() -> String {
    let schemes = [
        PartitionScheme::Modulo,
        PartitionScheme::Block,
        PartitionScheme::BlockCyclic { block_pages: 2 },
        PartitionScheme::BlockCyclic { block_pages: 4 },
    ];
    let mut rows = Vec::new();
    for k in suite() {
        let per = partition_sweep(&k.program, 16, 32, &schemes).expect("sim");
        let mut row = vec![k.code.to_string()];
        row.extend(per.into_iter().map(|(_, pct)| fmt_pct(pct)));
        rows.push(row);
    }
    format!(
        "## Ablation: partitioning scheme (16 PEs, ps 32, cache on)\n\n{}",
        markdown_table(
            &[
                "kernel",
                "modulo",
                "block",
                "blockcyclic(2)",
                "blockcyclic(4)"
            ],
            &rows
        )
    )
}

/// Ablation — cache size rescues the Random class (§7.1.4).
pub fn ablation_cache() -> String {
    let sizes = [0usize, 64, 128, 256, 512, 1024, 2048, 4096];
    let mut rows = Vec::new();
    for code in ["K6", "K8", "K21", "K2", "K1"] {
        let k = kernel_by_code(code);
        let pts = cache_sweep(&k.program, 16, 32, &sizes).expect("sim");
        let mut row = vec![code.to_string()];
        row.extend(pts.into_iter().map(|(_, pct)| fmt_pct(pct)));
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("kernel".to_string())
        .chain(sizes.iter().map(|s| format!("cache {s}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    format!(
        "## Ablation: cache size (16 PEs, ps 32) — larger caches rescue RD\n\n{}",
        markdown_table(&headers_ref, &rows)
    )
}

/// Ablation — programmer/compiler-selectable page size (§9).
pub fn ablation_pagesize() -> String {
    let sizes = [8usize, 16, 32, 64, 128, 256];
    let kernels = suite();
    let rows: Vec<Vec<String>> = par_map(&kernels, |k| {
        let mut row = vec![k.code.to_string()];
        for &ps in &sizes {
            let rep = simulate(&k.program, &MachineConfig::paper(16, ps))?;
            row.push(fmt_pct(rep.remote_pct()));
        }
        Ok::<_, SimError>(row)
    })
    .expect("sim");
    let headers: Vec<String> = std::iter::once("kernel".to_string())
        .chain(sizes.iter().map(|s| format!("ps {s}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    format!(
        "## Ablation: page size (16 PEs, cache 256 elems)\n\n{}",
        markdown_table(&headers_ref, &rows)
    )
}

/// Ablation — LRU vs FIFO vs Random replacement (§4 chose LRU).
pub fn ablation_policy() -> String {
    let policies = [
        CachePolicy::Lru,
        CachePolicy::Fifo,
        CachePolicy::Random { seed: 0xC0FFEE },
    ];
    let mut rows = Vec::new();
    for code in ["K1", "K2", "K6", "K18"] {
        let k = kernel_by_code(code);
        let per = policy_sweep(&k.program, 16, 32, &policies).expect("sim");
        let mut row = vec![code.to_string()];
        row.extend(per.into_iter().map(|(_, pct)| fmt_pct(pct)));
        rows.push(row);
    }
    format!(
        "## Ablation: replacement policy (16 PEs, ps 32, cache 256 elems)\n\n{}",
        markdown_table(&["kernel", "LRU", "FIFO", "Random"], &rows)
    )
}

/// Extension — estimated speedups and network contention (§9 future work).
pub fn timing() -> String {
    let mut rows = Vec::new();
    for code in ["K1", "K2", "K5", "K6", "K14", "K18"] {
        let k = kernel_by_code(code);
        let sp = speedup_sweep(
            &k.program,
            &[1, 2, 4, 8, 16, 32],
            32,
            AccessCosts::default(),
        )
        .expect("timing");
        let mut row = vec![code.to_string()];
        row.extend(sp.into_iter().map(|(_, s)| format!("{s:.2}×")));
        rows.push(row);
    }
    let table = markdown_table(&["kernel", "1", "2", "4", "8", "16", "32"], &rows);

    // Network contention at 16 PEs on a mesh vs hypercube vs crossbar.
    let mut net_rows = Vec::new();
    for code in ["K1", "K6", "K18"] {
        let k = kernel_by_code(code);
        for topo in [
            NetworkTopology::Crossbar,
            NetworkTopology::Mesh2D,
            NetworkTopology::Hypercube,
        ] {
            let cfg = MachineConfig::paper(16, 32).with_network(topo);
            let rep = simulate(&k.program, &cfg).expect("sim");
            net_rows.push(vec![
                code.to_string(),
                topo.name().to_string(),
                rep.network_messages.to_string(),
                rep.network_hops.to_string(),
                rep.max_link_load.to_string(),
            ]);
        }
    }
    let net = markdown_table(
        &["kernel", "topology", "messages", "hops", "max link load"],
        &net_rows,
    );
    format!("## Extension: estimated speedup (cost model) and network contention\n\n{table}\n{net}")
}

/// Extension — the timing report details for one kernel at one size.
pub fn timing_detail(code: &str, n_pes: usize) -> String {
    let k = kernel_by_code(code);
    let t = estimate_timing(&k.program, &MachineConfig::paper(n_pes, 32)).expect("timing");
    format!(
        "{code} on {n_pes} PEs: {} cycles, {} instances, stall cycles per PE: {:?}\n",
        t.total_cycles, t.instances, t.stall_cycles
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_functions_render() {
        // Smoke: each figure renders non-empty markdown with its series.
        let f1 = fig1();
        assert!(f1.contains("Figure 1"));
        assert!(f1.contains("Cache ps32"));
        let s = summary();
        assert!(s.contains("K18"));
    }
}
