//! Figure-regeneration harness: one function per paper artifact.
//!
//! Each `fig*`/`ablation*` function runs the exact workload/parameter grid
//! of the corresponding figure in the paper's evaluation (§7) and renders
//! the same series as a markdown table plus an ASCII chart. Grids are
//! built with the composable plan API (`sa_core::plan`) and evaluated by
//! the auto-select counting oracle (`FastCountingOracle`: compiled access
//! replay where the nest allows, interpreter fallback elsewhere — counts
//! are bit-identical either way); figures *select* their series from the
//! [`ResultSet`] by predicate, so a plan's axis order never changes what a
//! table shows. The `figures` binary prints them; the criterion benches
//! under `benches/` measure the wall-clock cost of regenerating each one.

use sa_core::experiment::speedup_sweep;
use sa_core::plan::{ExperimentPlan, RunConfig};
use sa_core::replay::counts_or_simulate;
use sa_core::report::{ascii_chart, fmt_opt_u64, fmt_pct, markdown_table};
use sa_core::results::ResultSet;
use sa_core::{FastCountingOracle, Oracle, TimingOracle};
use sa_ir::Program;
use sa_loops::{suite, Kernel};
use sa_machine::{
    load_balance, AccessCosts, CachePolicy, MachineConfig, NetworkTopology, PartitionScheme,
};

/// PE counts on the paper's x-axes.
pub const PES: [usize; 6] = [1, 2, 4, 8, 16, 32];
/// Figure 3's x-axis (the paper plots 4–16 PEs for 2-D Explicit Hydro).
pub const PES_FIG3: [usize; 5] = [1, 2, 4, 8, 16];
/// Page sizes of the paper's figure legends.
pub const PAGE_SIZES: [usize; 2] = [32, 64];

/// The `(code, program)` pairs [`ExperimentPlan::run_kernels`] resolves
/// kernel axes against.
fn programs(kernels: &[Kernel]) -> Vec<(&str, &Program)> {
    kernels.iter().map(|k| (k.code, &k.program)).collect()
}

/// Render one remote-percentage figure for `program` (the shared shape of
/// Figures 1–4): four series — {Cache, No Cache} × {ps 32, ps 64}.
pub fn remote_pct_figure(title: &str, program: &Program) -> String {
    remote_pct_figure_at(title, program, &PES)
}

/// [`remote_pct_figure`] over an explicit PE axis.
pub fn remote_pct_figure_at(title: &str, program: &Program, pes: &[usize]) -> String {
    let results = ExperimentPlan::new()
        .page_sizes(&PAGE_SIZES)
        .cache_flags(&[true, false])
        .pes(pes)
        .run(program, &FastCountingOracle::default())
        .expect("paper kernels simulate cleanly");
    let mut rows = Vec::new();
    for &n in pes {
        let cell = |ps: usize, cached: bool| -> String {
            let p = results
                .find(|r| r.cfg.n_pes == n && r.cfg.page_size == ps && r.cfg.cached() == cached)
                .expect("grid point");
            fmt_pct(p.remote_pct)
        };
        rows.push(vec![
            n.to_string(),
            cell(32, true),
            cell(32, false),
            cell(64, true),
            cell(64, false),
        ]);
    }
    let table = markdown_table(
        &[
            "PEs",
            "Cache ps32",
            "NoCache ps32",
            "Cache ps64",
            "NoCache ps64",
        ],
        &rows,
    );
    let series = results.series(
        |r| {
            format!(
                "{} ps {}",
                if r.cfg.cached() { "Cache" } else { "No Cache" },
                r.cfg.page_size
            )
        },
        |r| r.cfg.n_pes as f64,
        |r| r.remote_pct,
    );
    format!(
        "## {title}\n\n{table}\n{}\n",
        ascii_chart("% of Reads Remote vs PEs", &series, 48, 14)
    )
}

fn kernel_by_code(code: &str) -> Kernel {
    suite()
        .into_iter()
        .find(|k| k.code == code)
        .unwrap_or_else(|| panic!("kernel {code}"))
}

/// Figure 1 — Skewed access pattern (Hydro Fragment, skew 11).
pub fn fig1() -> String {
    remote_pct_figure(
        "Figure 1: Hydro Fragment (SD, skew 11)",
        &kernel_by_code("K1").program,
    )
}

/// Figure 2 — Cyclic access pattern (ICCG).
pub fn fig2() -> String {
    remote_pct_figure(
        "Figure 2: Incomplete Cholesky-Conjugate Gradient (CD)",
        &kernel_by_code("K2").program,
    )
}

/// Figure 3 — Cyclic+skewed combination (2-D Explicit Hydrodynamics).
///
/// Run at the official LFK size (n=101) over three harness passes so the
/// warm-cache steady state dominates, as in the paper's measurements.
pub fn fig3() -> String {
    let k = sa_loops::k18_hydro2d::build_with_passes(101, 5);
    remote_pct_figure_at(
        "Figure 3: 2-D Explicit Hydrodynamics Fragment (CD)",
        &k.program,
        &PES_FIG3,
    )
}

/// Figure 4 — Random access pattern (GLRE).
pub fn fig4() -> String {
    remote_pct_figure(
        "Figure 4: General Linear Recurrence Equations (RD)",
        &kernel_by_code("K6").program,
    )
}

/// Figure 5 — Load balance of a typical loop (K18 on 64 PEs, page 32):
/// remote and local reads per PE, with and without the cache.
///
/// Uses a page-aligned problem size (jd = 1024 → exactly 4 pages per PE on
/// 64 PEs) and two passes, giving per-PE read counts of the paper's
/// magnitude (~7k local reads per PE).
pub fn fig5() -> String {
    let program = sa_loops::k18_hydro2d::build_with_passes(1022, 2).program;
    let cached = counts_or_simulate(&program, &MachineConfig::new(64, 32)).expect("sim");
    let uncached =
        counts_or_simulate(&program, &MachineConfig::new(64, 32).with_cache_elems(0)).expect("sim");

    let r_c = cached.stats.remote_reads_per_pe();
    let r_u = uncached.stats.remote_reads_per_pe();
    let l_c = cached.stats.local_reads_per_pe();
    let l_u = uncached.stats.local_reads_per_pe();
    let mut rows = Vec::new();
    for pe in 0..64 {
        rows.push(vec![
            pe.to_string(),
            r_c[pe].to_string(),
            r_u[pe].to_string(),
            l_c[pe].to_string(),
            l_u[pe].to_string(),
        ]);
    }
    let table = markdown_table(
        &[
            "PE",
            "Remote (cache)",
            "Remote (no cache)",
            "Local (cache)",
            "Local (no cache)",
        ],
        &rows,
    );
    let lb = |v: &[u64]| {
        let b = load_balance(v);
        format!(
            "mean {:.1}, min {}, max {}, cv {:.3}, jain {:.4}",
            b.mean, b.min, b.max, b.cv, b.jain
        )
    };
    format!(
        "## Figure 5: Load balance (2-D Explicit Hydro, 64 PEs, page size 32)\n\n{table}\n\
         Balance — remote w/ cache: {}\n\
         Balance — remote no cache: {}\n\
         Balance — local  w/ cache: {}\n\
         Balance — local  no cache: {}\n",
        lb(&r_c),
        lb(&r_u),
        lb(&l_c),
        lb(&l_u)
    )
}

/// The §8 summary table: every kernel's class (static + paper) and remote
/// percentages at the reference configuration (16 PEs, ps 32, 256-element
/// cache vs no cache).
pub fn summary() -> String {
    let kernels = suite();
    // One plan over the whole suite: kernel axis × cache on/off.
    let codes: Vec<&str> = kernels.iter().map(|k| k.code).collect();
    let results = ExperimentPlan::new()
        .kernels(&codes)
        .cache_flags(&[true, false])
        .run_kernels(&programs(&kernels), &FastCountingOracle::default())
        .expect("sim");
    let rows: Vec<Vec<String>> = kernels
        .iter()
        .map(|k| {
            let at = |cached: bool| {
                results
                    .find(|r| r.cfg.kernel.as_deref() == Some(k.code) && r.cfg.cached() == cached)
                    .expect("grid point")
                    .remote_pct
            };
            vec![
                k.code.to_string(),
                k.name.to_string(),
                k.class_abbrev().to_string(),
                k.paper_class.unwrap_or("—").to_string(),
                fmt_pct(at(true)),
                fmt_pct(at(false)),
            ]
        })
        .collect();
    format!(
        "## Summary (all kernels, 16 PEs, page 32, cache 256 elems)\n\n{}",
        markdown_table(
            &[
                "kernel",
                "name",
                "class",
                "paper",
                "remote% (cache)",
                "remote% (no cache)"
            ],
            &rows
        )
    )
}

/// Render one "kernel × swept parameter" ablation: each row a kernel, each
/// column one value of the plan's second axis, cells the remote %.
fn kernel_grid_table(results: &ResultSet, codes: &[&str]) -> Vec<Vec<String>> {
    codes
        .iter()
        .map(|code| {
            let mut row = vec![code.to_string()];
            row.extend(
                results
                    .filter(|r| r.cfg.kernel.as_deref() == Some(*code))
                    .records()
                    .iter()
                    .map(|r| fmt_pct(r.remote_pct)),
            );
            row
        })
        .collect()
}

/// Ablation — modulo vs division (block) vs block-cyclic placement (§9).
pub fn ablation_partition() -> String {
    let schemes = [
        PartitionScheme::Modulo,
        PartitionScheme::Block,
        PartitionScheme::BlockCyclic { block_pages: 2 },
        PartitionScheme::BlockCyclic { block_pages: 4 },
    ];
    let kernels = suite();
    let codes: Vec<&str> = kernels.iter().map(|k| k.code).collect();
    let results = ExperimentPlan::new()
        .kernels(&codes)
        .partitions(&schemes)
        .run_kernels(&programs(&kernels), &FastCountingOracle::default())
        .expect("sim");
    format!(
        "## Ablation: partitioning scheme (16 PEs, ps 32, cache on)\n\n{}",
        markdown_table(
            &[
                "kernel",
                "modulo",
                "block",
                "blockcyclic(2)",
                "blockcyclic(4)"
            ],
            &kernel_grid_table(&results, &codes)
        )
    )
}

/// Ablation — cache size rescues the Random class (§7.1.4).
pub fn ablation_cache() -> String {
    let sizes = [0usize, 64, 128, 256, 512, 1024, 2048, 4096];
    let codes = ["K6", "K8", "K21", "K2", "K1"];
    let kernels = suite();
    let results = ExperimentPlan::new()
        .kernels(&codes)
        .cache_elems(&sizes)
        .run_kernels(&programs(&kernels), &FastCountingOracle::default())
        .expect("sim");
    let headers: Vec<String> = std::iter::once("kernel".to_string())
        .chain(sizes.iter().map(|s| format!("cache {s}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    format!(
        "## Ablation: cache size (16 PEs, ps 32) — larger caches rescue RD\n\n{}",
        markdown_table(&headers_ref, &kernel_grid_table(&results, &codes))
    )
}

/// Ablation — programmer/compiler-selectable page size (§9).
pub fn ablation_pagesize() -> String {
    let sizes = [8usize, 16, 32, 64, 128, 256];
    let kernels = suite();
    let codes: Vec<&str> = kernels.iter().map(|k| k.code).collect();
    let results = ExperimentPlan::new()
        .kernels(&codes)
        .page_sizes(&sizes)
        .run_kernels(&programs(&kernels), &FastCountingOracle::default())
        .expect("sim");
    let headers: Vec<String> = std::iter::once("kernel".to_string())
        .chain(sizes.iter().map(|s| format!("ps {s}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    format!(
        "## Ablation: page size (16 PEs, cache 256 elems)\n\n{}",
        markdown_table(&headers_ref, &kernel_grid_table(&results, &codes))
    )
}

/// Ablation — LRU vs FIFO vs Random replacement (§4 chose LRU).
pub fn ablation_policy() -> String {
    let policies = [
        CachePolicy::Lru,
        CachePolicy::Fifo,
        CachePolicy::Random { seed: 0xC0FFEE },
    ];
    let codes = ["K1", "K2", "K6", "K18"];
    let kernels = suite();
    let results = ExperimentPlan::new()
        .kernels(&codes)
        .cache_policies(&policies)
        .run_kernels(&programs(&kernels), &FastCountingOracle::default())
        .expect("sim");
    format!(
        "## Ablation: replacement policy (16 PEs, ps 32, cache 256 elems)\n\n{}",
        markdown_table(
            &["kernel", "LRU", "FIFO", "Random"],
            &kernel_grid_table(&results, &codes)
        )
    )
}

/// Scale-class workloads beyond the paper (ROADMAP "larger-scale
/// workloads"): the stencil family and the CSR SpMV pair at their official
/// sizes — 512×512 grids, a 64³ heat cube and 131k-nonzero sparse matvecs —
/// measured at the reference machine with and without the cache. These
/// footprints are far beyond the paper's 1001-element kernels, which is
/// exactly why the grid runs through the compiled replay engine (the
/// `auto` oracle falls back to the interpreter only for `SPMVD`'s
/// prefix-initialized index data).
pub fn scale_workloads() -> String {
    scale_workloads_table(&sa_loops::scale_suite(), "official sizes")
}

/// [`scale_workloads`] over an explicit kernel set (the bench self-test
/// runs it at reduced sizes).
pub fn scale_workloads_table(kernels: &[Kernel], sizes: &str) -> String {
    let codes: Vec<&str> = kernels.iter().map(|k| k.code).collect();
    let results = ExperimentPlan::new()
        .kernels(&codes)
        .cache_flags(&[true, false])
        .run_kernels(&programs(kernels), &FastCountingOracle::default())
        .expect("scale workloads simulate cleanly");
    let rows: Vec<Vec<String>> = kernels
        .iter()
        .map(|k| {
            let at = |cached: bool| {
                results
                    .find(|r| r.cfg.kernel.as_deref() == Some(k.code) && r.cfg.cached() == cached)
                    .expect("grid point")
            };
            let (c, u) = (at(true), at(false));
            vec![
                k.code.to_string(),
                k.class_abbrev().to_string(),
                k.program.total_elements().to_string(),
                c.writes.to_string(),
                fmt_pct(c.remote_pct),
                fmt_pct(u.remote_pct),
                c.messages.to_string(),
            ]
        })
        .collect();
    format!(
        "## Scale workloads: stencils + CSR SpMV ({sizes}, 16 PEs, page 32)\n\n{}",
        markdown_table(
            &[
                "kernel",
                "class",
                "elements",
                "writes",
                "remote% (cache)",
                "remote% (no cache)",
                "messages (cache)"
            ],
            &rows
        )
    )
}

/// Extension — estimated speedups and network contention (§9 future work).
pub fn timing() -> String {
    let mut rows = Vec::new();
    for code in ["K1", "K2", "K5", "K6", "K14", "K18"] {
        let k = kernel_by_code(code);
        let sp = speedup_sweep(
            &k.program,
            &[1, 2, 4, 8, 16, 32],
            32,
            AccessCosts::default(),
        )
        .expect("timing");
        let mut row = vec![code.to_string()];
        row.extend(sp.into_iter().map(|(_, s)| format!("{s:.2}×")));
        rows.push(row);
    }
    let table = markdown_table(&["kernel", "1", "2", "4", "8", "16", "32"], &rows);

    // Network contention at 16 PEs on a mesh vs hypercube vs crossbar:
    // one plan, kernel axis × network axis.
    let codes = ["K1", "K6", "K18"];
    let kernels = suite();
    let results = ExperimentPlan::new()
        .kernels(&codes)
        .networks(&[
            NetworkTopology::Crossbar,
            NetworkTopology::Mesh2D,
            NetworkTopology::Hypercube,
        ])
        .run_kernels(&programs(&kernels), &FastCountingOracle::default())
        .expect("sim");
    let net_rows: Vec<Vec<String>> = results
        .records()
        .iter()
        .map(|r| {
            vec![
                r.cfg.kernel.clone().unwrap_or_default(),
                r.cfg.network.name().to_string(),
                r.messages.to_string(),
                fmt_opt_u64(r.hops),
                fmt_opt_u64(r.max_link_load),
            ]
        })
        .collect();
    let net = markdown_table(
        &["kernel", "topology", "messages", "hops", "max link load"],
        &net_rows,
    );
    format!("## Extension: estimated speedup (cost model) and network contention\n\n{table}\n{net}")
}

/// Extension — the timing report details for one kernel at one size.
pub fn timing_detail(code: &str, n_pes: usize) -> String {
    let k = kernel_by_code(code);
    let rec = TimingOracle::default()
        .measure(
            &k.program,
            &RunConfig {
                n_pes,
                ..RunConfig::default()
            },
        )
        .expect("timing");
    format!(
        "{code} on {n_pes} PEs: {} cycles, {} writes, {} remote reads\n",
        rec.cycles.expect("timing oracle"),
        rec.writes,
        rec.remote_reads
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::results::policy_name;

    #[test]
    fn figure_functions_render() {
        // Smoke: each figure renders non-empty markdown with its series.
        let f1 = fig1();
        assert!(f1.contains("Figure 1"));
        assert!(f1.contains("Cache ps32"));
        let s = summary();
        assert!(s.contains("K18"));
    }

    #[test]
    fn scale_workload_table_renders_at_reduced_sizes() {
        let kernels: Vec<Kernel> = sa_loops::workloads()
            .iter()
            .filter(|w| w.family == sa_loops::Family::Scale)
            .map(|w| w.reduced())
            .collect();
        let t = scale_workloads_table(&kernels, "reduced sizes");
        for code in ["ST5", "ST9", "ST7", "SPMV", "SPMVD"] {
            assert!(t.contains(code), "{code} missing:\n{t}");
        }
    }

    #[test]
    fn ablation_policy_labels_match_legacy_names() {
        assert_eq!(policy_name(CachePolicy::Lru), "lru");
        let a = ablation_policy();
        assert!(a.contains("LRU"));
    }
}
