//! Dynamic (measurement-based) access-class detection.
//!
//! The paper classified loops "by examining graphs produced by the
//! simulation data" (§7.1). This module automates that examination: it runs
//! the kernel across PE counts with and without the cache and applies the
//! paper's own criteria:
//!
//! * **Matched** — 0 % remote at every PE count (§7.1.1);
//! * **Cyclic** — cached remote % *decreases* as PEs are added, because the
//!   aggregate cache grows and each PE's access cycle shrinks (§7.1.3);
//! * **Random** — high remote % "regardless of the presence or absence of
//!   caching" (§7.1.4);
//! * **Skewed** — the remainder: a small, PE-count-insensitive remote
//!   percentage dominated by page-boundary crossings (§7.1.2).

use sa_ir::{AccessClass, Program};
use sa_machine::MachineConfig;

use crate::exec::SimError;
use crate::replay::counts_or_simulate;

/// Dynamic counterpart of [`AccessClass`] (no static skew payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicClass {
    /// 0 % remote everywhere.
    Matched,
    /// Small, stable remote percentage.
    Skewed,
    /// Remote percentage falls as PEs increase (with cache).
    Cyclic,
    /// Remote percentage stays high even with the cache.
    Random,
}

impl DynamicClass {
    /// Abbreviation matching the paper (and [`AccessClass::abbrev`]).
    pub fn abbrev(&self) -> &'static str {
        match self {
            DynamicClass::Matched => "MD",
            DynamicClass::Skewed => "SD",
            DynamicClass::Cyclic => "CD",
            DynamicClass::Random => "RD",
        }
    }

    /// Does this dynamic class agree with a static classification?
    pub fn agrees_with(&self, s: AccessClass) -> bool {
        self.abbrev() == s.abbrev()
    }
}

/// One measured point of the classification sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassPoint {
    /// PE count.
    pub n_pes: usize,
    /// Remote % with the paper cache (256 elements).
    pub cached_pct: f64,
    /// Remote % without any cache.
    pub uncached_pct: f64,
}

/// Outcome of dynamic classification.
#[derive(Debug, Clone)]
pub struct DynamicClassification {
    /// The inferred class.
    pub class: DynamicClass,
    /// The measured curve used to infer it.
    pub curve: Vec<ClassPoint>,
}

/// Classify `program` by measurement at `page_size`.
pub fn classify_dynamic(
    program: &Program,
    page_size: usize,
) -> Result<DynamicClassification, SimError> {
    // Classification needs only remote percentages, so it measures through
    // the compiled replay fast path (interpreter fallback for nests the
    // replay cannot lower) — 8 simulations per kernel otherwise.
    let pes = [4usize, 8, 16, 32];
    let mut curve = Vec::with_capacity(pes.len());
    for &n in &pes {
        let cached = counts_or_simulate(program, &MachineConfig::new(n, page_size))?;
        let uncached = counts_or_simulate(
            program,
            &MachineConfig::new(n, page_size).with_cache_elems(0),
        )?;
        curve.push(ClassPoint {
            n_pes: n,
            cached_pct: cached.remote_pct(),
            uncached_pct: uncached.remote_pct(),
        });
    }
    let first = curve.first().expect("non-empty sweep");
    let last = curve.last().expect("non-empty sweep");
    let max_cached = curve.iter().map(|p| p.cached_pct).fold(0.0, f64::max);

    let class = if max_cached < 0.01 {
        DynamicClass::Matched
    } else if last.cached_pct >= 20.0 {
        DynamicClass::Random
    } else if first.cached_pct > 0.05 && first.cached_pct >= 2.0 * last.cached_pct {
        DynamicClass::Cyclic
    } else {
        DynamicClass::Skewed
    };
    Ok(DynamicClassification { class, curve })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::{InitPattern, ProgramBuilder};

    #[test]
    fn matched_kernel_measures_md() {
        let mut b = ProgramBuilder::new("md");
        let y = b.input("Y", &[1024], InitPattern::Wavy);
        let x = b.output("X", &[1024]);
        b.nest("m", &[("k", 0, 1023)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) + 1.0);
        });
        let c = classify_dynamic(&b.finish(), 32).unwrap();
        assert_eq!(c.class, DynamicClass::Matched);
        assert!(c.curve.iter().all(|p| p.cached_pct == 0.0));
        assert!(c.class.agrees_with(AccessClass::Matched));
    }

    #[test]
    fn skewed_kernel_measures_sd() {
        let mut b = ProgramBuilder::new("sd");
        let y = b.input("Y", &[1040], InitPattern::Wavy);
        let x = b.output("X", &[1024]);
        b.nest("s", &[("k", 0, 1023)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0).plus(11)]));
        });
        let c = classify_dynamic(&b.finish(), 32).unwrap();
        assert_eq!(c.class, DynamicClass::Skewed);
        assert!(c.class.agrees_with(AccessClass::Skewed { max_skew: 11 }));
    }

    #[test]
    fn multisweep_kernel_measures_cd() {
        // 2-D Explicit Hydrodynamics shape (paper Fig. 3): the outer k loop
        // re-sweeps the row space 5 times. With more PEs each PE's share of
        // remote neighbour pages shrinks below the cache capacity, so the
        // cached remote % *decreases* — the signature of the Cyclic class.
        let rows: usize = 1000;
        let mut b = ProgramBuilder::new("cd");
        let zp = b.input("ZP", &[rows, 7], InitPattern::Wavy);
        let zr = b.input("ZR", &[rows, 7], InitPattern::Harmonic);
        let za = b.output("ZA", &[rows, 7]);
        b.nest("k18ish", &[("k", 1, 5), ("j", 1, rows as i64 - 2)], |nb| {
            nb.assign(
                za,
                [iv(1), iv(0)],
                nb.read(zp, [iv(1).plus(-1), iv(0).plus(1)]) + nb.read(zr, [iv(1), iv(0).plus(-1)]),
            );
        });
        let c = classify_dynamic(&b.finish(), 32).unwrap();
        assert_eq!(c.class, DynamicClass::Cyclic, "curve: {:?}", c.curve);
    }

    #[test]
    fn permutation_gather_measures_rd() {
        let n: usize = 4096;
        let mut b = ProgramBuilder::new("rd");
        let d = b.input("D", &[n], InitPattern::Wavy);
        let p = b.input("P", &[n], InitPattern::Permutation { seed: 11 });
        let x = b.output("X", &[n]);
        b.nest("g", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read_indirect(d, p, iv(0)));
        });
        let c = classify_dynamic(&b.finish(), 32).unwrap();
        assert_eq!(c.class, DynamicClass::Random, "curve: {:?}", c.curve);
    }
}
