//! Event-driven timing pass with deferred reads — the "more sophisticated
//! simulation \[that\] will better explore the problems of execution time and
//! network contention" the paper lists as future work (§9).
//!
//! The counting pass ([`crate::exec::simulate_traced`]) captures each PE's
//! statement instances in its local order, with every read already
//! classified (local / cached / remote + hop count). This module replays
//! those traces against per-PE clocks:
//!
//! * each access costs [`AccessCosts`] cycles (remote cost grows with hops),
//! * a read of a cell whose producer has not yet executed **parks** the PE
//!   on that cell's deferred-read queue — precisely the I-structure
//!   write-before-read synchronization of paper §3,
//! * reductions make their scalar available once every participating PE has
//!   contributed and shipped its partial to the scalar's host PE,
//! * a re-initialization phase is a global barrier plus protocol cost (§5).
//!
//! The output is an estimated parallel makespan, from which speedup curves
//! are derived.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use sa_ir::Program;
use sa_machine::{host_of, AccessCosts, MachineConfig};

use crate::exec::{simulate_traced, ExecTrace, Instance, PhaseTrace, SimError};

/// Errors from the timing replay.
#[derive(Debug, Clone, PartialEq)]
pub enum TimingError {
    /// No PE can make progress but instances remain — a dependency cycle,
    /// which a valid single-assignment program cannot produce.
    Deadlock {
        /// PEs still holding unexecuted instances.
        stuck_pes: Vec<usize>,
    },
    /// The underlying counting simulation failed.
    Sim(SimError),
}

impl core::fmt::Display for TimingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TimingError::Deadlock { stuck_pes } => {
                write!(f, "timing deadlock; stuck PEs: {stuck_pes:?}")
            }
            TimingError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for TimingError {}

impl From<SimError> for TimingError {
    fn from(e: SimError) -> Self {
        TimingError::Sim(e)
    }
}

/// Estimated execution-time profile.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Makespan: the last PE's finish time.
    pub total_cycles: u64,
    /// Finish time per PE.
    pub per_pe_cycles: Vec<u64>,
    /// Cycles each PE spent parked on deferred reads or barriers.
    pub stall_cycles: Vec<u64>,
    /// Total statement instances executed.
    pub instances: u64,
}

impl TimingReport {
    /// Speedup of this run relative to `baseline` (usually the 1-PE run).
    pub fn speedup_over(&self, baseline: &TimingReport) -> f64 {
        if self.total_cycles == 0 {
            return 1.0;
        }
        baseline.total_cycles as f64 / self.total_cycles as f64
    }

    /// Parallel efficiency over `n` PEs given the 1-PE baseline.
    pub fn efficiency_over(&self, baseline: &TimingReport, n: usize) -> f64 {
        self.speedup_over(baseline) / n.max(1) as f64
    }
}

type CellKey = (usize, u32, usize); // (array, generation, addr)

struct Engine {
    clock: Vec<u64>,
    stall: Vec<u64>,
    write_time: HashMap<CellKey, u64>,
    scalar_time: HashMap<usize, u64>,
    costs: AccessCosts,
    n_pes: usize,
    instances_done: u64,
}

impl Engine {
    fn new(program: &Program, costs: AccessCosts, n_pes: usize) -> Self {
        let mut write_time = HashMap::new();
        for (a, d) in program.arrays.iter().enumerate() {
            for addr in 0..d.init.defined_len(d.len()) {
                write_time.insert((a, 0u32, addr), 0u64);
            }
        }
        Engine {
            clock: vec![0; n_pes],
            stall: vec![0; n_pes],
            write_time,
            scalar_time: HashMap::new(),
            costs,
            n_pes,
            instances_done: 0,
        }
    }

    /// Replay one loop phase's per-PE instance lists.
    fn run_loop_phase(&mut self, per_pe: &[Vec<Instance>]) -> Result<(), TimingError> {
        let n = self.n_pes;
        let mut ip = vec![0usize; n]; // instruction pointer per PE
        let mut read_idx = vec![0usize; n]; // progress within the instance
        let mut parked = vec![false; n];
        let mut cell_waiters: HashMap<CellKey, Vec<usize>> = HashMap::new();
        let mut scalar_waiters: HashMap<usize, Vec<usize>> = HashMap::new();

        // Pending reduction contributions per scalar in this phase, and the
        // running availability time (max over contribution arrival times).
        let mut pending: HashMap<usize, (usize, u64)> = HashMap::new();
        for insts in per_pe {
            for i in insts {
                if let Some(sid) = i.reduce {
                    pending.entry(sid).or_insert((0, 0)).0 += 1;
                }
            }
        }

        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for (pe, insts) in per_pe.iter().enumerate() {
            if !insts.is_empty() {
                heap.push(Reverse((self.clock[pe], pe)));
            }
        }

        let mut done = vec![false; n];
        for (pe, d) in done.iter_mut().enumerate() {
            *d = per_pe[pe].is_empty();
        }

        while let Some(Reverse((t, pe))) = heap.pop() {
            if done[pe] || parked[pe] {
                continue; // stale heap entry
            }
            let mut t = t.max(self.clock[pe]);
            let inst = &per_pe[pe][ip[pe]];

            // Element reads, resuming where we left off if re-woken.
            let mut blocked = false;
            while read_idx[pe] < inst.reads.len() {
                let r = &inst.reads[read_idx[pe]];
                let key = (r.array, r.generation, r.addr);
                match self.write_time.get(&key) {
                    None => {
                        parked[pe] = true;
                        cell_waiters.entry(key).or_default().push(pe);
                        self.clock[pe] = t;
                        blocked = true;
                        break;
                    }
                    Some(&wt) => {
                        if wt > t {
                            self.stall[pe] += wt - t;
                            t = wt;
                        }
                        t += self.costs.of(r.kind, r.hops);
                        read_idx[pe] += 1;
                    }
                }
            }
            if blocked {
                continue;
            }

            // Scalar reads (reduction results from earlier nests).
            let mut scalar_block = None;
            for &sid in &inst.scalar_reads {
                match self.scalar_time.get(&sid) {
                    Some(&st) => {
                        if st > t {
                            self.stall[pe] += st - t;
                            t = st;
                        }
                    }
                    None => {
                        scalar_block = Some(sid);
                        break;
                    }
                }
            }
            if let Some(sid) = scalar_block {
                parked[pe] = true;
                scalar_waiters.entry(sid).or_default().push(pe);
                self.clock[pe] = t;
                continue;
            }

            // Execute: arithmetic, then the write or reduction bookkeeping.
            t += self.costs.compute;
            if let Some((a, generation, addr)) = inst.write {
                t += self.costs.write;
                let key = (a, generation, addr);
                self.write_time.insert(key, t);
                if let Some(waiters) = cell_waiters.remove(&key) {
                    for w in waiters {
                        parked[w] = false;
                        heap.push(Reverse((self.clock[w], w)));
                    }
                }
            }
            if let Some(sid) = inst.reduce {
                let host = host_of(sid, n);
                // Non-host contributors ship a partial result.
                let arrival = if pe == host {
                    t
                } else {
                    t + self.costs.remote_base
                };
                let entry = pending.get_mut(&sid).expect("counted during setup");
                entry.0 -= 1;
                entry.1 = entry.1.max(arrival);
                if entry.0 == 0 {
                    let avail = entry.1 + self.costs.compute; // host combine
                    self.scalar_time.insert(sid, avail);
                    if let Some(waiters) = scalar_waiters.remove(&sid) {
                        for w in waiters {
                            parked[w] = false;
                            heap.push(Reverse((self.clock[w], w)));
                        }
                    }
                }
            }

            self.instances_done += 1;
            self.clock[pe] = t;
            ip[pe] += 1;
            read_idx[pe] = 0;
            if ip[pe] == per_pe[pe].len() {
                done[pe] = true;
            } else {
                heap.push(Reverse((t, pe)));
            }
        }

        let stuck: Vec<usize> = (0..n).filter(|&pe| !done[pe]).collect();
        if stuck.is_empty() {
            Ok(())
        } else {
            Err(TimingError::Deadlock { stuck_pes: stuck })
        }
    }

    /// Global barrier + host-protocol cost for a re-initialization.
    fn run_reinit(&mut self, messages: u64) {
        let t = self.clock.iter().copied().max().unwrap_or(0);
        let cost = self.costs.remote_base + messages * self.costs.per_hop;
        for pe in 0..self.n_pes {
            self.stall[pe] += t - self.clock[pe];
            self.clock[pe] = t + cost;
        }
    }

    fn finish(self) -> TimingReport {
        TimingReport {
            total_cycles: self.clock.iter().copied().max().unwrap_or(0),
            per_pe_cycles: self.clock,
            stall_cycles: self.stall,
            instances: self.instances_done,
        }
    }
}

/// Replay a captured trace under the cost model.
pub fn estimate_timing_from_trace(
    program: &Program,
    trace: &ExecTrace,
    costs: AccessCosts,
) -> Result<TimingReport, TimingError> {
    let mut engine = Engine::new(program, costs, trace.n_pes);
    for phase in &trace.phases {
        match phase {
            PhaseTrace::Loop { per_pe } => engine.run_loop_phase(per_pe)?,
            PhaseTrace::Reinit { messages } => engine.run_reinit(*messages),
        }
    }
    Ok(engine.finish())
}

/// Convenience: run the counting pass and the timing replay in one call.
pub fn estimate_timing(
    program: &Program,
    cfg: &MachineConfig,
) -> Result<TimingReport, TimingError> {
    let rep = simulate_traced(program, cfg)?;
    let trace = rep.trace.as_ref().expect("simulate_traced always captures");
    estimate_timing_from_trace(program, trace, cfg.costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::{InitPattern, ProgramBuilder};

    fn map_kernel(n: usize) -> Program {
        // Embarrassingly parallel matched loop: X(k) = 2·Y(k).
        let mut b = ProgramBuilder::new("map");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("map", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) * 2.0);
        });
        b.finish()
    }

    fn chain_kernel(n: usize) -> Program {
        // Fully serial recurrence: X(i) = X(i-1) + 1.
        let mut b = ProgramBuilder::new("chain");
        let x = b.array_with(
            "X",
            &[n],
            sa_ir::program::ArrayInit::Prefix {
                pattern: InitPattern::Zero,
                len: 1,
            },
        );
        b.nest("chain", &[("i", 1, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(x, [iv(0).plus(-1)]) + 1.0);
        });
        b.finish()
    }

    #[test]
    fn single_pe_timing_is_sum_of_costs() {
        let p = map_kernel(64);
        let t = estimate_timing(&p, &MachineConfig::new(1, 32)).unwrap();
        let c = AccessCosts::default();
        // 64 instances × (local read + compute + write)
        let expected = 64 * (c.local_read + c.compute + c.write);
        assert_eq!(t.total_cycles, expected);
        assert_eq!(t.instances, 64);
        assert_eq!(t.stall_cycles, vec![0]);
    }

    #[test]
    fn matched_loop_scales_nearly_linearly() {
        let p = map_kernel(1024);
        let t1 = estimate_timing(&p, &MachineConfig::new(1, 32)).unwrap();
        let t8 = estimate_timing(&p, &MachineConfig::new(8, 32)).unwrap();
        let s = t8.speedup_over(&t1);
        assert!(
            s > 7.9 && s <= 8.0,
            "matched loop must scale ~linearly, got {s:.2}"
        );
    }

    #[test]
    fn serial_chain_does_not_scale() {
        let p = chain_kernel(512);
        let t1 = estimate_timing(&p, &MachineConfig::new(1, 32)).unwrap();
        let t8 = estimate_timing(&p, &MachineConfig::new(8, 32)).unwrap();
        let s = t8.speedup_over(&t1);
        assert!(s <= 1.05, "a serial chain cannot speed up, got {s:.2}");
        // The chain crosses page boundaries: later PEs must have stalled.
        assert!(t8.stall_cycles.iter().sum::<u64>() > 0);
    }

    #[test]
    fn speedup_never_exceeds_pe_count() {
        let p = map_kernel(300);
        let t1 = estimate_timing(&p, &MachineConfig::new(1, 32)).unwrap();
        for n in [2usize, 4, 8, 16] {
            let tn = estimate_timing(&p, &MachineConfig::new(n, 32)).unwrap();
            let s = tn.speedup_over(&t1);
            assert!(s <= n as f64 + 1e-9, "speedup {s:.2} > {n} PEs");
            assert!(tn.efficiency_over(&t1, n) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn remote_reads_cost_more_than_local() {
        // Same kernel, skewed so page-crossing reads go remote without a
        // cache: timing must be strictly worse than the cached config.
        let mut b = ProgramBuilder::new("skew");
        let y = b.input("Y", &[1040], InitPattern::Wavy);
        let x = b.output("X", &[1024]);
        b.nest("skew", &[("k", 0, 1023)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0).plus(16)]));
        });
        let p = b.finish();
        let cached = estimate_timing(&p, &MachineConfig::new(4, 32)).unwrap();
        let uncached = estimate_timing(&p, &MachineConfig::new(4, 32).with_cache_elems(0)).unwrap();
        assert!(
            uncached.total_cycles > cached.total_cycles,
            "uncached {} ≤ cached {}",
            uncached.total_cycles,
            cached.total_cycles
        );
    }

    #[test]
    fn reduction_barrier_orders_scalar_consumers() {
        // s = Σ Y(k); then X(k) = s + Y(k). Consumers must wait for s.
        let mut b = ProgramBuilder::new("redchain");
        let y = b.input("Y", &[128], InitPattern::Const(1.0));
        let x = b.output("X", &[128]);
        let s = b.scalar("s");
        b.nest("sum", &[("k", 0, 127)], |nb| {
            nb.reduce(s, sa_ir::ReduceOp::Sum, nb.read(y, [iv(0)]));
        });
        b.nest("use", &[("k", 0, 127)], |nb| {
            nb.assign(x, [iv(0)], nb.scalar_value(s) + nb.read(y, [iv(0)]));
        });
        let p = b.finish();
        let t = estimate_timing(&p, &MachineConfig::new(4, 32)).unwrap();
        assert_eq!(t.instances, 256);
        // All PEs consumed s, which was only available after every partial
        // arrived — so no PE can have finished before the reduction did.
        let c = AccessCosts::default();
        let reduce_min = 32 * (c.local_read + c.compute); // one PE's partials
        assert!(t.total_cycles > reduce_min);
    }

    #[test]
    fn reinit_barrier_synchronizes_clocks() {
        let mut b = ProgramBuilder::new("gen");
        let y = b.input("Y", &[64], InitPattern::Wavy);
        let x = b.output("X", &[64]);
        b.nest("g0", &[("k", 0, 63)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]));
        });
        b.reinit(x);
        b.nest("g1", &[("k", 0, 63)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) * 3.0);
        });
        let p = b.finish();
        let t = estimate_timing(&p, &MachineConfig::new(4, 16)).unwrap();
        // After a barrier everyone advances in lockstep; with a symmetric
        // workload the finish times are identical.
        assert!(t.per_pe_cycles.iter().all(|&c| c == t.per_pe_cycles[0]));
    }
}
