//! The access-counting distributed interpreter.
//!
//! Executes a program under owner-computes partitioning on a
//! [`DistributedMachine`], producing both *values* (verified against the
//! sequential reference) and *access statistics* (the paper's metrics).
//!
//! Statement instances are visited in sequential program order while being
//! attributed to their owning PE. This yields exactly the counts of any
//! legal parallel order: placement is static, and each PE's cache state
//! depends only on that PE's own access subsequence, whose relative order
//! the global order preserves.

use sa_ir::interp::{EvalCtx, Memory};
use sa_ir::nest::Stmt;
use sa_ir::program::Phase;
use sa_ir::{ArrayId, IrError, Program};
use sa_machine::machine::ArraySpec;
use sa_machine::{AccessKind, DistributedMachine, MachineConfig, MachineError, Stats};
use sa_mem::SaArray;

use crate::screening::PartitionMap;

/// Errors from distributed execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// IR-level evaluation failure (bounds, rank, undefined reads).
    Ir(IrError),
    /// Machine-level failure (ownership or single-assignment violations).
    Machine(MachineError),
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::Ir(e) => write!(f, "IR error: {e}"),
            SimError::Machine(e) => write!(f, "machine error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<IrError> for SimError {
    fn from(e: IrError) -> Self {
        SimError::Ir(e)
    }
}

impl From<MachineError> for SimError {
    fn from(e: MachineError) -> Self {
        SimError::Machine(e)
    }
}

/// One recorded read in the execution trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRead {
    /// Array identity.
    pub array: usize,
    /// Array generation at read time.
    pub generation: u32,
    /// Linear address.
    pub addr: usize,
    /// How the counting pass classified the access.
    pub kind: AccessKind,
    /// One-way network hops (0 unless remote).
    pub hops: u32,
}

/// One statement instance in the execution trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Element reads performed, in order.
    pub reads: Vec<TraceRead>,
    /// Scalars read (reduction results from earlier nests).
    pub scalar_reads: Vec<usize>,
    /// `(array, generation, addr)` written, if an assignment.
    pub write: Option<(usize, u32, usize)>,
    /// Scalar contributed to, if a reduction.
    pub reduce: Option<usize>,
}

/// Per-phase trace for the timing pass.
#[derive(Debug, Clone)]
pub enum PhaseTrace {
    /// A loop nest's instances, grouped per owning PE in execution order.
    Loop {
        /// `per_pe[p]` = instances PE `p` executes, in its local order.
        per_pe: Vec<Vec<Instance>>,
    },
    /// A host-protocol re-initialization (global synchronization point).
    Reinit {
        /// Protocol messages exchanged.
        messages: u64,
    },
}

/// Full execution trace (phase by phase).
#[derive(Debug, Clone)]
pub struct ExecTrace {
    /// Number of PEs.
    pub n_pes: usize,
    /// Phases in order.
    pub phases: Vec<PhaseTrace>,
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Machine-wide access statistics.
    pub stats: Stats,
    /// `(nest label, stats for that nest alone)`.
    pub per_nest: Vec<(String, Stats)>,
    /// Final reduction values.
    pub scalars: Vec<f64>,
    /// Total network messages (page fetches ×2 + host protocol + reductions).
    pub network_messages: u64,
    /// Total hop traversals.
    pub network_hops: u64,
    /// Heaviest directed-link traffic (contention bottleneck).
    pub max_link_load: u64,
    /// Final array stores (for verification).
    pub arrays: Vec<SaArray<f64>>,
    /// Execution trace, when requested via [`simulate_traced`].
    pub trace: Option<ExecTrace>,
}

impl SimReport {
    /// The paper's *% of Reads Remote*.
    pub fn remote_pct(&self) -> f64 {
        self.stats.remote_read_pct()
    }
}

struct CountingMem<'m> {
    machine: &'m mut DistributedMachine,
    pe: usize,
    reads: Vec<TraceRead>,
    tracing: bool,
}

impl Memory for CountingMem<'_> {
    fn load(&mut self, array: ArrayId, addr: usize) -> Result<f64, IrError> {
        let generation = self.machine.generation(array.0);
        match self.machine.read(self.pe, array.0, addr) {
            Ok((v, kind, hops)) => {
                if self.tracing {
                    self.reads.push(TraceRead {
                        array: array.0,
                        generation,
                        addr,
                        kind,
                        hops,
                    });
                }
                Ok(v)
            }
            Err(MachineError::ReadUndefined { array, addr }) => {
                Err(IrError::ReadUndefined { array, addr })
            }
            Err(MachineError::OutOfBounds { array, addr, len }) => Err(IrError::IndexOutOfBounds {
                array,
                dim: 0,
                index: addr as i64,
                extent: len,
            }),
            Err(e) => Err(IrError::ReadUndefined {
                array: e.to_string(),
                addr,
            }),
        }
    }
}

/// Plain resolution memory that performs *uncounted* loads (used only to
/// discover the owner of indirect anchors before charging accesses).
struct PeekMem<'m> {
    machine: &'m DistributedMachine,
}

impl Memory for PeekMem<'_> {
    fn load(&mut self, array: ArrayId, addr: usize) -> Result<f64, IrError> {
        self.machine
            .peek(array.0, addr)
            .ok_or(IrError::ReadUndefined {
                array: format!("array#{}", array.0),
                addr,
            })
    }
}

fn scalar_reads_of(expr: &sa_ir::Expr, out: &mut Vec<usize>) {
    use sa_ir::Expr;
    match expr {
        Expr::Scalar(s) => out.push(s.0),
        Expr::Unary(_, a) => scalar_reads_of(a, out),
        Expr::Binary(_, a, b) => {
            scalar_reads_of(a, out);
            scalar_reads_of(b, out);
        }
        _ => {}
    }
}

/// Run `program` on a machine configured by `cfg`. Access counts only.
pub fn simulate(program: &Program, cfg: &MachineConfig) -> Result<SimReport, SimError> {
    run(program, cfg, false)
}

/// Run `program` and additionally capture the per-PE execution trace needed
/// by the timing pass.
pub fn simulate_traced(program: &Program, cfg: &MachineConfig) -> Result<SimReport, SimError> {
    run(program, cfg, true)
}

fn run(program: &Program, cfg: &MachineConfig, tracing: bool) -> Result<SimReport, SimError> {
    let specs: Vec<ArraySpec> = program
        .arrays
        .iter()
        .map(|d| ArraySpec {
            name: d.name.clone(),
            len: d.len(),
            dims: d.dims.clone(),
            init: d.init.materialize(d.len()),
        })
        .collect();
    let mut machine = DistributedMachine::new(*cfg, specs)?;
    let map = PartitionMap::new(program, cfg);
    let mut ctx = EvalCtx::new(program);

    let mut per_nest: Vec<(String, Stats)> = Vec::new();
    let mut phases_trace: Vec<PhaseTrace> = Vec::new();
    let mut rr_counter = 0usize; // round-robin for anchorless statements

    for phase in &program.phases {
        match phase {
            Phase::Reinit(id) => {
                let sync = machine.reinit(id.0)?;
                if tracing {
                    phases_trace.push(PhaseTrace::Reinit {
                        messages: sync.total_messages(),
                    });
                }
            }
            Phase::Loop(nest) => {
                let before = machine.stats().clone();
                let mut per_pe: Vec<Vec<Instance>> = if tracing {
                    vec![Vec::new(); cfg.n_pes]
                } else {
                    Vec::new()
                };
                // Which PEs contributed to each reduction in this nest.
                let mut reduce_participants: Vec<(usize, Vec<bool>)> = Vec::new();
                for stmt in &nest.body {
                    if let Stmt::Reduce { target, op, .. } = stmt {
                        ctx.scalars[target.0] = op.identity();
                        reduce_participants.push((target.0, vec![false; cfg.n_pes]));
                    }
                }

                let mut failure: Option<SimError> = None;
                nest.for_each_iteration(|ivs| {
                    if failure.is_some() {
                        return;
                    }
                    let mut reduce_idx = 0usize;
                    for stmt in &nest.body {
                        let res = exec_stmt(
                            program,
                            stmt,
                            ivs,
                            &map,
                            &mut machine,
                            &mut ctx,
                            &mut rr_counter,
                            tracing,
                        );
                        match res {
                            Err(e) => {
                                failure = Some(e);
                                return;
                            }
                            Ok((pe, instance)) => {
                                if let Stmt::Reduce { .. } = stmt {
                                    reduce_participants[reduce_idx].1[pe] = true;
                                    reduce_idx += 1;
                                }
                                if tracing {
                                    per_pe[pe].push(instance);
                                }
                            }
                        }
                    }
                });
                if let Some(e) = failure {
                    return Err(e);
                }

                // Vector→scalar collection (paper §9): each participating PE
                // ships its partial result to the scalar's host processor,
                // which combines and broadcasts availability implicitly.
                for (sid, participants) in &reduce_participants {
                    let host = sa_machine::host_of(*sid, cfg.n_pes);
                    for (pe, &took_part) in participants.iter().enumerate() {
                        if took_part {
                            machine.send_partial(pe, host);
                        }
                    }
                }

                let mut nest_stats = machine.stats().clone();
                subtract_stats(&mut nest_stats, &before);
                per_nest.push((nest.label.clone(), nest_stats));
                if tracing {
                    phases_trace.push(PhaseTrace::Loop { per_pe });
                }
            }
        }
    }

    let scalars = ctx.scalars.clone();
    let n_pes = cfg.n_pes;
    let (stats, network, arrays) = machine.finish();
    Ok(SimReport {
        stats,
        per_nest,
        scalars,
        network_messages: network.messages,
        network_hops: network.hops,
        max_link_load: network.max_link_load(),
        arrays,
        trace: tracing.then_some(ExecTrace {
            n_pes,
            phases: phases_trace,
        }),
    })
}

#[allow(clippy::too_many_arguments)]
fn exec_stmt(
    program: &Program,
    stmt: &Stmt,
    ivs: &[i64],
    map: &PartitionMap,
    machine: &mut DistributedMachine,
    ctx: &mut EvalCtx<'_>,
    rr_counter: &mut usize,
    tracing: bool,
) -> Result<(usize, Instance), SimError> {
    // Determine the executing PE (index screening): the shared resolution
    // path, with the machine's omniscient peek as the (uncounted) resolver
    // for indirect anchors; anchorless reductions are dealt round-robin.
    let pe = match map.resolved_anchor_owner(program, stmt, ivs, &mut PeekMem { machine })? {
        Some(pe) => pe,
        None => {
            let pe = *rr_counter % map.n_pes();
            *rr_counter += 1;
            pe
        }
    };

    let mut mem = CountingMem {
        machine,
        pe,
        reads: Vec::new(),
        tracing,
    };
    match stmt {
        Stmt::Assign { target, value } => {
            let v = ctx.eval(value, ivs, &mut mem)?;
            let addr = ctx.resolve_addr(target, ivs, &mut mem)?;
            let reads = std::mem::take(&mut mem.reads);
            let generation = machine.generation(target.array.0);
            if let Err(e) = machine.write(pe, target.array.0, addr, v) {
                // A dynamically trapped double write must be visible to
                // the static verifier too (an SA001/SA002 error, or an
                // SA003 undecidable-scatter warning); a miss here is a
                // lint soundness bug, caught in debug builds only.
                #[cfg(debug_assertions)]
                if matches!(e, MachineError::DoubleWrite { .. }) {
                    debug_assert!(
                        !sa_lint::check_write_once(program).diagnostics.is_empty(),
                        "interpreter trapped a double write the static \
                         write-once verifier did not flag: {e}"
                    );
                }
                return Err(e.into());
            }
            let mut scalar_reads = Vec::new();
            scalar_reads_of(value, &mut scalar_reads);
            Ok((
                pe,
                Instance {
                    reads,
                    scalar_reads,
                    write: Some((target.array.0, generation, addr)),
                    reduce: None,
                },
            ))
        }
        Stmt::Reduce { target, op, value } => {
            let v = ctx.eval(value, ivs, &mut mem)?;
            let reads = std::mem::take(&mut mem.reads);
            ctx.scalars[target.0] = op.combine(ctx.scalars[target.0], v);
            let mut scalar_reads = Vec::new();
            scalar_reads_of(value, &mut scalar_reads);
            Ok((
                pe,
                Instance {
                    reads,
                    scalar_reads,
                    write: None,
                    reduce: Some(target.0),
                },
            ))
        }
    }
}

fn subtract_stats(s: &mut Stats, before: &Stats) {
    for (a, b) in s.per_pe.iter_mut().zip(&before.per_pe) {
        a.writes -= b.writes;
        a.local_reads -= b.local_reads;
        a.cached_reads -= b.cached_reads;
        a.remote_reads -= b.remote_reads;
    }
    s.page_fetches -= before.page_fetches;
    s.partial_refetches -= before.partial_refetches;
    s.reinit_messages -= before.reinit_messages;
    s.reduction_messages -= before.reduction_messages;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::{interpret, InitPattern, ProgramBuilder};

    /// The Hydro Fragment (K1 shape): X(k) = Q + Y(k)*(R*ZX(k+10)+T*ZX(k+11)).
    fn hydro(n: usize) -> Program {
        let mut b = ProgramBuilder::new("hydro");
        let q = b.param("Q", 0.5);
        let r = b.param("R", 0.25);
        let t = b.param("T", 0.125);
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let zx = b.input("ZX", &[n + 12], InitPattern::Harmonic);
        let x = b.output("X", &[n]);
        b.nest("k1", &[("k", 0, n as i64 - 1)], |nb| {
            let rhs = nb.par(q)
                + nb.read(y, [iv(0)])
                    * (nb.par(r) * nb.read(zx, [iv(0).plus(10)])
                        + nb.par(t) * nb.read(zx, [iv(0).plus(11)]));
            nb.assign(x, [iv(0)], rhs);
        });
        b.finish()
    }

    #[test]
    fn single_pe_has_zero_remote() {
        let p = hydro(1001);
        let rep = simulate(&p, &MachineConfig::new(1, 32)).unwrap();
        assert_eq!(rep.stats.remote_reads(), 0);
        assert_eq!(rep.remote_pct(), 0.0);
        assert_eq!(rep.stats.writes(), 1001);
        assert_eq!(rep.stats.total_reads(), 3 * 1001);
    }

    #[test]
    fn values_match_reference_interpreter() {
        let p = hydro(500);
        let golden = interpret(&p).unwrap();
        let rep = simulate(&p, &MachineConfig::new(8, 32)).unwrap();
        let x = p.array_id("X").unwrap();
        for addr in 0..500 {
            let got = rep.arrays[x.0].read(addr).unwrap().copied();
            let want = golden.arrays[x.0].read(addr).unwrap().copied();
            assert_eq!(got, want, "mismatch at X[{addr}]");
        }
    }

    #[test]
    fn skew_11_no_cache_remote_fraction_matches_hand_count() {
        // Page size 32, N≥2, skew 10/11: per 32 iterations, reads of
        // ZX(k+10) cross for the last 10 offsets, ZX(k+11) for the last 11,
        // Y(k) never. 21 remote / 96 reads ≈ 21.9 % (the paper's "22 %").
        let p = hydro(1024); // full pages only, to make the count exact
        let rep = simulate(&p, &MachineConfig::new(4, 32).with_cache_elems(0)).unwrap();
        // Boundary effect: the last pages of ZX extend past X's domain but
        // stay on the same page layout, so the global ratio is ≈ 21/96.
        let pct = rep.remote_pct();
        assert!((20.0..24.0).contains(&pct), "expected ≈22 %, got {pct:.2}%");
    }

    #[test]
    fn skew_11_with_cache_collapses_to_one_fetch_per_page() {
        let p = hydro(1024);
        let rep = simulate(&p, &MachineConfig::new(4, 32)).unwrap();
        let pct = rep.remote_pct();
        assert!(pct < 2.0, "expected ≈1 %, got {pct:.2}%");
        // The cache converts crossings into cached reads.
        assert!(rep.stats.cached_reads() > rep.stats.remote_reads());
    }

    #[test]
    fn per_nest_stats_sum_to_total() {
        let p = hydro(300);
        let rep = simulate(&p, &MachineConfig::new(4, 32)).unwrap();
        let total: u64 = rep.per_nest.iter().map(|(_, s)| s.total_reads()).sum();
        assert_eq!(total, rep.stats.total_reads());
        assert_eq!(rep.per_nest.len(), 1);
        assert_eq!(rep.per_nest[0].0, "k1");
    }

    #[test]
    fn network_counts_two_messages_per_fetch() {
        let p = hydro(1024);
        let rep = simulate(&p, &MachineConfig::new(4, 32).with_cache_elems(0)).unwrap();
        assert_eq!(rep.network_messages, 2 * rep.stats.page_fetches);
        assert_eq!(rep.stats.page_fetches, rep.stats.remote_reads());
    }

    #[test]
    fn trace_capture_groups_by_pe_in_order() {
        let p = hydro(128);
        let rep = simulate_traced(&p, &MachineConfig::new(4, 32)).unwrap();
        let trace = rep.trace.expect("tracing requested");
        assert_eq!(trace.n_pes, 4);
        let PhaseTrace::Loop { per_pe } = &trace.phases[0] else {
            panic!("expected loop phase");
        };
        // 128 elements / 32-element pages → one page per PE → 32 instances.
        for (pe, instances) in per_pe.iter().enumerate() {
            assert_eq!(instances.len(), 32, "PE {pe}");
            // Write addresses are strictly increasing within a PE.
            let addrs: Vec<usize> = instances
                .iter()
                .map(|i| i.write.expect("assign").2)
                .collect();
            assert!(addrs.windows(2).all(|w| w[0] < w[1]));
            // Each instance performs 3 reads.
            assert!(instances.iter().all(|i| i.reads.len() == 3));
        }
    }

    #[test]
    fn reduction_executes_where_data_lives() {
        // s = Σ Y(k): anchored at Y(k), so each PE reduces its own pages.
        let mut b = ProgramBuilder::new("sum");
        let y = b.input(
            "Y",
            &[128],
            InitPattern::Linear {
                base: 1.0,
                step: 0.0,
            },
        );
        let s = b.scalar("s");
        b.nest("sum", &[("k", 0, 127)], |nb| {
            nb.reduce(s, sa_ir::ReduceOp::Sum, nb.read(y, [iv(0)]));
        });
        let p = b.finish();
        let rep = simulate(&p, &MachineConfig::new(4, 32)).unwrap();
        assert_eq!(rep.scalars[0], 128.0);
        assert_eq!(
            rep.stats.remote_reads(),
            0,
            "reduction reads must all be local"
        );
        // Work is spread: every PE did 32 local reads.
        assert!(rep.stats.local_reads_per_pe().iter().all(|&r| r == 32));
    }

    #[test]
    fn owner_computes_never_trips_remote_write() {
        // If screening were wrong the machine would reject the write.
        let p = hydro(777); // deliberately not page aligned
        for n in [1usize, 2, 3, 5, 8] {
            assert!(
                simulate(&p, &MachineConfig::new(n, 32)).is_ok(),
                "n_pes={n}"
            );
        }
    }

    #[test]
    fn reinit_phase_flows_through_execution() {
        let mut b = ProgramBuilder::new("gen");
        let y = b.input("Y", &[64], InitPattern::Wavy);
        let x = b.output("X", &[64]);
        b.nest("g0", &[("k", 0, 63)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]));
        });
        b.reinit(x);
        b.nest("g1", &[("k", 0, 63)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) * 2.0);
        });
        let p = b.finish();
        let rep = simulate(&p, &MachineConfig::new(4, 16)).unwrap();
        assert_eq!(rep.stats.reinit_messages, 6);
        let x = p.array_id("X").unwrap();
        let golden = interpret(&p).unwrap();
        golden
            .assert_matches(
                &sa_ir::ProgramResult {
                    arrays: rep.arrays.clone(),
                    scalars: rep.scalars.clone(),
                    writes: 0,
                    reads: 0,
                },
                1e-12,
            )
            .unwrap();
        let _ = x;
    }
}
