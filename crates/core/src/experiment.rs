//! Legacy sweep drivers: thin wrappers over [`crate::plan::ExperimentPlan`].
//!
//! Every figure in the paper varies machine/partition parameters and
//! counts remote reads; these five drivers are the historical fixed-shape
//! entry points for that. Each now just builds the equivalent plan (axes
//! in the driver's documented loop order), evaluates it through the
//! default [`CountingOracle`] (or [`TimingOracle`] for speedups), and maps
//! the records back to the driver's original return shape. Outputs are
//! bit-identical to the original sequential loops — `tests/experiment_plan.rs`
//! proves it point for point — so existing callers and figures are
//! unaffected, while new code should compose plans directly.

use sa_ir::Program;
use sa_machine::{AccessCosts, CachePolicy, MachineConfig, PartitionScheme};

use crate::deferred::TimingError;
use crate::exec::SimError;
use crate::oracle::{CountingOracle, OracleError, RunRecord, TimingOracle};
use crate::plan::{ExperimentPlan, PlanError, RunConfig};
use crate::results::policy_name;

/// One measured point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// PE count.
    pub n_pes: usize,
    /// Page size in elements.
    pub page_size: usize,
    /// Whether the 256-element cache was enabled.
    pub cached: bool,
    /// The paper's headline metric: % of reads remote.
    pub remote_pct: f64,
    /// % of reads served by the cache.
    pub cached_pct: f64,
    /// Absolute remote reads.
    pub remote_reads: u64,
    /// Absolute total reads.
    pub total_reads: u64,
    /// Network messages (page fetches ×2 + protocol traffic).
    pub messages: u64,
}

impl SweepPoint {
    fn from_record(r: &RunRecord) -> SweepPoint {
        SweepPoint {
            n_pes: r.cfg.n_pes,
            page_size: r.cfg.page_size,
            cached: r.cfg.cached(),
            remote_pct: r.remote_pct,
            cached_pct: r.cached_pct,
            remote_reads: r.remote_reads,
            total_reads: r.total_reads,
            messages: r.messages,
        }
    }
}

/// One unmeasured grid point of a [`pe_sweep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// PE count.
    pub n_pes: usize,
    /// Page size in elements.
    pub page_size: usize,
    /// Whether the cache is enabled.
    pub cached: bool,
}

impl SweepConfig {
    /// The machine this grid point simulates.
    pub fn machine(&self) -> MachineConfig {
        let m = MachineConfig::new(self.n_pes, self.page_size);
        if self.cached {
            m
        } else {
            m.with_cache_elems(0)
        }
    }
}

/// Unwrap the counting-oracle errors a legacy driver can actually hit.
fn expect_sim_error(e: PlanError) -> SimError {
    match e {
        PlanError::Oracle(OracleError::Sim(e)) => e,
        // Wrappers guard empty inputs and never add kernel axes, and the
        // counting oracle emits only `Sim` errors.
        other => unreachable!("legacy sweep hit a non-simulation error: {other}"),
    }
}

/// Sweep PE counts × page sizes × cache on/off (the axes of Figures 1–4).
///
/// Grid points are simulated concurrently; results are ordered as the
/// sequential triple loop produced them (page size, cache flag, PE count).
pub fn pe_sweep(
    program: &Program,
    pes: &[usize],
    page_sizes: &[usize],
    cache_options: &[bool],
) -> Result<Vec<SweepPoint>, SimError> {
    if pes.is_empty() || page_sizes.is_empty() || cache_options.is_empty() {
        return Ok(Vec::new());
    }
    let results = ExperimentPlan::new()
        .page_sizes(page_sizes)
        .cache_flags(cache_options)
        .pes(pes)
        .run(program, &CountingOracle)
        .map_err(expect_sim_error)?;
    Ok(results
        .records()
        .iter()
        .map(SweepPoint::from_record)
        .collect())
}

/// Sweep cache sizes (the §7.1.4 remedy for Random-class loops).
pub fn cache_sweep(
    program: &Program,
    n_pes: usize,
    page_size: usize,
    cache_elems: &[usize],
) -> Result<Vec<(usize, f64)>, SimError> {
    if cache_elems.is_empty() {
        return Ok(Vec::new());
    }
    let results = ExperimentPlan::new()
        .base(RunConfig {
            n_pes,
            page_size,
            ..RunConfig::default()
        })
        .cache_elems(cache_elems)
        .run(program, &CountingOracle)
        .map_err(expect_sim_error)?;
    Ok(results
        .records()
        .iter()
        .map(|r| (r.cfg.cache_elems, r.remote_pct))
        .collect())
}

/// Compare partitioning schemes (§9: modulo vs the division scheme).
pub fn partition_sweep(
    program: &Program,
    n_pes: usize,
    page_size: usize,
    schemes: &[PartitionScheme],
) -> Result<Vec<(String, f64)>, SimError> {
    if schemes.is_empty() {
        return Ok(Vec::new());
    }
    let results = ExperimentPlan::new()
        .base(RunConfig {
            n_pes,
            page_size,
            ..RunConfig::default()
        })
        .partitions(schemes)
        .run(program, &CountingOracle)
        .map_err(expect_sim_error)?;
    Ok(results
        .records()
        .iter()
        .map(|r| (r.cfg.partition.name(), r.remote_pct))
        .collect())
}

/// Compare replacement policies (§4 chose LRU).
pub fn policy_sweep(
    program: &Program,
    n_pes: usize,
    page_size: usize,
    policies: &[CachePolicy],
) -> Result<Vec<(String, f64)>, SimError> {
    if policies.is_empty() {
        return Ok(Vec::new());
    }
    let results = ExperimentPlan::new()
        .base(RunConfig {
            n_pes,
            page_size,
            ..RunConfig::default()
        })
        .cache_policies(policies)
        .run(program, &CountingOracle)
        .map_err(expect_sim_error)?;
    Ok(results
        .records()
        .iter()
        .map(|r| (policy_name(r.cfg.cache_policy).to_string(), r.remote_pct))
        .collect())
}

/// Estimated speedup vs PE count (the §9 execution-time extension).
pub fn speedup_sweep(
    program: &Program,
    pes: &[usize],
    page_size: usize,
    costs: AccessCosts,
) -> Result<Vec<(usize, f64)>, TimingError> {
    let expect_timing_error = |e: PlanError| match e {
        PlanError::Oracle(OracleError::Timing(e)) => e,
        PlanError::Oracle(OracleError::Sim(e)) => TimingError::Sim(e),
        other => unreachable!("speedup sweep hit a non-timing error: {other}"),
    };
    let oracle = TimingOracle::with_costs(costs);
    let base_plan = ExperimentPlan::new().base(RunConfig {
        page_size,
        ..RunConfig::default()
    });
    let baseline = base_plan
        .clone()
        .pes(&[1])
        .run(program, &oracle)
        .map_err(expect_timing_error)?;
    let base_cycles = baseline.records()[0].cycles.expect("timing oracle");
    if pes.is_empty() {
        return Ok(Vec::new());
    }
    let results = base_plan
        .pes(pes)
        .run(program, &oracle)
        .map_err(expect_timing_error)?;
    Ok(results
        .records()
        .iter()
        .map(|r| {
            let cycles = r.cycles.expect("timing oracle");
            let speedup = if cycles == 0 {
                1.0
            } else {
                base_cycles as f64 / cycles as f64
            };
            (r.cfg.n_pes, speedup)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::simulate;
    use sa_ir::index::iv;
    use sa_ir::{InitPattern, ProgramBuilder};

    fn skewed(n: usize, skew: i64) -> Program {
        let mut b = ProgramBuilder::new("sk");
        let y = b.input("Y", &[n + skew as usize], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("s", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0).plus(skew)]));
        });
        b.finish()
    }

    fn measure(program: &Program, cfg: &SweepConfig) -> SweepPoint {
        let rep = simulate(program, &cfg.machine()).unwrap();
        SweepPoint {
            n_pes: cfg.n_pes,
            page_size: cfg.page_size,
            cached: cfg.cached,
            remote_pct: rep.remote_pct(),
            cached_pct: rep.stats.cached_read_pct(),
            remote_reads: rep.stats.remote_reads(),
            total_reads: rep.stats.total_reads(),
            messages: rep.network_messages,
        }
    }

    #[test]
    fn sweep_covers_the_grid() {
        let p = skewed(512, 11);
        let pts = pe_sweep(&p, &[1, 2, 4], &[32, 64], &[true, false]).unwrap();
        assert_eq!(pts.len(), 3 * 2 * 2);
        // 1 PE always 0 % remote.
        for pt in pts.iter().filter(|p| p.n_pes == 1) {
            assert_eq!(pt.remote_pct, 0.0);
        }
        // Cache can only help.
        for ps in [32, 64] {
            for n in [2, 4] {
                let with = pts
                    .iter()
                    .find(|p| p.n_pes == n && p.page_size == ps && p.cached)
                    .unwrap();
                let without = pts
                    .iter()
                    .find(|p| p.n_pes == n && p.page_size == ps && !p.cached)
                    .unwrap();
                assert!(with.remote_pct <= without.remote_pct);
            }
        }
    }

    #[test]
    fn plan_backed_sweep_matches_sequential_order() {
        // The plan-backed wrapper must return exactly what the original
        // sequential triple loop produced, point for point, in the same
        // order.
        let p = skewed(768, 7);
        let (pes, page_sizes, cache_options) = (
            &[1usize, 2, 3, 4, 8, 16][..],
            &[16usize, 32, 64][..],
            &[true, false][..],
        );
        let sequential: Vec<SweepPoint> = {
            let mut out = Vec::new();
            for &page_size in page_sizes {
                for &cached in cache_options {
                    for &n_pes in pes {
                        out.push(measure(
                            &p,
                            &SweepConfig {
                                n_pes,
                                page_size,
                                cached,
                            },
                        ));
                    }
                }
            }
            out
        };
        let parallel = pe_sweep(&p, pes, page_sizes, cache_options).unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn sweep_error_reports_lowest_grid_index() {
        // Grid order is page size → cache → PEs, so the failing points are
        // index 0 (page 0, 2 PEs → ZeroPageSize), index 1 (page 0, 0 PEs →
        // ZeroPes, since n_pes is validated first) and index 3 (page 32,
        // 0 PEs → ZeroPes). The sequential loop would stop at index 0;
        // the parallel sweep must report that same point's error, not
        // whichever failing point finished first.
        use sa_machine::{ConfigError, MachineError};
        let p = skewed(64, 1);
        let err = pe_sweep(&p, &[2, 0], &[0, 32], &[true]).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::Machine(MachineError::BadConfig(ConfigError::ZeroPageSize))
            ),
            "expected grid point 0's error (ZeroPageSize), got {err:?}"
        );
    }

    #[test]
    fn empty_inputs_keep_legacy_empty_results() {
        // The legacy drivers returned an empty result for empty inputs
        // (their grids were empty); the wrappers must not turn that into
        // the plan layer's EmptyAxis error.
        let p = skewed(64, 1);
        assert_eq!(pe_sweep(&p, &[], &[32], &[true]).unwrap(), vec![]);
        assert_eq!(cache_sweep(&p, 4, 32, &[]).unwrap(), vec![]);
        assert_eq!(partition_sweep(&p, 4, 32, &[]).unwrap(), vec![]);
        assert_eq!(policy_sweep(&p, 4, 32, &[]).unwrap(), vec![]);
        assert_eq!(
            speedup_sweep(&p, &[], 32, AccessCosts::default()).unwrap(),
            vec![]
        );
    }

    #[test]
    fn cache_sweep_is_monotone_for_skewed() {
        let p = skewed(1024, 11);
        let pts = cache_sweep(&p, 4, 32, &[0, 64, 256, 1024]).unwrap();
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-9,
                "more cache must not increase remote %: {pts:?}"
            );
        }
    }

    #[test]
    fn partition_sweep_names_schemes() {
        let p = skewed(256, 1);
        let rows = partition_sweep(
            &p,
            4,
            32,
            &[PartitionScheme::Modulo, PartitionScheme::Block],
        )
        .unwrap();
        assert_eq!(rows[0].0, "modulo");
        assert_eq!(rows[1].0, "block");
    }

    #[test]
    fn policy_sweep_runs_all_policies() {
        let p = skewed(256, 5);
        let rows = policy_sweep(
            &p,
            4,
            32,
            &[
                CachePolicy::Lru,
                CachePolicy::Fifo,
                CachePolicy::Random { seed: 1 },
            ],
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|(_, pct)| *pct >= 0.0));
    }

    #[test]
    fn speedup_sweep_monotonic_domain() {
        let p = skewed(512, 0);
        let s = speedup_sweep(&p, &[1, 2, 4, 8], 32, AccessCosts::default()).unwrap();
        assert_eq!(s[0].1, 1.0);
        assert!(
            s[3].1 > s[1].1,
            "a matched loop should keep speeding up: {s:?}"
        );
    }
}
