//! Parameter sweeps: the machinery behind every figure in the paper.

use sa_ir::Program;
use sa_machine::{AccessCosts, CachePolicy, MachineConfig, PartitionScheme};

use crate::deferred::{estimate_timing, TimingError};
use crate::exec::{simulate, SimError};

/// One measured point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// PE count.
    pub n_pes: usize,
    /// Page size in elements.
    pub page_size: usize,
    /// Whether the 256-element cache was enabled.
    pub cached: bool,
    /// The paper's headline metric: % of reads remote.
    pub remote_pct: f64,
    /// % of reads served by the cache.
    pub cached_pct: f64,
    /// Absolute remote reads.
    pub remote_reads: u64,
    /// Absolute total reads.
    pub total_reads: u64,
    /// Network messages (page fetches ×2 + protocol traffic).
    pub messages: u64,
}

/// Sweep PE counts × page sizes × cache on/off (the axes of Figures 1–4).
pub fn pe_sweep(
    program: &Program,
    pes: &[usize],
    page_sizes: &[usize],
    cache_options: &[bool],
) -> Result<Vec<SweepPoint>, SimError> {
    let mut out = Vec::with_capacity(pes.len() * page_sizes.len() * cache_options.len());
    for &page_size in page_sizes {
        for &cached in cache_options {
            for &n_pes in pes {
                let cfg = if cached {
                    MachineConfig::paper(n_pes, page_size)
                } else {
                    MachineConfig::paper_no_cache(n_pes, page_size)
                };
                let rep = simulate(program, &cfg)?;
                out.push(SweepPoint {
                    n_pes,
                    page_size,
                    cached,
                    remote_pct: rep.remote_pct(),
                    cached_pct: rep.stats.cached_read_pct(),
                    remote_reads: rep.stats.remote_reads(),
                    total_reads: rep.stats.total_reads(),
                    messages: rep.network_messages,
                });
            }
        }
    }
    Ok(out)
}

/// Sweep cache sizes (the §7.1.4 remedy for Random-class loops).
pub fn cache_sweep(
    program: &Program,
    n_pes: usize,
    page_size: usize,
    cache_elems: &[usize],
) -> Result<Vec<(usize, f64)>, SimError> {
    let mut out = Vec::with_capacity(cache_elems.len());
    for &elems in cache_elems {
        let cfg = MachineConfig::paper(n_pes, page_size).with_cache_elems(elems);
        let rep = simulate(program, &cfg)?;
        out.push((elems, rep.remote_pct()));
    }
    Ok(out)
}

/// Compare partitioning schemes (§9: modulo vs the division scheme).
pub fn partition_sweep(
    program: &Program,
    n_pes: usize,
    page_size: usize,
    schemes: &[PartitionScheme],
) -> Result<Vec<(String, f64)>, SimError> {
    let mut out = Vec::with_capacity(schemes.len());
    for &scheme in schemes {
        let cfg = MachineConfig::paper(n_pes, page_size).with_partition(scheme);
        let rep = simulate(program, &cfg)?;
        out.push((scheme.name(), rep.remote_pct()));
    }
    Ok(out)
}

/// Compare replacement policies (§4 chose LRU).
pub fn policy_sweep(
    program: &Program,
    n_pes: usize,
    page_size: usize,
    policies: &[CachePolicy],
) -> Result<Vec<(String, f64)>, SimError> {
    let mut out = Vec::with_capacity(policies.len());
    for &policy in policies {
        let cfg = MachineConfig::paper(n_pes, page_size).with_cache_policy(policy);
        let rep = simulate(program, &cfg)?;
        let name = match policy {
            CachePolicy::Lru => "lru".to_string(),
            CachePolicy::Fifo => "fifo".to_string(),
            CachePolicy::Random { .. } => "random".to_string(),
        };
        out.push((name, rep.remote_pct()));
    }
    Ok(out)
}

/// Estimated speedup vs PE count (the §9 execution-time extension).
pub fn speedup_sweep(
    program: &Program,
    pes: &[usize],
    page_size: usize,
    costs: AccessCosts,
) -> Result<Vec<(usize, f64)>, TimingError> {
    let base = estimate_timing(program, &MachineConfig::paper(1, page_size).with_costs(costs))?;
    let mut out = Vec::with_capacity(pes.len());
    for &n in pes {
        let t = estimate_timing(program, &MachineConfig::paper(n, page_size).with_costs(costs))?;
        out.push((n, t.speedup_over(&base)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::{InitPattern, ProgramBuilder};

    fn skewed(n: usize, skew: i64) -> Program {
        let mut b = ProgramBuilder::new("sk");
        let y = b.input("Y", &[n + skew as usize], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("s", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0).plus(skew)]));
        });
        b.finish()
    }

    #[test]
    fn sweep_covers_the_grid() {
        let p = skewed(512, 11);
        let pts = pe_sweep(&p, &[1, 2, 4], &[32, 64], &[true, false]).unwrap();
        assert_eq!(pts.len(), 3 * 2 * 2);
        // 1 PE always 0 % remote.
        for pt in pts.iter().filter(|p| p.n_pes == 1) {
            assert_eq!(pt.remote_pct, 0.0);
        }
        // Cache can only help.
        for ps in [32, 64] {
            for n in [2, 4] {
                let with = pts
                    .iter()
                    .find(|p| p.n_pes == n && p.page_size == ps && p.cached)
                    .unwrap();
                let without = pts
                    .iter()
                    .find(|p| p.n_pes == n && p.page_size == ps && !p.cached)
                    .unwrap();
                assert!(with.remote_pct <= without.remote_pct);
            }
        }
    }

    #[test]
    fn cache_sweep_is_monotone_for_skewed() {
        let p = skewed(1024, 11);
        let pts = cache_sweep(&p, 4, 32, &[0, 64, 256, 1024]).unwrap();
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-9,
                "more cache must not increase remote %: {pts:?}"
            );
        }
    }

    #[test]
    fn partition_sweep_names_schemes() {
        let p = skewed(256, 1);
        let rows = partition_sweep(
            &p,
            4,
            32,
            &[PartitionScheme::Modulo, PartitionScheme::Block],
        )
        .unwrap();
        assert_eq!(rows[0].0, "modulo");
        assert_eq!(rows[1].0, "block");
    }

    #[test]
    fn policy_sweep_runs_all_policies() {
        let p = skewed(256, 5);
        let rows = policy_sweep(
            &p,
            4,
            32,
            &[CachePolicy::Lru, CachePolicy::Fifo, CachePolicy::Random { seed: 1 }],
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|(_, pct)| *pct >= 0.0));
    }

    #[test]
    fn speedup_sweep_monotonic_domain() {
        let p = skewed(512, 0);
        let s = speedup_sweep(&p, &[1, 2, 4, 8], 32, AccessCosts::default()).unwrap();
        assert_eq!(s[0].1, 1.0);
        assert!(s[3].1 > s[1].1, "a matched loop should keep speeding up: {s:?}");
    }
}
