//! Parameter sweeps: the machinery behind every figure in the paper.
//!
//! Every sweep point is an independent simulation, so the drivers fan the
//! grid out across threads via [`crate::parallel::par_map`] while keeping
//! the exact result order of the original sequential loops (page size
//! outermost, then cache on/off, then PE count).

use sa_ir::Program;
use sa_machine::{AccessCosts, CachePolicy, MachineConfig, PartitionScheme};

use crate::deferred::{estimate_timing, TimingError};
use crate::exec::{simulate, SimError};
use crate::parallel::par_map;

/// One measured point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// PE count.
    pub n_pes: usize,
    /// Page size in elements.
    pub page_size: usize,
    /// Whether the 256-element cache was enabled.
    pub cached: bool,
    /// The paper's headline metric: % of reads remote.
    pub remote_pct: f64,
    /// % of reads served by the cache.
    pub cached_pct: f64,
    /// Absolute remote reads.
    pub remote_reads: u64,
    /// Absolute total reads.
    pub total_reads: u64,
    /// Network messages (page fetches ×2 + protocol traffic).
    pub messages: u64,
}

/// The full grid a [`pe_sweep`] visits, in result order: page size
/// outermost, then cache on/off, then PE count.
fn sweep_grid(pes: &[usize], page_sizes: &[usize], cache_options: &[bool]) -> Vec<SweepConfig> {
    let mut grid = Vec::with_capacity(pes.len() * page_sizes.len() * cache_options.len());
    for &page_size in page_sizes {
        for &cached in cache_options {
            for &n_pes in pes {
                grid.push(SweepConfig {
                    n_pes,
                    page_size,
                    cached,
                });
            }
        }
    }
    grid
}

/// One unmeasured grid point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// PE count.
    pub n_pes: usize,
    /// Page size in elements.
    pub page_size: usize,
    /// Whether the cache is enabled.
    pub cached: bool,
}

impl SweepConfig {
    /// The machine this grid point simulates.
    pub fn machine(&self) -> MachineConfig {
        if self.cached {
            MachineConfig::paper(self.n_pes, self.page_size)
        } else {
            MachineConfig::paper_no_cache(self.n_pes, self.page_size)
        }
    }
}

/// Measure one grid point.
fn measure(program: &Program, cfg: &SweepConfig) -> Result<SweepPoint, SimError> {
    let rep = simulate(program, &cfg.machine())?;
    Ok(SweepPoint {
        n_pes: cfg.n_pes,
        page_size: cfg.page_size,
        cached: cfg.cached,
        remote_pct: rep.remote_pct(),
        cached_pct: rep.stats.cached_read_pct(),
        remote_reads: rep.stats.remote_reads(),
        total_reads: rep.stats.total_reads(),
        messages: rep.network_messages,
    })
}

/// Sweep PE counts × page sizes × cache on/off (the axes of Figures 1–4).
///
/// Grid points are simulated concurrently; results are ordered as the
/// sequential triple loop produced them (page size, cache flag, PE count).
pub fn pe_sweep(
    program: &Program,
    pes: &[usize],
    page_sizes: &[usize],
    cache_options: &[bool],
) -> Result<Vec<SweepPoint>, SimError> {
    par_map(&sweep_grid(pes, page_sizes, cache_options), |cfg| {
        measure(program, cfg)
    })
}

/// Sweep cache sizes (the §7.1.4 remedy for Random-class loops).
pub fn cache_sweep(
    program: &Program,
    n_pes: usize,
    page_size: usize,
    cache_elems: &[usize],
) -> Result<Vec<(usize, f64)>, SimError> {
    par_map(cache_elems, |&elems| {
        let cfg = MachineConfig::paper(n_pes, page_size).with_cache_elems(elems);
        let rep = simulate(program, &cfg)?;
        Ok((elems, rep.remote_pct()))
    })
}

/// Compare partitioning schemes (§9: modulo vs the division scheme).
pub fn partition_sweep(
    program: &Program,
    n_pes: usize,
    page_size: usize,
    schemes: &[PartitionScheme],
) -> Result<Vec<(String, f64)>, SimError> {
    par_map(schemes, |&scheme| {
        let cfg = MachineConfig::paper(n_pes, page_size).with_partition(scheme);
        let rep = simulate(program, &cfg)?;
        Ok((scheme.name(), rep.remote_pct()))
    })
}

/// Compare replacement policies (§4 chose LRU).
pub fn policy_sweep(
    program: &Program,
    n_pes: usize,
    page_size: usize,
    policies: &[CachePolicy],
) -> Result<Vec<(String, f64)>, SimError> {
    par_map(policies, |&policy| {
        let cfg = MachineConfig::paper(n_pes, page_size).with_cache_policy(policy);
        let rep = simulate(program, &cfg)?;
        let name = match policy {
            CachePolicy::Lru => "lru".to_string(),
            CachePolicy::Fifo => "fifo".to_string(),
            CachePolicy::Random { .. } => "random".to_string(),
        };
        Ok((name, rep.remote_pct()))
    })
}

/// Estimated speedup vs PE count (the §9 execution-time extension).
pub fn speedup_sweep(
    program: &Program,
    pes: &[usize],
    page_size: usize,
    costs: AccessCosts,
) -> Result<Vec<(usize, f64)>, TimingError> {
    let base = estimate_timing(
        program,
        &MachineConfig::paper(1, page_size).with_costs(costs),
    )?;
    par_map(pes, |&n| {
        let t = estimate_timing(
            program,
            &MachineConfig::paper(n, page_size).with_costs(costs),
        )?;
        Ok((n, t.speedup_over(&base)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::{InitPattern, ProgramBuilder};

    fn skewed(n: usize, skew: i64) -> Program {
        let mut b = ProgramBuilder::new("sk");
        let y = b.input("Y", &[n + skew as usize], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("s", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0).plus(skew)]));
        });
        b.finish()
    }

    #[test]
    fn sweep_covers_the_grid() {
        let p = skewed(512, 11);
        let pts = pe_sweep(&p, &[1, 2, 4], &[32, 64], &[true, false]).unwrap();
        assert_eq!(pts.len(), 3 * 2 * 2);
        // 1 PE always 0 % remote.
        for pt in pts.iter().filter(|p| p.n_pes == 1) {
            assert_eq!(pt.remote_pct, 0.0);
        }
        // Cache can only help.
        for ps in [32, 64] {
            for n in [2, 4] {
                let with = pts
                    .iter()
                    .find(|p| p.n_pes == n && p.page_size == ps && p.cached)
                    .unwrap();
                let without = pts
                    .iter()
                    .find(|p| p.n_pes == n && p.page_size == ps && !p.cached)
                    .unwrap();
                assert!(with.remote_pct <= without.remote_pct);
            }
        }
    }

    #[test]
    fn parallel_sweep_matches_sequential_order() {
        // The concurrent fan-out must return exactly what the sequential
        // triple loop produced, point for point, in the same order.
        let p = skewed(768, 7);
        let (pes, page_sizes, cache_options) = (
            &[1usize, 2, 3, 4, 8, 16][..],
            &[16usize, 32, 64][..],
            &[true, false][..],
        );
        let sequential: Vec<SweepPoint> = {
            let mut out = Vec::new();
            for &page_size in page_sizes {
                for &cached in cache_options {
                    for &n_pes in pes {
                        out.push(
                            measure(
                                &p,
                                &SweepConfig {
                                    n_pes,
                                    page_size,
                                    cached,
                                },
                            )
                            .unwrap(),
                        );
                    }
                }
            }
            out
        };
        let parallel = pe_sweep(&p, pes, page_sizes, cache_options).unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn sweep_error_reports_lowest_grid_index() {
        // Grid order is page size → cache → PEs, so the failing points are
        // index 0 (page 0, 2 PEs → ZeroPageSize), index 1 (page 0, 0 PEs →
        // ZeroPes, since n_pes is validated first) and index 3 (page 32,
        // 0 PEs → ZeroPes). The sequential loop would stop at index 0;
        // the parallel sweep must report that same point's error, not
        // whichever failing point finished first.
        use sa_machine::{ConfigError, MachineError};
        let p = skewed(64, 1);
        let err = pe_sweep(&p, &[2, 0], &[0, 32], &[true]).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::Machine(MachineError::BadConfig(ConfigError::ZeroPageSize))
            ),
            "expected grid point 0's error (ZeroPageSize), got {err:?}"
        );
    }

    #[test]
    fn cache_sweep_is_monotone_for_skewed() {
        let p = skewed(1024, 11);
        let pts = cache_sweep(&p, 4, 32, &[0, 64, 256, 1024]).unwrap();
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-9,
                "more cache must not increase remote %: {pts:?}"
            );
        }
    }

    #[test]
    fn partition_sweep_names_schemes() {
        let p = skewed(256, 1);
        let rows = partition_sweep(
            &p,
            4,
            32,
            &[PartitionScheme::Modulo, PartitionScheme::Block],
        )
        .unwrap();
        assert_eq!(rows[0].0, "modulo");
        assert_eq!(rows[1].0, "block");
    }

    #[test]
    fn policy_sweep_runs_all_policies() {
        let p = skewed(256, 5);
        let rows = policy_sweep(
            &p,
            4,
            32,
            &[
                CachePolicy::Lru,
                CachePolicy::Fifo,
                CachePolicy::Random { seed: 1 },
            ],
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|(_, pct)| *pct >= 0.0));
    }

    #[test]
    fn speedup_sweep_monotonic_domain() {
        let p = skewed(512, 0);
        let s = speedup_sweep(&p, &[1, 2, 4, 8], 32, AccessCosts::default()).unwrap();
        assert_eq!(s[0].1, 1.0);
        assert!(
            s[3].1 > s[1].1,
            "a matched loop should keep speeding up: {s:?}"
        );
    }
}
