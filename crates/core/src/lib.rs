//! # sa-core — automatic partitioning, distributed execution, experiments
//!
//! This crate glues the substrates together into the paper's system:
//!
//! * [`screening`] — the *index screening* of §3: every statement instance
//!   is mapped to the PE that owns the element it writes (owner-computes).
//! * [`exec`] — the access-counting distributed interpreter: runs an
//!   `sa-ir` program on an `sa-machine`, classifying every read as
//!   local / cached / remote exactly as the paper's simulation did, while
//!   also computing real values so results can be verified against the
//!   sequential reference.
//! * [`deferred`] — the event-driven *timing* pass (§9 future work):
//!   replays the execution with per-PE clocks, I-structure stalls on
//!   not-yet-produced cells, network hop latencies and host-protocol
//!   barriers, yielding estimated cycles and speedup curves.
//! * [`replay`] — the compiled counting fast path: statically classifiable
//!   loop nests are lowered to a per-PE arithmetic page-access model
//!   (classify once per nest, count closed-form or per page run) that is
//!   bit-identical to [`exec::simulate`] and sharded across host cores;
//!   indirect/dynamic nests fall back to the interpreter.
//! * [`classify`] — dynamic (measurement-based) access-class detection,
//!   cross-checking the static classifier in `sa-ir`.
//! * [`plan`] — the composable experiment layer: typed sweep axes crossed
//!   into a lazily enumerated grid of [`plan::RunConfig`]s.
//! * [`oracle`] — pluggable evaluation backends behind the object-safe
//!   [`oracle::Oracle`] trait (counting simulator by default; timing
//!   replay; `sa-lint`'s zero-execution static estimator; `sa-runtime`
//!   threads via that crate's adapter).
//! * [`results`] — group-by/pivot over measured grids, so figures select
//!   series by predicate instead of relying on loop order.
//! * [`mod@search`] — automatic scheme search: exhaustive
//!   `PartitionScheme × page size` per kernel, the ROADMAP's Automap item,
//!   plus [`search::strategy`] — seeded simulated annealing and
//!   write-to-read propagation over the full
//!   `scheme × page × topology` space behind a memoizing oracle cache.
//! * [`experiment`] — the five legacy sweep drivers, kept as thin wrappers
//!   over plans with bit-identical outputs.
//! * [`parallel`] — the scoped-thread, order-preserving map the plan
//!   evaluator (and the figure generator) is built on.
//! * [`report`] — markdown / CSV / JSON / ASCII-chart emitters.
//! * [`verify`] — end-to-end equivalence with the reference interpreter.

#![warn(missing_docs)]

pub mod classify;
pub mod deferred;
pub mod exec;
pub mod experiment;
pub mod oracle;
pub mod parallel;
pub mod plan;
pub mod replay;
pub mod report;
pub mod results;
pub mod screening;
pub mod search;
pub mod verify;

pub use classify::{classify_dynamic, DynamicClassification};
pub use deferred::{estimate_timing, TimingReport};
pub use exec::{simulate, simulate_traced, SimError, SimReport};
pub use experiment::{pe_sweep, SweepConfig, SweepPoint};
pub use oracle::{
    CountingOracle, Engine, FastCountingOracle, Oracle, OracleError, RunRecord, StaticOracle,
    TimingOracle,
};
pub use parallel::par_map;
pub use plan::{Axis, ExperimentPlan, PlanError, RunConfig};
pub use replay::{CountEngine, CountReport, ReplayError};
pub use results::{Column, ResultSet};
pub use screening::PartitionMap;
pub use search::strategy::{
    MemoOracle, SearchReport, Searcher, Strategy, StrategyOracle, StrategyParams,
};
pub use search::{search, search_with, BestConfig, Objective, SearchSpace};
pub use verify::verify_against_reference;
