//! # sa-core — automatic partitioning, distributed execution, experiments
//!
//! This crate glues the substrates together into the paper's system:
//!
//! * [`screening`] — the *index screening* of §3: every statement instance
//!   is mapped to the PE that owns the element it writes (owner-computes).
//! * [`exec`] — the access-counting distributed interpreter: runs an
//!   `sa-ir` program on an `sa-machine`, classifying every read as
//!   local / cached / remote exactly as the paper's simulation did, while
//!   also computing real values so results can be verified against the
//!   sequential reference.
//! * [`deferred`] — the event-driven *timing* pass (§9 future work):
//!   replays the execution with per-PE clocks, I-structure stalls on
//!   not-yet-produced cells, network hop latencies and host-protocol
//!   barriers, yielding estimated cycles and speedup curves.
//! * [`classify`] — dynamic (measurement-based) access-class detection,
//!   cross-checking the static classifier in `sa-ir`.
//! * [`experiment`] — parameter sweeps (PEs × page size × cache × scheme),
//!   fanned out across threads with deterministic result ordering.
//! * [`parallel`] — the scoped-thread, order-preserving map the sweeps
//!   (and the figure generator) are built on.
//! * [`report`] — markdown / CSV / ASCII-chart emitters for the figures.
//! * [`verify`] — end-to-end equivalence with the reference interpreter.

#![warn(missing_docs)]

pub mod classify;
pub mod deferred;
pub mod exec;
pub mod experiment;
pub mod parallel;
pub mod report;
pub mod screening;
pub mod verify;

pub use classify::{classify_dynamic, DynamicClassification};
pub use deferred::{estimate_timing, TimingReport};
pub use exec::{simulate, simulate_traced, SimError, SimReport};
pub use experiment::{pe_sweep, SweepConfig, SweepPoint};
pub use parallel::par_map;
pub use screening::PartitionMap;
pub use verify::verify_against_reference;
