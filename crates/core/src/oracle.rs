//! Pluggable evaluation oracles: *how* a grid point gets measured.
//!
//! An [`Oracle`] turns one `(program, RunConfig)` pair into a
//! [`RunRecord`]. The trait is object-safe so plans, searches and CLIs can
//! hold a `&dyn Oracle` and swap backends without re-monomorphizing the
//! sweep machinery:
//!
//! * [`CountingOracle`] — the paper's access-counting simulator
//!   ([`crate::exec::simulate`]), always interpreting.
//! * [`FastCountingOracle`] — the same counts through a selectable
//!   [`Engine`]: the compiled access replay ([`crate::replay`]), the
//!   interpreter, or `auto` (replay when statically classifiable, falling
//!   back to the interpreter per program — the default everywhere counts
//!   are all that is needed).
//! * [`TimingOracle`] — the §9 execution-time extension
//!   ([`crate::deferred::estimate_timing`]); fills [`RunRecord::cycles`]
//!   (cycle estimation needs the full trace, so it always interprets).
//! * `sa-runtime`'s thread-backed oracle — lives in that crate (it depends
//!   on this one) and implements [`Oracle`] over real worker threads,
//!   reporting [`OracleError::Unsupported`] for knobs the runtime lacks.

use sa_ir::Program;
use sa_machine::{load_balance, AccessCosts, Stats};

use crate::deferred::{estimate_timing_from_trace, TimingError};
use crate::exec::{simulate, simulate_traced, SimError};
use crate::plan::RunConfig;
use crate::replay::{self, CountReport, ReplayError};

/// One measured grid point: the config that produced it plus every counter
/// the report layer might select.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The grid point that was measured.
    pub cfg: RunConfig,
    /// The paper's headline metric: % of reads remote.
    pub remote_pct: f64,
    /// % of reads served by the cache.
    pub cached_pct: f64,
    /// Absolute writes.
    pub writes: u64,
    /// Absolute local reads.
    pub local_reads: u64,
    /// Absolute cached reads.
    pub cached_reads: u64,
    /// Absolute remote reads.
    pub remote_reads: u64,
    /// Absolute total reads.
    pub total_reads: u64,
    /// Network messages (page fetches ×2 + protocol traffic).
    pub messages: u64,
    /// Total hop traversals; `None` for backends without a network model
    /// (the thread runtime), so mixed-oracle reports can tell "zero hops"
    /// from "not modeled".
    pub hops: Option<u64>,
    /// Heaviest directed-link traffic; `None` without a network model.
    pub max_link_load: Option<u64>,
    /// Jain fairness index of the per-PE write distribution (1 = perfectly
    /// balanced compute, `1/n_pes` = everything on one PE). Writes are one
    /// per statement instance under owner-computes, so this measures how
    /// evenly the *work* spread — the search objective's imbalance signal.
    pub write_balance: f64,
    /// Estimated execution cycles — only timing-capable oracles fill this.
    pub cycles: Option<u64>,
    /// Certified static upper bound on parallel speedup under this config
    /// (`sa_lint::depgraph::speedup_bound`: work over the larger of the
    /// critical path and the busiest PE's serial workload). Only the
    /// zero-execution oracle fills it; `None` elsewhere or when the
    /// program is not statically analyzable.
    pub speedup_bound: Option<f64>,
}

impl RunRecord {
    /// Hop count as a plot value: `NaN` when the backend has no network
    /// model, so pivoted series drop the point instead of charting a fake
    /// zero.
    pub fn hops_f64(&self) -> f64 {
        self.hops.map(|h| h as f64).unwrap_or(f64::NAN)
    }

    /// Link load as a plot value; `NaN` when not modeled.
    pub fn max_link_load_f64(&self) -> f64 {
        self.max_link_load.map(|l| l as f64).unwrap_or(f64::NAN)
    }
}

/// [`RunRecord::write_balance`] for a stats block.
fn write_balance_of(stats: &Stats) -> f64 {
    load_balance(&stats.writes_per_pe()).jain
}

/// The one place a [`CountReport`] maps onto [`RunRecord`] fields — every
/// counting-style oracle builds on this, so a new counter is threaded
/// through a single construction site.
fn record_of(cfg: &RunConfig, rep: &CountReport, cycles: Option<u64>) -> RunRecord {
    RunRecord {
        cfg: cfg.clone(),
        remote_pct: rep.remote_pct(),
        cached_pct: rep.stats.cached_read_pct(),
        writes: rep.stats.writes(),
        local_reads: rep.stats.local_reads(),
        cached_reads: rep.stats.cached_reads(),
        remote_reads: rep.stats.remote_reads(),
        total_reads: rep.stats.total_reads(),
        messages: rep.network_messages,
        hops: Some(rep.network_hops),
        max_link_load: Some(rep.max_link_load),
        write_balance: write_balance_of(&rep.stats),
        cycles,
        speedup_bound: None,
    }
}

/// Why one grid point failed to measure.
#[derive(Debug)]
pub enum OracleError {
    /// The counting simulation failed.
    Sim(SimError),
    /// The timing replay failed.
    Timing(TimingError),
    /// The backend cannot honor a knob of the requested config (e.g. the
    /// thread runtime has no network model).
    Unsupported(String),
    /// The backend failed for its own reasons (e.g. a worker panicked).
    Backend(String),
}

impl core::fmt::Display for OracleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OracleError::Sim(e) => write!(f, "simulation failed: {e}"),
            OracleError::Timing(e) => write!(f, "timing failed: {e}"),
            OracleError::Unsupported(m) => write!(f, "unsupported config: {m}"),
            OracleError::Backend(m) => write!(f, "oracle backend failed: {m}"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<SimError> for OracleError {
    fn from(e: SimError) -> Self {
        OracleError::Sim(e)
    }
}

impl From<TimingError> for OracleError {
    fn from(e: TimingError) -> Self {
        OracleError::Timing(e)
    }
}

/// An evaluation backend for experiment plans. Object-safe: plans and
/// searches take `&dyn Oracle`.
///
/// Implementations must be deterministic for a given `(program, cfg)` pair
/// — equivalence tests between legacy drivers and plan-built grids rely on
/// it — and `Sync`, because grid points are measured concurrently.
pub trait Oracle: Sync {
    /// Short backend name for reports and CLI output.
    fn name(&self) -> &'static str;

    /// Measure one grid point.
    fn measure(&self, program: &Program, cfg: &RunConfig) -> Result<RunRecord, OracleError>;
}

/// The default oracle: the paper's access-counting simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingOracle;

impl Oracle for CountingOracle {
    fn name(&self) -> &'static str {
        "counting-sim"
    }

    fn measure(&self, program: &Program, cfg: &RunConfig) -> Result<RunRecord, OracleError> {
        let rep = simulate(program, &cfg.machine())?;
        Ok(record_of(cfg, &CountReport::from_sim(&rep), None))
    }
}

/// Which counting backend a [`FastCountingOracle`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Always interpret ([`crate::exec::simulate`]): slow, but supports
    /// everything including partial-page refetch accounting.
    Interp,
    /// Always use the compiled replay ([`crate::replay::counts`]); grid
    /// points it cannot lower fail with [`OracleError::Unsupported`].
    Replay,
    /// Replay when statically classifiable, interpreter otherwise — the
    /// recommended default. Debug builds cross-check small replayable runs
    /// against the interpreter before trusting them.
    #[default]
    Auto,
}

impl Engine {
    /// Parse a CLI engine name.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "interp" => Some(Engine::Interp),
            "replay" => Some(Engine::Replay),
            "auto" => Some(Engine::Auto),
            _ => None,
        }
    }

    /// Stable name (`interp` / `replay` / `auto`).
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Interp => "interp",
            Engine::Replay => "replay",
            Engine::Auto => "auto",
        }
    }
}

/// The counting oracle with a selectable [`Engine`] — the auto-select mode
/// is what plans, searches, the figure harness and the CLI use by default,
/// making the whole figure grid pay replay cost instead of interpretation
/// cost wherever the program allows it.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastCountingOracle {
    /// Backend selection policy.
    pub engine: Engine,
}

impl FastCountingOracle {
    /// An oracle pinned to `engine`.
    pub fn with_engine(engine: Engine) -> Self {
        FastCountingOracle { engine }
    }
}

impl Oracle for FastCountingOracle {
    fn name(&self) -> &'static str {
        match self.engine {
            Engine::Interp => "counting-interp",
            Engine::Replay => "counting-replay",
            Engine::Auto => "counting-auto",
        }
    }

    fn measure(&self, program: &Program, cfg: &RunConfig) -> Result<RunRecord, OracleError> {
        let machine = cfg.machine();
        let rep = match self.engine {
            Engine::Interp => return CountingOracle.measure(program, cfg),
            Engine::Replay => replay::counts(program, &machine).map_err(|e| match e {
                ReplayError::Config(c) => {
                    OracleError::Sim(SimError::Machine(sa_machine::MachineError::BadConfig(c)))
                }
                e @ ReplayError::Unsupported { .. } => OracleError::Unsupported(e.to_string()),
            })?,
            Engine::Auto => replay::counts_or_simulate(program, &machine)?,
        };
        Ok(record_of(cfg, &rep, None))
    }
}

/// The zero-execution oracle: `sa-lint`'s closed-form communication
/// estimator ([`fn@sa_lint::estimate`]). Produces the same per-PE counters
/// and message totals as [`CountingOracle`] at `cache_elems = 0` without
/// touching a single simulated cell — sweep cost becomes proportional to
/// the number of *page runs*, not accesses. Grid points it cannot model
/// (caching enabled, indirect indexing) fail soft as
/// [`OracleError::Unsupported`]; hop/link metrics are reported as
/// unmodeled (`None`), like the thread runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticOracle;

impl Oracle for StaticOracle {
    fn name(&self) -> &'static str {
        "static-est"
    }

    fn measure(&self, program: &Program, cfg: &RunConfig) -> Result<RunRecord, OracleError> {
        let est = sa_lint::estimate(program, &cfg.machine()).map_err(|e| match e {
            sa_lint::EstimateError::Indirect { .. } | sa_lint::EstimateError::CacheUnsupported => {
                OracleError::Unsupported(e.to_string())
            }
            e => OracleError::Backend(e.to_string()),
        })?;
        let stats = &est.stats;
        Ok(RunRecord {
            cfg: cfg.clone(),
            remote_pct: stats.remote_read_pct(),
            cached_pct: stats.cached_read_pct(),
            writes: stats.writes(),
            local_reads: stats.local_reads(),
            cached_reads: stats.cached_reads(),
            remote_reads: stats.remote_reads(),
            total_reads: stats.total_reads(),
            messages: est.network_messages,
            hops: None,
            max_link_load: None,
            write_balance: write_balance_of(stats),
            cycles: None,
            speedup_bound: sa_lint::depgraph::speedup_bound(
                program,
                &sa_lint::LintConfig {
                    n_pes: cfg.n_pes,
                    page_size: cfg.page_size,
                    scheme: cfg.partition,
                },
            ),
        })
    }
}

/// The timing oracle: runs the counting simulation *and* the event-driven
/// timing replay of §9, so [`RunRecord::cycles`] is filled.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimingOracle {
    /// Cycle costs the replay charges per access kind.
    pub costs: AccessCosts,
}

impl TimingOracle {
    /// A timing oracle with explicit access costs.
    pub fn with_costs(costs: AccessCosts) -> Self {
        TimingOracle { costs }
    }
}

impl Oracle for TimingOracle {
    fn name(&self) -> &'static str {
        "timing-sim"
    }

    fn measure(&self, program: &Program, cfg: &RunConfig) -> Result<RunRecord, OracleError> {
        // One traced simulation serves both the access counters and the
        // timing replay; re-simulating for the trace would double the cost
        // of every timing sweep.
        let machine = cfg.machine().with_costs(self.costs);
        let rep = simulate_traced(program, &machine)?;
        let trace = rep.trace.as_ref().expect("simulate_traced always captures");
        let timing = estimate_timing_from_trace(program, trace, machine.costs)?;
        Ok(record_of(
            cfg,
            &CountReport::from_sim(&rep),
            Some(timing.total_cycles),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::{InitPattern, ProgramBuilder};

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new("tiny");
        let y = b.input("Y", &[128], InitPattern::Wavy);
        let x = b.output("X", &[128]);
        b.nest("s", &[("k", 0, 127)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) + 1.0);
        });
        b.finish()
    }

    #[test]
    fn counting_oracle_matches_direct_simulation() {
        let p = tiny();
        let cfg = RunConfig {
            n_pes: 4,
            ..RunConfig::default()
        };
        let rec = CountingOracle.measure(&p, &cfg).unwrap();
        let rep = simulate(&p, &cfg.machine()).unwrap();
        assert_eq!(rec.remote_reads, rep.stats.remote_reads());
        assert_eq!(rec.total_reads, rep.stats.total_reads());
        assert_eq!(rec.messages, rep.network_messages);
        assert_eq!(rec.remote_pct, rep.remote_pct());
        assert_eq!(rec.cycles, None);
        assert_eq!(CountingOracle.name(), "counting-sim");
    }

    #[test]
    fn timing_oracle_fills_cycles() {
        let p = tiny();
        let rec = TimingOracle::default()
            .measure(&p, &RunConfig::default())
            .unwrap();
        assert!(rec.cycles.is_some_and(|c| c > 0));
    }

    #[test]
    fn oracles_are_object_safe() {
        let oracles: Vec<Box<dyn Oracle>> = vec![
            Box::new(CountingOracle),
            Box::new(TimingOracle::default()),
            Box::new(FastCountingOracle::default()),
        ];
        let p = tiny();
        for o in &oracles {
            assert!(o.measure(&p, &RunConfig::default()).is_ok());
        }
    }

    #[test]
    fn fast_oracle_engines_agree_with_the_interpreter() {
        let p = tiny();
        let cfg = RunConfig {
            n_pes: 4,
            ..RunConfig::default()
        };
        let interp = CountingOracle.measure(&p, &cfg).unwrap();
        for engine in [Engine::Interp, Engine::Replay, Engine::Auto] {
            let fast = FastCountingOracle::with_engine(engine)
                .measure(&p, &cfg)
                .unwrap();
            assert_eq!(fast, interp, "engine {}", engine.name());
        }
        assert_eq!(FastCountingOracle::default().name(), "counting-auto");
        assert_eq!(
            FastCountingOracle::with_engine(Engine::Replay).name(),
            "counting-replay"
        );
    }

    #[test]
    fn engine_names_parse_round_trip() {
        for engine in [Engine::Interp, Engine::Replay, Engine::Auto] {
            assert_eq!(Engine::parse(engine.name()), Some(engine));
        }
        assert_eq!(Engine::parse("warp"), None);
        assert_eq!(Engine::default(), Engine::Auto);
    }

    #[test]
    fn strict_replay_engine_rejects_unsupported_configs() {
        let p = tiny();
        let cfg = RunConfig {
            partial_pages: sa_machine::PartialPagePolicy::Refetch,
            ..RunConfig::default()
        };
        assert!(matches!(
            FastCountingOracle::with_engine(Engine::Replay).measure(&p, &cfg),
            Err(OracleError::Unsupported(_))
        ));
        // Auto measures the same point through the interpreter instead.
        let auto = FastCountingOracle::default().measure(&p, &cfg).unwrap();
        let interp = CountingOracle.measure(&p, &cfg).unwrap();
        assert_eq!(auto, interp);
    }

    #[test]
    fn static_oracle_matches_counting_without_cache() {
        let p = tiny();
        for n_pes in [1, 4, 8] {
            let cfg = RunConfig {
                n_pes,
                cache_elems: 0,
                ..RunConfig::default()
            };
            let st = StaticOracle.measure(&p, &cfg).unwrap();
            let dynamic = CountingOracle.measure(&p, &cfg).unwrap();
            assert_eq!(st.writes, dynamic.writes);
            assert_eq!(st.local_reads, dynamic.local_reads);
            assert_eq!(st.remote_reads, dynamic.remote_reads);
            assert_eq!(st.total_reads, dynamic.total_reads);
            assert_eq!(st.messages, dynamic.messages);
            assert_eq!(st.remote_pct, dynamic.remote_pct);
            assert_eq!(st.write_balance, dynamic.write_balance);
            assert_eq!(st.hops, None);
            assert_eq!(st.cycles, None);
        }
        assert_eq!(StaticOracle.name(), "static-est");
    }

    #[test]
    fn static_oracle_rejects_cache_as_unsupported() {
        let p = tiny();
        let cfg = RunConfig {
            cache_elems: 256,
            ..RunConfig::default()
        };
        assert!(matches!(
            StaticOracle.measure(&p, &cfg),
            Err(OracleError::Unsupported(_))
        ));
    }

    #[test]
    fn write_balance_reflects_compute_distribution() {
        let p = tiny(); // 128 elements
                        // Evenly spread across 4 PEs at ps 32: Jain index 1.
        let even = CountingOracle
            .measure(
                &p,
                &RunConfig {
                    n_pes: 4,
                    ..RunConfig::default()
                },
            )
            .unwrap();
        assert!((even.write_balance - 1.0).abs() < 1e-12);
        // Page size 256 puts the whole array on one of 4 PEs: Jain 1/4.
        let degenerate = CountingOracle
            .measure(
                &p,
                &RunConfig {
                    n_pes: 4,
                    page_size: 256,
                    ..RunConfig::default()
                },
            )
            .unwrap();
        assert!((degenerate.write_balance - 0.25).abs() < 1e-12);
    }
}
