//! Pluggable evaluation oracles: *how* a grid point gets measured.
//!
//! An [`Oracle`] turns one `(program, RunConfig)` pair into a
//! [`RunRecord`]. The trait is object-safe so plans, searches and CLIs can
//! hold a `&dyn Oracle` and swap backends without re-monomorphizing the
//! sweep machinery:
//!
//! * [`CountingOracle`] — the default: the paper's access-counting
//!   simulator ([`crate::exec::simulate`]).
//! * [`TimingOracle`] — the §9 execution-time extension
//!   ([`crate::deferred::estimate_timing`]); fills [`RunRecord::cycles`].
//! * `sa-runtime`'s thread-backed oracle — lives in that crate (it depends
//!   on this one) and implements [`Oracle`] over real worker threads,
//!   reporting [`OracleError::Unsupported`] for knobs the runtime lacks.

use sa_ir::Program;
use sa_machine::AccessCosts;

use crate::deferred::{estimate_timing_from_trace, TimingError};
use crate::exec::{simulate, simulate_traced, SimError};
use crate::plan::RunConfig;

/// One measured grid point: the config that produced it plus every counter
/// the report layer might select.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The grid point that was measured.
    pub cfg: RunConfig,
    /// The paper's headline metric: % of reads remote.
    pub remote_pct: f64,
    /// % of reads served by the cache.
    pub cached_pct: f64,
    /// Absolute writes.
    pub writes: u64,
    /// Absolute local reads.
    pub local_reads: u64,
    /// Absolute cached reads.
    pub cached_reads: u64,
    /// Absolute remote reads.
    pub remote_reads: u64,
    /// Absolute total reads.
    pub total_reads: u64,
    /// Network messages (page fetches ×2 + protocol traffic).
    pub messages: u64,
    /// Total hop traversals (0 for backends without a network model).
    pub hops: u64,
    /// Heaviest directed-link traffic (0 without a network model).
    pub max_link_load: u64,
    /// Estimated execution cycles — only timing-capable oracles fill this.
    pub cycles: Option<u64>,
}

/// Why one grid point failed to measure.
#[derive(Debug)]
pub enum OracleError {
    /// The counting simulation failed.
    Sim(SimError),
    /// The timing replay failed.
    Timing(TimingError),
    /// The backend cannot honor a knob of the requested config (e.g. the
    /// thread runtime has no network model).
    Unsupported(String),
    /// The backend failed for its own reasons (e.g. a worker panicked).
    Backend(String),
}

impl core::fmt::Display for OracleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OracleError::Sim(e) => write!(f, "simulation failed: {e}"),
            OracleError::Timing(e) => write!(f, "timing failed: {e}"),
            OracleError::Unsupported(m) => write!(f, "unsupported config: {m}"),
            OracleError::Backend(m) => write!(f, "oracle backend failed: {m}"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<SimError> for OracleError {
    fn from(e: SimError) -> Self {
        OracleError::Sim(e)
    }
}

impl From<TimingError> for OracleError {
    fn from(e: TimingError) -> Self {
        OracleError::Timing(e)
    }
}

/// An evaluation backend for experiment plans. Object-safe: plans and
/// searches take `&dyn Oracle`.
///
/// Implementations must be deterministic for a given `(program, cfg)` pair
/// — equivalence tests between legacy drivers and plan-built grids rely on
/// it — and `Sync`, because grid points are measured concurrently.
pub trait Oracle: Sync {
    /// Short backend name for reports and CLI output.
    fn name(&self) -> &'static str;

    /// Measure one grid point.
    fn measure(&self, program: &Program, cfg: &RunConfig) -> Result<RunRecord, OracleError>;
}

/// The default oracle: the paper's access-counting simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingOracle;

impl Oracle for CountingOracle {
    fn name(&self) -> &'static str {
        "counting-sim"
    }

    fn measure(&self, program: &Program, cfg: &RunConfig) -> Result<RunRecord, OracleError> {
        let rep = simulate(program, &cfg.machine())?;
        Ok(RunRecord {
            cfg: cfg.clone(),
            remote_pct: rep.remote_pct(),
            cached_pct: rep.stats.cached_read_pct(),
            writes: rep.stats.writes(),
            local_reads: rep.stats.local_reads(),
            cached_reads: rep.stats.cached_reads(),
            remote_reads: rep.stats.remote_reads(),
            total_reads: rep.stats.total_reads(),
            messages: rep.network_messages,
            hops: rep.network_hops,
            max_link_load: rep.max_link_load,
            cycles: None,
        })
    }
}

/// The timing oracle: runs the counting simulation *and* the event-driven
/// timing replay of §9, so [`RunRecord::cycles`] is filled.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimingOracle {
    /// Cycle costs the replay charges per access kind.
    pub costs: AccessCosts,
}

impl TimingOracle {
    /// A timing oracle with explicit access costs.
    pub fn with_costs(costs: AccessCosts) -> Self {
        TimingOracle { costs }
    }
}

impl Oracle for TimingOracle {
    fn name(&self) -> &'static str {
        "timing-sim"
    }

    fn measure(&self, program: &Program, cfg: &RunConfig) -> Result<RunRecord, OracleError> {
        // One traced simulation serves both the access counters and the
        // timing replay; re-simulating for the trace would double the cost
        // of every timing sweep.
        let machine = cfg.machine().with_costs(self.costs);
        let rep = simulate_traced(program, &machine)?;
        let trace = rep.trace.as_ref().expect("simulate_traced always captures");
        let timing = estimate_timing_from_trace(program, trace, machine.costs)?;
        Ok(RunRecord {
            cfg: cfg.clone(),
            remote_pct: rep.remote_pct(),
            cached_pct: rep.stats.cached_read_pct(),
            writes: rep.stats.writes(),
            local_reads: rep.stats.local_reads(),
            cached_reads: rep.stats.cached_reads(),
            remote_reads: rep.stats.remote_reads(),
            total_reads: rep.stats.total_reads(),
            messages: rep.network_messages,
            hops: rep.network_hops,
            max_link_load: rep.max_link_load,
            cycles: Some(timing.total_cycles),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::{InitPattern, ProgramBuilder};

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new("tiny");
        let y = b.input("Y", &[128], InitPattern::Wavy);
        let x = b.output("X", &[128]);
        b.nest("s", &[("k", 0, 127)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) + 1.0);
        });
        b.finish()
    }

    #[test]
    fn counting_oracle_matches_direct_simulation() {
        let p = tiny();
        let cfg = RunConfig {
            n_pes: 4,
            ..RunConfig::default()
        };
        let rec = CountingOracle.measure(&p, &cfg).unwrap();
        let rep = simulate(&p, &cfg.machine()).unwrap();
        assert_eq!(rec.remote_reads, rep.stats.remote_reads());
        assert_eq!(rec.total_reads, rep.stats.total_reads());
        assert_eq!(rec.messages, rep.network_messages);
        assert_eq!(rec.remote_pct, rep.remote_pct());
        assert_eq!(rec.cycles, None);
        assert_eq!(CountingOracle.name(), "counting-sim");
    }

    #[test]
    fn timing_oracle_fills_cycles() {
        let p = tiny();
        let rec = TimingOracle::default()
            .measure(&p, &RunConfig::default())
            .unwrap();
        assert!(rec.cycles.is_some_and(|c| c > 0));
    }

    #[test]
    fn oracles_are_object_safe() {
        let oracles: Vec<Box<dyn Oracle>> =
            vec![Box::new(CountingOracle), Box::new(TimingOracle::default())];
        let p = tiny();
        for o in &oracles {
            assert!(o.measure(&p, &RunConfig::default()).is_ok());
        }
    }
}
