//! Scoped-thread fan-out with deterministic result ordering.
//!
//! The experiment sweeps behind every figure run many independent
//! simulations — one per `(n_pes, page_size, cached)` grid point — whose
//! costs vary by orders of magnitude (a 64-PE run of K18 dwarfs a 1-PE run
//! of K12). [`par_map`] fans such a work list out across scoped threads
//! with an atomic work-stealing cursor, so fast points don't wait behind
//! slow ones, while the collected results keep **exactly the input order**:
//! callers observe the same `Vec` the sequential loop produced, just
//! sooner. On error the item with the smallest input index wins, matching
//! the early-exit of a sequential `?` loop.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for `n_items` independent tasks:
/// available hardware parallelism, capped by the item count.
pub fn default_workers(n_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(n_items).max(1)
}

/// Apply `f` to every item on up to [`default_workers`] scoped threads.
///
/// Results come back in input order; the first (lowest-index) error is
/// returned if any item fails. Panics in `f` propagate to the caller.
pub fn par_map<T, U, E, F>(items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    par_map_workers(default_workers(items.len()), items, f)
}

/// [`par_map`] with an explicit worker count (`workers <= 1` runs inline,
/// which is also the deterministic reference the tests compare against).
pub fn par_map_workers<T, U, E, F>(workers: usize, items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let chunks: Vec<Vec<(usize, Result<U, E>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers.min(items.len()))
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });

    let mut slots: Vec<Option<Result<U, E>>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in chunks.into_iter().flatten() {
        slots[i] = Some(r);
    }
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        out.push(slot.expect("work-stealing cursor visits every index exactly once")?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let got: Vec<usize> = par_map(&items, |&i| Ok::<_, ()>(i * 3)).unwrap();
        let want: Vec<usize> = items.iter().map(|&i| i * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn matches_sequential_reference() {
        let items: Vec<u64> = (0..100).collect();
        let seq = par_map_workers(1, &items, |&i| Ok::<_, ()>(i * i)).unwrap();
        let par = par_map_workers(8, &items, |&i| Ok::<_, ()>(i * i)).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn lowest_index_error_wins() {
        let items: Vec<usize> = (0..64).collect();
        let r = par_map(&items, |&i| if i % 7 == 3 { Err(i) } else { Ok(i) });
        assert_eq!(r, Err(3));
    }

    #[test]
    fn uses_multiple_threads_when_available() {
        if default_workers(64) < 2 {
            return; // single-core machine: nothing to assert
        }
        let seen = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..64).collect();
        par_map(&items, |_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // Give other workers a chance to claim an index.
            std::thread::sleep(std::time::Duration::from_millis(1));
            Ok::<_, ()>(())
        })
        .unwrap();
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected the grid to fan out across threads"
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map(&[] as &[u8], |_| Ok::<u8, ()>(0)).unwrap(), vec![]);
        assert_eq!(par_map(&[9u8], |&x| Ok::<u8, ()>(x)).unwrap(), vec![9]);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..16).collect();
        let r = std::panic::catch_unwind(|| {
            let _ = par_map(&items, |&i| {
                if i == 5 {
                    panic!("boom");
                }
                Ok::<_, ()>(i)
            });
        });
        assert!(r.is_err());
    }
}
