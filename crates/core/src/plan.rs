//! Composable experiment plans: typed sweep axes crossed into a lazily
//! enumerated grid of [`RunConfig`]s.
//!
//! Every figure in the paper is an instance of one shape — "vary machine
//! or partition parameters, count remote reads" — and this module is that
//! shape, reified. An [`ExperimentPlan`] is an ordered list of [`Axis`]
//! values; their cross product is a grid enumerated in mixed-radix order
//! (first axis outermost / slowest-varying, matching a nest of sequential
//! `for` loops in axis order). Each grid point is a [`RunConfig`], every
//! field of which defaults to the paper's reference machine (16 PEs, page
//! size 32, 256-element LRU cache, modulo placement, ideal network) unless
//! an axis varies it or [`ExperimentPlan::base`] overrides it.
//!
//! Evaluation is delegated to an [`crate::oracle::Oracle`] (the counting
//! simulator by default) and fanned out across threads by
//! [`crate::parallel::par_map`]; results come back as a
//! [`crate::results::ResultSet`] whose group-by/pivot helpers select
//! series by predicate instead of relying on enumeration order.

use sa_ir::Program;
use sa_machine::{
    CachePolicy, ConfigError, MachineConfig, NetworkTopology, PartialPagePolicy, PartitionScheme,
};

use crate::oracle::{Oracle, OracleError};
use crate::parallel::par_map;
use crate::results::ResultSet;

/// One typed sweep axis: the values a single machine/partition parameter
/// takes across the grid.
#[derive(Debug, Clone, PartialEq)]
pub enum Axis {
    /// PE counts (simulation parameter 1, §6).
    Pes(Vec<usize>),
    /// Page sizes in elements (simulation parameter 2, §6).
    PageSize(Vec<usize>),
    /// Cache sizes in elements (`0` disables caching — the "No Cache"
    /// series of Figures 1–4; `256` is the paper's fixed size).
    Cache(Vec<usize>),
    /// Cache replacement policies (§4 chose LRU).
    CachePolicy(Vec<CachePolicy>),
    /// Page placement schemes (§2 modulo vs the §9 division scheme).
    Partition(Vec<PartitionScheme>),
    /// Partial-page semantics (§4 ignores; §8 acknowledges refetching).
    PartialPage(Vec<PartialPagePolicy>),
    /// Interconnect models for the message/hop accounting of §9.
    Network(Vec<NetworkTopology>),
    /// Kernel codes (e.g. `"K12"`), resolved to programs at run time by
    /// [`ExperimentPlan::run_kernels`].
    Kernel(Vec<String>),
}

impl Axis {
    /// Stable name used in error messages and duplicate detection.
    pub fn name(&self) -> &'static str {
        match self {
            Axis::Pes(_) => "pes",
            Axis::PageSize(_) => "page_size",
            Axis::Cache(_) => "cache",
            Axis::CachePolicy(_) => "cache_policy",
            Axis::Partition(_) => "partition",
            Axis::PartialPage(_) => "partial_page",
            Axis::Network(_) => "network",
            Axis::Kernel(_) => "kernel",
        }
    }

    /// Number of values on this axis.
    pub fn len(&self) -> usize {
        match self {
            Axis::Pes(v) => v.len(),
            Axis::PageSize(v) => v.len(),
            Axis::Cache(v) => v.len(),
            Axis::CachePolicy(v) => v.len(),
            Axis::Partition(v) => v.len(),
            Axis::PartialPage(v) => v.len(),
            Axis::Network(v) => v.len(),
            Axis::Kernel(v) => v.len(),
        }
    }

    /// True if the axis holds no values (which [`ExperimentPlan::validate`]
    /// rejects as [`ConfigError::EmptyAxis`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write this axis's `i`-th value into `cfg`.
    fn apply(&self, i: usize, cfg: &mut RunConfig) {
        match self {
            Axis::Pes(v) => cfg.n_pes = v[i],
            Axis::PageSize(v) => cfg.page_size = v[i],
            Axis::Cache(v) => cfg.cache_elems = v[i],
            Axis::CachePolicy(v) => cfg.cache_policy = v[i],
            Axis::Partition(v) => cfg.partition = v[i],
            Axis::PartialPage(v) => cfg.partial_pages = v[i],
            Axis::Network(v) => cfg.network = v[i],
            Axis::Kernel(v) => cfg.kernel = Some(v[i].clone()),
        }
    }
}

/// One fully specified grid point: the machine parameters of a single
/// measurement, plus (when a [`Axis::Kernel`] axis is present) the kernel
/// it measures.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Kernel code this point measures; `None` when the plan is run
    /// against a single program.
    pub kernel: Option<String>,
    /// PE count.
    pub n_pes: usize,
    /// Page size in elements.
    pub page_size: usize,
    /// Cache size in elements (0 disables caching).
    pub cache_elems: usize,
    /// Replacement policy.
    pub cache_policy: CachePolicy,
    /// Page placement scheme.
    pub partition: PartitionScheme,
    /// Partial-page semantics.
    pub partial_pages: PartialPagePolicy,
    /// Interconnect model.
    pub network: NetworkTopology,
}

impl Default for RunConfig {
    /// The paper's reference configuration: 16 PEs, page size 32,
    /// 256-element LRU cache, modulo placement, ideal network.
    fn default() -> Self {
        let m = MachineConfig::new(16, 32);
        RunConfig {
            kernel: None,
            n_pes: m.n_pes,
            page_size: m.page_size,
            cache_elems: m.cache_elems,
            cache_policy: m.cache_policy,
            partition: m.partition,
            partial_pages: m.partial_pages,
            network: m.network,
        }
    }
}

impl RunConfig {
    /// The machine this grid point simulates.
    pub fn machine(&self) -> MachineConfig {
        MachineConfig::new(self.n_pes, self.page_size)
            .with_cache_elems(self.cache_elems)
            .with_cache_policy(self.cache_policy)
            .with_partition(self.partition)
            .with_partial_pages(self.partial_pages)
            .with_network(self.network)
    }

    /// Legacy sweep flag: was a cache configured at all?
    pub fn cached(&self) -> bool {
        self.cache_elems > 0
    }
}

/// A composable sweep: typed axes crossed into a grid of [`RunConfig`]s.
///
/// ```
/// use sa_core::plan::{Axis, ExperimentPlan};
/// let plan = ExperimentPlan::new()
///     .page_sizes(&[32, 64])
///     .cache_flags(&[true, false])
///     .pes(&[1, 2, 4, 8]);
/// assert_eq!(plan.len(), 2 * 2 * 4);
/// // First axis outermost: page size varies slowest.
/// let first = plan.config_at(0);
/// assert_eq!((first.page_size, first.cached(), first.n_pes), (32, true, 1));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExperimentPlan {
    axes: Vec<Axis>,
    base: RunConfig,
}

impl ExperimentPlan {
    /// An empty plan over the paper's reference configuration. With no
    /// axes it enumerates exactly one point: the base config itself.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the defaults every grid point starts from (fields no axis
    /// varies keep the base's values).
    pub fn base(mut self, base: RunConfig) -> Self {
        self.base = base;
        self
    }

    /// Append an axis. The first axis added is outermost (slowest-varying)
    /// in enumeration order, exactly like the outermost `for` loop of the
    /// sequential sweep it replaces.
    pub fn axis(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Shorthand for [`Axis::Pes`].
    pub fn pes(self, v: &[usize]) -> Self {
        self.axis(Axis::Pes(v.to_vec()))
    }

    /// Shorthand for [`Axis::PageSize`].
    pub fn page_sizes(self, v: &[usize]) -> Self {
        self.axis(Axis::PageSize(v.to_vec()))
    }

    /// Shorthand for [`Axis::Cache`] (sizes in elements).
    pub fn cache_elems(self, v: &[usize]) -> Self {
        self.axis(Axis::Cache(v.to_vec()))
    }

    /// Shorthand for the legacy cache on/off axis: `true` is the paper's
    /// 256-element cache, `false` disables caching.
    pub fn cache_flags(self, v: &[bool]) -> Self {
        self.axis(Axis::Cache(
            v.iter().map(|&on| if on { 256 } else { 0 }).collect(),
        ))
    }

    /// Shorthand for [`Axis::CachePolicy`].
    pub fn cache_policies(self, v: &[CachePolicy]) -> Self {
        self.axis(Axis::CachePolicy(v.to_vec()))
    }

    /// Shorthand for [`Axis::Partition`].
    pub fn partitions(self, v: &[PartitionScheme]) -> Self {
        self.axis(Axis::Partition(v.to_vec()))
    }

    /// Shorthand for [`Axis::PartialPage`].
    pub fn partial_pages(self, v: &[PartialPagePolicy]) -> Self {
        self.axis(Axis::PartialPage(v.to_vec()))
    }

    /// Shorthand for [`Axis::Network`].
    pub fn networks(self, v: &[NetworkTopology]) -> Self {
        self.axis(Axis::Network(v.to_vec()))
    }

    /// Shorthand for [`Axis::Kernel`].
    pub fn kernels<S: AsRef<str>>(self, v: &[S]) -> Self {
        self.axis(Axis::Kernel(
            v.iter().map(|s| s.as_ref().to_string()).collect(),
        ))
    }

    /// The axes in insertion (enumeration) order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Reject degenerate plans: an empty axis makes the cross product
    /// empty ([`ConfigError::EmptyAxis`]); a repeated axis kind would
    /// double-count a parameter ([`ConfigError::DuplicateAxis`]).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let mut seen: Vec<&'static str> = Vec::with_capacity(self.axes.len());
        for axis in &self.axes {
            if axis.is_empty() {
                return Err(ConfigError::EmptyAxis { axis: axis.name() });
            }
            if seen.contains(&axis.name()) {
                return Err(ConfigError::DuplicateAxis { axis: axis.name() });
            }
            seen.push(axis.name());
        }
        Ok(())
    }

    /// Number of grid points (the product of the axis lengths; 1 for an
    /// axis-free plan, 0 if any axis is empty).
    pub fn len(&self) -> usize {
        self.axes.iter().map(Axis::len).product()
    }

    /// True if the grid has no points (some axis is empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The grid point at mixed-radix index `i` (first axis outermost).
    ///
    /// Panics if `i >= self.len()`; use [`ExperimentPlan::configs`] for
    /// bounds-checked enumeration.
    pub fn config_at(&self, i: usize) -> RunConfig {
        assert!(i < self.len(), "grid index {i} out of {}", self.len());
        let mut cfg = self.base.clone();
        let mut rem = i;
        // Decode right-to-left: the last axis varies fastest.
        for axis in self.axes.iter().rev() {
            axis.apply(rem % axis.len(), &mut cfg);
            rem /= axis.len();
        }
        cfg
    }

    /// Lazily enumerate the grid in deterministic mixed-radix order.
    pub fn configs(&self) -> impl Iterator<Item = RunConfig> + '_ {
        (0..self.len()).map(|i| self.config_at(i))
    }

    /// Evaluate every grid point of a plan without a [`Axis::Kernel`] axis
    /// against `program`, fanning out across threads. Results keep grid
    /// order; [`OracleError::Unsupported`] points are dropped (fail soft),
    /// any other failure wins by lowest index, like a sequential `?` loop.
    pub fn run(&self, program: &Program, oracle: &dyn Oracle) -> Result<ResultSet, PlanError> {
        self.run_with(oracle, |cfg| match &cfg.kernel {
            None => Ok(program),
            Some(k) => Err(PlanError::UnknownKernel(k.clone())),
        })
    }

    /// Evaluate a plan with a [`Axis::Kernel`] axis: each grid point's
    /// kernel code is looked up in `programs` (pairs of code → program;
    /// codes match case-insensitively). Points without a kernel code —
    /// possible only when the plan has no kernel axis — are an
    /// [`PlanError::UnknownKernel`] error.
    pub fn run_kernels(
        &self,
        programs: &[(&str, &Program)],
        oracle: &dyn Oracle,
    ) -> Result<ResultSet, PlanError> {
        self.run_with(oracle, |cfg| match &cfg.kernel {
            Some(code) => programs
                .iter()
                .find(|(c, _)| c.eq_ignore_ascii_case(code))
                .map(|(_, p)| *p)
                .ok_or_else(|| PlanError::UnknownKernel(code.clone())),
            None => Err(PlanError::UnknownKernel("<none>".to_string())),
        })
    }

    /// Shared runner: validate, enumerate, resolve each point's program,
    /// and measure the grid concurrently through the oracle.
    ///
    /// Grid points the oracle rejects with [`OracleError::Unsupported`]
    /// fail soft: they are dropped from the result set instead of
    /// aborting the sweep, so mixed grids (e.g. a thread-oracle sweep
    /// crossing a network or kernel axis where only some points are
    /// executable) still report every point the oracle can measure. Any
    /// other failure aborts, lowest grid index first.
    fn run_with<'p>(
        &self,
        oracle: &dyn Oracle,
        resolve: impl Fn(&RunConfig) -> Result<&'p Program, PlanError> + Sync,
    ) -> Result<ResultSet, PlanError> {
        self.validate()?;
        let grid: Vec<RunConfig> = self.configs().collect();
        let records = par_map(&grid, |cfg| {
            let program = resolve(cfg)?;
            match oracle.measure(program, cfg) {
                Ok(rec) => Ok(Some(rec)),
                Err(OracleError::Unsupported(_)) => Ok(None),
                Err(e) => Err(PlanError::Oracle(e)),
            }
        })?;
        Ok(ResultSet::new(records.into_iter().flatten().collect()))
    }
}

/// Why a plan could not be evaluated.
#[derive(Debug)]
pub enum PlanError {
    /// The plan itself is degenerate (empty or duplicate axis).
    Config(ConfigError),
    /// A grid point failed to measure.
    Oracle(OracleError),
    /// A kernel code had no program to resolve to (or a kernel axis was
    /// run without [`ExperimentPlan::run_kernels`]).
    UnknownKernel(String),
}

impl core::fmt::Display for PlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlanError::Config(e) => write!(f, "invalid plan: {e}"),
            PlanError::Oracle(e) => write!(f, "measurement failed: {e}"),
            PlanError::UnknownKernel(k) => write!(f, "no program for kernel `{k}`"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<ConfigError> for PlanError {
    fn from(e: ConfigError) -> Self {
        PlanError::Config(e)
    }
}

impl From<OracleError> for PlanError {
    fn from(e: OracleError) -> Self {
        PlanError::Oracle(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_plan() -> ExperimentPlan {
        ExperimentPlan::new()
            .page_sizes(&[32, 64])
            .cache_flags(&[true, false])
            .pes(&[1, 2, 4])
    }

    #[test]
    fn grid_size_is_axis_product() {
        assert_eq!(demo_plan().len(), 12);
        assert_eq!(ExperimentPlan::new().len(), 1);
        assert!(ExperimentPlan::new().pes(&[]).is_empty());
    }

    #[test]
    fn enumeration_matches_nested_loops() {
        // First axis outermost, exactly like the sequential triple loop.
        let got: Vec<(usize, bool, usize)> = demo_plan()
            .configs()
            .map(|c| (c.page_size, c.cached(), c.n_pes))
            .collect();
        let mut want = Vec::new();
        for ps in [32, 64] {
            for cached in [true, false] {
                for n in [1, 2, 4] {
                    want.push((ps, cached, n));
                }
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn base_fills_unswept_fields() {
        let plan = ExperimentPlan::new()
            .base(RunConfig {
                n_pes: 8,
                cache_elems: 1024,
                ..RunConfig::default()
            })
            .page_sizes(&[16]);
        let cfg = plan.config_at(0);
        assert_eq!(cfg.n_pes, 8);
        assert_eq!(cfg.cache_elems, 1024);
        assert_eq!(cfg.page_size, 16);
    }

    #[test]
    fn validation_catches_empty_and_duplicate_axes() {
        assert_eq!(
            ExperimentPlan::new().pes(&[1]).page_sizes(&[]).validate(),
            Err(ConfigError::EmptyAxis { axis: "page_size" })
        );
        assert_eq!(
            ExperimentPlan::new().pes(&[1]).pes(&[2]).validate(),
            Err(ConfigError::DuplicateAxis { axis: "pes" })
        );
        assert_eq!(demo_plan().validate(), Ok(()));
    }

    #[test]
    fn unsupported_grid_points_fail_soft() {
        use crate::oracle::{CountingOracle, RunRecord};
        use sa_ir::index::iv;
        use sa_ir::{InitPattern, ProgramBuilder};

        // An oracle with a supported-config subset, like ThreadOracle's
        // LRU-only/Ideal-only matrix: here, anything but 2 PEs.
        struct Picky;
        impl Oracle for Picky {
            fn name(&self) -> &'static str {
                "picky"
            }
            fn measure(
                &self,
                program: &Program,
                cfg: &RunConfig,
            ) -> Result<RunRecord, OracleError> {
                if cfg.n_pes == 2 {
                    return Err(OracleError::Unsupported("2 PEs unsupported".into()));
                }
                CountingOracle.measure(program, cfg)
            }
        }

        let mut b = ProgramBuilder::new("tiny");
        let y = b.input("Y", &[128], InitPattern::Wavy);
        let x = b.output("X", &[128]);
        b.nest("s", &[("k", 0, 127)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) + 1.0);
        });
        let p = b.finish();

        // The 2-PE column drops out; the other grid points still report.
        let set = ExperimentPlan::new()
            .pes(&[1, 2, 4])
            .page_sizes(&[16, 32])
            .run(&p, &Picky)
            .expect("unsupported points must not abort the sweep");
        assert_eq!(set.len(), 4);
        assert!(set.records().iter().all(|r| r.cfg.n_pes != 2));
    }

    #[test]
    fn axis_permutation_preserves_the_config_set() {
        let a: Vec<RunConfig> = demo_plan().configs().collect();
        let b: Vec<RunConfig> = ExperimentPlan::new()
            .pes(&[1, 2, 4])
            .page_sizes(&[32, 64])
            .cache_flags(&[true, false])
            .configs()
            .collect();
        assert_eq!(a.len(), b.len());
        for cfg in &a {
            assert!(b.contains(cfg), "missing {cfg:?} after permutation");
        }
    }

    #[test]
    fn kernel_axis_tags_configs() {
        let plan = ExperimentPlan::new().kernels(&["K1", "K12"]).pes(&[2, 4]);
        let kernels: Vec<Option<String>> = plan.configs().map(|c| c.kernel).collect();
        assert_eq!(kernels[0].as_deref(), Some("K1"));
        assert_eq!(kernels[3].as_deref(), Some("K12"));
    }

    #[test]
    fn run_config_machine_carries_every_knob() {
        let cfg = RunConfig {
            n_pes: 4,
            page_size: 64,
            cache_elems: 512,
            cache_policy: CachePolicy::Fifo,
            partition: PartitionScheme::Block,
            partial_pages: PartialPagePolicy::Refetch,
            network: NetworkTopology::Hypercube,
            kernel: None,
        };
        let m = cfg.machine();
        assert_eq!(m.n_pes, 4);
        assert_eq!(m.page_size, 64);
        assert_eq!(m.cache_elems, 512);
        assert_eq!(m.cache_policy, CachePolicy::Fifo);
        assert_eq!(m.partition, PartitionScheme::Block);
        assert_eq!(m.partial_pages, PartialPagePolicy::Refetch);
        assert_eq!(m.network, NetworkTopology::Hypercube);
    }
}
