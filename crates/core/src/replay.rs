//! Compiled access-pattern replay: the counting fast path.
//!
//! [`crate::exec::simulate`] re-interprets the IR statement by statement for
//! every iteration — expression trees are walked, addresses are resolved
//! through `Vec`-allocating index paths, and every element is read from a
//! value store — even though the paper's figures need only the *counts* of
//! each access class. For the common case of the Livermore suite (affine
//! anchors, affine or statically-indirect subscripts) the page-ownership
//! pattern of a whole loop nest is decidable once, so this module lowers
//! each [`Phase::Loop`] into a per-PE arithmetic page-access model:
//! classify once per nest, then count local/cached/remote reads, page
//! fetches, messages, hops and link loads with a tight per-page loop
//! instead of per-iteration interpretation.
//!
//! # Soundness
//!
//! The counts produced here are **bit-identical** to [`simulate`]'s
//! (`tests/replay_vs_interp.rs` proves it differentially for the full suite
//! across the figure grid, plus proptest-generated random affine nests):
//!
//! * **Static placement** — owner-computes maps every statement instance to
//!   the PE owning its anchor element, a pure function of the iteration
//!   vector for affine anchors (and of statically-initialized index arrays
//!   for gathers). No value ever influences *where* an access happens.
//! * **Single assignment ⇒ order-independent counts** — a cached page can
//!   never be invalidated by a write, so each PE's cache state depends only
//!   on that PE's own access subsequence, whose relative order the global
//!   lexicographic order preserves. Replaying PE *p*'s subsequence alone
//!   (pages, not values) therefore reproduces *p*'s exact local / cached /
//!   remote classification, LRU/FIFO/Random evictions included.
//! * **Additive accounting** — network messages, hops and per-link loads
//!   are sums over fetch events, so per-PE shards merge
//!   ([`Network::merge`]) into exactly the totals of a sequential pass.
//!
//! The per-PE shards are independent, so they are fanned out across host
//! cores via [`par_map`] — a single 64-PE K18 run saturates the machine
//! (the ROADMAP's intra-simulation sharding item).
//!
//! # Fallback
//!
//! Nests this model cannot express fall back to the interpreter:
//!
//! * gathers through *dynamically produced* index arrays (the base array is
//!   written or re-initialized somewhere in the program), and
//! * [`PartialPagePolicy::Refetch`] configurations, whose refetch counts
//!   depend on the cross-PE interleaving of writes and reads.
//!
//! [`counts`] reports these as [`ReplayError::Unsupported`];
//! [`counts_or_simulate`] transparently falls back to [`simulate`], so a
//! mixed program still measures correctly through
//! [`crate::oracle::FastCountingOracle`]'s `auto` engine. In debug builds
//! the auto path additionally cross-checks replay against the interpreter
//! on small runs before trusting it (see [`counts_or_simulate`]).
//!
//! Replay assumes a *valid* program (one [`simulate`] would accept): it
//! performs no bounds, definedness or double-write checking, exactly
//! because those checks are what make interpretation slow.

use sa_ir::analysis::{anchor_ref, linear_address_form};
use sa_ir::index::IndexExpr;
use sa_ir::nest::{ArrayRef, LoopVar, Stmt};
use sa_ir::program::{ArrayInit, Phase};
use sa_ir::Program;
use sa_machine::host::run_reinit_protocol;
use sa_machine::{
    host_of, ArrayShape, CachePolicy, ConfigError, MachineConfig, Network, PageKey,
    PartialPagePolicy, PeCounters, Placement, Stats,
};

use crate::exec::{simulate, SimError, SimReport};
use crate::parallel::par_map;

/// Which engine produced a [`CountReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountEngine {
    /// The compiled per-PE access replay of this module.
    Replay,
    /// The statement-by-statement interpreter ([`simulate`]).
    Interp,
}

impl CountEngine {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CountEngine::Replay => "replay",
            CountEngine::Interp => "interp",
        }
    }
}

/// Access statistics of one run — [`SimReport`] minus values and traces
/// (which counting does not need and replay does not produce).
#[derive(Debug, Clone, PartialEq)]
pub struct CountReport {
    /// Which engine measured this run.
    pub engine: CountEngine,
    /// Machine-wide access statistics.
    pub stats: Stats,
    /// `(nest label, stats for that nest alone)`.
    pub per_nest: Vec<(String, Stats)>,
    /// Total network messages (page fetches ×2 + host protocol + reductions).
    pub network_messages: u64,
    /// Total hop traversals.
    pub network_hops: u64,
    /// Heaviest directed-link traffic (contention bottleneck).
    pub max_link_load: u64,
}

impl CountReport {
    /// The paper's *% of Reads Remote* (0 when no reads occurred).
    pub fn remote_pct(&self) -> f64 {
        self.stats.remote_read_pct()
    }

    /// Strip a full simulation report down to its counts.
    pub fn from_sim(rep: &SimReport) -> CountReport {
        CountReport {
            engine: CountEngine::Interp,
            stats: rep.stats.clone(),
            per_nest: rep.per_nest.clone(),
            network_messages: rep.network_messages,
            network_hops: rep.network_hops,
            max_link_load: rep.max_link_load,
        }
    }
}

/// Why a program could not be lowered to the replay model.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The machine configuration itself is invalid.
    Config(ConfigError),
    /// Some nest (or config knob) needs the interpreter.
    Unsupported {
        /// Label of the offending nest (`"<config>"` for config knobs).
        nest: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl core::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReplayError::Config(e) => write!(f, "bad machine config: {e}"),
            ReplayError::Unsupported { nest, reason } => {
                write!(f, "replay cannot lower `{nest}`: {reason}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

// ---------------------------------------------------------------------------
// Compiled form
// ---------------------------------------------------------------------------

/// Linear address function `coeffs · ivs + offset` (strides folded in).
#[derive(Debug, Clone)]
struct LinForm {
    coeffs: Vec<i64>,
    offset: i64,
}

impl LinForm {
    /// `(base, step)` of the address along the innermost loop for one outer
    /// block: `addr(t) = base + step · t` where `t` counts inner iterations.
    /// `inner` is `None` for zero-depth nests (single instance, step 0).
    fn block(&self, outer: &[i64], inner: Option<(usize, i64, i64)>) -> (i64, i64) {
        let mut base = self.offset;
        for (v, &iv) in outer.iter().enumerate() {
            base += self.coeffs.get(v).copied().unwrap_or(0) * iv;
        }
        match inner {
            None => (base, 0),
            Some((var, lo, step)) => {
                let c = self.coeffs.get(var).copied().unwrap_or(0);
                (base + c * lo, c * step)
            }
        }
    }
}

/// One dimension of a gather reference.
#[derive(Debug, Clone)]
enum DimIdx {
    /// Affine *index value* for this dimension.
    Affine(LinForm),
    /// `scale * base[pos] + offset` through a statically-initialized index
    /// array whose (truncated) values are in `Compiled::index_values`.
    Indirect {
        base: usize,
        pos: LinForm,
        scale: i64,
        offset: i64,
    },
}

/// A reference with at least one indirect dimension.
#[derive(Debug, Clone)]
struct GatherRef {
    array: usize,
    strides: Vec<i64>,
    dims: Vec<DimIdx>,
}

/// One charged read, in the interpreter's evaluation order.
#[derive(Debug, Clone)]
enum ReadAccess {
    /// All-affine reference: one element load.
    Affine { array: usize, form: LinForm },
    /// Gather: one index load per indirect dimension, then the element.
    Gather(GatherRef),
}

/// How a statement instance finds its executing PE.
#[derive(Debug, Clone)]
enum Anchor {
    /// Affine anchor: owner of `form(ivs)` in `array`.
    Affine { array: usize, form: LinForm },
    /// Indirect anchor, resolved (uncharged, like the interpreter's peek)
    /// through static index values.
    Gather(GatherRef),
    /// Anchorless reduction: dealt round-robin by the global counter;
    /// `slot` is this statement's index among the nest's anchorless ones.
    RoundRobin { slot: usize },
}

#[derive(Debug, Clone)]
struct CStmt {
    anchor: Anchor,
    /// RHS reads in evaluation order.
    reads: Vec<ReadAccess>,
    /// Index loads of an indirect *assign target*, charged after the RHS.
    target_loads: Vec<(usize, LinForm)>,
    /// Assigns perform one write per instance.
    writes: bool,
    /// Reduce statements participate in slot `reduce_slot` of the nest.
    reduce_slot: Option<usize>,
    /// Any gather among the reads — disables the bulk per-page-run path.
    has_gather: bool,
}

#[derive(Debug, Clone)]
struct CNest {
    label: String,
    loops: Vec<LoopVar>,
    body: Vec<CStmt>,
    /// Scalar id per reduce slot, in body order.
    reduce_scalars: Vec<usize>,
    /// Global anchorless-instance counter value at nest entry.
    rr_base: u64,
    /// Anchorless statements per iteration of this nest.
    rr_width: u64,
}

#[derive(Debug, Clone)]
enum CPhase {
    Loop(usize),
    Reinit(usize),
}

#[derive(Debug)]
struct Compiled {
    phases: Vec<CPhase>,
    nests: Vec<CNest>,
    /// Per-array geometry-aware placement (scheme × page size × PEs ×
    /// declared shape) — the single owner authority for the whole replay.
    placements: Vec<Placement>,
    /// Truncated (`as i64`) static values per gather base array; empty for
    /// arrays never used as a gather base.
    index_values: Vec<Vec<i64>>,
}

fn compile(program: &Program, cfg: &MachineConfig) -> Result<Compiled, ReplayError> {
    cfg.validate().map_err(ReplayError::Config)?;
    if cfg.partial_pages == PartialPagePolicy::Refetch {
        return Err(ReplayError::Unsupported {
            nest: "<config>".into(),
            reason: "partial-page refetch counts depend on cross-PE write/read interleaving".into(),
        });
    }

    // Arrays whose contents change during execution cannot back a gather.
    let mut dynamic = vec![false; program.arrays.len()];
    for phase in &program.phases {
        match phase {
            Phase::Reinit(id) => dynamic[id.0] = true,
            Phase::Loop(nest) => {
                for a in nest.written_arrays() {
                    dynamic[a.0] = true;
                }
            }
        }
    }

    let mut index_values: Vec<Vec<i64>> = vec![Vec::new(); program.arrays.len()];
    let mut phases = Vec::with_capacity(program.phases.len());
    let mut nests = Vec::new();
    let mut rr_base = 0u64;

    for phase in &program.phases {
        match phase {
            Phase::Reinit(id) => phases.push(CPhase::Reinit(id.0)),
            Phase::Loop(nest) => {
                let nvars = nest.loops.len();
                let mut body = Vec::with_capacity(nest.body.len());
                let mut reduce_scalars = Vec::new();
                let mut rr_width = 0u64;
                for stmt in &nest.body {
                    let anchor = match anchor_ref(stmt) {
                        None => {
                            rr_width += 1;
                            Anchor::RoundRobin {
                                slot: (rr_width - 1) as usize,
                            }
                        }
                        Some(aref) => match compile_ref(
                            program,
                            &nest.label,
                            aref,
                            nvars,
                            &dynamic,
                            &mut index_values,
                        )? {
                            ReadAccess::Affine { array, form } => Anchor::Affine { array, form },
                            ReadAccess::Gather(g) => Anchor::Gather(g),
                        },
                    };
                    let mut reads = Vec::new();
                    for aref in stmt.reads() {
                        reads.push(compile_ref(
                            program,
                            &nest.label,
                            aref,
                            nvars,
                            &dynamic,
                            &mut index_values,
                        )?);
                    }
                    let mut target_loads = Vec::new();
                    if let Stmt::Assign { target, .. } = stmt {
                        for ix in &target.indices {
                            if let IndexExpr::Indirect { base, pos, .. } = ix {
                                target_loads.push((
                                    base.0,
                                    LinForm {
                                        coeffs: pos.coeffs_padded(nvars),
                                        offset: pos.offset,
                                    },
                                ));
                            }
                        }
                    }
                    let reduce_slot = match stmt {
                        Stmt::Reduce { target, .. } => {
                            reduce_scalars.push(target.0);
                            Some(reduce_scalars.len() - 1)
                        }
                        Stmt::Assign { .. } => None,
                    };
                    let has_gather = reads.iter().any(|r| matches!(r, ReadAccess::Gather(_)));
                    body.push(CStmt {
                        anchor,
                        reads,
                        target_loads,
                        writes: matches!(stmt, Stmt::Assign { .. }),
                        reduce_slot,
                        has_gather,
                    });
                }
                let cn = CNest {
                    label: nest.label.clone(),
                    loops: nest.loops.clone(),
                    body,
                    reduce_scalars,
                    rr_base,
                    rr_width,
                };
                rr_base += rr_width * nest.iteration_count() as u64;
                phases.push(CPhase::Loop(nests.len()));
                nests.push(cn);
            }
        }
    }

    Ok(Compiled {
        phases,
        nests,
        placements: program
            .arrays
            .iter()
            .map(|d| {
                Placement::new(
                    cfg.partition,
                    cfg.page_size,
                    cfg.n_pes,
                    ArrayShape::from_dims(&d.dims),
                )
            })
            .collect(),
        index_values,
    })
}

fn compile_ref(
    program: &Program,
    nest_label: &str,
    aref: &ArrayRef,
    nvars: usize,
    dynamic: &[bool],
    index_values: &mut [Vec<i64>],
) -> Result<ReadAccess, ReplayError> {
    if let Some((coeffs, offset)) = linear_address_form(program, aref, nvars) {
        return Ok(ReadAccess::Affine {
            array: aref.array.0,
            form: LinForm { coeffs, offset },
        });
    }
    let decl = program.array(aref.array);
    let strides: Vec<i64> = decl.strides().iter().map(|&s| s as i64).collect();
    let mut dims = Vec::with_capacity(aref.indices.len());
    for ix in &aref.indices {
        match ix {
            IndexExpr::Affine(a) => dims.push(DimIdx::Affine(LinForm {
                coeffs: a.coeffs_padded(nvars),
                offset: a.offset,
            })),
            IndexExpr::Indirect {
                base,
                pos,
                scale,
                offset,
            } => {
                let base_decl = program.array(*base);
                if dynamic[base.0] {
                    return Err(ReplayError::Unsupported {
                        nest: nest_label.to_string(),
                        reason: format!(
                            "gather through dynamically produced index array `{}`",
                            base_decl.name
                        ),
                    });
                }
                let ArrayInit::Full(pattern) = base_decl.init else {
                    return Err(ReplayError::Unsupported {
                        nest: nest_label.to_string(),
                        reason: format!(
                            "index array `{}` is not fully statically initialized",
                            base_decl.name
                        ),
                    });
                };
                if index_values[base.0].is_empty() {
                    index_values[base.0] = pattern
                        .materialize(base_decl.len())
                        .into_iter()
                        .map(|v| v as i64)
                        .collect();
                }
                dims.push(DimIdx::Indirect {
                    base: base.0,
                    pos: LinForm {
                        coeffs: pos.coeffs_padded(nvars),
                        offset: pos.offset,
                    },
                    scale: *scale,
                    offset: *offset,
                });
            }
        }
    }
    Ok(ReadAccess::Gather(GatherRef {
        array: aref.array.0,
        strides,
        dims,
    }))
}

// ---------------------------------------------------------------------------
// Per-PE execution
// ---------------------------------------------------------------------------

/// Per-nest, per-PE access tallies.
#[derive(Debug, Clone, Copy, Default)]
struct NestTally {
    writes: u64,
    local: u64,
    cached: u64,
    remote: u64,
    page_fetches: u64,
    reduction_messages: u64,
}

/// One PE's contribution to the run.
#[derive(Debug)]
struct Shard {
    nest_tallies: Vec<NestTally>,
    net: Network,
}

/// A drop-in replacement for [`PageCache`] with identical observable
/// semantics under `PartialPagePolicy::Ignore`, backed by a linear-scan
/// vector instead of a `HashMap` — page capacities are small (the paper's
/// 256-element cache holds 8 pages), so a scan beats hashing by ~10×, and
/// cache probes are the replay engine's hottest non-arithmetic operation.
///
/// Exact-equivalence notes (differential tests enforce these):
/// * `tick` advances once per probe and once per insert, like
///   `PageCache`; only the *relative order* of stamps is observable (via
///   eviction choice), and both implementations assign identical orders.
/// * LRU refreshes the stamp on hit; FIFO/Random do not.
/// * LRU/FIFO evict the minimum stamp (stamps are unique).
/// * Random advances the same xorshift64* state per eviction and picks
///   the same victim over the ascending key list.
#[derive(Debug, Clone)]
struct ReplayCache {
    capacity: usize,
    policy: CachePolicy,
    entries: Vec<(PageKey, u64)>,
    tick: u64,
    rng: u64,
}

impl ReplayCache {
    fn new(capacity_pages: usize, policy: CachePolicy) -> Self {
        let rng = match policy {
            CachePolicy::Random { seed } => seed | 1,
            _ => 1,
        };
        ReplayCache {
            capacity: capacity_pages,
            policy,
            entries: Vec::with_capacity(capacity_pages),
            tick: 0,
            rng,
        }
    }

    /// Probe for `key`; true on hit (LRU refreshes recency).
    #[inline]
    fn probe(&mut self, key: PageKey) -> bool {
        self.tick += 1;
        let lru = matches!(self.policy, CachePolicy::Lru);
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some(e) => {
                if lru {
                    e.1 = self.tick;
                }
                true
            }
            None => false,
        }
    }

    #[inline]
    fn contains(&self, key: PageKey) -> bool {
        self.entries.iter().any(|(k, _)| *k == key)
    }

    fn insert(&mut self, key: PageKey) {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = self.tick;
            return;
        }
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity {
            self.evict_one();
        }
        self.entries.push((key, self.tick));
    }

    fn evict_one(&mut self) {
        let victim = match self.policy {
            CachePolicy::Lru | CachePolicy::Fifo => self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i),
            CachePolicy::Random { .. } => {
                // xorshift64* over the *sorted* key list — bit-for-bit the
                // victim `PageCache::evict_one` picks.
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                let n = self.entries.len() as u64;
                let pick = (self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D) % n) as usize;
                let mut keys: Vec<PageKey> = self.entries.iter().map(|(k, _)| *k).collect();
                keys.sort_unstable();
                let victim_key = keys[pick];
                self.entries.iter().position(|(k, _)| *k == victim_key)
            }
        };
        if let Some(i) = victim {
            self.entries.swap_remove(i);
        }
    }

    fn invalidate_array(&mut self, array: usize) {
        self.entries.retain(|(k, _)| k.array != array);
    }
}

/// One non-local page run of one affine read: iterations `[t0, t1)` all
/// touch `page` of `array`, owned by `owner`.
#[derive(Debug, Clone, Copy)]
struct ProbeRun {
    t0: usize,
    t1: usize,
    array: usize,
    page: usize,
    owner: usize,
}

/// Floor division for a positive divisor.
fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    let q = a / b;
    if a % b != 0 && a < 0 {
        q - 1
    } else {
        q
    }
}

/// Ceiling division for a positive divisor.
fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    let q = a / b;
    if a % b != 0 && a > 0 {
        q + 1
    } else {
        q
    }
}

/// Per-block address forms of one statement, aligned with its `CStmt`.
struct StmtForms {
    /// Per-read forms: one `(base, step)` per affine read, one per gather
    /// dimension for gather reads.
    reads: Vec<Vec<(i64, i64)>>,
    /// Forms of the indirect-target index loads.
    target_loads: Vec<(i64, i64)>,
    /// Owned inner iterations, as disjoint ascending `(start, end)` ranges.
    segs: Vec<(usize, usize)>,
}

struct Worker<'a> {
    cp: &'a Compiled,
    pe: usize,
    n_pes: usize,
    ps: usize,
    cache_on: bool,
    lru: bool,
    cache: ReplayCache,
    net: Network,
    gens: Vec<u32>,
    cur: NestTally,
    participation: Vec<bool>,
    // Scratch buffers reused across the (very many) bulk windows.
    scratch_probes: Vec<ProbeRun>,
    scratch_cuts: Vec<usize>,
    scratch_runs: Vec<ProbeRun>,
}

impl<'a> Worker<'a> {
    fn new(cp: &'a Compiled, cfg: &MachineConfig, pe: usize) -> Self {
        Worker {
            cp,
            pe,
            n_pes: cfg.n_pes,
            ps: cfg.page_size,
            cache_on: cfg.cache_enabled(),
            lru: cfg.cache_policy == sa_machine::CachePolicy::Lru,
            cache: ReplayCache::new(cfg.cache_pages(), cfg.cache_policy),
            net: Network::new(cfg.network, cfg.n_pes),
            gens: vec![0; cp.placements.len()],
            cur: NestTally::default(),
            participation: Vec::new(),
            scratch_probes: Vec::new(),
            scratch_cuts: Vec::new(),
            scratch_runs: Vec::new(),
        }
    }

    fn run(mut self) -> Shard {
        let cp = self.cp;
        let mut nest_tallies = vec![NestTally::default(); cp.nests.len()];
        for phase in &cp.phases {
            match phase {
                CPhase::Reinit(a) => {
                    self.gens[*a] += 1;
                    self.cache.invalidate_array(*a);
                }
                CPhase::Loop(i) => {
                    self.cur = NestTally::default();
                    self.replay_nest(&cp.nests[*i]);
                    nest_tallies[*i] = self.cur;
                }
            }
        }
        Shard {
            nest_tallies,
            net: self.net,
        }
    }

    fn owner_of(&self, array: usize, addr: i64) -> usize {
        debug_assert!(addr >= 0, "negative address in replay (invalid program)");
        self.cp.placements[array].owner_of_addr(addr as usize)
    }

    /// Charge one element read exactly as `DistributedMachine::read` would.
    fn charge_read(&mut self, array: usize, addr: i64) {
        let owner = self.owner_of(array, addr);
        if owner == self.pe {
            self.cur.local += 1;
            return;
        }
        if self.cache_on {
            let page = addr as usize / self.ps;
            let key = PageKey {
                array,
                page,
                generation: self.gens[array],
            };
            // Offset is irrelevant under `Ignore` partial-page semantics
            // (the only policy replay supports).
            if self.cache.probe(key) {
                self.cur.cached += 1;
                return;
            }
            self.cache.insert(key);
        }
        self.net.record_fetch(self.pe, owner);
        self.cur.remote += 1;
        self.cur.page_fetches += 1;
    }

    /// Element address of a gather at inner iteration `t` (uncharged).
    fn gather_addr(&self, g: &GatherRef, dims: &[(i64, i64)], t: i64) -> i64 {
        let mut addr = 0i64;
        for (d, dim) in g.dims.iter().enumerate() {
            let (base_v, step_v) = dims[d];
            let idx = match dim {
                DimIdx::Affine(_) => base_v + step_v * t,
                DimIdx::Indirect {
                    base,
                    scale,
                    offset,
                    ..
                } => {
                    let pos = base_v + step_v * t;
                    debug_assert!(pos >= 0, "negative gather position");
                    scale * self.cp.index_values[*base][pos as usize] + offset
                }
            };
            addr += g.strides[d] * idx;
        }
        addr
    }

    /// Charge every access of `stmt` at inner iteration `t`.
    fn charge_stmt(&mut self, stmt: &CStmt, forms: &StmtForms, t: i64) {
        for (read, rf) in stmt.reads.iter().zip(&forms.reads) {
            match read {
                ReadAccess::Affine { array, .. } => {
                    let (b, a) = rf[0];
                    self.charge_read(*array, b + a * t);
                }
                ReadAccess::Gather(g) => {
                    // Index loads charge in dimension order, then the
                    // element — exactly `EvalCtx::resolve_addr` + `load`.
                    let mut addr = 0i64;
                    for (d, dim) in g.dims.iter().enumerate() {
                        let (base_v, step_v) = rf[d];
                        let idx = match dim {
                            DimIdx::Affine(_) => base_v + step_v * t,
                            DimIdx::Indirect {
                                base,
                                scale,
                                offset,
                                ..
                            } => {
                                let pos = base_v + step_v * t;
                                self.charge_read(*base, pos);
                                scale * self.cp.index_values[*base][pos as usize] + offset
                            }
                        };
                        addr += g.strides[d] * idx;
                    }
                    self.charge_read(g.array, addr);
                }
            }
        }
        for ((base, _), &(b, a)) in stmt.target_loads.iter().zip(&forms.target_loads) {
            self.charge_read(*base, b + a * t);
        }
        if stmt.writes {
            self.cur.writes += 1;
        }
        if let Some(slot) = stmt.reduce_slot {
            self.participation[slot] = true;
        }
    }

    fn replay_nest(&mut self, cn: &'a CNest) {
        self.participation = vec![false; cn.reduce_scalars.len()];
        if cn.loops.is_empty() {
            // A zero-depth nest is a single instance block.
            self.block(cn, &[], 0, None);
        } else {
            let mut outer = Vec::with_capacity(cn.loops.len() - 1);
            let mut g_base = 0u64;
            self.outer_rec(cn, 0, &mut outer, &mut g_base);
        }
        // Vector→scalar collection: ship this PE's partials to each
        // scalar's host (paper §9), exactly like `machine.send_partial`.
        for (slot, &scalar) in cn.reduce_scalars.iter().enumerate() {
            if self.participation[slot] {
                let host = host_of(scalar, self.n_pes);
                if host != self.pe {
                    self.net.record_message(self.pe, host);
                    self.cur.reduction_messages += 1;
                }
            }
        }
    }

    fn outer_rec(&mut self, cn: &'a CNest, depth: usize, outer: &mut Vec<i64>, g_base: &mut u64) {
        if depth + 1 == cn.loops.len() {
            let lv = &cn.loops[depth];
            let lo = lv.lo.eval(outer);
            let m = lv.trip_count(outer);
            if m > 0 {
                self.block(cn, outer, *g_base, Some((depth, lo, lv.step, m)));
                *g_base += m as u64;
            }
            return;
        }
        let lv = &cn.loops[depth];
        let lo = lv.lo.eval(outer);
        let hi = lv.hi.eval(outer);
        let mut v = lo;
        while (lv.step > 0 && v <= hi) || (lv.step < 0 && v >= hi) {
            outer.push(v);
            self.outer_rec(cn, depth + 1, outer, g_base);
            outer.pop();
            v += lv.step;
        }
    }

    /// Replay one inner-loop block: `inner = Some((var, lo, step, m))`, or
    /// `None` for a zero-depth nest (single instance).
    fn block(
        &mut self,
        cn: &'a CNest,
        outer: &[i64],
        g_base: u64,
        inner: Option<(usize, i64, i64, usize)>,
    ) {
        let m = inner.map(|(_, _, _, m)| m).unwrap_or(1);
        let block_of = |f: &LinForm| f.block(outer, inner.map(|(v, lo, s, _)| (v, lo, s)));

        let mut stmt_forms: Vec<StmtForms> = Vec::with_capacity(cn.body.len());
        for stmt in &cn.body {
            let reads = stmt
                .reads
                .iter()
                .map(|r| match r {
                    ReadAccess::Affine { form, .. } => vec![block_of(form)],
                    ReadAccess::Gather(g) => g.dims.iter().map(|d| block_of(dim_form(d))).collect(),
                })
                .collect();
            let target_loads = stmt
                .target_loads
                .iter()
                .map(|(_, form)| block_of(form))
                .collect();
            let segs = match &stmt.anchor {
                Anchor::Affine { array, form } => {
                    let (b, a) = block_of(form);
                    self.owned_segments_affine(*array, b, a, m)
                }
                Anchor::Gather(g) => {
                    let anchor_dims: Vec<(i64, i64)> =
                        g.dims.iter().map(|d| block_of(dim_form(d))).collect();
                    self.owned_segments_by(m, |t| {
                        let addr = self.gather_addr(g, &anchor_dims, t as i64);
                        self.owner_of(g.array, addr) == self.pe
                    })
                }
                Anchor::RoundRobin { slot } => {
                    let (base, width, n, pe) =
                        (cn.rr_base, cn.rr_width, self.n_pes as u64, self.pe as u64);
                    let slot = *slot as u64;
                    self.owned_segments_by(m, |t| {
                        (base + (g_base + t as u64) * width + slot) % n == pe
                    })
                }
            };
            stmt_forms.push(StmtForms {
                reads,
                target_loads,
                segs,
            });
        }

        // Iterations interleave statements in body order, so walk the
        // union of owned ranges boundary by boundary. Windows whose active
        // statements are all-affine take the bulk per-page-run path;
        // gather-bearing windows fall back to per-instance charging.
        let mut cuts: Vec<usize> = Vec::new();
        for f in &stmt_forms {
            for &(s, e) in &f.segs {
                cuts.push(s);
                cuts.push(e);
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        let mut cursors = vec![0usize; cn.body.len()];
        let mut active: Vec<usize> = Vec::with_capacity(cn.body.len());
        for w in cuts.windows(2) {
            let (w0, w1) = (w[0], w[1]);
            active.clear();
            for (si, f) in stmt_forms.iter().enumerate() {
                let c = &mut cursors[si];
                while *c < f.segs.len() && f.segs[*c].1 <= w0 {
                    *c += 1;
                }
                if *c < f.segs.len() && f.segs[*c].0 <= w0 {
                    active.push(si);
                }
            }
            if active.is_empty() {
                continue;
            }
            if active.iter().any(|&si| cn.body[si].has_gather) {
                for t in w0..w1 {
                    for &si in &active {
                        self.charge_stmt(&cn.body[si], &stmt_forms[si], t as i64);
                    }
                }
            } else {
                self.bulk_window(cn, &stmt_forms, &active, w0, w1);
            }
        }
    }

    /// Charge an all-affine window in bulk: writes and local reads count
    /// closed-form per page run; only non-local runs need cache probes,
    /// and those probe once per (page, residency) instead of per access.
    fn bulk_window(
        &mut self,
        cn: &CNest,
        stmt_forms: &[StmtForms],
        active: &[usize],
        w0: usize,
        w1: usize,
    ) {
        let len = (w1 - w0) as u64;
        // Non-local page runs, in (statement, read) generation order —
        // the exact order per-instance probes would interleave in.
        let mut probes = std::mem::take(&mut self.scratch_probes);
        probes.clear();
        for &si in active {
            let stmt = &cn.body[si];
            let forms = &stmt_forms[si];
            if stmt.writes {
                self.cur.writes += len;
            }
            if let Some(slot) = stmt.reduce_slot {
                self.participation[slot] = true;
            }
            for (read, rf) in stmt.reads.iter().zip(&forms.reads) {
                let ReadAccess::Affine { array, .. } = read else {
                    unreachable!("bulk windows are all-affine");
                };
                let (b, a) = rf[0];
                self.collect_probe_runs(*array, b, a, w0, w1, &mut probes);
            }
            for ((base, _), &(b, a)) in stmt.target_loads.iter().zip(&forms.target_loads) {
                self.collect_probe_runs(*base, b, a, w0, w1, &mut probes);
            }
        }
        if !probes.is_empty() {
            self.walk_probe_runs(&probes);
        }
        self.scratch_probes = probes;
    }

    /// Split one affine read over `[w0, w1)` into page runs: runs owned by
    /// this PE count as local reads closed-form; non-local runs are pushed
    /// for cache probing.
    fn collect_probe_runs(
        &mut self,
        array: usize,
        b: i64,
        a: i64,
        w0: usize,
        w1: usize,
        out: &mut Vec<ProbeRun>,
    ) {
        let ps = self.ps as i64;
        let mut push = |this: &mut Self, t0: usize, t1: usize, page: usize| {
            let owner = this.cp.placements[array].page_owner(page);
            if owner == this.pe {
                this.cur.local += (t1 - t0) as u64;
            } else {
                out.push(ProbeRun {
                    t0,
                    t1,
                    array,
                    page,
                    owner,
                });
            }
        };
        if a == 0 {
            debug_assert!(b >= 0, "negative read address");
            push(self, w0, w1, b as usize / self.ps);
            return;
        }
        let mut t = w0;
        while t < w1 {
            let addr = b + a * t as i64;
            debug_assert!(addr >= 0, "negative read address");
            let page = addr / ps;
            // Largest run of iterations staying on `page`.
            let run = if a > 0 {
                ((page + 1) * ps - 1 - addr) / a + 1
            } else {
                (addr - page * ps) / (-a) + 1
            } as usize;
            let end = (t + run).min(w1);
            push(self, t, end, page as usize);
            t = end;
        }
    }

    /// Probe the collected non-local runs with the per-access cache
    /// semantics of `DistributedMachine::read`, bulk-counting the spans
    /// where the outcome is provably constant:
    ///
    /// * no cache — every access is a remote fetch, linear in the span;
    /// * cache on and every active page resident after the first
    ///   iteration — evictions happen only on inserts and inserts only on
    ///   misses, so the remaining iterations all hit (LRU recency is
    ///   refreshed once, in probe order, preserving relative stamp order);
    /// * otherwise (more concurrent pages than capacity — the thrashing
    ///   regime) — fall back to per-access probing.
    fn walk_probe_runs(&mut self, probes: &[ProbeRun]) {
        // Fast path: one run, or several runs covering the same span (the
        // typical stencil boundary) — no window bookkeeping needed.
        if probes
            .iter()
            .all(|p| p.t0 == probes[0].t0 && p.t1 == probes[0].t1)
        {
            self.probe_span(probes, (probes[0].t1 - probes[0].t0) as u64);
            return;
        }
        let mut cuts = std::mem::take(&mut self.scratch_cuts);
        cuts.clear();
        for p in probes {
            cuts.push(p.t0);
            cuts.push(p.t1);
        }
        cuts.sort_unstable();
        cuts.dedup();
        for w in cuts.windows(2) {
            let (v0, v1) = (w[0], w[1]);
            // Runs live in this window, in generation order (= the
            // per-instance interleave order). Reuses the run scratch
            // buffer: this loop is inside the hottest counting path.
            let mut runs = std::mem::take(&mut self.scratch_runs);
            runs.clear();
            runs.extend(probes.iter().filter(|p| p.t0 <= v0 && v0 < p.t1).copied());
            if !runs.is_empty() {
                self.probe_span(&runs, (v1 - v0) as u64);
            }
            self.scratch_runs = runs;
        }
        self.scratch_cuts = cuts;
    }

    /// Probe a set of concurrently-live runs over a span of `len`
    /// iterations: the first iteration probes for real, the remainder is
    /// bulk-counted where the outcome is provably constant.
    fn probe_span(&mut self, runs: &[ProbeRun], len: u64) {
        // First iteration: real probes, in order.
        for p in runs {
            self.probe_fetch(p);
        }
        let rest = len - 1;
        if rest == 0 {
            return;
        }
        if !self.cache_on {
            for p in runs {
                self.cur.remote += rest;
                self.cur.page_fetches += rest;
                self.net.record_fetches(self.pe, p.owner, rest);
            }
        } else if runs.iter().all(|p| self.cache.contains(self.key_of(p))) {
            self.cur.cached += runs.len() as u64 * rest;
            if self.lru {
                // Refresh recency once per page, in probe order: the
                // relative stamp order equals the per-access outcome.
                for p in runs {
                    let key = self.key_of(p);
                    self.cache.probe(key);
                }
            }
        } else {
            for _ in 0..rest {
                for p in runs {
                    self.probe_fetch(p);
                }
            }
        }
    }

    fn key_of(&self, p: &ProbeRun) -> PageKey {
        PageKey {
            array: p.array,
            page: p.page,
            generation: self.gens[p.array],
        }
    }

    /// One non-local access of `p`'s page, exactly as
    /// `DistributedMachine::read` classifies it.
    fn probe_fetch(&mut self, p: &ProbeRun) {
        if self.cache_on {
            let key = self.key_of(p);
            if self.cache.probe(key) {
                self.cur.cached += 1;
                return;
            }
            self.cache.insert(key);
        }
        self.net.record_fetch(self.pe, p.owner);
        self.cur.remote += 1;
        self.cur.page_fetches += 1;
    }

    /// Owned inner iterations of an affine anchor. Instead of walking every
    /// page run, enumerate only the pages *this PE owns* (each partition
    /// scheme's owned set is a union of page intervals) and map each back
    /// to an iteration range closed-form — the per-PE cost is proportional
    /// to the PE's own share of the nest, so the shards divide the work
    /// instead of replicating it.
    fn owned_segments_affine(&self, array: usize, b: i64, a: i64, m: usize) -> Vec<(usize, usize)> {
        let mut segs: Vec<(usize, usize)> = Vec::new();
        if a == 0 {
            if self.owner_of(array, b) == self.pe {
                segs.push((0, m));
            }
            return segs;
        }
        if self.n_pes == 1 {
            return vec![(0, m)];
        }
        let ps = self.ps as i64;
        let last = b + a * (m as i64 - 1);
        debug_assert!(b >= 0 && last >= 0, "negative anchor address");
        let (lo_addr, hi_addr) = if a > 0 { (b, last) } else { (last, b) };
        let (plo, phi) = ((lo_addr / ps) as usize, (hi_addr / ps) as usize);
        self.cp.placements[array].owned_page_intervals(self.pe, plo, phi, |q0, q1| {
            // Iterations whose address lands in pages [q0, q1).
            let lo_bound = q0 as i64 * ps;
            let hi_bound = q1 as i64 * ps - 1;
            let (t0, t1) = if a > 0 {
                (div_ceil(lo_bound - b, a), div_floor(hi_bound - b, a))
            } else {
                (div_ceil(b - hi_bound, -a), div_floor(b - lo_bound, -a))
            };
            let t0 = t0.max(0) as usize;
            let t1 = t1.min(m as i64 - 1);
            if t1 >= t0 as i64 {
                segs.push((t0, t1 as usize + 1));
            }
        });
        if a < 0 {
            // Ascending pages map to descending iterations.
            segs.reverse();
        }
        // Coalesce adjacent ranges (adjacent owned pages).
        let mut out: Vec<(usize, usize)> = Vec::with_capacity(segs.len());
        for (s, e) in segs {
            match out.last_mut() {
                Some(last) if last.1 >= s => last.1 = last.1.max(e),
                _ => out.push((s, e)),
            }
        }
        out
    }

    /// Owned iterations by per-iteration predicate (gather / round-robin
    /// anchors), coalesced into runs.
    fn owned_segments_by(&self, m: usize, owned: impl Fn(usize) -> bool) -> Vec<(usize, usize)> {
        let mut segs: Vec<(usize, usize)> = Vec::new();
        let mut t = 0usize;
        while t < m {
            if owned(t) {
                let start = t;
                t += 1;
                while t < m && owned(t) {
                    t += 1;
                }
                segs.push((start, t));
            } else {
                t += 1;
            }
        }
        segs
    }
}

fn dim_form(d: &DimIdx) -> &LinForm {
    match d {
        DimIdx::Affine(f) => f,
        DimIdx::Indirect { pos, .. } => pos,
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Count a program's accesses via the compiled replay, sharding the per-PE
/// work across host cores. Returns [`ReplayError::Unsupported`] when any
/// nest (or config knob) needs the interpreter — use [`counts_or_simulate`]
/// for transparent fallback.
pub fn counts(program: &Program, cfg: &MachineConfig) -> Result<CountReport, ReplayError> {
    let cp = compile(program, cfg)?;
    let pes: Vec<usize> = (0..cfg.n_pes).collect();
    let shards: Vec<Shard> = par_map(&pes, |&pe| {
        Ok::<_, std::convert::Infallible>(Worker::new(&cp, cfg, pe).run())
    })
    .unwrap_or_else(|e| match e {});

    // Coordinator: host-protocol accounting (PE-independent) + merge.
    let mut net = Network::new(cfg.network, cfg.n_pes);
    let mut stats = Stats::new(cfg.n_pes);
    let mut gens = vec![0u32; cp.placements.len()];
    for phase in &cp.phases {
        if let CPhase::Reinit(a) = phase {
            gens[*a] += 1;
            let sync = run_reinit_protocol(&mut net, *a, cfg.n_pes, gens[*a]);
            stats.reinit_messages += sync.total_messages();
        }
    }
    for shard in &shards {
        net.merge(&shard.net);
    }

    let mut per_nest = Vec::with_capacity(cp.nests.len());
    for (i, cn) in cp.nests.iter().enumerate() {
        let mut ns = Stats::new(cfg.n_pes);
        for (pe, shard) in shards.iter().enumerate() {
            let t = &shard.nest_tallies[i];
            ns.per_pe[pe] = PeCounters {
                writes: t.writes,
                local_reads: t.local,
                cached_reads: t.cached,
                remote_reads: t.remote,
            };
            ns.page_fetches += t.page_fetches;
            ns.reduction_messages += t.reduction_messages;
        }
        stats.merge(&ns);
        per_nest.push((cn.label.clone(), ns));
    }

    Ok(CountReport {
        engine: CountEngine::Replay,
        stats,
        per_nest,
        network_messages: net.messages,
        network_hops: net.hops,
        max_link_load: net.max_link_load(),
    })
}

/// Total statement instances (used to gate the debug cross-check).
#[cfg(debug_assertions)]
fn instance_count(program: &Program) -> u64 {
    program
        .nests()
        .map(|n| n.iteration_count() as u64 * n.body.len().max(1) as u64)
        .sum()
}

/// Debug-build cross-check budget: runs at most this many instances twice.
#[cfg(debug_assertions)]
const CROSS_CHECK_INSTANCES: u64 = 20_000;

/// Count via replay when the program is statically classifiable, falling
/// back to [`simulate`] otherwise — the `auto` engine.
///
/// In debug builds, small replayable runs (≤ 20k statement instances) are
/// additionally simulated and asserted bit-identical before the replay
/// result is trusted; large runs rely on the differential test suite. The
/// release path never pays the double cost.
pub fn counts_or_simulate(program: &Program, cfg: &MachineConfig) -> Result<CountReport, SimError> {
    match counts(program, cfg) {
        Ok(rep) => {
            #[cfg(debug_assertions)]
            {
                if instance_count(program) <= CROSS_CHECK_INSTANCES {
                    let sim = simulate(program, cfg)?;
                    assert_report_matches(&rep, &sim);
                }
            }
            Ok(rep)
        }
        // Invalid configs fall through to the interpreter so the caller
        // sees exactly the error `simulate` would have produced.
        Err(_) => simulate(program, cfg).map(|rep| CountReport::from_sim(&rep)),
    }
}

/// Panic with a diff if a replay report disagrees with a simulation.
#[cfg(debug_assertions)]
fn assert_report_matches(rep: &CountReport, sim: &SimReport) {
    assert_eq!(
        rep.stats, sim.stats,
        "replay stats diverge from the interpreter"
    );
    assert_eq!(
        rep.per_nest, sim.per_nest,
        "per-nest stats diverge from the interpreter"
    );
    assert_eq!(rep.network_messages, sim.network_messages);
    assert_eq!(rep.network_hops, sim.network_hops);
    assert_eq!(rep.max_link_load, sim.max_link_load);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::{InitPattern, ProgramBuilder};
    use sa_machine::{CachePolicy, NetworkTopology, PartitionScheme};

    fn assert_identical(program: &Program, cfg: &MachineConfig) {
        let sim = simulate(program, cfg).expect("interpreter accepts the program");
        let rep = counts(program, cfg).expect("replay supports the program");
        assert_eq!(rep.stats, sim.stats, "global stats");
        assert_eq!(rep.per_nest, sim.per_nest, "per-nest stats");
        assert_eq!(rep.network_messages, sim.network_messages, "messages");
        assert_eq!(rep.network_hops, sim.network_hops, "hops");
        assert_eq!(rep.max_link_load, sim.max_link_load, "max link load");
        assert_eq!(rep.remote_pct(), sim.remote_pct(), "remote %");
    }

    /// K1-shaped skewed kernel.
    fn hydro(n: usize) -> Program {
        let mut b = ProgramBuilder::new("hydro");
        let q = b.param("Q", 0.5);
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let zx = b.input("ZX", &[n + 12], InitPattern::Harmonic);
        let x = b.output("X", &[n]);
        b.nest("k1", &[("k", 0, n as i64 - 1)], |nb| {
            let rhs = nb.par(q)
                + nb.read(y, [iv(0)])
                    * (nb.read(zx, [iv(0).plus(10)]) + nb.read(zx, [iv(0).plus(11)]));
            nb.assign(x, [iv(0)], rhs);
        });
        b.finish()
    }

    #[test]
    fn skewed_kernel_bit_identical_across_configs() {
        let p = hydro(777); // deliberately not page aligned
        for n_pes in [1usize, 2, 3, 4, 8, 16] {
            for ps in [8usize, 32, 64] {
                for cache in [0usize, 64, 256] {
                    let cfg = MachineConfig::new(n_pes, ps).with_cache_elems(cache);
                    assert_identical(&p, &cfg);
                }
            }
        }
    }

    #[test]
    fn partition_schemes_and_policies_bit_identical() {
        let p = hydro(500);
        for scheme in [
            PartitionScheme::Modulo,
            PartitionScheme::Block,
            PartitionScheme::BlockCyclic { block_pages: 2 },
            PartitionScheme::RowBand,
            PartitionScheme::Tile2D {
                tile_rows: 3,
                tile_cols: 40,
            },
        ] {
            for policy in [
                CachePolicy::Lru,
                CachePolicy::Fifo,
                CachePolicy::Random { seed: 42 },
            ] {
                let cfg = MachineConfig::new(8, 32)
                    .with_partition(scheme)
                    .with_cache_policy(policy)
                    .with_cache_elems(64); // small: force evictions
                assert_identical(&p, &cfg);
            }
        }
    }

    #[test]
    fn network_topologies_bit_identical() {
        let p = hydro(512);
        for net in [
            NetworkTopology::Ideal,
            NetworkTopology::Crossbar,
            NetworkTopology::Ring,
            NetworkTopology::Mesh2D,
            NetworkTopology::Hypercube,
        ] {
            let cfg = MachineConfig::new(8, 32)
                .with_network(net)
                .with_cache_elems(0);
            assert_identical(&p, &cfg);
        }
    }

    #[test]
    fn multi_nest_with_reinit_bit_identical() {
        let mut b = ProgramBuilder::new("gen");
        let y = b.input("Y", &[256], InitPattern::Wavy);
        let x = b.output("X", &[256]);
        b.nest("g0", &[("k", 0, 255)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]));
        });
        b.reinit(x);
        b.nest("g1", &[("k", 0, 255)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) * 2.0);
        });
        let p = b.finish();
        assert_identical(&p, &MachineConfig::new(4, 16));
        assert_identical(
            &p,
            &MachineConfig::new(4, 16).with_network(NetworkTopology::Ring),
        );
    }

    #[test]
    fn reductions_and_anchorless_round_robin_bit_identical() {
        let mut b = ProgramBuilder::new("red");
        let y = b.input("Y", &[200], InitPattern::Wavy);
        let z = b.input("Z", &[210], InitPattern::Harmonic);
        let s = b.scalar("s");
        let q = b.scalar("q");
        let c = b.scalar("c");
        // Anchored reduction (first read Y), skewed second operand.
        b.nest("dot", &[("k", 0, 199)], |nb| {
            nb.reduce(
                s,
                sa_ir::ReduceOp::Sum,
                nb.read(y, [iv(0)]) * nb.read(z, [iv(0).plus(7)]),
            );
        });
        // Anchorless reductions (no reads): dealt round-robin, two per
        // iteration so the global counter interleaves slots.
        b.nest("anchorless", &[("k", 0, 99)], |nb| {
            nb.reduce(q, sa_ir::ReduceOp::Sum, sa_ir::Expr::LoopVar(0));
            nb.reduce(c, sa_ir::ReduceOp::Sum, sa_ir::Expr::Const(1.0));
        });
        let p = b.finish();
        for n_pes in [1usize, 3, 4, 16] {
            assert_identical(&p, &MachineConfig::new(n_pes, 32));
        }
    }

    #[test]
    fn static_gather_bit_identical() {
        // Permutation gather through a static index array — the Random
        // class. Replay resolves the indirection from the init pattern.
        let n = 512;
        let mut b = ProgramBuilder::new("perm");
        let d = b.input("D", &[n], InitPattern::Wavy);
        let perm = b.input("P", &[n], InitPattern::Permutation { seed: 11 });
        let x = b.output("X", &[n]);
        b.nest("g", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read_indirect(d, perm, iv(0)));
        });
        let p = b.finish();
        for cache in [0usize, 256, 2048] {
            assert_identical(&p, &MachineConfig::new(8, 32).with_cache_elems(cache));
        }
    }

    #[test]
    fn triangular_and_multi_level_nests_bit_identical() {
        // Triangular nest (GLRE-shaped iteration space): the inner bound
        // depends on the outer variable, and the transposed read has a
        // different variable support than the write (Random class).
        let mut b = ProgramBuilder::new("tri");
        let bb = b.input("B", &[64, 64], InitPattern::Wavy);
        let t = b.output("T", &[64, 64]);
        b.nest_loops(
            "tri",
            vec![
                LoopVar::simple("i", 1, 63),
                LoopVar {
                    name: "k".into(),
                    lo: 1.into(),
                    hi: iv(0),
                    step: 1,
                },
            ],
            |n| {
                n.assign(
                    t,
                    [iv(0), iv(1)],
                    n.read(bb, [iv(0), iv(1)]) * n.read(bb, [iv(1), iv(0)]),
                );
            },
        );
        let p = b.finish();
        assert_identical(&p, &MachineConfig::new(8, 32));
        assert_identical(&p, &MachineConfig::new(8, 32).with_cache_elems(0));
    }

    #[test]
    fn negative_step_loops_bit_identical() {
        let mut b = ProgramBuilder::new("rev");
        let y = b.input("Y", &[128], InitPattern::Wavy);
        let x = b.output("X", &[128]);
        b.nest_loops(
            "rev",
            vec![LoopVar {
                name: "k".into(),
                lo: 127.into(),
                hi: 0.into(),
                step: -1,
            }],
            |nb| {
                nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) + 1.0);
            },
        );
        let p = b.finish();
        assert_identical(&p, &MachineConfig::new(4, 32));
    }

    #[test]
    fn two_statement_body_interleaves_like_the_interpreter() {
        // Two assigns per iteration with different target arrays: PE cache
        // state depends on the per-iteration interleave, which the merged
        // segment walk must reproduce.
        let n = 300;
        let mut b = ProgramBuilder::new("pair");
        let y = b.input("Y", &[n + 8], InitPattern::Wavy);
        let x1 = b.output("X1", &[n]);
        let x2 = b.output("X2", &[n + 64]);
        b.nest("pair", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x1, [iv(0)], nb.read(y, [iv(0).plus(3)]));
            nb.assign(x2, [iv(0).plus(64)], nb.read(y, [iv(0).plus(7)]));
        });
        let p = b.finish();
        for n_pes in [2usize, 4, 8] {
            assert_identical(&p, &MachineConfig::new(n_pes, 16).with_cache_elems(32));
        }
    }

    #[test]
    fn dynamic_gather_base_is_unsupported_and_auto_falls_back() {
        // The index array is itself produced by an earlier nest, so replay
        // must refuse and the auto path must fall back to the interpreter.
        let n = 64;
        let mut b = ProgramBuilder::new("dyn");
        let src = b.input("S", &[n], InitPattern::Permutation { seed: 3 });
        let idx = b.output("I", &[n]);
        let d = b.input("D", &[n], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("make-idx", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(idx, [iv(0)], nb.read(src, [iv(0)]));
        });
        b.nest("gather", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read_indirect(d, idx, iv(0)));
        });
        let p = b.finish();
        let cfg = MachineConfig::new(4, 16);
        match counts(&p, &cfg) {
            Err(ReplayError::Unsupported { nest, reason }) => {
                assert_eq!(nest, "gather");
                assert!(reason.contains("dynamically produced"), "{reason}");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
        let auto = counts_or_simulate(&p, &cfg).expect("fallback simulates");
        assert_eq!(auto.engine, CountEngine::Interp);
        let sim = simulate(&p, &cfg).unwrap();
        assert_eq!(auto.stats, sim.stats);
    }

    #[test]
    fn refetch_policy_is_unsupported() {
        let p = hydro(64);
        let cfg = MachineConfig::new(4, 16).with_partial_pages(PartialPagePolicy::Refetch);
        assert!(matches!(
            counts(&p, &cfg),
            Err(ReplayError::Unsupported { .. })
        ));
        // Auto falls back and matches the interpreter under Refetch too.
        let auto = counts_or_simulate(&p, &cfg).unwrap();
        let sim = simulate(&p, &cfg).unwrap();
        assert_eq!(auto.engine, CountEngine::Interp);
        assert_eq!(auto.stats, sim.stats);
    }

    #[test]
    fn bad_config_surfaces_the_interpreter_error() {
        let p = hydro(64);
        let err = counts_or_simulate(&p, &MachineConfig::new(0, 32)).unwrap_err();
        assert!(matches!(
            err,
            SimError::Machine(sa_machine::MachineError::BadConfig(ConfigError::ZeroPes))
        ));
        assert!(matches!(
            counts(&p, &MachineConfig::new(4, 0)),
            Err(ReplayError::Config(ConfigError::ZeroPageSize))
        ));
    }

    #[test]
    fn zero_read_program_reports_zero_remote_pct() {
        // A write-only program performs no reads; remote % must be 0.0,
        // never NaN (regression guard for the CSV/JSON pipelines).
        let mut b = ProgramBuilder::new("wo");
        let x = b.output("X", &[64]);
        b.nest("w", &[("k", 0, 63)], |nb| {
            nb.assign(x, [iv(0)], sa_ir::Expr::LoopVar(0));
        });
        let p = b.finish();
        let rep = counts(&p, &MachineConfig::new(4, 16)).unwrap();
        assert_eq!(rep.stats.total_reads(), 0);
        assert_eq!(rep.remote_pct(), 0.0);
        assert!(!rep.remote_pct().is_nan());
        assert_identical(&p, &MachineConfig::new(4, 16));
    }

    #[test]
    fn report_from_sim_round_trips() {
        let p = hydro(128);
        let cfg = MachineConfig::new(4, 32);
        let sim = simulate(&p, &cfg).unwrap();
        let rep = CountReport::from_sim(&sim);
        assert_eq!(rep.engine, CountEngine::Interp);
        assert_eq!(rep.engine.name(), "interp");
        assert_eq!(CountEngine::Replay.name(), "replay");
        assert_eq!(rep.stats, sim.stats);
        assert_eq!(rep.remote_pct(), sim.remote_pct());
    }
}
