//! Report emitters: markdown tables, CSV, and ASCII line charts that stand
//! in for the paper's figures.

/// Render a GitHub-flavoured markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in headers {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Render rows as CSV with a header line.
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Render rows as a JSON array of objects keyed by header (hand-rolled;
/// no serde in the workspace). Cells that are plain JSON number literals
/// are emitted unquoted, everything else as an escaped string:
///
/// ```
/// let j = sa_core::report::json(&["pes", "remote"], &[vec!["4".into(), "1.23%".into()]]);
/// assert_eq!(j, "[\n  {\"pes\": 4, \"remote\": \"1.23%\"}\n]\n");
/// ```
pub fn json(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  {");
        for (j, (h, cell)) in headers.iter().zip(row).enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(&json_escape(h));
            out.push_str("\": ");
            if is_json_number(cell) {
                out.push_str(cell);
            } else {
                out.push('"');
                out.push_str(&json_escape(cell));
                out.push('"');
            }
        }
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Escape a string for inclusion inside JSON quotes.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Is `s` exactly a JSON number literal (so it can be emitted unquoted)?
fn is_json_number(s: &str) -> bool {
    // JSON grammar: -? int frac? exp?, no leading zeros, no leading '+',
    // no trailing dot. Checking the charset first keeps out parse-able
    // oddities like "inf", "1_000" or whitespace.
    if s.is_empty()
        || s.starts_with('+')
        || !s
            .bytes()
            .all(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
    {
        return false;
    }
    let rest = s.strip_prefix('-').unwrap_or(s);
    let mantissa = rest.split(['e', 'E']).next().unwrap_or("");
    let int = mantissa.split('.').next().unwrap_or("");
    if int.is_empty() || (int.len() > 1 && int.starts_with('0')) {
        return false;
    }
    if mantissa.contains('.') && mantissa.ends_with('.') {
        return false;
    }
    s.parse::<f64>().is_ok_and(f64::is_finite)
}

/// Format a percentage like the paper's axes (`12.34%`).
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.2}%")
}

/// Render an optional counter for a table cell: the value, or an *empty*
/// cell when the metric was not measured. A blank survives every emitter
/// honestly — CSV keeps the column position, [`json`] emits `""` (never a
/// number), and markdown shows an empty cell — whereas a literal `0` would
/// silently conflate "none happened" with "not modeled" in mixed-oracle
/// pivots.
pub fn fmt_opt_u64(v: Option<u64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_default()
}

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (e.g. `"Cache, ps 32"`).
    pub label: String,
    /// `(x, y)` points, x ascending.
    pub points: Vec<(f64, f64)>,
}

/// Render series as a fixed-size ASCII line chart (the stand-in for the
/// paper's figures in terminal output and EXPERIMENTS.md).
pub fn ascii_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    let symbols = ['*', 'o', '+', 'x', '#', '@'];
    let mut grid = vec![vec![' '; width]; height];

    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (0.0f64, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in &s.points {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
    }
    if !xmin.is_finite() || xmax <= xmin {
        xmax = xmin + 1.0;
    }
    if ymax <= ymin {
        ymax = ymin + 1.0;
    }

    for (si, s) in series.iter().enumerate() {
        let sym = symbols[si % symbols.len()];
        for &(x, y) in &s.points {
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = sym;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("  y: {ymin:.2} .. {ymax:.2}\n"));
    for row in &grid {
        out.push_str("  |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("   x: {xmin:.0} .. {xmax:.0}\n"));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("   {} {}\n", symbols[si % symbols.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(
            &["PEs", "remote %"],
            &[
                vec!["4".into(), "1.23%".into()],
                vec!["8".into(), "1.10%".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("PEs"));
        assert!(lines[1].contains("---"));
        assert!(lines[2].contains("1.23%"));
    }

    #[test]
    fn csv_shape() {
        let c = csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    fn json_shape_and_typing() {
        let j = json(
            &["pes", "remote", "note"],
            &[
                vec!["4".into(), "1.23".into(), "ok".into()],
                vec!["8".into(), "0.5".into(), "q\"uote".into()],
            ],
        );
        assert_eq!(
            j,
            "[\n  {\"pes\": 4, \"remote\": 1.23, \"note\": \"ok\"},\n  \
             {\"pes\": 8, \"remote\": 0.5, \"note\": \"q\\\"uote\"}\n]\n"
        );
        assert_eq!(json(&["a"], &[]), "[\n]\n");
    }

    #[test]
    fn json_number_detection() {
        for ok in ["0", "-1", "42", "1.5", "-0.25", "1e5", "2E-3", "1e+5"] {
            assert!(is_json_number(ok), "{ok} should be a JSON number");
        }
        for bad in [
            "", "01", "+5", "1.", ".5", "1_000", " 1", "inf", "NaN", "1.2%", "0x10", "--2", "1e",
            "abc",
        ] {
            assert!(!is_json_number(bad), "{bad} should NOT be a JSON number");
        }
    }

    #[test]
    fn json_escapes_control_chars() {
        let j = json(&["s"], &[vec!["a\n\tb\u{1}".into()]]);
        assert!(j.contains("\"a\\n\\tb\\u0001\""));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(21.875), "21.88%");
        assert_eq!(fmt_pct(0.0), "0.00%");
    }

    #[test]
    fn chart_renders_all_series() {
        let s = vec![
            Series {
                label: "cache".into(),
                points: vec![(1.0, 0.0), (32.0, 5.0)],
            },
            Series {
                label: "no cache".into(),
                points: vec![(1.0, 0.0), (32.0, 20.0)],
            },
        ];
        let chart = ascii_chart("Fig 1", &s, 40, 10);
        assert!(chart.contains("Fig 1"));
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("cache"));
        // Height = 10 grid rows plus decorations.
        assert!(chart.lines().count() >= 13);
    }

    #[test]
    fn chart_handles_degenerate_ranges() {
        let s = vec![Series {
            label: "flat".into(),
            points: vec![(1.0, 0.0)],
        }];
        let chart = ascii_chart("flat", &s, 10, 4);
        assert!(chart.contains('*'));
        let empty = ascii_chart("none", &[], 10, 4);
        assert!(empty.contains("none"));
    }
}
