//! Report emitters: markdown tables, CSV, and ASCII line charts that stand
//! in for the paper's figures.

/// Render a GitHub-flavoured markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in headers {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Render rows as CSV with a header line.
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Format a percentage like the paper's axes (`12.34%`).
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.2}%")
}

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (e.g. `"Cache, ps 32"`).
    pub label: String,
    /// `(x, y)` points, x ascending.
    pub points: Vec<(f64, f64)>,
}

/// Render series as a fixed-size ASCII line chart (the stand-in for the
/// paper's figures in terminal output and EXPERIMENTS.md).
pub fn ascii_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    let symbols = ['*', 'o', '+', 'x', '#', '@'];
    let mut grid = vec![vec![' '; width]; height];

    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (0.0f64, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in &s.points {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
    }
    if !xmin.is_finite() || xmax <= xmin {
        xmax = xmin + 1.0;
    }
    if ymax <= ymin {
        ymax = ymin + 1.0;
    }

    for (si, s) in series.iter().enumerate() {
        let sym = symbols[si % symbols.len()];
        for &(x, y) in &s.points {
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = sym;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("  y: {ymin:.2} .. {ymax:.2}\n"));
    for row in &grid {
        out.push_str("  |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("   x: {xmin:.0} .. {xmax:.0}\n"));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("   {} {}\n", symbols[si % symbols.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(
            &["PEs", "remote %"],
            &[
                vec!["4".into(), "1.23%".into()],
                vec!["8".into(), "1.10%".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("PEs"));
        assert!(lines[1].contains("---"));
        assert!(lines[2].contains("1.23%"));
    }

    #[test]
    fn csv_shape() {
        let c = csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(21.875), "21.88%");
        assert_eq!(fmt_pct(0.0), "0.00%");
    }

    #[test]
    fn chart_renders_all_series() {
        let s = vec![
            Series {
                label: "cache".into(),
                points: vec![(1.0, 0.0), (32.0, 5.0)],
            },
            Series {
                label: "no cache".into(),
                points: vec![(1.0, 0.0), (32.0, 20.0)],
            },
        ];
        let chart = ascii_chart("Fig 1", &s, 40, 10);
        assert!(chart.contains("Fig 1"));
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("cache"));
        // Height = 10 grid rows plus decorations.
        assert!(chart.lines().count() >= 13);
    }

    #[test]
    fn chart_handles_degenerate_ranges() {
        let s = vec![Series {
            label: "flat".into(),
            points: vec![(1.0, 0.0)],
        }];
        let chart = ascii_chart("flat", &s, 10, 4);
        assert!(chart.contains('*'));
        let empty = ascii_chart("none", &[], 10, 4);
        assert!(empty.contains("none"));
    }
}
