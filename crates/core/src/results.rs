//! Result sets: grid measurements with group-by/pivot selection.
//!
//! A [`ResultSet`] is the ordered output of an evaluated
//! [`crate::plan::ExperimentPlan`]. Figures and tables *select* the points
//! they want — by predicate, group key or pivot — instead of depending on
//! the enumeration order of the loop that produced them, so reordering a
//! plan's axes never changes what a figure shows.
//!
//! The typed [`Column`] selectors bridge records to the string-matrix
//! emitters in [`crate::report`] (`markdown_table`, `csv`, `json`).

use sa_machine::CachePolicy;

use crate::oracle::RunRecord;
use crate::report::{fmt_pct, Series};

/// Short report name of a replacement policy (the legacy sweep labels).
pub fn policy_name(policy: CachePolicy) -> &'static str {
    match policy {
        CachePolicy::Lru => "lru",
        CachePolicy::Fifo => "fifo",
        CachePolicy::Random { .. } => "random",
    }
}

/// Measurements of a whole grid, in grid (mixed-radix) order.
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    records: Vec<RunRecord>,
}

impl ResultSet {
    /// Wrap records (kept in the given order).
    pub fn new(records: Vec<RunRecord>) -> Self {
        ResultSet { records }
    }

    /// The records in grid order.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Consume into the raw records.
    pub fn into_records(self) -> Vec<RunRecord> {
        self.records
    }

    /// Number of measured points.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was measured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// First record matching `pred` (grid order).
    pub fn find(&self, pred: impl Fn(&RunRecord) -> bool) -> Option<&RunRecord> {
        self.records.iter().find(|r| pred(r))
    }

    /// All records matching `pred`, as a new set (grid order preserved).
    pub fn filter(&self, pred: impl Fn(&RunRecord) -> bool) -> ResultSet {
        ResultSet::new(
            self.records
                .iter()
                .filter(|r| pred(r))
                .cloned()
                .collect::<Vec<_>>(),
        )
    }

    /// Group records by `key`, preserving first-seen group order and grid
    /// order within each group. This is the order-independence workhorse:
    /// a figure groups by its series key no matter which axis order
    /// produced the records.
    pub fn group_by<K: PartialEq>(
        &self,
        key: impl Fn(&RunRecord) -> K,
    ) -> Vec<(K, Vec<&RunRecord>)> {
        let mut groups: Vec<(K, Vec<&RunRecord>)> = Vec::new();
        for r in &self.records {
            let k = key(r);
            match groups.iter_mut().find(|(g, _)| *g == k) {
                Some((_, members)) => members.push(r),
                None => groups.push((k, vec![r])),
            }
        }
        groups
    }

    /// Pivot into plot series: one [`Series`] per `series_key` group, with
    /// `(x, y)` points in grid order.
    pub fn series(
        &self,
        series_key: impl Fn(&RunRecord) -> String,
        x: impl Fn(&RunRecord) -> f64,
        y: impl Fn(&RunRecord) -> f64,
    ) -> Vec<Series> {
        self.group_by(series_key)
            .into_iter()
            .map(|(label, members)| Series {
                label,
                points: members.iter().map(|r| (x(r), y(r))).collect(),
            })
            .collect()
    }

    /// Render the chosen columns as a string matrix for the
    /// [`crate::report`] emitters.
    pub fn rows(&self, columns: &[Column]) -> Vec<Vec<String>> {
        self.records
            .iter()
            .map(|r| columns.iter().map(|c| c.cell(r)).collect())
            .collect()
    }
}

/// A typed column selector: which field of a [`RunRecord`] a report shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Column {
    /// Kernel code (blank when the plan ran a single program).
    Kernel,
    /// PE count.
    Pes,
    /// Page size in elements.
    PageSize,
    /// Cache size in elements.
    CacheElems,
    /// Cache on/off flag.
    Cached,
    /// Replacement policy name.
    Policy,
    /// Partition scheme name.
    Partition,
    /// Network topology name.
    Network,
    /// Remote reads as a percentage of all reads.
    RemotePct,
    /// Cached reads as a percentage of all reads.
    CachedPct,
    /// Absolute remote reads.
    RemoteReads,
    /// Absolute total reads.
    TotalReads,
    /// Network messages.
    Messages,
    /// Total hop traversals (blank when the backend has no network model —
    /// an unmodeled metric must not pivot as a zero).
    Hops,
    /// Heaviest directed-link traffic (blank when not modeled).
    MaxLinkLoad,
    /// Estimated cycles (blank unless a timing oracle ran).
    Cycles,
}

impl Column {
    /// Header text for this column.
    pub fn header(&self) -> &'static str {
        match self {
            Column::Kernel => "kernel",
            Column::Pes => "pes",
            Column::PageSize => "page_size",
            Column::CacheElems => "cache_elems",
            Column::Cached => "cached",
            Column::Policy => "policy",
            Column::Partition => "partition",
            Column::Network => "network",
            Column::RemotePct => "remote_pct",
            Column::CachedPct => "cached_pct",
            Column::RemoteReads => "remote_reads",
            Column::TotalReads => "total_reads",
            Column::Messages => "messages",
            Column::Hops => "hops",
            Column::MaxLinkLoad => "max_link_load",
            Column::Cycles => "cycles",
        }
    }

    /// Headers for a column list (feeds `markdown_table`/`csv`/`json`).
    pub fn headers(columns: &[Column]) -> Vec<&'static str> {
        columns.iter().map(Column::header).collect()
    }

    /// Render one record's cell.
    pub fn cell(&self, r: &RunRecord) -> String {
        match self {
            Column::Kernel => r.cfg.kernel.clone().unwrap_or_default(),
            Column::Pes => r.cfg.n_pes.to_string(),
            Column::PageSize => r.cfg.page_size.to_string(),
            Column::CacheElems => r.cfg.cache_elems.to_string(),
            Column::Cached => r.cfg.cached().to_string(),
            Column::Policy => policy_name(r.cfg.cache_policy).to_string(),
            Column::Partition => r.cfg.partition.name(),
            Column::Network => r.cfg.network.name().to_string(),
            Column::RemotePct => fmt_pct(r.remote_pct),
            Column::CachedPct => fmt_pct(r.cached_pct),
            Column::RemoteReads => r.remote_reads.to_string(),
            Column::TotalReads => r.total_reads.to_string(),
            Column::Messages => r.messages.to_string(),
            Column::Hops => crate::report::fmt_opt_u64(r.hops),
            Column::MaxLinkLoad => crate::report::fmt_opt_u64(r.max_link_load),
            Column::Cycles => crate::report::fmt_opt_u64(r.cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RunConfig;

    fn rec(n_pes: usize, page_size: usize, remote_pct: f64) -> RunRecord {
        RunRecord {
            cfg: RunConfig {
                n_pes,
                page_size,
                ..RunConfig::default()
            },
            remote_pct,
            cached_pct: 0.0,
            writes: 1,
            local_reads: 1,
            cached_reads: 0,
            remote_reads: 2,
            total_reads: 3,
            messages: 4,
            hops: Some(0),
            max_link_load: Some(0),
            write_balance: 1.0,
            cycles: None,
            speedup_bound: None,
        }
    }

    fn demo() -> ResultSet {
        ResultSet::new(vec![
            rec(1, 32, 0.0),
            rec(2, 32, 5.0),
            rec(1, 64, 1.0),
            rec(2, 64, 6.0),
        ])
    }

    #[test]
    fn group_by_preserves_first_seen_order() {
        let rs = demo();
        let by_ps = rs.group_by(|r| r.cfg.page_size);
        assert_eq!(by_ps.len(), 2);
        assert_eq!(by_ps[0].0, 32);
        assert_eq!(by_ps[0].1.len(), 2);
        assert_eq!(by_ps[1].0, 64);
    }

    #[test]
    fn series_pivot_selects_not_orders() {
        let rs = demo();
        let series = rs.series(
            |r| format!("ps {}", r.cfg.page_size),
            |r| r.cfg.n_pes as f64,
            |r| r.remote_pct,
        );
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].label, "ps 32");
        assert_eq!(series[0].points, vec![(1.0, 0.0), (2.0, 5.0)]);
        assert_eq!(series[1].points, vec![(1.0, 1.0), (2.0, 6.0)]);
    }

    #[test]
    fn rows_render_typed_columns() {
        let rs = demo();
        let cols = [Column::Pes, Column::PageSize, Column::RemotePct];
        assert_eq!(
            Column::headers(&cols),
            vec!["pes", "page_size", "remote_pct"]
        );
        let rows = rs.rows(&cols);
        assert_eq!(rows[1], vec!["2", "32", "5.00%"]);
    }

    #[test]
    fn find_and_filter_select_by_predicate() {
        let rs = demo();
        let p = rs
            .find(|r| r.cfg.n_pes == 2 && r.cfg.page_size == 64)
            .unwrap();
        assert_eq!(p.remote_pct, 6.0);
        assert_eq!(rs.filter(|r| r.cfg.page_size == 32).len(), 2);
    }
}
