//! Index screening: mapping statement instances to their owning PE.
//!
//! Paper §3: "Each PE may write only into undefined array cells and only
//! into those mapped to that PE … This is achieved by screening the array
//! indices so that the right-hand side of the assignment is evaluated only
//! for a given PE's subranges."
//!
//! [`PartitionMap`] is the lightweight, immutable ownership oracle shared
//! by the counting simulator, the timing pass and the real-thread runtime.

use sa_ir::interp::{resolve_ref_addr, Memory};
use sa_ir::nest::Stmt;
use sa_ir::{analysis, ArrayId, IrError, Program};
use sa_machine::{ArrayShape, MachineConfig, Placement};

/// Immutable page-ownership map for one (program, machine) pair.
///
/// Each array carries its own [`Placement`] built from its declared
/// dimensions, so tiled schemes (`RowBand`, `Tile2D`) see the real grid
/// geometry while the page-linear schemes keep the paper's §2 arithmetic.
#[derive(Debug, Clone)]
pub struct PartitionMap {
    n_pes: usize,
    page_size: usize,
    placements: Vec<Placement>,
}

impl PartitionMap {
    /// Build the map for `program` on a machine described by `cfg`.
    pub fn new(program: &Program, cfg: &MachineConfig) -> Self {
        PartitionMap {
            n_pes: cfg.n_pes,
            page_size: cfg.page_size,
            placements: program
                .arrays
                .iter()
                .map(|d| {
                    Placement::new(
                        cfg.partition,
                        cfg.page_size,
                        cfg.n_pes,
                        ArrayShape::from_dims(&d.dims),
                    )
                })
                .collect(),
        }
    }

    /// Number of PEs.
    pub fn n_pes(&self) -> usize {
        self.n_pes
    }

    /// Page size in elements.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Placement of array `a`.
    pub fn placement(&self, a: ArrayId) -> &Placement {
        &self.placements[a.0]
    }

    /// Owning PE of linear address `addr` in array `a`.
    pub fn owner(&self, a: ArrayId, addr: usize) -> usize {
        self.placements[a.0].owner_of_addr(addr)
    }

    /// Owning PE of a statement instance at iteration `ivs`, or `None` for
    /// anchorless statements (e.g. a reduction of pure parameters), which
    /// the executor deals out round-robin.
    ///
    /// The anchor is the write target for assignments and the first read
    /// for reductions (see [`analysis::anchor_ref`]). Indirect anchors are
    /// resolved by the executor (they need memory); this fast path covers
    /// the affine case used by owner screening. See
    /// [`PartitionMap::resolved_anchor_owner`] for the full path.
    pub fn anchor_owner(&self, program: &Program, stmt: &Stmt, ivs: &[i64]) -> Option<usize> {
        let anchor = analysis::anchor_ref(stmt)?;
        let affine = anchor.affine_indices()?;
        let decl = program.array(anchor.array);
        let idx: Vec<i64> = affine.iter().map(|a| a.eval(ivs)).collect();
        let addr = decl.linearize(&idx).ok()?;
        Some(self.owner(anchor.array, addr))
    }

    /// Owning PE of a statement instance with *indirect anchors resolved*:
    /// the one ownership routine every executor shares.
    ///
    /// Affine anchors take the memory-free fast path. Indirect anchors
    /// (`A(P(i)) = …` scatters, indirect-anchored reductions) load their
    /// index cells through `resolve` — a *non-counting* memory, because
    /// ownership discovery is screening, not program work: the simulator
    /// passes an omniscient peek, the thread runtime a resolution store fed
    /// by static initializers and `IndirectFetch` messages. The index
    /// array's own single assignment (ordered before this nest by SSA
    /// sequencing) guarantees every executor resolves the same subscript.
    ///
    /// Returns `Ok(None)` only for anchorless statements (dealt round-robin
    /// by the caller); address errors (out-of-bounds subscripts, reads of
    /// never-defined index cells) surface as `Err`.
    pub fn resolved_anchor_owner(
        &self,
        program: &Program,
        stmt: &Stmt,
        ivs: &[i64],
        resolve: &mut impl Memory,
    ) -> Result<Option<usize>, IrError> {
        if let Some(pe) = self.anchor_owner(program, stmt, ivs) {
            return Ok(Some(pe));
        }
        let Some(anchor) = analysis::anchor_ref(stmt) else {
            return Ok(None);
        };
        let addr = resolve_ref_addr(program, anchor, ivs, resolve)?;
        Ok(Some(self.owner(anchor.array, addr)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::{InitPattern, ProgramBuilder};

    fn hydro_like(n: usize) -> Program {
        let mut b = ProgramBuilder::new("t");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("main", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]));
        });
        b.finish()
    }

    #[test]
    fn owner_matches_machine_partition() {
        let p = hydro_like(100);
        let cfg = MachineConfig::new(4, 32);
        let map = PartitionMap::new(&p, &cfg);
        assert_eq!(map.n_pes(), 4);
        assert_eq!(map.page_size(), 32);
        // Paper example: pages 0..3 of a 100-element array → PEs 0..3.
        let x = p.array_id("X").unwrap();
        assert_eq!(map.owner(x, 0), 0);
        assert_eq!(map.owner(x, 33), 1);
        assert_eq!(map.owner(x, 99), 3);
    }

    #[test]
    fn anchor_owner_screens_iterations() {
        let p = hydro_like(100);
        let cfg = MachineConfig::new(4, 32);
        let map = PartitionMap::new(&p, &cfg);
        let nest = p.nests().next().unwrap();
        let stmt = &nest.body[0];
        assert_eq!(map.anchor_owner(&p, stmt, &[0]), Some(0));
        assert_eq!(map.anchor_owner(&p, stmt, &[32]), Some(1));
        assert_eq!(map.anchor_owner(&p, stmt, &[96]), Some(3));
        // Out-of-bounds iteration resolves to None rather than panicking.
        assert_eq!(map.anchor_owner(&p, stmt, &[1000]), None);
    }

    #[test]
    fn screened_iteration_sets_partition_the_domain() {
        // Every iteration must belong to exactly one PE.
        let p = hydro_like(100);
        let cfg = MachineConfig::new(4, 32);
        let map = PartitionMap::new(&p, &cfg);
        let nest = p.nests().next().unwrap();
        let stmt = &nest.body[0];
        let mut counts = vec![0usize; 4];
        nest.for_each_iteration(|ivs| {
            counts[map.anchor_owner(&p, stmt, ivs).unwrap()] += 1;
        });
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert_eq!(counts, vec![32, 32, 32, 4]); // 3 full pages + partial
    }

    #[test]
    fn tiled_map_screens_by_grid_tile() {
        use sa_machine::PartitionScheme;
        // An 8×8 grid under Tile2D{4,4} on 4 PEs, page size 2: the anchor
        // owner of (i, j) is the tile owner, not the flattened-page owner.
        let mut b = ProgramBuilder::new("t2");
        let y = b.input("Y", &[8, 8], InitPattern::Wavy);
        let x = b.output("X", &[8, 8]);
        b.nest("main", &[("i", 0, 7), ("j", 0, 7)], |nb| {
            nb.assign(x, [iv(0), iv(1)], nb.read(y, [iv(0), iv(1)]));
        });
        let p = b.finish();
        let cfg = MachineConfig::new(4, 2).with_partition(PartitionScheme::Tile2D {
            tile_rows: 4,
            tile_cols: 4,
        });
        let map = PartitionMap::new(&p, &cfg);
        let nest = p.nests().next().unwrap();
        let stmt = &nest.body[0];
        assert_eq!(map.anchor_owner(&p, stmt, &[0, 0]), Some(0));
        assert_eq!(map.anchor_owner(&p, stmt, &[0, 4]), Some(1));
        assert_eq!(map.anchor_owner(&p, stmt, &[4, 0]), Some(2));
        assert_eq!(map.anchor_owner(&p, stmt, &[7, 7]), Some(3));
        // Every iteration still belongs to exactly one PE, 16 per tile.
        let mut counts = vec![0usize; 4];
        nest.for_each_iteration(|ivs| {
            counts[map.anchor_owner(&p, stmt, ivs).unwrap()] += 1;
        });
        assert_eq!(counts, vec![16, 16, 16, 16]);
    }
}
