//! Automatic scheme search (the ROADMAP's *Automap*-style item): for one
//! kernel, evaluate `PartitionScheme × page size` through an [`Oracle`]
//! and report the best configuration.
//!
//! The search space is an [`crate::plan::ExperimentPlan`] — partition
//! schemes outermost, page sizes innermost. The winner is deterministic:
//! lowest [`Objective`] score, ties broken by fewest network messages,
//! then by enumeration order (first scheme, then smallest page-size
//! index).
//!
//! [`search_with`] walks candidates sequentially with an incumbent and
//! *prunes* configs whose static score lower bound — the imbalance
//! penalty computed from the dependence-graph projection
//! ([`sa_lint::depgraph::static_writes_per_pe`]), with no execution —
//! already exceeds the incumbent's score. Pruning is certified to return
//! bit-identical winners to the exhaustive parallel sweep, which stays
//! available as [`search_exhaustive_with`].
//!
//! The default [`Objective::Balanced`] scores a candidate as
//! `remote % + weight · imbalance %`, where imbalance is derived from the
//! Jain fairness index of the per-PE write distribution. A pure remote-%
//! objective (the original behaviour, kept as [`Objective::RemoteOnly`])
//! degenerates for small kernels: a page size large enough to land the
//! whole array on one PE scores 0 % remote *because one PE does all the
//! work* — exactly the pathology the ROADMAP follow-up named.

use sa_ir::Program;
use sa_machine::{NetworkTopology, PartitionScheme};

use crate::oracle::{Oracle, OracleError, RunRecord};
use crate::plan::{ExperimentPlan, PlanError, RunConfig};
use crate::results::ResultSet;

pub mod strategy;

/// How candidates are scored (lower is better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Legacy objective: remote % alone. Prone to degenerate
    /// all-on-one-PE winners for kernels smaller than `n_pes × page size`.
    RemoteOnly,
    /// Remote % plus `weight × imbalance %`, where imbalance is
    /// `100 · (1 − write_balance)` ([`RunRecord::write_balance`], the Jain
    /// index of per-PE writes). A perfectly balanced candidate pays no
    /// penalty; an all-on-one-PE candidate on `n` PEs pays
    /// `weight · 100 · (1 − 1/n)`.
    Balanced {
        /// Penalty weight (the default is 1.0 via [`Objective::default`]).
        weight: f64,
    },
}

impl Default for Objective {
    /// The balanced objective at weight 1.0.
    fn default() -> Self {
        Objective::Balanced { weight: 1.0 }
    }
}

impl Objective {
    /// Score a candidate (lower wins).
    pub fn score(&self, r: &RunRecord) -> f64 {
        match *self {
            Objective::RemoteOnly => r.remote_pct,
            Objective::Balanced { weight } => {
                r.remote_pct + weight * 100.0 * (1.0 - r.write_balance)
            }
        }
    }
}

/// The space `search` enumerates, plus the fixed machine parameters every
/// candidate shares.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    /// Candidate placement schemes.
    pub schemes: Vec<PartitionScheme>,
    /// Candidate page sizes in elements.
    pub page_sizes: Vec<usize>,
    /// Candidate interconnect topologies (innermost axis). The default is
    /// the single ideal network, which keeps the classic
    /// `scheme × page size` grid — and every winner computed over it —
    /// unchanged; the guided strategies ([`strategy`]) widen this axis.
    pub networks: Vec<NetworkTopology>,
    /// PE count every candidate runs at.
    pub n_pes: usize,
    /// Cache size (elements) every candidate runs with.
    pub cache_elems: usize,
}

impl Default for SearchSpace {
    /// The ROADMAP's default space: the paper's modulo scheme, the §9
    /// division (block) scheme, two block-cyclic hybrids, and the
    /// geometry-aware tiled placements (row bands and two square tiles),
    /// crossed with the page sizes of the §9 "selectable page size"
    /// proposal, at the reference 16-PE / 256-element-cache machine.
    fn default() -> Self {
        SearchSpace {
            schemes: vec![
                PartitionScheme::Modulo,
                PartitionScheme::Block,
                PartitionScheme::BlockCyclic { block_pages: 2 },
                PartitionScheme::BlockCyclic { block_pages: 4 },
                PartitionScheme::RowBand,
                PartitionScheme::Tile2D {
                    tile_rows: 16,
                    tile_cols: 16,
                },
                PartitionScheme::Tile2D {
                    tile_rows: 64,
                    tile_cols: 64,
                },
            ],
            page_sizes: vec![8, 16, 32, 64, 128, 256],
            networks: vec![NetworkTopology::Ideal],
            n_pes: 16,
            cache_elems: 256,
        }
    }
}

impl SearchSpace {
    /// The plan enumerating this space (schemes outermost, then page
    /// sizes, then network topologies innermost).
    pub fn plan(&self) -> ExperimentPlan {
        ExperimentPlan::new()
            .base(RunConfig {
                n_pes: self.n_pes,
                cache_elems: self.cache_elems,
                ..RunConfig::default()
            })
            .partitions(&self.schemes)
            .page_sizes(&self.page_sizes)
            .networks(&self.networks)
    }
}

/// The winning configuration of a [`search`], with the evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct BestConfig {
    /// Winning placement scheme.
    pub scheme: PartitionScheme,
    /// Winning page size in elements.
    pub page_size: usize,
    /// Remote % at the winner.
    pub remote_pct: f64,
    /// Network messages at the winner.
    pub messages: u64,
    /// Write-distribution Jain index at the winner (1 = balanced).
    pub write_balance: f64,
    /// The winner's objective score.
    pub score: f64,
    /// How many candidates were evaluated.
    pub evaluated: usize,
    /// How many candidates were skipped because their static score bound
    /// proved they cannot beat the incumbent (zero for exhaustive search).
    pub pruned: usize,
}

impl BestConfig {
    /// Does `candidate` beat `incumbent`? Strict ordering: objective score
    /// first, then messages; enumeration order breaks remaining ties
    /// (first wins).
    pub(crate) fn beats(
        objective: Objective,
        candidate: &RunRecord,
        incumbent: &RunRecord,
    ) -> bool {
        let (c, i) = (objective.score(candidate), objective.score(incumbent));
        if c != i {
            return c < i;
        }
        candidate.messages < incumbent.messages
    }

    /// Pick the winner out of an evaluated grid (grid order = enumeration
    /// order, so the fold is deterministic). `None` on an empty set.
    pub fn from_results(results: &ResultSet, objective: Objective) -> Option<BestConfig> {
        let mut best: Option<&RunRecord> = None;
        for r in results.records() {
            match best {
                Some(b) if !Self::beats(objective, r, b) => {}
                _ => best = Some(r),
            }
        }
        best.map(|b| BestConfig {
            scheme: b.cfg.partition,
            page_size: b.cfg.page_size,
            remote_pct: b.remote_pct,
            messages: b.messages,
            write_balance: b.write_balance,
            score: objective.score(b),
            evaluated: results.len(),
            pruned: 0,
        })
    }
}

/// Static lower bound on a candidate's objective score under `cfg`, from
/// the dependence-graph projection: remote % is nonnegative, and under
/// owner-computes the per-PE write distribution is a pure function of the
/// partition ([`sa_lint::depgraph::static_writes_per_pe`]), so the
/// imbalance penalty is known without executing anything. `None` when the
/// objective carries no imbalance term or the program is not statically
/// projectable (runtime indirection) — both mean "cannot prune".
pub(crate) fn static_score_bound(
    program: &Program,
    cfg: &RunConfig,
    objective: Objective,
) -> Option<f64> {
    let Objective::Balanced { weight } = objective else {
        return None;
    };
    let writes = sa_lint::depgraph::static_writes_per_pe(
        program,
        &sa_lint::LintConfig {
            n_pes: cfg.n_pes,
            page_size: cfg.page_size,
            scheme: cfg.partition,
        },
    )?;
    Some(weight * 100.0 * (1.0 - sa_machine::load_balance(&writes).jain))
}

/// Exhaustively search `space` for the best `PartitionScheme × page size`
/// for `kernel` under the default balanced [`Objective`], measuring through
/// `oracle` (the parallel sweep engine is the evaluation engine
/// underneath). Use [`search_with`] to pick the legacy remote-only
/// objective explicitly.
pub fn search(
    kernel: &Program,
    space: &SearchSpace,
    oracle: &dyn Oracle,
) -> Result<BestConfig, PlanError> {
    search_with(kernel, space, oracle, Objective::default())
}

/// [`search`] with an explicit scoring [`Objective`].
///
/// Candidates whose static score bound (`static_score_bound`, derived
/// from the dependence-graph projection) proves they cannot *strictly*
/// beat the incumbent are pruned without measuring. Strictness preserves
/// the exhaustive tie-breaks (a bound equal to the incumbent's score
/// still gets measured — it could tie and win on messages), so pruned
/// search returns bit-identical winners to [`search_exhaustive_with`];
/// `tests/lint_static.rs` certifies this across the affine registry.
pub fn search_with(
    kernel: &Program,
    space: &SearchSpace,
    oracle: &dyn Oracle,
    objective: Objective,
) -> Result<BestConfig, PlanError> {
    let plan = space.plan();
    plan.validate().map_err(PlanError::Config)?;
    let mut best: Option<(RunRecord, f64)> = None;
    let mut evaluated = 0usize;
    let mut pruned = 0usize;
    for cfg in plan.configs() {
        if let (Some((_, incumbent)), Some(bound)) =
            (best.as_ref(), static_score_bound(kernel, &cfg, objective))
        {
            if bound > *incumbent {
                pruned += 1;
                continue;
            }
        }
        let rec = match oracle.measure(kernel, &cfg) {
            Ok(rec) => rec,
            // Fail soft per point, like the parallel sweep engine.
            Err(OracleError::Unsupported(_)) => continue,
            Err(e) => return Err(PlanError::Oracle(e)),
        };
        evaluated += 1;
        let score = objective.score(&rec);
        let wins = match &best {
            None => true,
            Some((inc, _)) => BestConfig::beats(objective, &rec, inc),
        };
        if wins {
            best = Some((rec, score));
        }
    }
    let (b, score) = best.ok_or_else(|| {
        PlanError::Oracle(OracleError::Unsupported(
            "every candidate configuration was unsupported by the oracle".into(),
        ))
    })?;
    Ok(BestConfig {
        scheme: b.cfg.partition,
        page_size: b.cfg.page_size,
        remote_pct: b.remote_pct,
        messages: b.messages,
        write_balance: b.write_balance,
        score,
        evaluated,
        pruned,
    })
}

/// [`search_with`] without pruning: the original parallel exhaustive
/// sweep. Kept public as the certification baseline for the pruned path.
pub fn search_exhaustive_with(
    kernel: &Program,
    space: &SearchSpace,
    oracle: &dyn Oracle,
    objective: Objective,
) -> Result<BestConfig, PlanError> {
    let results = space.plan().run(kernel, oracle)?;
    // A validated plan has non-empty axes, but every candidate may still
    // have been dropped as oracle-unsupported (plans fail soft per point).
    BestConfig::from_results(&results, objective).ok_or_else(|| {
        PlanError::Oracle(OracleError::Unsupported(
            "every candidate configuration was unsupported by the oracle".into(),
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CountingOracle;
    use sa_ir::index::iv;
    use sa_ir::{InitPattern, ProgramBuilder};

    /// A first-difference-style kernel (X[k] = Y[k+1] - Y[k]): Skewed, so
    /// larger pages and blockier schemes reduce boundary crossings.
    fn skewed(n: usize) -> Program {
        let mut b = ProgramBuilder::new("sk");
        let y = b.input("Y", &[n + 1], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("s", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(
                x,
                [iv(0)],
                nb.read(y, [iv(0).plus(1)]) - nb.read(y, [iv(0)]),
            );
        });
        b.finish()
    }

    #[test]
    fn search_is_deterministic_and_covers_the_space() {
        let p = skewed(512);
        let space = SearchSpace::default();
        let a = search(&p, &space, &CountingOracle).unwrap();
        let b = search(&p, &space, &CountingOracle).unwrap();
        assert_eq!(a, b);
        // Every candidate is either measured or statically pruned.
        assert_eq!(
            a.evaluated + a.pruned,
            space.schemes.len() * space.page_sizes.len()
        );
        // The legacy objective has no static bound: fully exhaustive.
        let legacy = search_with(&p, &space, &CountingOracle, Objective::RemoteOnly).unwrap();
        assert_eq!(legacy.pruned, 0);
        assert_eq!(
            legacy.evaluated,
            space.schemes.len() * space.page_sizes.len()
        );
    }

    #[test]
    fn pruned_search_matches_exhaustive() {
        for n in [128, 512] {
            let p = skewed(n);
            let space = SearchSpace::default();
            let pruned = search(&p, &space, &CountingOracle).unwrap();
            let exhaustive =
                search_exhaustive_with(&p, &space, &CountingOracle, Objective::default()).unwrap();
            assert_eq!(pruned.scheme, exhaustive.scheme, "n={n}");
            assert_eq!(pruned.page_size, exhaustive.page_size, "n={n}");
            assert_eq!(pruned.score.to_bits(), exhaustive.score.to_bits(), "n={n}");
            assert_eq!(pruned.messages, exhaustive.messages, "n={n}");
        }
    }

    #[test]
    fn search_matches_manual_argmin() {
        // The *legacy* objective must keep reproducing the original
        // remote-%-then-messages argmin exactly.
        let p = skewed(256);
        let space = SearchSpace {
            schemes: vec![PartitionScheme::Modulo, PartitionScheme::Block],
            page_sizes: vec![16, 32],
            n_pes: 8,
            ..SearchSpace::default()
        };
        let best = search_with(&p, &space, &CountingOracle, Objective::RemoteOnly).unwrap();
        // Recompute sequentially with the raw simulator.
        let mut manual: Option<(f64, u64, PartitionScheme, usize)> = None;
        for &scheme in &space.schemes {
            for &ps in &space.page_sizes {
                let cfg = sa_machine::MachineConfig::new(8, ps).with_partition(scheme);
                let rep = crate::exec::simulate(&p, &cfg).unwrap();
                let cand = (rep.remote_pct(), rep.network_messages, scheme, ps);
                let better = match &manual {
                    None => true,
                    Some((pct, msgs, _, _)) => cand.0 < *pct || (cand.0 == *pct && cand.1 < *msgs),
                };
                if better {
                    manual = Some(cand);
                }
            }
        }
        let (pct, msgs, scheme, ps) = manual.unwrap();
        assert_eq!(best.scheme, scheme);
        assert_eq!(best.page_size, ps);
        assert_eq!(best.remote_pct, pct);
        assert_eq!(best.messages, msgs);
    }

    #[test]
    fn balanced_objective_rejects_degenerate_all_on_one_pe_winners() {
        // A 128-element kernel on 16 PEs: at page size 256 the whole array
        // lands on one PE, so the legacy objective crowns it (0 % remote,
        // zero messages) even though a single PE does every write. The
        // balanced default must instead pick a configuration that spreads
        // the work.
        let p = skewed(128);
        let space = SearchSpace::default(); // 16 PEs, page sizes up to 256
        let legacy = search_with(&p, &space, &CountingOracle, Objective::RemoteOnly).unwrap();
        assert_eq!(legacy.remote_pct, 0.0);
        assert!(
            legacy.write_balance < 0.2,
            "legacy winner should be degenerate: {legacy:?}"
        );
        let balanced = search(&p, &space, &CountingOracle).unwrap();
        assert!(
            balanced.write_balance > 0.9,
            "balanced winner must spread writes: {balanced:?}"
        );
        assert!(balanced.score <= legacy.remote_pct + 100.0 * (1.0 - legacy.write_balance));
        // The balanced run may statically prune, but together with the
        // measured points it still covers the whole space.
        assert_eq!(balanced.evaluated + balanced.pruned, legacy.evaluated);
    }

    #[test]
    fn balanced_objective_is_a_noop_for_balanced_kernels() {
        // When every candidate is near-balanced (large kernel, small page
        // sizes), the penalty term changes nothing.
        let p = skewed(2048);
        let space = SearchSpace {
            page_sizes: vec![8, 16, 32],
            ..SearchSpace::default()
        };
        let legacy = search_with(&p, &space, &CountingOracle, Objective::RemoteOnly).unwrap();
        let balanced = search(&p, &space, &CountingOracle).unwrap();
        assert_eq!(legacy.scheme, balanced.scheme);
        assert_eq!(legacy.page_size, balanced.page_size);
    }

    #[test]
    fn objective_scores_compose() {
        use crate::plan::RunConfig;
        let rec = |remote_pct: f64, write_balance: f64| RunRecord {
            cfg: RunConfig::default(),
            remote_pct,
            cached_pct: 0.0,
            writes: 1,
            local_reads: 1,
            cached_reads: 0,
            remote_reads: 0,
            total_reads: 1,
            messages: 0,
            hops: Some(0),
            max_link_load: Some(0),
            write_balance,
            cycles: None,
            speedup_bound: None,
        };
        assert_eq!(Objective::RemoteOnly.score(&rec(7.5, 0.1)), 7.5);
        let balanced = Objective::default();
        assert_eq!(balanced.score(&rec(0.0, 1.0)), 0.0);
        // All work on 1 of 16 PEs: jain 1/16 → 93.75 % imbalance penalty.
        assert!((balanced.score(&rec(0.0, 1.0 / 16.0)) - 93.75).abs() < 1e-9);
        let half = Objective::Balanced { weight: 0.5 };
        assert!((half.score(&rec(2.0, 0.5)) - 27.0).abs() < 1e-9);
    }

    #[test]
    fn empty_space_is_a_config_error() {
        let p = skewed(64);
        let space = SearchSpace {
            schemes: vec![],
            ..SearchSpace::default()
        };
        assert!(matches!(
            search(&p, &space, &CountingOracle),
            Err(PlanError::Config(sa_machine::ConfigError::EmptyAxis {
                axis: "partition"
            }))
        ));
    }
}
