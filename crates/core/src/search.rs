//! Automatic scheme search (the ROADMAP's *Automap*-style item): for one
//! kernel, exhaustively evaluate `PartitionScheme × page size` through an
//! [`Oracle`] and report the best configuration.
//!
//! The search space is an [`crate::plan::ExperimentPlan`] — partition
//! schemes outermost, page sizes innermost — evaluated concurrently by
//! [`crate::parallel::par_map`] underneath [`ExperimentPlan::run`]. The
//! winner is deterministic: lowest remote %, ties broken by fewest network
//! messages, then by enumeration order (first scheme, then smallest
//! page-size index).

use sa_ir::Program;
use sa_machine::PartitionScheme;

use crate::oracle::{Oracle, RunRecord};
use crate::plan::{ExperimentPlan, PlanError, RunConfig};
use crate::results::ResultSet;

/// The space `search` enumerates, plus the fixed machine parameters every
/// candidate shares.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    /// Candidate placement schemes.
    pub schemes: Vec<PartitionScheme>,
    /// Candidate page sizes in elements.
    pub page_sizes: Vec<usize>,
    /// PE count every candidate runs at.
    pub n_pes: usize,
    /// Cache size (elements) every candidate runs with.
    pub cache_elems: usize,
}

impl Default for SearchSpace {
    /// The ROADMAP's default space: the paper's modulo scheme, the §9
    /// division (block) scheme and two block-cyclic hybrids, crossed with
    /// the page sizes of the §9 "selectable page size" proposal, at the
    /// reference 16-PE / 256-element-cache machine.
    fn default() -> Self {
        SearchSpace {
            schemes: vec![
                PartitionScheme::Modulo,
                PartitionScheme::Block,
                PartitionScheme::BlockCyclic { block_pages: 2 },
                PartitionScheme::BlockCyclic { block_pages: 4 },
            ],
            page_sizes: vec![8, 16, 32, 64, 128, 256],
            n_pes: 16,
            cache_elems: 256,
        }
    }
}

impl SearchSpace {
    /// The plan enumerating this space (schemes outermost).
    pub fn plan(&self) -> ExperimentPlan {
        ExperimentPlan::new()
            .base(RunConfig {
                n_pes: self.n_pes,
                cache_elems: self.cache_elems,
                ..RunConfig::default()
            })
            .partitions(&self.schemes)
            .page_sizes(&self.page_sizes)
    }
}

/// The winning configuration of a [`search`], with the evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct BestConfig {
    /// Winning placement scheme.
    pub scheme: PartitionScheme,
    /// Winning page size in elements.
    pub page_size: usize,
    /// Remote % at the winner.
    pub remote_pct: f64,
    /// Network messages at the winner.
    pub messages: u64,
    /// How many candidates were evaluated.
    pub evaluated: usize,
}

impl BestConfig {
    /// Does `candidate` beat `incumbent`? Strict ordering: remote % first,
    /// then messages; enumeration order breaks remaining ties (first wins).
    fn beats(candidate: &RunRecord, incumbent: &RunRecord) -> bool {
        if candidate.remote_pct != incumbent.remote_pct {
            return candidate.remote_pct < incumbent.remote_pct;
        }
        candidate.messages < incumbent.messages
    }

    /// Pick the winner out of an evaluated grid (grid order = enumeration
    /// order, so the fold is deterministic). `None` on an empty set.
    pub fn from_results(results: &ResultSet) -> Option<BestConfig> {
        let mut best: Option<&RunRecord> = None;
        for r in results.records() {
            match best {
                Some(b) if !Self::beats(r, b) => {}
                _ => best = Some(r),
            }
        }
        best.map(|b| BestConfig {
            scheme: b.cfg.partition,
            page_size: b.cfg.page_size,
            remote_pct: b.remote_pct,
            messages: b.messages,
            evaluated: results.len(),
        })
    }
}

/// Exhaustively search `space` for the best `PartitionScheme × page size`
/// for `kernel`, measuring through `oracle` (the parallel sweep engine is
/// the evaluation engine underneath).
pub fn search(
    kernel: &Program,
    space: &SearchSpace,
    oracle: &dyn Oracle,
) -> Result<BestConfig, PlanError> {
    let results = space.plan().run(kernel, oracle)?;
    // A validated plan has non-empty axes, so a winner always exists.
    Ok(BestConfig::from_results(&results).expect("non-empty search space"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CountingOracle;
    use sa_ir::index::iv;
    use sa_ir::{InitPattern, ProgramBuilder};

    /// A first-difference-style kernel (X[k] = Y[k+1] - Y[k]): Skewed, so
    /// larger pages and blockier schemes reduce boundary crossings.
    fn skewed(n: usize) -> Program {
        let mut b = ProgramBuilder::new("sk");
        let y = b.input("Y", &[n + 1], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("s", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(
                x,
                [iv(0)],
                nb.read(y, [iv(0).plus(1)]) - nb.read(y, [iv(0)]),
            );
        });
        b.finish()
    }

    #[test]
    fn search_is_deterministic_and_exhaustive() {
        let p = skewed(512);
        let space = SearchSpace::default();
        let a = search(&p, &space, &CountingOracle).unwrap();
        let b = search(&p, &space, &CountingOracle).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.evaluated, space.schemes.len() * space.page_sizes.len());
    }

    #[test]
    fn search_matches_manual_argmin() {
        let p = skewed(256);
        let space = SearchSpace {
            schemes: vec![PartitionScheme::Modulo, PartitionScheme::Block],
            page_sizes: vec![16, 32],
            n_pes: 8,
            cache_elems: 256,
        };
        let best = search(&p, &space, &CountingOracle).unwrap();
        // Recompute sequentially with the raw simulator.
        let mut manual: Option<(f64, u64, PartitionScheme, usize)> = None;
        for &scheme in &space.schemes {
            for &ps in &space.page_sizes {
                let cfg = sa_machine::MachineConfig::new(8, ps).with_partition(scheme);
                let rep = crate::exec::simulate(&p, &cfg).unwrap();
                let cand = (rep.remote_pct(), rep.network_messages, scheme, ps);
                let better = match &manual {
                    None => true,
                    Some((pct, msgs, _, _)) => cand.0 < *pct || (cand.0 == *pct && cand.1 < *msgs),
                };
                if better {
                    manual = Some(cand);
                }
            }
        }
        let (pct, msgs, scheme, ps) = manual.unwrap();
        assert_eq!(best.scheme, scheme);
        assert_eq!(best.page_size, ps);
        assert_eq!(best.remote_pct, pct);
        assert_eq!(best.messages, msgs);
    }

    #[test]
    fn empty_space_is_a_config_error() {
        let p = skewed(64);
        let space = SearchSpace {
            schemes: vec![],
            ..SearchSpace::default()
        };
        assert!(matches!(
            search(&p, &space, &CountingOracle),
            Err(PlanError::Config(sa_machine::ConfigError::EmptyAxis {
                axis: "partition"
            }))
        ));
    }
}
