//! Scalable partition search over the full
//! `scheme × tile shape × page size × topology` space: a seeded
//! simulated-annealing walker and an *Automap*-style write-to-read
//! propagation pass, both backed by a memoizing oracle cache.
//!
//! PR 9 multiplied the candidate space (five scheme families with tile
//! shapes, seven interconnect topologies), so exhaustive enumeration is
//! the scaling wall the ROADMAP's item 3 names. This module keeps the
//! exhaustive walk as the certification baseline and adds two guided
//! strategies:
//!
//! - [`Strategy::Anneal`] — Metropolis acceptance over neighbor moves
//!   (halve/double the page size, perturb tile dims within a scheme
//!   family, swap the scheme family, hop the topology) under a geometric
//!   temperature schedule, seeded and fully deterministic. The
//!   static score lower bound (`static_score_bound`, derived from the
//!   dependence-graph projection) stays inside the acceptance test:
//!   candidates provably unable to beat the incumbent are rejected
//!   without spending an oracle evaluation.
//! - [`Strategy::Propagate`] — ranks candidates by pushing each array's
//!   write-side placement onto the arrays it reads, along the RAW edges
//!   of [`sa_lint::depgraph`]: a placement under which a statement's
//!   sampled writes land on the same PE as the reads they depend on is
//!   tried first. Evaluation then proceeds in ranked order under the
//!   budget.
//!
//! Every oracle evaluation goes through a [`MemoOracle`] keyed by
//! `(program fingerprint, RunConfig)` and shared across queries of one
//! [`Searcher`], so repeated measurements — across strategies, kernels
//! re-queried, or anneal walks revisiting a state — are free.
//!
//! **Exactness.** The winner order is total: objective score, then
//! messages, then canonical grid index. Any strategy that evaluates or
//! soundly prunes *every* candidate therefore returns the bit-exact
//! [`search_exhaustive_with`](crate::search::search_exhaustive_with)
//! winner regardless of visit order — and both guided strategies degrade
//! to full (pruned) coverage whenever `budget ≥ space size`, which is
//! exactly the regime `tests/search_strategies.rs` certifies.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use sa_ir::{analysis, pretty, ArrayId, Phase, Program};
use sa_lint::depgraph::DepGraph;
use sa_machine::{ArrayShape, PartitionScheme, Placement};

use crate::oracle::{FastCountingOracle, Oracle, OracleError, RunRecord, StaticOracle};
use crate::plan::{PlanError, RunConfig};
use crate::search::{static_score_bound, BestConfig, Objective, SearchSpace};

/// Default evaluation budget for the guided strategies: enough to cover
/// every feasible certification space exhaustively, a small fraction of
/// the PR-9-expanded spaces.
pub const DEFAULT_BUDGET: usize = 64;

/// Default annealer seed (any value works; fixed for reproducible CLI
/// runs without `--seed`).
pub const DEFAULT_SEED: u64 = 0x5eed_1989;

/// Which walker explores the candidate space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Canonical-order incumbent walk with static pruning — identical
    /// semantics to [`crate::search::search_with`].
    Exhaustive,
    /// Seeded simulated annealing with pruned Metropolis acceptance.
    Anneal,
    /// Automap-style write-to-read propagation ranking, evaluated in
    /// ranked order under the budget.
    Propagate,
}

impl Strategy {
    /// Parse a CLI strategy name.
    pub fn parse(s: &str) -> Option<Strategy> {
        match s {
            "exhaustive" => Some(Strategy::Exhaustive),
            "anneal" => Some(Strategy::Anneal),
            "propagate" => Some(Strategy::Propagate),
            _ => None,
        }
    }

    /// Stable name (`exhaustive` / `anneal` / `propagate`).
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Exhaustive => "exhaustive",
            Strategy::Anneal => "anneal",
            Strategy::Propagate => "propagate",
        }
    }
}

/// Knobs of one search invocation, shared by every kernel queried
/// through the same [`Searcher`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyParams {
    /// Which walker runs.
    pub strategy: Strategy,
    /// Scoring objective (lower wins).
    pub objective: Objective,
    /// Seed of the annealer's deterministic RNG.
    pub seed: u64,
    /// Maximum distinct candidates measured per query. Counted whether
    /// the measurement was a fresh oracle evaluation or a memo hit, so a
    /// walk is a pure function of `(program, space, seed, budget)` —
    /// cache warmth changes what a query *costs*, never what it *does*
    /// (re-queries replay bit-identically with zero oracle calls).
    /// Statically pruned candidates are free. When the budget covers the
    /// whole space, the guided strategies walk it exhaustively.
    pub budget: usize,
}

impl Default for StrategyParams {
    /// Exhaustive walk, balanced objective, [`DEFAULT_SEED`] and
    /// [`DEFAULT_BUDGET`].
    fn default() -> Self {
        StrategyParams {
            strategy: Strategy::Exhaustive,
            objective: Objective::default(),
            seed: DEFAULT_SEED,
            budget: DEFAULT_BUDGET,
        }
    }
}

/// The materialized candidate grid of a [`SearchSpace`]: scheme
/// outermost, then page size, then network topology innermost — the same
/// canonical enumeration order as
/// [`SearchSpace::plan`](crate::search::SearchSpace::plan), so a
/// candidate's index here *is* its grid index, the final tie-break of the
/// winner order.
#[derive(Debug, Clone)]
pub struct Candidates {
    configs: Vec<RunConfig>,
    schemes: Vec<PartitionScheme>,
    page_sizes: Vec<usize>,
    n_networks: usize,
    n_pes: usize,
}

impl Candidates {
    /// Materialize `space` into its canonical candidate list. This is the
    /// one expensive space construction of a search invocation —
    /// [`Searcher`] does it exactly once, however many kernels are
    /// queried.
    pub fn materialize(space: &SearchSpace) -> Result<Candidates, PlanError> {
        let plan = space.plan();
        plan.validate().map_err(PlanError::Config)?;
        Ok(Candidates {
            configs: plan.configs().collect(),
            schemes: space.schemes.clone(),
            page_sizes: space.page_sizes.clone(),
            n_networks: space.networks.len(),
            n_pes: space.n_pes,
        })
    }

    /// Number of candidates in the grid.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when the grid is empty (a validated space never is).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The grid point at canonical index `idx`.
    pub fn config(&self, idx: usize) -> &RunConfig {
        &self.configs[idx]
    }

    /// Decompose a canonical index into `(scheme, page, network)` axis
    /// positions.
    fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let n = idx % self.n_networks;
        let rest = idx / self.n_networks;
        (
            rest / self.page_sizes.len(),
            rest % self.page_sizes.len(),
            n,
        )
    }

    /// Recompose axis positions into a canonical index.
    fn index(&self, s: usize, p: usize, n: usize) -> usize {
        (s * self.page_sizes.len() + p) * self.n_networks + n
    }
}

/// Content fingerprint of a program: a 64-bit FNV-1a hash over the name,
/// the array declarations (names, extents, init patterns), parameters,
/// scalar slots and the pretty-printed phases. Any observable relabeling
/// or restructuring — renaming an array, resizing a dimension, editing a
/// statement — changes the fingerprint, so memo-cache entries of distinct
/// programs never alias (certified by proptest over registry pairs).
pub fn program_fingerprint(p: &Program) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= 0xff; // field separator so concatenations cannot alias
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    eat(p.name.as_bytes());
    for d in &p.arrays {
        eat(d.name.as_bytes());
        eat(format!("{:?}", d.dims).as_bytes());
        eat(format!("{:?}", d.init).as_bytes());
    }
    eat(format!("{:?}", p.params).as_bytes());
    eat(format!("{:?}", p.scalars).as_bytes());
    eat(pretty::program_to_string(p).as_bytes());
    h
}

/// A memoizing [`Oracle`] wrapper: measurements are cached under
/// `(program fingerprint, RunConfig)` and shared across every query that
/// goes through the same instance. Unsupported verdicts are cached too —
/// re-asking whether a backend can handle a point is as wasteful as
/// re-measuring it. Hard backend errors are *not* cached (they may be
/// transient) but still count as misses: the miss counter is exactly the
/// number of inner-oracle invocations.
pub struct MemoOracle {
    inner: Box<dyn Oracle>,
    cache: Mutex<HashMap<(u64, String), Result<RunRecord, String>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoOracle {
    /// Wrap `inner` with an empty cache.
    pub fn new(inner: Box<dyn Oracle>) -> Self {
        MemoOracle {
            inner,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Measurements answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Measurements forwarded to the inner oracle so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// [`Oracle::measure`] plus whether the answer came from the cache.
    pub fn measure_tracked(
        &self,
        program: &Program,
        cfg: &RunConfig,
    ) -> (Result<RunRecord, OracleError>, bool) {
        let key = (program_fingerprint(program), format!("{cfg:?}"));
        if let Some(entry) = self.cache.lock().expect("memo cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let res = entry
                .clone()
                .map_err(|m| OracleError::Unsupported(m.clone()));
            return (res, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let res = self.inner.measure(program, cfg);
        let entry = match &res {
            Ok(rec) => Some(Ok(rec.clone())),
            Err(OracleError::Unsupported(m)) => Some(Err(m.clone())),
            Err(_) => None,
        };
        if let Some(entry) = entry {
            self.cache
                .lock()
                .expect("memo cache poisoned")
                .insert(key, entry);
        }
        (res, false)
    }
}

impl Oracle for MemoOracle {
    fn name(&self) -> &'static str {
        "memo"
    }

    fn measure(&self, program: &Program, cfg: &RunConfig) -> Result<RunRecord, OracleError> {
        self.measure_tracked(program, cfg).0
    }
}

/// The guided strategies' default backend: the zero-execution
/// [`StaticOracle`] for uncached affine points, the auto-selecting replay
/// engine for everything else. The static estimator is certified
/// bit-identical to the simulator wherever it answers at all, so the
/// hybrid keeps every winner unchanged while making uncached affine
/// evaluations free of any execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrategyOracle {
    auto: FastCountingOracle,
}

impl Oracle for StrategyOracle {
    fn name(&self) -> &'static str {
        "static+auto"
    }

    fn measure(&self, program: &Program, cfg: &RunConfig) -> Result<RunRecord, OracleError> {
        if cfg.cache_elems == 0 {
            match StaticOracle.measure(program, cfg) {
                Ok(rec) => return Ok(rec),
                Err(OracleError::Unsupported(_)) => {}
                Err(e) => return Err(e),
            }
        }
        self.auto.measure(program, cfg)
    }
}

/// What one [`Searcher::search`] query produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// The winner, bit-exactly the exhaustive winner whenever the budget
    /// covered the space.
    pub best: BestConfig,
    /// The winner's full measurement (its `cfg.network` is the winning
    /// topology, an axis [`BestConfig`] predates).
    pub record: RunRecord,
    /// Canonical grid index of the winner.
    pub winner_index: usize,
    /// Which walker produced this report.
    pub strategy: Strategy,
    /// Total candidates in the space.
    pub space_size: usize,
    /// Oracle evaluations this query paid for (memo-cache misses).
    pub oracle_evals: usize,
    /// Candidates answered from the memo cache for free.
    pub cache_hits: usize,
    /// Candidate indices in first-touch evaluation order — the
    /// determinism witness: same seed, same trace, bit for bit.
    pub trace: Vec<usize>,
}

/// Deterministic seeded RNG (SplitMix64): no dependency, stable across
/// platforms, and statistically plenty for Metropolis draws.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Scheme family, for the annealer's "perturb within family" vs "swap
/// family" moves.
fn family(s: PartitionScheme) -> u8 {
    match s {
        PartitionScheme::Modulo => 0,
        PartitionScheme::Block => 1,
        PartitionScheme::BlockCyclic { .. } => 2,
        PartitionScheme::RowBand => 3,
        PartitionScheme::Tile2D { .. } => 4,
    }
}

/// One search invocation: the candidate space materialized exactly once,
/// a memo cache shared across every kernel queried, and the strategy
/// knobs. `search` takes `&self`, so one `Searcher` serves concurrent
/// per-kernel queries (the CLI fans kernels out over it).
pub struct Searcher {
    cands: Candidates,
    memo: MemoOracle,
    params: StrategyParams,
    builds: AtomicUsize,
}

impl Searcher {
    /// Materialize `space` (once) and wrap `inner` in a fresh memo cache.
    pub fn new(
        space: &SearchSpace,
        inner: Box<dyn Oracle>,
        params: StrategyParams,
    ) -> Result<Searcher, PlanError> {
        let builds = AtomicUsize::new(0);
        let cands = Self::build_space(space, &builds)?;
        Ok(Searcher {
            cands,
            memo: MemoOracle::new(inner),
            params,
            builds,
        })
    }

    /// The only path that materializes the candidate space — counted, so
    /// the regression test can assert queries never rebuild it.
    fn build_space(space: &SearchSpace, builds: &AtomicUsize) -> Result<Candidates, PlanError> {
        builds.fetch_add(1, Ordering::SeqCst);
        Candidates::materialize(space)
    }

    /// How many times this invocation materialized its candidate space.
    /// Exactly 1, however many kernels were searched: the space is built
    /// in [`Searcher::new`] and only read afterwards.
    pub fn space_builds(&self) -> usize {
        self.builds.load(Ordering::SeqCst)
    }

    /// The materialized space.
    pub fn candidates(&self) -> &Candidates {
        &self.cands
    }

    /// The strategy knobs this invocation runs with.
    pub fn params(&self) -> &StrategyParams {
        &self.params
    }

    /// Memo-cache hits across all queries so far.
    pub fn cache_hits(&self) -> u64 {
        self.memo.hits()
    }

    /// Inner-oracle invocations across all queries so far.
    pub fn cache_misses(&self) -> u64 {
        self.memo.misses()
    }

    /// Run the configured strategy for one kernel.
    pub fn search(&self, program: &Program) -> Result<SearchReport, PlanError> {
        let mut walk = Walk::new(program, &self.cands, &self.memo, self.params.objective);
        match self.params.strategy {
            Strategy::Exhaustive => walk.canonical_sweep(usize::MAX)?,
            Strategy::Anneal => self.anneal(&mut walk)?,
            Strategy::Propagate => self.propagate(&mut walk)?,
        }
        walk.finish(self.params.strategy)
    }

    /// Simulated annealing over the candidate grid. With the budget
    /// covering the whole space the walk degrades to the canonical pruned
    /// sweep — full coverage, hence the exhaustive winner bit-exactly.
    fn anneal(&self, walk: &mut Walk<'_>) -> Result<(), PlanError> {
        let budget = self.params.budget;
        if budget >= self.cands.len() {
            return walk.canonical_sweep(usize::MAX);
        }
        // Warm start: the propagation ranking's head — the candidate the
        // write-to-read pass believes aligns producers with consumers.
        let order = propagation_order(walk.program, &self.cands);
        let mut rng = SplitMix64(self.params.seed);
        let mut cur = order[0];
        let mut cur_score = walk.eval(cur)?;
        let mut next_start = 1usize;
        while cur_score.is_none() && next_start < order.len() && walk.touched() < budget {
            cur = order[next_start];
            cur_score = walk.eval(cur)?;
            next_start += 1;
        }
        let Some(mut cur_score) = cur_score else {
            return Ok(());
        };
        // Geometric schedule in score units (percent): hot enough to
        // accept ~20-point regressions early, frozen by the budget's end.
        let mut temp = 25.0f64;
        let cooling = 0.92f64;
        let max_steps = budget.saturating_mul(8).max(64);
        for _ in 0..max_steps {
            if walk.touched() >= budget {
                break;
            }
            let prop = self.neighbor(cur, &mut rng);
            // static_score_bound stays inside the acceptance test: a
            // candidate provably unable to beat the incumbent is rejected
            // before it can spend an oracle evaluation.
            if walk.prunable(prop) {
                walk.prune(prop);
                temp *= cooling;
                continue;
            }
            let Some(prop_score) = walk.eval(prop)? else {
                temp *= cooling;
                continue;
            };
            let accept = prop_score <= cur_score
                || rng.unit_f64() < (-(prop_score - cur_score) / temp.max(1e-3)).exp();
            if accept {
                cur = prop;
                cur_score = prop_score;
            }
            temp *= cooling;
        }
        Ok(())
    }

    /// One neighbor move: halve/double the page, perturb within the
    /// scheme family, swap the family, or hop the topology.
    fn neighbor(&self, idx: usize, rng: &mut SplitMix64) -> usize {
        let c = &self.cands;
        let (s, p, n) = c.coords(idx);
        for _ in 0..8 {
            let (mut s2, mut p2, mut n2) = (s, p, n);
            match rng.below(4) {
                0 => {
                    // Page sizes are sorted powers-of-two-ish: one step
                    // along the axis is the halve/double move.
                    if c.page_sizes.len() > 1 {
                        // Go up at the low edge, down at the high edge,
                        // coin-flip in between.
                        let up = p + 1 < c.page_sizes.len() && (p == 0 || rng.below(2) == 1);
                        p2 = if up { p + 1 } else { p - 1 };
                    }
                }
                1 => {
                    // Perturb tile dims / block factor: another scheme of
                    // the same family.
                    let fam = family(c.schemes[s]);
                    let same: Vec<usize> = (0..c.schemes.len())
                        .filter(|&j| j != s && family(c.schemes[j]) == fam)
                        .collect();
                    if !same.is_empty() {
                        s2 = same[rng.below(same.len())];
                    }
                }
                2 => {
                    let fam = family(c.schemes[s]);
                    let other: Vec<usize> = (0..c.schemes.len())
                        .filter(|&j| family(c.schemes[j]) != fam)
                        .collect();
                    if !other.is_empty() {
                        s2 = other[rng.below(other.len())];
                    }
                }
                _ => {
                    if c.n_networks > 1 {
                        let mut j = rng.below(c.n_networks - 1);
                        if j >= n {
                            j += 1;
                        }
                        n2 = j;
                    }
                }
            }
            let cand = c.index(s2, p2, n2);
            if cand != idx {
                return cand;
            }
        }
        (idx + 1) % c.len()
    }

    /// Automap-style propagation: evaluate in write-to-read alignment
    /// order until the budget is spent (or the space is exhausted —
    /// whenever the budget covers the space this is full coverage and
    /// the winner is the exhaustive one bit-exactly).
    fn propagate(&self, walk: &mut Walk<'_>) -> Result<(), PlanError> {
        let order = propagation_order(walk.program, &self.cands);
        for idx in order {
            if walk.touched() >= self.params.budget && walk.best.is_some() {
                break;
            }
            if walk.prunable(idx) {
                walk.prune(idx);
                continue;
            }
            walk.eval(idx)?;
        }
        Ok(())
    }
}

/// Per-query walk state: which candidates were touched, the incumbent
/// under the total winner order, and the evaluation trace.
struct Walk<'a> {
    program: &'a Program,
    cands: &'a Candidates,
    memo: &'a MemoOracle,
    objective: Objective,
    /// Score per touched index; `None` = oracle-unsupported.
    seen: HashMap<usize, Option<f64>>,
    pruned_set: HashSet<usize>,
    trace: Vec<usize>,
    evals: usize,
    hits: usize,
    evaluated: usize,
    best: Option<(usize, RunRecord, f64)>,
}

impl<'a> Walk<'a> {
    fn new(
        program: &'a Program,
        cands: &'a Candidates,
        memo: &'a MemoOracle,
        objective: Objective,
    ) -> Walk<'a> {
        Walk {
            program,
            cands,
            memo,
            objective,
            seen: HashMap::new(),
            pruned_set: HashSet::new(),
            trace: Vec::new(),
            evals: 0,
            hits: 0,
            evaluated: 0,
            best: None,
        }
    }

    /// Can `idx` be skipped without measuring? True when its static score
    /// lower bound already exceeds the incumbent's score — such a
    /// candidate can never win under the total order, whatever the visit
    /// order, because the bound under-approximates the true score.
    fn prunable(&self, idx: usize) -> bool {
        let Some((_, _, incumbent)) = &self.best else {
            return false;
        };
        if self.seen.contains_key(&idx) {
            return false; // already measured: skipping would drop its trace entry
        }
        match static_score_bound(self.program, self.cands.config(idx), self.objective) {
            Some(bound) => bound > *incumbent,
            None => false,
        }
    }

    /// Record a prune (each candidate counted once).
    fn prune(&mut self, idx: usize) {
        self.pruned_set.insert(idx);
    }

    /// Measure `idx` (memoized per query and across queries), fold it
    /// into the incumbent, and return its score (`None` = unsupported).
    fn eval(&mut self, idx: usize) -> Result<Option<f64>, PlanError> {
        if let Some(s) = self.seen.get(&idx) {
            return Ok(*s);
        }
        let (res, hit) = self
            .memo
            .measure_tracked(self.program, self.cands.config(idx));
        let rec = match res {
            Ok(rec) => rec,
            Err(OracleError::Unsupported(_)) => {
                if hit {
                    self.hits += 1;
                } else {
                    self.evals += 1;
                }
                self.trace.push(idx);
                self.seen.insert(idx, None);
                return Ok(None);
            }
            Err(e) => return Err(PlanError::Oracle(e)),
        };
        if hit {
            self.hits += 1;
        } else {
            self.evals += 1;
        }
        self.trace.push(idx);
        self.evaluated += 1;
        let score = self.objective.score(&rec);
        let wins = match &self.best {
            None => true,
            Some((best_idx, best_rec, _)) => {
                // Total order: score, then messages, then canonical grid
                // index — in canonical visit order this is exactly
                // `BestConfig::beats`, and out of order it selects the
                // same global minimum.
                BestConfig::beats(self.objective, &rec, best_rec)
                    || (!BestConfig::beats(self.objective, best_rec, &rec) && idx < *best_idx)
            }
        };
        if wins {
            self.best = Some((idx, rec, score));
        }
        self.seen.insert(idx, Some(score));
        Ok(Some(score))
    }

    /// How many distinct candidates this walk has measured so far (memo
    /// hits included) — the quantity the budget caps, so walks replay
    /// identically on a warm cache.
    fn touched(&self) -> usize {
        self.trace.len()
    }

    /// Canonical-order incumbent sweep with static pruning — the same
    /// walk as [`crate::search::search_with`], capped at `budget`
    /// measured candidates (pass `usize::MAX` for the full sweep).
    fn canonical_sweep(&mut self, budget: usize) -> Result<(), PlanError> {
        for idx in 0..self.cands.len() {
            if self.touched() >= budget && self.best.is_some() {
                break;
            }
            if self.prunable(idx) {
                self.prune(idx);
                continue;
            }
            self.eval(idx)?;
        }
        Ok(())
    }

    /// Project the walk into a [`SearchReport`]; errors when every
    /// touched candidate was oracle-unsupported.
    fn finish(self, strategy: Strategy) -> Result<SearchReport, PlanError> {
        let (winner_index, record, score) = self.best.ok_or_else(|| {
            PlanError::Oracle(OracleError::Unsupported(
                "every candidate configuration was unsupported by the oracle".into(),
            ))
        })?;
        let best = BestConfig {
            scheme: record.cfg.partition,
            page_size: record.cfg.page_size,
            remote_pct: record.remote_pct,
            messages: record.messages,
            write_balance: record.write_balance,
            score,
            evaluated: self.evaluated,
            pruned: self.pruned_set.len(),
        };
        Ok(SearchReport {
            best,
            record,
            winner_index,
            strategy,
            space_size: self.cands.len(),
            oracle_evals: self.evals,
            cache_hits: self.hits,
            trace: self.trace,
        })
    }
}

/// Sampled static evidence of one RAW edge: pairs of (write address,
/// read address) the reader's statement touches at corner/interior
/// iterations, plus the edge's estimated dynamic weight.
struct EdgeProbe {
    write_array: ArrayId,
    read_array: ArrayId,
    weight: f64,
    pairs: Vec<(usize, usize)>,
}

/// Rank every candidate by the write-to-read *misalignment* its
/// placement induces: for each RAW edge of the dependence graph, sample
/// the reader nest's iteration space and compare the owner of the
/// written element (the writer-side placement being pushed forward) with
/// the owners of the elements it reads. Alignment depends only on
/// `(scheme, page size)`, so the cost is computed once per placement and
/// broadcast across the topology axis; ties (including every candidate
/// of a program with no probeable edges) fall back to canonical order,
/// keeping the ranking a deterministic permutation.
fn propagation_order(program: &Program, cands: &Candidates) -> Vec<usize> {
    let probes = edge_probes(program);
    let n_pages = cands.page_sizes.len();
    let mut cost = vec![0.0f64; cands.schemes.len() * n_pages];
    if !probes.is_empty() {
        for (si, &scheme) in cands.schemes.iter().enumerate() {
            for (pi, &page) in cands.page_sizes.iter().enumerate() {
                cost[si * n_pages + pi] = misalignment(program, &probes, scheme, page, cands.n_pes);
            }
        }
    }
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by(|&a, &b| {
        let (sa, pa, _) = cands.coords(a);
        let (sb, pb, _) = cands.coords(b);
        cost[sa * n_pages + pa]
            .total_cmp(&cost[sb * n_pages + pb])
            .then(a.cmp(&b))
    });
    order
}

/// Collect per-edge address samples: every RAW edge whose reader is an
/// affine statement contributes the write/read address pairs at sampled
/// iterations of the reader's nest. Indirect references and scalar
/// broadcasts contribute nothing (their ownership is runtime-resolved),
/// which leaves their candidates ranked by canonical order — never
/// wrongly ranked.
fn edge_probes(program: &Program) -> Vec<EdgeProbe> {
    let graph = DepGraph::build(program);
    let mut out = Vec::new();
    for e in &graph.edges {
        let Some(read_array) = e.array else { continue };
        let Some(Phase::Loop(nest)) = program.phases.get(e.reader.phase) else {
            continue;
        };
        let Some(stmt) = nest.body.get(e.reader.stmt) else {
            continue;
        };
        let Some(anchor) = analysis::anchor_ref(stmt) else {
            continue;
        };
        if anchor.has_indirection() {
            continue;
        }
        let nvars = nest.loops.len();
        let Some((wcoef, woff)) = analysis::linear_address_form(program, anchor, nvars) else {
            continue;
        };
        let rforms: Vec<(Vec<i64>, i64)> = stmt
            .value()
            .reads()
            .into_iter()
            .filter(|r| r.array == read_array && !r.has_indirection())
            .filter_map(|r| analysis::linear_address_form(program, r, nvars))
            .collect();
        if rforms.is_empty() {
            continue;
        }
        let write_len = program.array(anchor.array).len() as i64;
        let read_len = program.array(read_array).len() as i64;
        let mut pairs = Vec::new();
        for ivs in sample_ivs(nest) {
            let wa = dot(&wcoef, &ivs) + woff;
            if wa < 0 || wa >= write_len {
                continue;
            }
            for (rc, ro) in &rforms {
                let ra = dot(rc, &ivs) + ro;
                if ra < 0 || ra >= read_len {
                    continue;
                }
                pairs.push((wa as usize, ra as usize));
            }
        }
        if pairs.is_empty() {
            continue;
        }
        out.push(EdgeProbe {
            write_array: anchor.array,
            read_array,
            weight: trip_estimate(nest) * rforms.len() as f64,
            pairs,
        });
    }
    out
}

fn dot(coeffs: &[i64], ivs: &[i64]) -> i64 {
    coeffs.iter().zip(ivs).map(|(c, v)| c * v).sum()
}

/// Estimated dynamic iteration count of a nest (outer-dependent bounds
/// evaluated at the low corner — an estimate is all the ranking needs).
fn trip_estimate(nest: &sa_ir::LoopNest) -> f64 {
    let mut outer: Vec<i64> = Vec::new();
    let mut total = 1.0f64;
    for lv in &nest.loops {
        total *= lv.trip_count(&outer).max(1) as f64;
        outer.push(lv.lo.eval(&outer));
    }
    total
}

/// Corner/interior samples of a nest's iteration space: per level the
/// first, one-third, two-thirds and last iterations (deduplicated),
/// crossed across levels and capped — boundary iterations are where
/// page-crossing misalignment shows.
fn sample_ivs(nest: &sa_ir::LoopNest) -> Vec<Vec<i64>> {
    let mut out: Vec<Vec<i64>> = vec![Vec::new()];
    for lv in &nest.loops {
        let mut next = Vec::new();
        for prefix in &out {
            let trips = lv.trip_count(prefix);
            if trips == 0 {
                continue;
            }
            let lo = lv.lo.eval(prefix);
            let last = (trips - 1) as i64;
            let mut ks = vec![0, last / 3, 2 * last / 3, last];
            ks.sort_unstable();
            ks.dedup();
            for k in ks {
                let mut v = prefix.clone();
                v.push(lo + k * lv.step);
                next.push(v);
            }
        }
        out = next;
        if out.len() > 256 {
            out.truncate(256);
        }
    }
    out
}

/// Weighted misaligned fraction of all probes under one placement: for
/// each sampled (write, read) pair, does the element written live on a
/// different PE than the element read? Lower is better — zero means the
/// writer's placement, pushed onto the arrays it reads, keeps every
/// sampled dependence PE-local.
fn misalignment(
    program: &Program,
    probes: &[EdgeProbe],
    scheme: PartitionScheme,
    page_size: usize,
    n_pes: usize,
) -> f64 {
    let mut placements: HashMap<usize, Placement> = HashMap::new();
    let place = |placements: &mut HashMap<usize, Placement>, id: ArrayId| {
        placements.entry(id.0).or_insert_with(|| {
            Placement::new(
                scheme,
                page_size,
                n_pes,
                ArrayShape::from_dims(&program.array(id).dims),
            )
        });
    };
    let mut total = 0.0f64;
    for p in probes {
        place(&mut placements, p.write_array);
        place(&mut placements, p.read_array);
        let wp = &placements[&p.write_array.0];
        let rp = &placements[&p.read_array.0];
        let mis = p
            .pairs
            .iter()
            .filter(|&&(wa, ra)| wp.owner_of_addr(wa) != rp.owner_of_addr(ra))
            .count();
        total += p.weight * mis as f64 / p.pairs.len() as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CountingOracle;
    use sa_ir::index::iv;
    use sa_ir::{InitPattern, ProgramBuilder};
    use sa_machine::NetworkTopology;

    fn stream(n: usize) -> Program {
        let mut b = ProgramBuilder::new("stream");
        let y = b.input("Y", &[n + 1], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("s", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(
                x,
                [iv(0)],
                nb.read(y, [iv(0).plus(1)]) - nb.read(y, [iv(0)]),
            );
        });
        b.finish()
    }

    fn wide_space() -> SearchSpace {
        SearchSpace {
            networks: vec![NetworkTopology::Ideal, NetworkTopology::Mesh2D],
            ..SearchSpace::default()
        }
    }

    #[test]
    fn candidate_indexing_round_trips() {
        let c = Candidates::materialize(&wide_space()).unwrap();
        assert_eq!(c.len(), 7 * 6 * 2);
        for idx in 0..c.len() {
            let (s, p, n) = c.coords(idx);
            assert_eq!(c.index(s, p, n), idx);
            let cfg = c.config(idx);
            assert_eq!(cfg.partition, c.schemes[s]);
            assert_eq!(cfg.page_size, c.page_sizes[p]);
        }
    }

    #[test]
    fn fingerprint_distinguishes_relabelings() {
        let p = stream(64);
        let mut q = p.clone();
        q.name.push('!');
        assert_ne!(program_fingerprint(&p), program_fingerprint(&q));
        let mut r = stream(64);
        r.arrays[0].name = "Z".into();
        assert_ne!(program_fingerprint(&p), program_fingerprint(&r));
        assert_ne!(
            program_fingerprint(&stream(64)),
            program_fingerprint(&stream(65))
        );
        assert_eq!(program_fingerprint(&p), program_fingerprint(&stream(64)));
    }

    #[test]
    fn memo_oracle_counts_hits_and_misses() {
        let memo = MemoOracle::new(Box::new(CountingOracle));
        let p = stream(64);
        let cfg = RunConfig::default();
        let (a, hit_a) = memo.measure_tracked(&p, &cfg);
        let (b, hit_b) = memo.measure_tracked(&p, &cfg);
        assert!(!hit_a);
        assert!(hit_b);
        assert_eq!(a.unwrap(), b.unwrap());
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
    }

    #[test]
    fn every_strategy_finds_the_same_winner_on_a_small_space() {
        let p = stream(256);
        let space = wide_space();
        let mut winners = Vec::new();
        for strategy in [Strategy::Exhaustive, Strategy::Anneal, Strategy::Propagate] {
            let s = Searcher::new(
                &space,
                Box::new(CountingOracle),
                StrategyParams {
                    strategy,
                    budget: 1000, // covers the space: exact by construction
                    ..StrategyParams::default()
                },
            )
            .unwrap();
            let rep = s.search(&p).unwrap();
            assert_eq!(rep.space_size, 7 * 6 * 2);
            winners.push((
                rep.best.scheme,
                rep.best.page_size,
                rep.best.score.to_bits(),
                rep.best.messages,
            ));
        }
        assert_eq!(winners[0], winners[1]);
        assert_eq!(winners[0], winners[2]);
    }

    #[test]
    fn propagation_order_is_a_permutation() {
        let p = stream(128);
        let c = Candidates::materialize(&wide_space()).unwrap();
        let order = propagation_order(&p, &c);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..c.len()).collect::<Vec<_>>());
    }
}
