//! End-to-end verification: distributed execution ≡ sequential reference.

use sa_ir::{interpret, Program, ProgramResult};
use sa_machine::MachineConfig;

use crate::exec::simulate;

/// Run `program` both sequentially and distributed under `cfg`, and compare
/// every defined array cell and every scalar (tolerance 1e-9, to absorb the
/// reduction-order difference of distributed partial sums).
pub fn verify_against_reference(program: &Program, cfg: &MachineConfig) -> Result<(), String> {
    let golden = interpret(program).map_err(|e| format!("reference failed: {e}"))?;
    let rep = simulate(program, cfg).map_err(|e| format!("simulation failed: {e}"))?;
    let distributed = ProgramResult {
        arrays: rep.arrays,
        scalars: rep.scalars,
        writes: 0,
        reads: 0,
    };
    golden.assert_matches(&distributed, 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::{InitPattern, ProgramBuilder};

    #[test]
    fn verification_passes_for_clean_kernel() {
        let mut b = ProgramBuilder::new("v");
        let y = b.input("Y", &[257], InitPattern::Harmonic);
        let x = b.output("X", &[257]);
        let s = b.scalar("s");
        b.nest("m", &[("k", 0, 256)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) * 3.0 - 1.0);
            nb.reduce(s, sa_ir::ReduceOp::Max, nb.read(y, [iv(0)]));
        });
        let p = b.finish();
        for n in [1usize, 3, 7, 16] {
            verify_against_reference(&p, &MachineConfig::new(n, 32))
                .unwrap_or_else(|e| panic!("n_pes={n}: {e}"));
        }
    }

    #[test]
    fn verification_is_scheme_independent() {
        use sa_machine::PartitionScheme;
        let mut b = ProgramBuilder::new("v2");
        let y = b.input("Y", &[100], InitPattern::Wavy);
        let x = b.output("X", &[100]);
        b.nest("m", &[("k", 1, 99)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0).plus(-1)]));
        });
        let p = b.finish();
        for scheme in [
            PartitionScheme::Modulo,
            PartitionScheme::Block,
            PartitionScheme::BlockCyclic { block_pages: 2 },
        ] {
            verify_against_reference(&p, &MachineConfig::new(4, 16).with_partition(scheme))
                .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
        }
    }
}
