//! Static classification of loop nests into the paper's four
//! access-distribution classes (§7.1): Matched, Skewed, Cyclic, Random.
//!
//! The paper classified loops *empirically* by looking at simulation graphs;
//! this module derives the same classes from the IR:
//!
//! * every read index equals the write index → **Matched** (§7.1.1);
//! * read addresses track the write address with constant offsets →
//!   **Skewed** with the maximum |offset| as the skew (§7.1.2);
//! * the read address advances at a *different rate* than the write address
//!   (ICCG's `X(k)` vs `X(i)` with `i` moving half as fast), or an outer
//!   loop re-sweeps the address range covered by inner loops (2-D arrays
//!   traversed along the small dimension) → **Cyclic** (§7.1.3);
//! * gathers ("permutation lookups") or reads whose address depends on a
//!   different *set* of loop variables than the write → **Random** (§7.1.4).
//!
//! The dynamic classifier in `sa-core` cross-checks these predictions
//! against measured remote-access curves.

use crate::index::IndexExpr;
use crate::nest::{ArrayRef, LoopNest, Stmt};
use crate::program::Program;

/// Relation between one read reference and the statement's write anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairRelation {
    /// Same linearized address function — always local.
    Identical,
    /// Same per-variable rates, constant address offset (the *skew*).
    Skew(i64),
    /// Same variable support but different advance rates (e.g. read moves
    /// 2 addresses per iteration while the write moves 1).
    RateMismatch,
    /// The read depends on a different set of loop variables than the write.
    Mixed,
    /// The read goes through an index array (gather).
    Indirect,
}

/// The paper's access-distribution classes, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessClass {
    /// Class 1 — matched distribution: 0 % remote reads, always.
    Matched,
    /// Class 2 — skewed distribution; payload is the maximum |skew|.
    Skewed {
        /// Largest constant offset between a read and the write.
        max_skew: u64,
    },
    /// Class 3 — cyclic distribution (rate mismatch or multi-sweep).
    Cyclic,
    /// Class 4 — random distribution (gathers, mixed supports).
    Random,
}

impl AccessClass {
    /// Short display name matching the paper's abbreviations.
    pub fn abbrev(&self) -> &'static str {
        match self {
            AccessClass::Matched => "MD",
            AccessClass::Skewed { .. } => "SD",
            AccessClass::Cyclic => "CD",
            AccessClass::Random => "RD",
        }
    }
}

impl core::fmt::Display for AccessClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AccessClass::Matched => write!(f, "Matched"),
            AccessClass::Skewed { max_skew } => write!(f, "Skewed(±{max_skew})"),
            AccessClass::Cyclic => write!(f, "Cyclic"),
            AccessClass::Random => write!(f, "Random"),
        }
    }
}

/// Classification of one statement.
#[derive(Debug, Clone)]
pub struct StmtReport {
    /// Index within the nest body.
    pub stmt_index: usize,
    /// `(read array name, relation)` per read, in evaluation order.
    pub relations: Vec<(String, PairRelation)>,
    /// Class implied by this statement alone.
    pub class: AccessClass,
}

/// Classification of one nest.
#[derive(Debug, Clone)]
pub struct NestReport {
    /// The nest label.
    pub label: String,
    /// Whether the write traversal re-sweeps its address range (an outer
    /// loop advances more slowly than the span of the loops inside it).
    pub sweep_revisit: bool,
    /// Per-statement details.
    pub stmts: Vec<StmtReport>,
    /// Overall class of the nest.
    pub class: AccessClass,
}

/// Classification of a whole program.
#[derive(Debug, Clone)]
pub struct ProgramReport {
    /// Per-nest reports, in phase order.
    pub nests: Vec<NestReport>,
    /// The program's class: the most severe nest class.
    pub class: AccessClass,
}

/// Linearized affine address function of `aref`: the linear address it
/// touches at iteration `ivs` is `coeffs · ivs + offset` (row-major strides
/// folded in, coefficients padded to `nvars` loop variables). `None` if any
/// index is indirect.
///
/// This is the metadata the compiled access-replay engine
/// (`sa_core::replay`) lowers loop nests with: an all-affine reference's
/// page-ownership pattern is decidable once per nest from this form alone.
pub fn linear_address_form(
    program: &Program,
    aref: &ArrayRef,
    nvars: usize,
) -> Option<(Vec<i64>, i64)> {
    linear_form(program, aref, nvars)
}

/// Linearized affine address function: `coeffs · ivs + offset`.
/// `None` if any index is indirect.
fn linear_form(program: &Program, aref: &ArrayRef, nvars: usize) -> Option<(Vec<i64>, i64)> {
    let decl = program.array(aref.array);
    let strides = decl.strides();
    let mut coeffs = vec![0i64; nvars];
    let mut offset = 0i64;
    for (d, ix) in aref.indices.iter().enumerate() {
        let a = match ix {
            IndexExpr::Affine(a) => a,
            IndexExpr::Indirect { .. } => return None,
        };
        let s = strides[d] as i64;
        for (v, c) in coeffs.iter_mut().enumerate() {
            *c += s * a.coeff(v);
        }
        offset += s * a.offset;
    }
    Some((coeffs, offset))
}

fn support(coeffs: &[i64]) -> Vec<usize> {
    coeffs
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c != 0)
        .map(|(v, _)| v)
        .collect()
}

/// `a` and `b` are scalar multiples of each other (over the rationals).
fn proportional(a: &[i64], b: &[i64]) -> bool {
    for i in 0..a.len() {
        for j in (i + 1)..a.len() {
            if a[i] * b[j] != a[j] * b[i] {
                return false;
            }
        }
    }
    true
}

/// Relation between two linearized affine address forms (as produced by
/// [`linear_address_form`]): the public entry point the static lint pass
/// (`sa-lint`) uses to label conflicting write pairs with the same
/// vocabulary the classifier uses for write/read pairs.
pub fn relate_forms(write: &(Vec<i64>, i64), read: &(Vec<i64>, i64)) -> PairRelation {
    relate(write, read)
}

fn relate(write: &(Vec<i64>, i64), read: &(Vec<i64>, i64)) -> PairRelation {
    let (cw, ow) = write;
    let (cr, or) = read;
    if cw == cr {
        let d = or - ow;
        return if d == 0 {
            PairRelation::Identical
        } else {
            PairRelation::Skew(d)
        };
    }
    if support(cw) == support(cr) && proportional(cw, cr) {
        // Same variables drive both addresses at proportionally different
        // rates → cyclic revisit of a fixed page set (the paper's ICCG,
        // whose write index moves half as fast as its read index).
        PairRelation::RateMismatch
    } else {
        // Different variable sets (GLRE's `W(i-k)` vs write `W(i)`) or
        // incommensurate rates (ADI's `DU1(ky)` vs a plane-strided write):
        // the paper's "seemingly random" address jumps.
        PairRelation::Mixed
    }
}

/// Exact `[min, max]` of an affine reference's *linear address* over the
/// nest's iteration domain, or `None` if any index is indirect or the nest
/// never iterates. Computed by enumerating the outer levels (exact even
/// for triangular bounds) and evaluating the innermost level at its
/// endpoints — an affine address is monotone in the innermost trip.
///
/// This is the footprint primitive the dependence-graph builder
/// (`sa_lint::depgraph`) intersects pairs of references with: two affine
/// references can only be a read-after-write pair if their address ranges
/// overlap.
pub fn affine_address_range(
    program: &Program,
    nest: &LoopNest,
    aref: &ArrayRef,
) -> Option<(i64, i64)> {
    let nvars = nest.loops.len();
    let (coeffs, offset) = linear_address_form(program, aref, nvars)?;
    if nvars == 0 {
        return None;
    }
    let inner = nvars - 1;
    let mut range: Option<(i64, i64)> = None;
    fn rec(
        nest: &LoopNest,
        depth: usize,
        inner: usize,
        ivs: &mut Vec<i64>,
        coeffs: &[i64],
        offset: i64,
        range: &mut Option<(i64, i64)>,
    ) {
        if depth == inner {
            let lv = &nest.loops[inner];
            let trips = lv.trip_count(ivs) as i64;
            if trips == 0 {
                return;
            }
            let lo = lv.lo.eval(ivs);
            let mut at = offset + coeffs[inner] * lo;
            for (v, &iv) in ivs.iter().enumerate() {
                at += coeffs[v] * iv;
            }
            let last = at + coeffs[inner] * lv.step * (trips - 1);
            let (lo_a, hi_a) = (at.min(last), at.max(last));
            *range = Some(match *range {
                None => (lo_a, hi_a),
                Some((l, h)) => (l.min(lo_a), h.max(hi_a)),
            });
            return;
        }
        let lv = &nest.loops[depth];
        let lo = lv.lo.eval(ivs);
        let hi = lv.hi.eval(ivs);
        let mut v = lo;
        while (lv.step > 0 && v <= hi) || (lv.step < 0 && v >= hi) {
            ivs.push(v);
            rec(nest, depth + 1, inner, ivs, coeffs, offset, range);
            ivs.pop();
            v += lv.step;
        }
    }
    let mut ivs = Vec::with_capacity(inner);
    rec(nest, 0, inner, &mut ivs, &coeffs, offset, &mut range);
    range
}

/// Maximum trip count observed at each loop level (exact, by enumeration of
/// the outer levels; cheap at kernel scale). Public so the static
/// write-once verifier can bound per-level iteration spans for its
/// Banerjee-style tests.
pub fn level_extents(nest: &LoopNest) -> Vec<usize> {
    let mut maxima = vec![0usize; nest.loops.len()];
    fn rec(nest: &LoopNest, depth: usize, ivs: &mut Vec<i64>, maxima: &mut [usize]) {
        if depth == nest.loops.len() {
            return;
        }
        let lv = &nest.loops[depth];
        let trips = lv.trip_count(ivs);
        maxima[depth] = maxima[depth].max(trips);
        if depth + 1 == nest.loops.len() {
            return;
        }
        let lo = lv.lo.eval(ivs);
        let hi = lv.hi.eval(ivs);
        let mut v = lo;
        while (lv.step > 0 && v <= hi) || (lv.step < 0 && v >= hi) {
            ivs.push(v);
            rec(nest, depth + 1, ivs, maxima);
            ivs.pop();
            v += lv.step;
        }
    }
    let mut ivs = Vec::new();
    rec(nest, 0, &mut ivs, &mut maxima);
    maxima
}

/// Does the write traversal revisit addresses? True when some outer level's
/// per-iteration address delta is no larger than the span the inner loops
/// cover, so successive outer iterations re-sweep the same pages
/// (the 2-D Explicit Hydrodynamics pattern, paper Fig. 3).
fn sweep_revisits(nest: &LoopNest, write_coeffs: &[i64], extents: &[usize]) -> bool {
    let nvars = nest.loops.len();
    for l in 0..nvars.saturating_sub(1) {
        if extents[l] <= 1 {
            continue;
        }
        let d_l = (write_coeffs[l] * nest.loops[l].step).unsigned_abs();
        if d_l == 0 {
            continue;
        }
        let span_inner: u64 = (l + 1..nvars)
            .map(|v| {
                (write_coeffs[v] * nest.loops[v].step).unsigned_abs()
                    * (extents[v].saturating_sub(1) as u64)
            })
            .sum();
        if d_l <= span_inner && span_inner > 0 {
            return true;
        }
    }
    false
}

/// Does any pair of reads of the same array revisit pages across an outer
/// loop iteration? True when two reads share coefficient vectors and their
/// offsets differ by a small multiple of an outer loop's per-iteration
/// write advance — e.g. 2-D Explicit Hydro reading `ZR(j,k)` and
/// `ZR(j,k-1)`: plane `k-1` is re-read one outer iteration after it was
/// read as plane `k` (paper Fig. 3's "pages are accessed in a cycle").
fn read_revisits(
    nest: &LoopNest,
    write_coeffs: &[i64],
    extents: &[usize],
    reads: &[(usize, Vec<i64>, i64)],
) -> bool {
    let nvars = nest.loops.len();
    if nvars < 2 {
        return false;
    }
    for (a, ra) in reads.iter().enumerate() {
        for rb in reads.iter().skip(a + 1) {
            if ra.0 != rb.0 || ra.1 != rb.1 {
                continue;
            }
            let diff = (ra.2 - rb.2).unsigned_abs();
            if diff == 0 {
                continue;
            }
            for v in 0..nvars - 1 {
                let d_v = (write_coeffs[v] * nest.loops[v].step).unsigned_abs();
                if d_v == 0 || extents[v] <= 1 {
                    continue;
                }
                if diff % d_v == 0 {
                    let laps = diff / d_v;
                    if laps >= 1 && laps < extents[v] as u64 {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// The reference that anchors owner-computes for a statement: the write
/// target for assignments, the first read for reductions (reductions are
/// executed where their data lives and combined at the host PE).
pub fn anchor_ref(stmt: &Stmt) -> Option<&ArrayRef> {
    match stmt {
        Stmt::Assign { target, .. } => Some(target),
        Stmt::Reduce { value, .. } => value.reads().first().copied(),
    }
}

/// True if the statement's anchor goes through an index array, so its
/// owner cannot be computed from the iteration vector alone — the executor
/// must first resolve the gathered subscript (scatter writes `A(P(i)) = …`
/// and indirect-anchored reductions `s ⊕= A(P(i))`).
pub fn has_indirect_anchor(stmt: &Stmt) -> bool {
    anchor_ref(stmt).is_some_and(ArrayRef::has_indirection)
}

/// The index arrays the statement's anchor reads through (deduplicated, in
/// index order); empty for affine or absent anchors. These are the arrays
/// whose single assignment must complete *before* the anchor can be
/// resolved — the SSA sequencing precondition the thread runtime's
/// pre-flight check enforces.
pub fn anchor_index_arrays(stmt: &Stmt) -> Vec<crate::ArrayId> {
    let mut out = Vec::new();
    if let Some(aref) = anchor_ref(stmt) {
        for ix in &aref.indices {
            if let IndexExpr::Indirect { base, .. } = ix {
                if !out.contains(base) {
                    out.push(*base);
                }
            }
        }
    }
    out
}

/// Classify one nest of `program`.
pub fn classify_nest(program: &Program, nest: &LoopNest) -> NestReport {
    let nvars = nest.loops.len();
    let extents = level_extents(nest);
    let mut stmts = Vec::new();
    let mut revisit_any = false;

    for (si, stmt) in nest.body.iter().enumerate() {
        let anchor = anchor_ref(stmt);
        let anchor_form = anchor.and_then(|a| linear_form(program, a, nvars));
        if let (Some(_), Some(form)) = (anchor, &anchor_form) {
            if matches!(stmt, Stmt::Assign { .. }) && sweep_revisits(nest, &form.0, &extents) {
                revisit_any = true;
            }
        }
        let mut relations = Vec::new();
        let mut read_forms: Vec<(usize, Vec<i64>, i64)> = Vec::new();
        for read in stmt.reads() {
            let name = program.array(read.array).name.clone();
            let rel = if read.has_indirection() {
                PairRelation::Indirect
            } else {
                match (&anchor_form, linear_form(program, read, nvars)) {
                    (Some(w), Some(r)) => {
                        let rel = relate(w, &r);
                        read_forms.push((read.array.0, r.0, r.1));
                        rel
                    }
                    _ => PairRelation::Indirect,
                }
            };
            relations.push((name, rel));
        }
        if let Some(form) = &anchor_form {
            if matches!(stmt, Stmt::Assign { .. })
                && read_revisits(nest, &form.0, &extents, &read_forms)
            {
                revisit_any = true;
            }
        }
        // A write through an indirect index (scatter) is Random by itself.
        let scatter = anchor.is_some_and(ArrayRef::has_indirection);
        let class = stmt_class(&relations, scatter);
        stmts.push(StmtReport {
            stmt_index: si,
            relations,
            class,
        });
    }

    let mut class = stmts
        .iter()
        .map(|s| s.class)
        .max()
        .unwrap_or(AccessClass::Matched);
    // A re-sweeping traversal upgrades non-local statements to Cyclic
    // (the "cyclic and skewed combination" of Fig. 3) but never downgrades.
    if revisit_any && matches!(class, AccessClass::Skewed { .. }) {
        class = AccessClass::Cyclic;
    }
    NestReport {
        label: nest.label.clone(),
        sweep_revisit: revisit_any,
        stmts,
        class,
    }
}

fn stmt_class(relations: &[(String, PairRelation)], scatter: bool) -> AccessClass {
    if scatter {
        return AccessClass::Random;
    }
    let mut max_skew = 0u64;
    let mut class = AccessClass::Matched;
    for (_, rel) in relations {
        match rel {
            PairRelation::Identical => {}
            PairRelation::Skew(d) => max_skew = max_skew.max(d.unsigned_abs()),
            PairRelation::RateMismatch => class = class.max(AccessClass::Cyclic),
            PairRelation::Mixed | PairRelation::Indirect => class = class.max(AccessClass::Random),
        }
    }
    if class == AccessClass::Matched && max_skew > 0 {
        class = AccessClass::Skewed { max_skew };
    } else if let AccessClass::Skewed { max_skew: m } = class {
        class = AccessClass::Skewed {
            max_skew: m.max(max_skew),
        };
    }
    class
}

/// Classify every nest of a program; the program class is the most severe.
pub fn classify_program(program: &Program) -> ProgramReport {
    let nests: Vec<NestReport> = program.nests().map(|n| classify_nest(program, n)).collect();
    let class = nests
        .iter()
        .map(|n| n.class)
        .max()
        .unwrap_or(AccessClass::Matched);
    ProgramReport { nests, class }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::index::{iv, AffineIndex};
    use crate::program::InitPattern;

    #[test]
    fn class_ordering_matches_severity() {
        assert!(AccessClass::Matched < AccessClass::Skewed { max_skew: 1 });
        assert!(AccessClass::Skewed { max_skew: 99 } < AccessClass::Cyclic);
        assert!(AccessClass::Cyclic < AccessClass::Random);
        assert_eq!(AccessClass::Random.abbrev(), "RD");
        assert_eq!(
            format!("{}", AccessClass::Skewed { max_skew: 11 }),
            "Skewed(±11)"
        );
    }

    #[test]
    fn matched_loop_is_class_1() {
        // RX(k) = XX(k) - IR(k)  (1-D Particle in a Cell fragment)
        let mut b = ProgramBuilder::new("pic");
        let xx = b.input("XX", &[64], InitPattern::Wavy);
        let ir = b.input("IR", &[64], InitPattern::Harmonic);
        let rx = b.output("RX", &[64]);
        b.nest("k14", &[("k", 0, 63)], |n| {
            n.assign(rx, [iv(0)], n.read(xx, [iv(0)]) - n.read(ir, [iv(0)]));
        });
        let rep = classify_program(&b.finish());
        assert_eq!(rep.class, AccessClass::Matched);
        assert!(!rep.nests[0].sweep_revisit);
        assert!(rep.nests[0].stmts[0]
            .relations
            .iter()
            .all(|(_, r)| *r == PairRelation::Identical));
    }

    #[test]
    fn skewed_loop_reports_max_skew() {
        // X(k) = Q + Y(k)*(R*ZX(k+10) + T*ZX(k+11))  (Hydro Fragment)
        let mut b = ProgramBuilder::new("hydro");
        let y = b.input("Y", &[80], InitPattern::Wavy);
        let zx = b.input("ZX", &[80], InitPattern::Wavy);
        let x = b.output("X", &[80]);
        b.nest("k1", &[("k", 0, 63)], |n| {
            n.assign(
                x,
                [iv(0)],
                n.read(y, [iv(0)]) * (n.read(zx, [iv(0).plus(10)]) + n.read(zx, [iv(0).plus(11)])),
            );
        });
        let rep = classify_program(&b.finish());
        assert_eq!(rep.class, AccessClass::Skewed { max_skew: 11 });
    }

    #[test]
    fn rate_mismatch_is_cyclic() {
        // X(i) = X(2i) - V(2i): read advances twice as fast (ICCG shape).
        let mut b = ProgramBuilder::new("iccg");
        let v = b.input("V", &[128], InitPattern::Wavy);
        let x = b.array_with(
            "X",
            &[128],
            crate::program::ArrayInit::Prefix {
                pattern: InitPattern::Wavy,
                len: 64,
            },
        );
        b.nest("level", &[("t", 0, 31)], |n| {
            n.assign(
                x,
                [iv(0).plus(64)],
                n.read(x, [AffineIndex::scaled_var(2, 0)])
                    - n.read(v, [AffineIndex::scaled_var(2, 0)]),
            );
        });
        let rep = classify_program(&b.finish());
        assert_eq!(rep.class, AccessClass::Cyclic);
    }

    #[test]
    fn multisweep_2d_traversal_is_cyclic() {
        // ZA(j,k) = ZP(j-1,k+1) ... with k outer (extent 5) and j inner:
        // inner loop spans the whole row stride, so pages revisit.
        let mut b = ProgramBuilder::new("hydro2d");
        let zp = b.input("ZP", &[100, 7], InitPattern::Wavy);
        let za = b.output("ZA", &[100, 7]);
        b.nest("k18", &[("k", 1, 5), ("j", 1, 98)], |n| {
            n.assign(
                za,
                [iv(1), iv(0)],
                n.read(zp, [iv(1).plus(-1), iv(0).plus(1)]) + n.read(zp, [iv(1), iv(0)]),
            );
        });
        let rep = classify_program(&b.finish());
        assert!(rep.nests[0].sweep_revisit);
        assert_eq!(rep.class, AccessClass::Cyclic);
    }

    #[test]
    fn mixed_support_is_random() {
        // W(i) accumulated from W(i-k): triangular GLRE shape.
        let mut b = ProgramBuilder::new("glre");
        let bb = b.input("B", &[64, 64], InitPattern::Wavy);
        let w = b.array_with(
            "W",
            &[64],
            crate::program::ArrayInit::Prefix {
                pattern: InitPattern::Wavy,
                len: 1,
            },
        );
        b.nest_loops(
            "k6",
            vec![
                crate::nest::LoopVar::simple("i", 1, 63),
                crate::nest::LoopVar {
                    name: "k".into(),
                    lo: 1.into(),
                    hi: iv(0),
                    step: 1,
                },
            ],
            |n| {
                n.assign(
                    w,
                    [iv(0)],
                    n.read(bb, [iv(0), iv(1)]) * n.read(w, [iv(0).add(&iv(1).scale(-1))]),
                );
            },
        );
        let rep = classify_program(&b.finish());
        assert_eq!(rep.class, AccessClass::Random);
    }

    #[test]
    fn gather_is_random() {
        let mut b = ProgramBuilder::new("perm");
        let d = b.input("D", &[64], InitPattern::Wavy);
        let p = b.input("P", &[64], InitPattern::Permutation { seed: 3 });
        let x = b.output("X", &[64]);
        b.nest("g", &[("k", 0, 63)], |n| {
            n.assign(x, [iv(0)], n.read_indirect(d, p, iv(0)));
        });
        let rep = classify_program(&b.finish());
        assert_eq!(rep.class, AccessClass::Random);
    }

    #[test]
    fn monotone_2d_row_sweep_is_not_cyclic() {
        // A(i,j) = B(i,j-1): i outer over rows, j inner within a row —
        // addresses advance monotonically, no revisit.
        let mut b = ProgramBuilder::new("rows");
        let src = b.input("B", &[16, 32], InitPattern::Wavy);
        let dst = b.output("A", &[16, 32]);
        b.nest("rows", &[("i", 0, 15), ("j", 1, 31)], |n| {
            n.assign(dst, [iv(0), iv(1)], n.read(src, [iv(0), iv(1).plus(-1)]));
        });
        let rep = classify_program(&b.finish());
        assert!(!rep.nests[0].sweep_revisit);
        assert_eq!(rep.class, AccessClass::Skewed { max_skew: 1 });
    }

    #[test]
    fn reduction_anchor_is_first_read() {
        // Q = Σ Z(k)*X(k+5): anchor Z(k); X skewed by 5.
        let mut b = ProgramBuilder::new("dot");
        let z = b.input("Z", &[64], InitPattern::Wavy);
        let x = b.input("X", &[70], InitPattern::Wavy);
        let s = b.scalar("Q");
        b.nest("k3", &[("k", 0, 63)], |n| {
            n.reduce(
                s,
                crate::expr::ReduceOp::Sum,
                n.read(z, [iv(0)]) * n.read(x, [iv(0).plus(5)]),
            );
        });
        let rep = classify_program(&b.finish());
        assert_eq!(rep.class, AccessClass::Skewed { max_skew: 5 });
    }

    #[test]
    fn empty_program_is_matched() {
        let rep = classify_program(&ProgramBuilder::new("empty").finish());
        assert_eq!(rep.class, AccessClass::Matched);
        assert!(rep.nests.is_empty());
    }
}
