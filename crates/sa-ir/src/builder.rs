//! Ergonomic construction of [`Program`]s.
//!
//! Kernels read close to their FORTRAN originals:
//!
//! ```
//! use sa_ir::{ProgramBuilder, InitPattern, index::iv, interpret};
//!
//! // DO 1 k = 1,n:  X(k) = Q + Y(k) * (R*ZX(k+10) + T*ZX(k+11))
//! let n = 100i64;
//! let mut b = ProgramBuilder::new("hydro");
//! let q = b.param("Q", 0.5);
//! let r = b.param("R", 0.25);
//! let t = b.param("T", 0.125);
//! let y = b.input("Y", &[n as usize + 1], InitPattern::Wavy);
//! let zx = b.input("ZX", &[n as usize + 12], InitPattern::Harmonic);
//! let x = b.output("X", &[n as usize + 1]);
//! b.nest("k1", &[("k", 1, n)], |nb| {
//!     let rhs = nb.par(q)
//!         + nb.read(y, [iv(0)])
//!             * (nb.par(r) * nb.read(zx, [iv(0).plus(10)])
//!                 + nb.par(t) * nb.read(zx, [iv(0).plus(11)]));
//!     nb.assign(x, [iv(0)], rhs);
//! });
//! let program = b.finish();
//! assert!(interpret(&program).is_ok());
//! ```

use crate::expr::{Expr, ReduceOp};
use crate::index::{AffineIndex, IndexExpr};
use crate::nest::{ArrayRef, LoopNest, LoopVar, Stmt};
use crate::program::{ArrayDecl, ArrayInit, InitPattern, Phase, Program};
use crate::{ArrayId, ParamId, ScalarId};

/// Builder for [`Program`]s. See the module docs for a worked example.
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Start a program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            program: Program::new(name),
        }
    }

    /// Declare a fully initialized input array.
    pub fn input(&mut self, name: impl Into<String>, dims: &[usize], p: InitPattern) -> ArrayId {
        self.array_with(name, dims, ArrayInit::Full(p))
    }

    /// Declare an undefined (produced) output array.
    pub fn output(&mut self, name: impl Into<String>, dims: &[usize]) -> ArrayId {
        self.array_with(name, dims, ArrayInit::Undefined)
    }

    /// Declare an array with explicit initial definedness.
    pub fn array_with(
        &mut self,
        name: impl Into<String>,
        dims: &[usize],
        init: ArrayInit,
    ) -> ArrayId {
        let id = ArrayId(self.program.arrays.len());
        self.program.arrays.push(ArrayDecl {
            name: name.into(),
            dims: dims.to_vec(),
            init,
        });
        id
    }

    /// Declare a named runtime parameter.
    pub fn param(&mut self, name: impl Into<String>, value: f64) -> ParamId {
        let id = ParamId(self.program.params.len());
        self.program.params.push((name.into(), value));
        id
    }

    /// Declare a scalar reduction slot.
    pub fn scalar(&mut self, name: impl Into<String>) -> ScalarId {
        let id = ScalarId(self.program.scalars.len());
        self.program.scalars.push(name.into());
        id
    }

    /// Add a rectangular nest with constant inclusive bounds
    /// (`(name, lo, hi)` per loop, outermost first) and unit steps.
    pub fn nest(
        &mut self,
        label: impl Into<String>,
        loops: &[(&str, i64, i64)],
        f: impl FnOnce(&mut NestBuilder),
    ) {
        let loops = loops
            .iter()
            .map(|&(name, lo, hi)| LoopVar::simple(name, lo, hi))
            .collect::<Vec<_>>();
        self.nest_loops(label, loops, f);
    }

    /// Add a nest with fully general loops (affine bounds, non-unit steps).
    pub fn nest_loops(
        &mut self,
        label: impl Into<String>,
        loops: Vec<LoopVar>,
        f: impl FnOnce(&mut NestBuilder),
    ) {
        let mut nb = NestBuilder { body: Vec::new() };
        f(&mut nb);
        self.program.phases.push(Phase::Loop(LoopNest {
            label: label.into(),
            loops,
            body: nb.body,
        }));
    }

    /// Add a re-initialization phase for `array` (paper §5).
    pub fn reinit(&mut self, array: ArrayId) {
        self.program.phases.push(Phase::Reinit(array));
    }

    /// Finish and return the program.
    pub fn finish(self) -> Program {
        self.program
    }
}

/// Builds the straight-line body of one nest.
#[derive(Debug)]
pub struct NestBuilder {
    body: Vec<Stmt>,
}

impl NestBuilder {
    /// An array read `array[indices…]` as an expression.
    pub fn read<I>(&self, array: ArrayId, indices: I) -> Expr
    where
        I: IntoIterator,
        I::Item: Into<IndexExpr>,
    {
        Expr::Read(ArrayRef::new(
            array,
            indices.into_iter().map(Into::into).collect(),
        ))
    }

    /// A stencil tap: `array[i0+offsets[0], i1+offsets[1], …]` where `i_d`
    /// is loop variable `d` of the enclosing nest — the row-major
    /// multi-dimensional addressing convention of [`crate::grid::Grid`]
    /// (loop variable `d` walks array dimension `d`). One offset per array
    /// dimension.
    pub fn read_off(&self, array: ArrayId, offsets: &[i64]) -> Expr {
        Expr::Read(ArrayRef::new(array, crate::grid::offset_taps(offsets)))
    }

    /// Append the stencil write `array[i0+offsets[0], …] ← value` — the
    /// assignment counterpart of [`NestBuilder::read_off`].
    pub fn assign_off(&mut self, array: ArrayId, offsets: &[i64], value: impl Into<Expr>) {
        self.body.push(Stmt::Assign {
            target: ArrayRef::new(array, crate::grid::offset_taps(offsets)),
            value: value.into(),
        });
    }

    /// A rank-1 gather `data[ base[pos] ]`.
    pub fn read_indirect(&self, data: ArrayId, base: ArrayId, pos: AffineIndex) -> Expr {
        Expr::Read(ArrayRef::new(
            data,
            vec![IndexExpr::Indirect {
                base,
                pos,
                scale: 1,
                offset: 0,
            }],
        ))
    }

    /// A rank-1 gather with scaling: `data[ scale*base[pos] + offset ]`.
    pub fn read_indirect_scaled(
        &self,
        data: ArrayId,
        base: ArrayId,
        pos: AffineIndex,
        scale: i64,
        offset: i64,
    ) -> Expr {
        Expr::Read(ArrayRef::new(
            data,
            vec![IndexExpr::Indirect {
                base,
                pos,
                scale,
                offset,
            }],
        ))
    }

    /// A parameter as an expression.
    pub fn par(&self, p: ParamId) -> Expr {
        Expr::Param(p)
    }

    /// A previously produced reduction value as an expression.
    pub fn scalar_value(&self, s: ScalarId) -> Expr {
        Expr::Scalar(s)
    }

    /// Append `array[indices…] ← value`.
    pub fn assign<I>(&mut self, array: ArrayId, indices: I, value: impl Into<Expr>)
    where
        I: IntoIterator,
        I::Item: Into<IndexExpr>,
    {
        self.body.push(Stmt::Assign {
            target: ArrayRef::new(array, indices.into_iter().map(Into::into).collect()),
            value: value.into(),
        });
    }

    /// Append the rank-1 scatter `array[ base[pos] ] ← value` — a write
    /// whose target address goes through an index array (the statement
    /// anchor is *indirect*, so executors must resolve it before owner
    /// screening). Single assignment requires the `base[pos]` values hit
    /// by the nest to be pairwise distinct — e.g. a permutation.
    pub fn assign_indirect(
        &mut self,
        array: ArrayId,
        base: ArrayId,
        pos: AffineIndex,
        value: impl Into<Expr>,
    ) {
        self.body.push(Stmt::Assign {
            target: ArrayRef::new(
                array,
                vec![IndexExpr::Indirect {
                    base,
                    pos,
                    scale: 1,
                    offset: 0,
                }],
            ),
            value: value.into(),
        });
    }

    /// Append `scalar ← scalar ⊕ value`.
    pub fn reduce(&mut self, target: ScalarId, op: ReduceOp, value: impl Into<Expr>) {
        self.body.push(Stmt::Reduce {
            target,
            op,
            value: value.into(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::iv;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = ProgramBuilder::new("t");
        let a = b.input("A", &[4], InitPattern::Zero);
        let c = b.output("C", &[4, 4]);
        let p = b.param("Q", 1.0);
        let q = b.param("R", 2.0);
        let s = b.scalar("acc");
        assert_eq!((a, c), (ArrayId(0), ArrayId(1)));
        assert_eq!((p, q), (ParamId(0), ParamId(1)));
        assert_eq!(s, ScalarId(0));
        let prog = b.finish();
        assert_eq!(prog.arrays[1].dims, vec![4, 4]);
        assert_eq!(prog.params[1], ("R".to_string(), 2.0));
    }

    #[test]
    fn nest_builder_produces_statements_in_order() {
        let mut b = ProgramBuilder::new("t");
        let x = b.output("X", &[8]);
        let y = b.input("Y", &[8], InitPattern::Zero);
        let s = b.scalar("sum");
        b.nest("n", &[("k", 0, 7)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) * 3.0);
            nb.reduce(s, ReduceOp::Sum, nb.read(y, [iv(0)]));
        });
        let prog = b.finish();
        let nest = prog.nests().next().unwrap();
        assert_eq!(nest.body.len(), 2);
        assert!(matches!(nest.body[0], Stmt::Assign { .. }));
        assert!(matches!(nest.body[1], Stmt::Reduce { .. }));
        assert_eq!(nest.loops[0].name, "k");
    }

    #[test]
    fn general_nest_supports_steps_and_affine_bounds() {
        let mut b = ProgramBuilder::new("t");
        let x = b.output("X", &[64]);
        b.nest_loops(
            "tri",
            vec![
                LoopVar::simple("i", 1, 5),
                LoopVar {
                    name: "k".into(),
                    lo: 0.into(),
                    hi: iv(0).plus(-1),
                    step: 2,
                },
            ],
            |nb| {
                nb.assign(x, [iv(0).scale(6).add(&iv(1))], Expr::Const(1.0));
            },
        );
        let prog = b.finish();
        let nest = prog.nests().next().unwrap();
        assert_eq!(nest.loops[1].step, 2);
        assert!(nest.iteration_count() > 0);
    }

    #[test]
    fn reinit_phase_recorded() {
        let mut b = ProgramBuilder::new("t");
        let x = b.output("X", &[4]);
        b.reinit(x);
        let prog = b.finish();
        assert_eq!(prog.phases.len(), 1);
        assert!(matches!(prog.phases[0], Phase::Reinit(a) if a == x));
    }
}
