//! Ergonomic construction of [`Program`]s.
//!
//! Kernels read close to their FORTRAN originals:
//!
//! ```
//! use sa_ir::{ProgramBuilder, InitPattern, index::iv, interpret};
//!
//! // DO 1 k = 1,n:  X(k) = Q + Y(k) * (R*ZX(k+10) + T*ZX(k+11))
//! let n = 100i64;
//! let mut b = ProgramBuilder::new("hydro");
//! let q = b.param("Q", 0.5);
//! let r = b.param("R", 0.25);
//! let t = b.param("T", 0.125);
//! let y = b.input("Y", &[n as usize + 1], InitPattern::Wavy);
//! let zx = b.input("ZX", &[n as usize + 12], InitPattern::Harmonic);
//! let x = b.output("X", &[n as usize + 1]);
//! b.nest("k1", &[("k", 1, n)], |nb| {
//!     let rhs = nb.par(q)
//!         + nb.read(y, [iv(0)])
//!             * (nb.par(r) * nb.read(zx, [iv(0).plus(10)])
//!                 + nb.par(t) * nb.read(zx, [iv(0).plus(11)]));
//!     nb.assign(x, [iv(0)], rhs);
//! });
//! let program = b.finish();
//! assert!(interpret(&program).is_ok());
//! ```

use crate::expr::{Expr, ReduceOp};
use crate::index::{AffineIndex, IndexExpr};
use crate::nest::{ArrayRef, LoopNest, LoopVar, Stmt};
use crate::program::{ArrayDecl, ArrayInit, InitPattern, Phase, Program};
use crate::{ArrayId, ParamId, ScalarId};

/// A structural defect detected by [`validate_program`] /
/// [`ProgramBuilder::try_finish`]: the kind of malformed construction that
/// previously surfaced only as a panic or an [`crate::IrError`] deep inside
/// an executor. Each variant carries enough context for the `sa-lint`
/// diagnostic model to point at the offending phase/statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An array declared with no dimensions at all.
    RankZeroArray {
        /// The array's name.
        array: String,
    },
    /// A reference whose index count does not match the declared rank.
    RankMismatch {
        /// The referenced array's name.
        array: String,
        /// Phase index of the nest containing the reference.
        phase: usize,
        /// Indices supplied by the reference.
        got: usize,
        /// Rank the declaration expects.
        want: usize,
    },
    /// A reference to an array id past the declaration table.
    UnknownArray {
        /// The out-of-range id.
        id: usize,
        /// Phase index of the offending reference.
        phase: usize,
    },
    /// A reduction targeting a scalar id past the declaration table.
    UnknownScalar {
        /// The out-of-range id.
        id: usize,
        /// Phase index of the offending statement.
        phase: usize,
    },
    /// A parameter expression naming an undeclared parameter.
    UnknownParam {
        /// The out-of-range id.
        id: usize,
        /// Phase index of the offending expression.
        phase: usize,
    },
    /// An index or bound referencing a loop variable the nest lacks
    /// (or, for bounds, one at or inside its own level).
    UnboundLoopVar {
        /// The nest's label.
        nest: String,
        /// The referenced variable index.
        var: usize,
        /// Loop variables actually in scope at that point.
        in_scope: usize,
    },
    /// A loop with step 0, which would never terminate.
    ZeroStep {
        /// The nest's label.
        nest: String,
        /// The offending loop variable's name.
        var: String,
    },
    /// A gather through an index array that is not rank 1.
    IndexArrayNotRank1 {
        /// The index array's name.
        array: String,
        /// Phase index of the offending gather.
        phase: usize,
    },
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BuildError::RankZeroArray { array } => {
                write!(f, "array `{array}` is declared with no dimensions")
            }
            BuildError::RankMismatch {
                array,
                phase,
                got,
                want,
            } => write!(
                f,
                "phase {phase}: reference to `{array}` has {got} indices but rank is {want}"
            ),
            BuildError::UnknownArray { id, phase } => {
                write!(f, "phase {phase}: reference to undeclared array #{id}")
            }
            BuildError::UnknownScalar { id, phase } => {
                write!(f, "phase {phase}: reduction into undeclared scalar #{id}")
            }
            BuildError::UnknownParam { id, phase } => {
                write!(f, "phase {phase}: use of undeclared parameter #{id}")
            }
            BuildError::UnboundLoopVar {
                nest,
                var,
                in_scope,
            } => write!(
                f,
                "nest `{nest}`: index references loop variable {var} but only {in_scope} are in scope"
            ),
            BuildError::ZeroStep { nest, var } => {
                write!(f, "nest `{nest}`: loop `{var}` has step 0 and would never terminate")
            }
            BuildError::IndexArrayNotRank1 { array, phase } => {
                write!(f, "phase {phase}: index array `{array}` must be rank 1")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Program`]s. See the module docs for a worked example.
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Start a program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            program: Program::new(name),
        }
    }

    /// Declare a fully initialized input array.
    pub fn input(&mut self, name: impl Into<String>, dims: &[usize], p: InitPattern) -> ArrayId {
        self.array_with(name, dims, ArrayInit::Full(p))
    }

    /// Declare an undefined (produced) output array.
    pub fn output(&mut self, name: impl Into<String>, dims: &[usize]) -> ArrayId {
        self.array_with(name, dims, ArrayInit::Undefined)
    }

    /// Declare an array with explicit initial definedness.
    pub fn array_with(
        &mut self,
        name: impl Into<String>,
        dims: &[usize],
        init: ArrayInit,
    ) -> ArrayId {
        let id = ArrayId(self.program.arrays.len());
        self.program.arrays.push(ArrayDecl {
            name: name.into(),
            dims: dims.to_vec(),
            init,
        });
        id
    }

    /// Declare a named runtime parameter.
    pub fn param(&mut self, name: impl Into<String>, value: f64) -> ParamId {
        let id = ParamId(self.program.params.len());
        self.program.params.push((name.into(), value));
        id
    }

    /// Declare a scalar reduction slot.
    pub fn scalar(&mut self, name: impl Into<String>) -> ScalarId {
        let id = ScalarId(self.program.scalars.len());
        self.program.scalars.push(name.into());
        id
    }

    /// Add a rectangular nest with constant inclusive bounds
    /// (`(name, lo, hi)` per loop, outermost first) and unit steps.
    pub fn nest(
        &mut self,
        label: impl Into<String>,
        loops: &[(&str, i64, i64)],
        f: impl FnOnce(&mut NestBuilder),
    ) {
        let loops = loops
            .iter()
            .map(|&(name, lo, hi)| LoopVar::simple(name, lo, hi))
            .collect::<Vec<_>>();
        self.nest_loops(label, loops, f);
    }

    /// Add a nest with fully general loops (affine bounds, non-unit steps).
    pub fn nest_loops(
        &mut self,
        label: impl Into<String>,
        loops: Vec<LoopVar>,
        f: impl FnOnce(&mut NestBuilder),
    ) {
        let mut nb = NestBuilder { body: Vec::new() };
        f(&mut nb);
        self.program.phases.push(Phase::Loop(LoopNest {
            label: label.into(),
            loops,
            body: nb.body,
        }));
    }

    /// Add a re-initialization phase for `array` (paper §5).
    pub fn reinit(&mut self, array: ArrayId) {
        self.program.phases.push(Phase::Reinit(array));
    }

    /// Finish and return the program.
    pub fn finish(self) -> Program {
        self.program
    }

    /// Finish after structural validation: every malformed construction
    /// that `finish` would let through to panic or error deep inside an
    /// executor is reported here as a typed [`BuildError`] instead.
    pub fn try_finish(self) -> Result<Program, BuildError> {
        validate_program(&self.program)?;
        Ok(self.program)
    }
}

/// Structurally validate a program: declaration ranks, id ranges, loop
/// variable scoping, loop steps and index-array shapes. This is the static
/// counterpart of the panics/[`crate::IrError`]s executors raise at run
/// time, shared by [`ProgramBuilder::try_finish`] and the `sa-lint` pass.
pub fn validate_program(program: &Program) -> Result<(), BuildError> {
    for decl in &program.arrays {
        if decl.dims.is_empty() {
            return Err(BuildError::RankZeroArray {
                array: decl.name.clone(),
            });
        }
    }
    for (phase_idx, phase) in program.phases.iter().enumerate() {
        match phase {
            Phase::Reinit(id) => {
                if id.0 >= program.arrays.len() {
                    return Err(BuildError::UnknownArray {
                        id: id.0,
                        phase: phase_idx,
                    });
                }
            }
            Phase::Loop(nest) => validate_nest(program, nest, phase_idx)?,
        }
    }
    Ok(())
}

fn validate_nest(program: &Program, nest: &LoopNest, phase: usize) -> Result<(), BuildError> {
    let nvars = nest.loops.len();
    for (level, lv) in nest.loops.iter().enumerate() {
        if lv.step == 0 {
            return Err(BuildError::ZeroStep {
                nest: nest.label.clone(),
                var: lv.name.clone(),
            });
        }
        // Bounds may only reference strictly-outer loop variables.
        for bound in [&lv.lo, &lv.hi] {
            if let Some(var) = first_var_at_or_past(bound, level) {
                return Err(BuildError::UnboundLoopVar {
                    nest: nest.label.clone(),
                    var,
                    in_scope: level,
                });
            }
        }
    }
    for stmt in &nest.body {
        if let Stmt::Reduce { target, .. } = stmt {
            if target.0 >= program.scalars.len() {
                return Err(BuildError::UnknownScalar {
                    id: target.0,
                    phase,
                });
            }
        }
        if let Some(target) = stmt.write_target() {
            validate_ref(program, target, nvars, &nest.label, phase)?;
        }
        validate_expr(program, stmt.value(), nvars, &nest.label, phase)?;
    }
    Ok(())
}

fn validate_expr(
    program: &Program,
    expr: &Expr,
    nvars: usize,
    nest: &str,
    phase: usize,
) -> Result<(), BuildError> {
    match expr {
        Expr::Read(aref) => validate_ref(program, aref, nvars, nest, phase),
        Expr::Param(p) if p.0 >= program.params.len() => {
            Err(BuildError::UnknownParam { id: p.0, phase })
        }
        Expr::Scalar(s) if s.0 >= program.scalars.len() => {
            Err(BuildError::UnknownScalar { id: s.0, phase })
        }
        Expr::Unary(_, a) => validate_expr(program, a, nvars, nest, phase),
        Expr::Binary(_, a, b) => {
            validate_expr(program, a, nvars, nest, phase)?;
            validate_expr(program, b, nvars, nest, phase)
        }
        _ => Ok(()),
    }
}

fn validate_ref(
    program: &Program,
    aref: &ArrayRef,
    nvars: usize,
    nest: &str,
    phase: usize,
) -> Result<(), BuildError> {
    if aref.array.0 >= program.arrays.len() {
        return Err(BuildError::UnknownArray {
            id: aref.array.0,
            phase,
        });
    }
    let decl = program.array(aref.array);
    if aref.indices.len() != decl.rank() {
        return Err(BuildError::RankMismatch {
            array: decl.name.clone(),
            phase,
            got: aref.indices.len(),
            want: decl.rank(),
        });
    }
    for ix in &aref.indices {
        let pos = match ix {
            IndexExpr::Affine(a) => a,
            IndexExpr::Indirect { base, pos, .. } => {
                if base.0 >= program.arrays.len() {
                    return Err(BuildError::UnknownArray { id: base.0, phase });
                }
                let base_decl = program.array(*base);
                if base_decl.rank() != 1 {
                    return Err(BuildError::IndexArrayNotRank1 {
                        array: base_decl.name.clone(),
                        phase,
                    });
                }
                pos
            }
        };
        if let Some(var) = first_var_at_or_past(pos, nvars) {
            return Err(BuildError::UnboundLoopVar {
                nest: nest.to_string(),
                var,
                in_scope: nvars,
            });
        }
    }
    Ok(())
}

/// First loop variable with a non-zero coefficient at index ≥ `limit`.
fn first_var_at_or_past(a: &AffineIndex, limit: usize) -> Option<usize> {
    a.coeffs
        .iter()
        .enumerate()
        .skip(limit)
        .find(|&(_, &c)| c != 0)
        .map(|(v, _)| v)
}

/// Builds the straight-line body of one nest.
#[derive(Debug)]
pub struct NestBuilder {
    body: Vec<Stmt>,
}

impl NestBuilder {
    /// An array read `array[indices…]` as an expression.
    pub fn read<I>(&self, array: ArrayId, indices: I) -> Expr
    where
        I: IntoIterator,
        I::Item: Into<IndexExpr>,
    {
        Expr::Read(ArrayRef::new(
            array,
            indices.into_iter().map(Into::into).collect(),
        ))
    }

    /// A stencil tap: `array[i0+offsets[0], i1+offsets[1], …]` where `i_d`
    /// is loop variable `d` of the enclosing nest — the row-major
    /// multi-dimensional addressing convention of [`crate::grid::Grid`]
    /// (loop variable `d` walks array dimension `d`). One offset per array
    /// dimension.
    pub fn read_off(&self, array: ArrayId, offsets: &[i64]) -> Expr {
        Expr::Read(ArrayRef::new(array, crate::grid::offset_taps(offsets)))
    }

    /// Append the stencil write `array[i0+offsets[0], …] ← value` — the
    /// assignment counterpart of [`NestBuilder::read_off`].
    pub fn assign_off(&mut self, array: ArrayId, offsets: &[i64], value: impl Into<Expr>) {
        self.body.push(Stmt::Assign {
            target: ArrayRef::new(array, crate::grid::offset_taps(offsets)),
            value: value.into(),
        });
    }

    /// A rank-1 gather `data[ base[pos] ]`.
    pub fn read_indirect(&self, data: ArrayId, base: ArrayId, pos: AffineIndex) -> Expr {
        Expr::Read(ArrayRef::new(
            data,
            vec![IndexExpr::Indirect {
                base,
                pos,
                scale: 1,
                offset: 0,
            }],
        ))
    }

    /// A rank-1 gather with scaling: `data[ scale*base[pos] + offset ]`.
    pub fn read_indirect_scaled(
        &self,
        data: ArrayId,
        base: ArrayId,
        pos: AffineIndex,
        scale: i64,
        offset: i64,
    ) -> Expr {
        Expr::Read(ArrayRef::new(
            data,
            vec![IndexExpr::Indirect {
                base,
                pos,
                scale,
                offset,
            }],
        ))
    }

    /// A parameter as an expression.
    pub fn par(&self, p: ParamId) -> Expr {
        Expr::Param(p)
    }

    /// A previously produced reduction value as an expression.
    pub fn scalar_value(&self, s: ScalarId) -> Expr {
        Expr::Scalar(s)
    }

    /// Append `array[indices…] ← value`.
    pub fn assign<I>(&mut self, array: ArrayId, indices: I, value: impl Into<Expr>)
    where
        I: IntoIterator,
        I::Item: Into<IndexExpr>,
    {
        self.body.push(Stmt::Assign {
            target: ArrayRef::new(array, indices.into_iter().map(Into::into).collect()),
            value: value.into(),
        });
    }

    /// Append the rank-1 scatter `array[ base[pos] ] ← value` — a write
    /// whose target address goes through an index array (the statement
    /// anchor is *indirect*, so executors must resolve it before owner
    /// screening). Single assignment requires the `base[pos]` values hit
    /// by the nest to be pairwise distinct — e.g. a permutation.
    pub fn assign_indirect(
        &mut self,
        array: ArrayId,
        base: ArrayId,
        pos: AffineIndex,
        value: impl Into<Expr>,
    ) {
        self.body.push(Stmt::Assign {
            target: ArrayRef::new(
                array,
                vec![IndexExpr::Indirect {
                    base,
                    pos,
                    scale: 1,
                    offset: 0,
                }],
            ),
            value: value.into(),
        });
    }

    /// Append `scalar ← scalar ⊕ value`.
    pub fn reduce(&mut self, target: ScalarId, op: ReduceOp, value: impl Into<Expr>) {
        self.body.push(Stmt::Reduce {
            target,
            op,
            value: value.into(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::iv;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = ProgramBuilder::new("t");
        let a = b.input("A", &[4], InitPattern::Zero);
        let c = b.output("C", &[4, 4]);
        let p = b.param("Q", 1.0);
        let q = b.param("R", 2.0);
        let s = b.scalar("acc");
        assert_eq!((a, c), (ArrayId(0), ArrayId(1)));
        assert_eq!((p, q), (ParamId(0), ParamId(1)));
        assert_eq!(s, ScalarId(0));
        let prog = b.finish();
        assert_eq!(prog.arrays[1].dims, vec![4, 4]);
        assert_eq!(prog.params[1], ("R".to_string(), 2.0));
    }

    #[test]
    fn nest_builder_produces_statements_in_order() {
        let mut b = ProgramBuilder::new("t");
        let x = b.output("X", &[8]);
        let y = b.input("Y", &[8], InitPattern::Zero);
        let s = b.scalar("sum");
        b.nest("n", &[("k", 0, 7)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) * 3.0);
            nb.reduce(s, ReduceOp::Sum, nb.read(y, [iv(0)]));
        });
        let prog = b.finish();
        let nest = prog.nests().next().unwrap();
        assert_eq!(nest.body.len(), 2);
        assert!(matches!(nest.body[0], Stmt::Assign { .. }));
        assert!(matches!(nest.body[1], Stmt::Reduce { .. }));
        assert_eq!(nest.loops[0].name, "k");
    }

    #[test]
    fn general_nest_supports_steps_and_affine_bounds() {
        let mut b = ProgramBuilder::new("t");
        let x = b.output("X", &[64]);
        b.nest_loops(
            "tri",
            vec![
                LoopVar::simple("i", 1, 5),
                LoopVar {
                    name: "k".into(),
                    lo: 0.into(),
                    hi: iv(0).plus(-1),
                    step: 2,
                },
            ],
            |nb| {
                nb.assign(x, [iv(0).scale(6).add(&iv(1))], Expr::Const(1.0));
            },
        );
        let prog = b.finish();
        let nest = prog.nests().next().unwrap();
        assert_eq!(nest.loops[1].step, 2);
        assert!(nest.iteration_count() > 0);
    }

    #[test]
    fn reinit_phase_recorded() {
        let mut b = ProgramBuilder::new("t");
        let x = b.output("X", &[4]);
        b.reinit(x);
        let prog = b.finish();
        assert_eq!(prog.phases.len(), 1);
        assert!(matches!(prog.phases[0], Phase::Reinit(a) if a == x));
    }
}
