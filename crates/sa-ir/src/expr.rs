//! Scalar expression trees evaluated over `f64`.

use crate::nest::ArrayRef;
use crate::{ParamId, ScalarId};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
}

impl BinOp {
    /// Apply the operator.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-a`
    Neg,
    /// `|a|`
    Abs,
    /// `sqrt(a)`
    Sqrt,
    /// `exp(a)`
    Exp,
    /// `1/a`
    Recip,
}

impl UnaryOp {
    /// Apply the operator.
    pub fn apply(self, a: f64) -> f64 {
        match self {
            UnaryOp::Neg => -a,
            UnaryOp::Abs => a.abs(),
            UnaryOp::Sqrt => a.sqrt(),
            UnaryOp::Exp => a.exp(),
            UnaryOp::Recip => 1.0 / a,
        }
    }
}

/// Reduction operators for vector→scalar statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Running sum (identity 0).
    Sum,
    /// Running product (identity 1).
    Prod,
    /// Running maximum (identity −∞).
    Max,
    /// Running minimum (identity +∞).
    Min,
}

impl ReduceOp {
    /// The operator's identity element.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Prod => 1.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
        }
    }

    /// Combine an accumulator with a new value.
    pub fn combine(self, acc: f64, v: f64) -> f64 {
        match self {
            ReduceOp::Sum => acc + v,
            ReduceOp::Prod => acc * v,
            ReduceOp::Max => acc.max(v),
            ReduceOp::Min => acc.min(v),
        }
    }
}

/// A scalar expression over array reads, parameters and loop variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Const(f64),
    /// A runtime parameter (`Q`, `R`, `T`, …).
    Param(ParamId),
    /// A previously produced reduction result.
    Scalar(ScalarId),
    /// The value of loop variable `v` as an `f64`.
    LoopVar(usize),
    /// An array element read.
    Read(ArrayRef),
    /// Unary application.
    Unary(UnaryOp, Box<Expr>),
    /// Binary application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// `min(self, rhs)`.
    pub fn min(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Min, Box::new(self), Box::new(rhs))
    }

    /// `max(self, rhs)`.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Max, Box::new(self), Box::new(rhs))
    }

    /// `sqrt(self)`.
    pub fn sqrt(self) -> Expr {
        Expr::Unary(UnaryOp::Sqrt, Box::new(self))
    }

    /// `|self|`.
    pub fn abs(self) -> Expr {
        Expr::Unary(UnaryOp::Abs, Box::new(self))
    }

    /// Collect every [`ArrayRef`] read anywhere in the expression,
    /// in left-to-right evaluation order.
    pub fn reads(&self) -> Vec<&ArrayRef> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads<'a>(&'a self, out: &mut Vec<&'a ArrayRef>) {
        match self {
            Expr::Read(r) => out.push(r),
            Expr::Unary(_, a) => a.collect_reads(out),
            Expr::Binary(_, a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            Expr::Const(_) | Expr::Param(_) | Expr::Scalar(_) | Expr::LoopVar(_) => {}
        }
    }

    /// Visit every [`ArrayRef`] mutably (used by the SA-conversion pass to
    /// rename arrays in place).
    pub fn visit_reads_mut(&mut self, f: &mut impl FnMut(&mut ArrayRef)) {
        match self {
            Expr::Read(r) => f(r),
            Expr::Unary(_, a) => a.visit_reads_mut(f),
            Expr::Binary(_, a, b) => {
                a.visit_reads_mut(f);
                b.visit_reads_mut(f);
            }
            Expr::Const(_) | Expr::Param(_) | Expr::Scalar(_) | Expr::LoopVar(_) => {}
        }
    }
}

impl From<f64> for Expr {
    fn from(v: f64) -> Self {
        Expr::Const(v)
    }
}

impl From<ParamId> for Expr {
    fn from(p: ParamId) -> Self {
        Expr::Param(p)
    }
}

impl From<ArrayRef> for Expr {
    fn from(r: ArrayRef) -> Self {
        Expr::Read(r)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl std::ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::Binary($op, Box::new(self), Box::new(rhs))
            }
        }
        impl std::ops::$trait<f64> for Expr {
            type Output = Expr;
            fn $method(self, rhs: f64) -> Expr {
                Expr::Binary($op, Box::new(self), Box::new(Expr::Const(rhs)))
            }
        }
        impl std::ops::$trait<Expr> for f64 {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::Binary($op, Box::new(Expr::Const(self)), Box::new(rhs))
            }
        }
    };
}

impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(Div, div, BinOp::Div);

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Unary(UnaryOp::Neg, Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::iv;
    use crate::ArrayId;

    fn r(a: usize) -> ArrayRef {
        ArrayRef::new(ArrayId(a), vec![iv(0).into()])
    }

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinOp::Div.apply(3.0, 2.0), 1.5);
        assert_eq!(BinOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(BinOp::Max.apply(2.0, 3.0), 3.0);
    }

    #[test]
    fn unary_semantics() {
        assert_eq!(UnaryOp::Neg.apply(2.0), -2.0);
        assert_eq!(UnaryOp::Abs.apply(-2.0), 2.0);
        assert_eq!(UnaryOp::Sqrt.apply(9.0), 3.0);
        assert_eq!(UnaryOp::Recip.apply(4.0), 0.25);
        assert!((UnaryOp::Exp.apply(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reduce_identities_and_combine() {
        assert_eq!(ReduceOp::Sum.identity(), 0.0);
        assert_eq!(ReduceOp::Prod.identity(), 1.0);
        assert_eq!(ReduceOp::Sum.combine(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Max.combine(f64::NEG_INFINITY, -4.0), -4.0);
        assert_eq!(ReduceOp::Min.combine(f64::INFINITY, 7.0), 7.0);
        assert_eq!(ReduceOp::Prod.combine(3.0, 4.0), 12.0);
    }

    #[test]
    fn operator_overloads_build_trees() {
        let e = Expr::from(2.0) * Expr::Read(r(0)) + 1.0;
        match &e {
            Expr::Binary(BinOp::Add, lhs, rhs) => {
                assert!(matches!(**rhs, Expr::Const(c) if c == 1.0));
                assert!(matches!(**lhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected tree {other:?}"),
        }
        let neg = -Expr::Const(5.0);
        assert!(matches!(neg, Expr::Unary(UnaryOp::Neg, _)));
    }

    #[test]
    fn reads_collects_in_eval_order() {
        let e = Expr::Read(r(0)) + Expr::Read(r(1)) * Expr::Read(r(2));
        let reads = e.reads();
        let ids: Vec<usize> = reads.iter().map(|r| r.array.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn visit_reads_mut_renames() {
        let mut e = Expr::Read(r(0)) + Expr::Read(r(0));
        e.visit_reads_mut(&mut |r| r.array = ArrayId(9));
        assert!(e.reads().iter().all(|r| r.array == ArrayId(9)));
    }
}
