//! Row-major multi-dimensional addressing for grid-shaped workloads.
//!
//! The stencil and sparse workloads beyond the paper's 1-D kernels all
//! address rectangular grids whose loop nest maps loop variable `d` onto
//! array dimension `d` (the natural row-major orientation: the innermost
//! loop walks the unit-stride dimension). [`Grid`] is that convention as a
//! value: it linearizes index vectors exactly like [`ArrayDecl`] declares
//! them, and it builds the per-dimension [`IndexExpr`]s a stencil tap needs
//! — so the addressing used to *construct* a kernel and the addressing the
//! partitioner *screens* with are provably the same function
//! (`tests/partition_props.rs` checks `owner(linearize(i,j,k))` agreement
//! against [`ArrayDecl::linearize`] for random dims and schemes).
//!
//! [`ArrayDecl`]: crate::program::ArrayDecl
//! [`ArrayDecl::linearize`]: crate::program::ArrayDecl::linearize

use crate::index::{AffineIndex, IndexExpr};

/// Why a [`Grid`] construction or tap request was rejected.
///
/// The panicking constructors ([`Grid::new`], [`Grid::at`]) delegate to the
/// `try_` variants and unwrap, so hot construction paths that want to
/// surface problems as data (the `sa-lint` diagnostic model) can use
/// [`Grid::try_new`]/[`Grid::try_at`] instead of catching panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// An empty dimension list: a zero-rank grid has no addressing.
    NoDimensions,
    /// A stencil tap whose offset vector does not match the grid's rank.
    TapRankMismatch {
        /// The grid's rank.
        rank: usize,
        /// The offending offset vector's length.
        got: usize,
    },
}

impl core::fmt::Display for GridError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GridError::NoDimensions => write!(f, "Grid needs at least one dimension"),
            GridError::TapRankMismatch { rank, got } => write!(
                f,
                "stencil tap rank must match the grid rank ({got} offsets for rank {rank})"
            ),
        }
    }
}

impl std::error::Error for GridError {}

/// A rectangular row-major grid: dimension extents, outermost first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    dims: Vec<usize>,
}

impl Grid {
    /// A grid with the given extents (outermost first). Panics on an empty
    /// dimension list — a zero-rank grid has no addressing to speak of.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "Grid needs at least one dimension");
        Grid {
            dims: dims.to_vec(),
        }
    }

    /// [`Grid::new`] with the failure as a value instead of a panic.
    pub fn try_new(dims: &[usize]) -> Result<Self, GridError> {
        if dims.is_empty() {
            return Err(GridError::NoDimensions);
        }
        Ok(Grid {
            dims: dims.to_vec(),
        })
    }

    /// Dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True if any extent is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides: `strides()[d]` is the linear-address step of one
    /// increment in dimension `d`. Identical to
    /// [`crate::program::ArrayDecl::strides`] for the same extents.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.dims.len()];
        for d in (0..self.dims.len().saturating_sub(1)).rev() {
            s[d] = s[d + 1] * self.dims[d + 1];
        }
        s
    }

    /// True if `idx` is inside the grid on every dimension.
    pub fn contains(&self, idx: &[i64]) -> bool {
        idx.len() == self.dims.len()
            && idx
                .iter()
                .zip(&self.dims)
                .all(|(&i, &e)| i >= 0 && (i as usize) < e)
    }

    /// Row-major linear address of `idx`, or `None` when `idx` has the
    /// wrong rank or falls outside the grid.
    pub fn linearize(&self, idx: &[i64]) -> Option<usize> {
        if !self.contains(idx) {
            return None;
        }
        let mut addr = 0usize;
        for (&i, &e) in idx.iter().zip(&self.dims) {
            addr = addr * e + i as usize;
        }
        Some(addr)
    }

    /// The stencil-tap index vector at constant per-dimension `offsets`
    /// from the loop variables: dimension `d` is indexed `i_d + offsets[d]`
    /// where `i_d` is loop variable `d` of the enclosing nest. Panics if
    /// `offsets` does not match the grid's rank.
    pub fn at(&self, offsets: &[i64]) -> Vec<IndexExpr> {
        assert_eq!(
            offsets.len(),
            self.dims.len(),
            "stencil tap rank must match the grid rank"
        );
        offset_taps(offsets)
    }

    /// [`Grid::at`] with the rank mismatch as a value instead of a panic.
    pub fn try_at(&self, offsets: &[i64]) -> Result<Vec<IndexExpr>, GridError> {
        if offsets.len() != self.dims.len() {
            return Err(GridError::TapRankMismatch {
                rank: self.dims.len(),
                got: offsets.len(),
            });
        }
        Ok(offset_taps(offsets))
    }
}

/// The row-major tap convention as a function: dimension `d` of the result
/// indexes `i_d + offsets[d]`, where `i_d` is loop variable `d` of the
/// enclosing nest. This is the single definition behind [`Grid::at`] and
/// [`crate::builder::NestBuilder::read_off`]/`assign_off`.
pub fn offset_taps(offsets: &[i64]) -> Vec<IndexExpr> {
    offsets
        .iter()
        .enumerate()
        .map(|(d, &o)| IndexExpr::Affine(AffineIndex::var(d).plus(o)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ArrayDecl, ArrayInit};

    #[test]
    fn linearize_matches_array_decl() {
        let g = Grid::new(&[4, 5, 6]);
        let d = ArrayDecl {
            name: "A".into(),
            dims: vec![4, 5, 6],
            init: ArrayInit::Undefined,
        };
        assert_eq!(g.len(), 120);
        assert_eq!(g.strides(), d.strides());
        for i in 0..4i64 {
            for j in 0..5i64 {
                for k in 0..6i64 {
                    assert_eq!(
                        g.linearize(&[i, j, k]).unwrap(),
                        d.linearize(&[i, j, k]).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_bounds_and_rank_mismatch_are_none() {
        let g = Grid::new(&[4, 5]);
        assert_eq!(g.linearize(&[4, 0]), None);
        assert_eq!(g.linearize(&[0, -1]), None);
        assert_eq!(g.linearize(&[1]), None);
        assert!(!g.contains(&[0, 5]));
        assert!(g.contains(&[3, 4]));
    }

    #[test]
    fn at_builds_offset_taps() {
        let g = Grid::new(&[8, 8]);
        let taps = g.at(&[-1, 2]);
        assert_eq!(taps.len(), 2);
        let a0 = taps[0].as_affine().unwrap();
        assert_eq!((a0.coeff(0), a0.offset), (1, -1));
        let a1 = taps[1].as_affine().unwrap();
        assert_eq!((a1.coeff(1), a1.offset), (1, 2));
    }

    #[test]
    #[should_panic(expected = "rank must match")]
    fn at_rejects_wrong_rank() {
        Grid::new(&[8, 8]).at(&[0]);
    }
}
