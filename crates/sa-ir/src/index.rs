//! Index expressions: affine functions of loop variables plus indirection.

use crate::ArrayId;

/// An affine function of the enclosing nest's loop variables:
/// `coeffs[0]*i0 + coeffs[1]*i1 + … + offset`.
///
/// `coeffs` is implicitly zero-extended, so an index built for an inner
/// variable works unchanged if the nest later gains more loops.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineIndex {
    /// Per-loop-variable coefficients, outermost first.
    pub coeffs: Vec<i64>,
    /// Constant offset.
    pub offset: i64,
}

impl AffineIndex {
    /// The constant index `c`.
    pub fn constant(c: i64) -> Self {
        AffineIndex {
            coeffs: Vec::new(),
            offset: c,
        }
    }

    /// The bare loop variable `var` (coefficient 1).
    pub fn var(var: usize) -> Self {
        Self::scaled_var(1, var)
    }

    /// `coeff * var`.
    pub fn scaled_var(coeff: i64, var: usize) -> Self {
        let mut coeffs = vec![0; var + 1];
        coeffs[var] = coeff;
        AffineIndex { coeffs, offset: 0 }
    }

    /// Coefficient of loop variable `var` (0 if absent).
    pub fn coeff(&self, var: usize) -> i64 {
        self.coeffs.get(var).copied().unwrap_or(0)
    }

    /// Evaluate at the given loop-variable values (outermost first).
    pub fn eval(&self, ivs: &[i64]) -> i64 {
        let mut acc = self.offset;
        for (k, &c) in self.coeffs.iter().enumerate() {
            if c != 0 {
                acc += c * ivs[k];
            }
        }
        acc
    }

    /// Coefficient vector zero-padded/truncated to exactly `nvars` entries.
    pub fn coeffs_padded(&self, nvars: usize) -> Vec<i64> {
        (0..nvars).map(|v| self.coeff(v)).collect()
    }

    /// Add a constant to the index.
    pub fn plus(mut self, d: i64) -> Self {
        self.offset += d;
        self
    }

    /// Sum of two affine indices.
    pub fn add(&self, other: &AffineIndex) -> Self {
        let n = self.coeffs.len().max(other.coeffs.len());
        let coeffs = (0..n).map(|v| self.coeff(v) + other.coeff(v)).collect();
        AffineIndex {
            coeffs,
            offset: self.offset + other.offset,
        }
    }

    /// Scale the whole index by a constant.
    pub fn scale(mut self, s: i64) -> Self {
        for c in &mut self.coeffs {
            *c *= s;
        }
        self.offset *= s;
        self
    }

    /// True if the index depends on no loop variable.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }
}

impl From<i64> for AffineIndex {
    fn from(c: i64) -> Self {
        AffineIndex::constant(c)
    }
}

/// A (possibly indirect) index expression.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexExpr {
    /// A direct affine index.
    Affine(AffineIndex),
    /// A gather through an index array: `scale * base[pos] + offset`
    /// (the "permutation lookups" the paper blames for Random-class
    /// behaviour, §7.1.4). `base[pos]` is read as `f64` and truncated.
    Indirect {
        /// Array holding the indices.
        base: ArrayId,
        /// Where in `base` to read (affine; rank-1 index arrays only).
        pos: AffineIndex,
        /// Multiplier applied to the fetched value.
        scale: i64,
        /// Constant added after scaling.
        offset: i64,
    },
}

impl IndexExpr {
    /// The affine payload if this is a direct index.
    pub fn as_affine(&self) -> Option<&AffineIndex> {
        match self {
            IndexExpr::Affine(a) => Some(a),
            IndexExpr::Indirect { .. } => None,
        }
    }

    /// True if this index involves a gather.
    pub fn is_indirect(&self) -> bool {
        matches!(self, IndexExpr::Indirect { .. })
    }
}

impl From<AffineIndex> for IndexExpr {
    fn from(a: AffineIndex) -> Self {
        IndexExpr::Affine(a)
    }
}

impl From<i64> for IndexExpr {
    fn from(c: i64) -> Self {
        IndexExpr::Affine(AffineIndex::constant(c))
    }
}

/// Shorthand for [`AffineIndex::var`].
pub fn iv(var: usize) -> AffineIndex {
    AffineIndex::var(var)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_affine_combinations() {
        // 2*i + 3*j - 4 at (i,j) = (5, 7) → 10 + 21 - 4 = 27
        let a = AffineIndex {
            coeffs: vec![2, 3],
            offset: -4,
        };
        assert_eq!(a.eval(&[5, 7]), 27);
        assert_eq!(a.coeff(0), 2);
        assert_eq!(a.coeff(9), 0);
    }

    #[test]
    fn var_and_plus_build_skews() {
        let k = iv(0);
        assert_eq!(k.clone().plus(10).eval(&[3]), 13);
        assert_eq!(AffineIndex::scaled_var(2, 1).eval(&[9, 4]), 8);
        assert_eq!(AffineIndex::constant(6).eval(&[1, 2, 3]), 6);
        assert!(AffineIndex::constant(6).is_constant());
        assert!(!iv(0).is_constant());
    }

    #[test]
    fn add_and_scale_compose() {
        let a = iv(0).plus(1); // i + 1
        let b = AffineIndex::scaled_var(3, 1); // 3j
        let s = a.add(&b).scale(2); // 2i + 6j + 2
        assert_eq!(s.eval(&[10, 100]), 20 + 600 + 2);
    }

    #[test]
    fn coeffs_padded_extends_and_truncates() {
        let a = iv(1); // [0, 1]
        assert_eq!(a.coeffs_padded(4), vec![0, 1, 0, 0]);
        let b = AffineIndex {
            coeffs: vec![5, 6, 7],
            offset: 0,
        };
        assert_eq!(b.coeffs_padded(2), vec![5, 6]);
    }

    #[test]
    fn index_expr_conversions() {
        let e: IndexExpr = iv(0).plus(2).into();
        assert!(!e.is_indirect());
        assert_eq!(e.as_affine().unwrap().offset, 2);
        let g = IndexExpr::Indirect {
            base: ArrayId(0),
            pos: iv(0),
            scale: 1,
            offset: 0,
        };
        assert!(g.is_indirect());
        assert!(g.as_affine().is_none());
        let c: IndexExpr = 4i64.into();
        assert_eq!(c.as_affine().unwrap().offset, 4);
    }
}
