//! Sequential reference interpreter and shared evaluation machinery.
//!
//! The interpreter executes a [`Program`] in plain sequential order on
//! single-assignment arrays, producing the *golden* results every
//! distributed execution (simulated or real-thread) must match bit-for-bit.
//! The [`Memory`] trait and [`EvalCtx`] are shared with those executors so
//! that index resolution (including gather reads, which count as array
//! accesses!) and expression evaluation are literally the same code.

use sa_mem::SaArray;

use crate::expr::Expr;
use crate::index::IndexExpr;
use crate::nest::{ArrayRef, Stmt};
use crate::program::{Phase, Program};
use crate::{ArrayId, IrError};

/// Abstract element store used during evaluation.
///
/// Implementations decide what a `load` *costs*: the reference interpreter
/// just reads, the simulator classifies the access local/cached/remote,
/// and the real-thread runtime may send messages and block.
pub trait Memory {
    /// Read linear element `addr` of `array`.
    fn load(&mut self, array: ArrayId, addr: usize) -> Result<f64, IrError>;
}

/// Shared evaluation context: program + parameter/scalar snapshots.
pub struct EvalCtx<'p> {
    /// The program being evaluated.
    pub program: &'p Program,
    /// Parameter values (`ParamId` indexes).
    pub params: Vec<f64>,
    /// Current reduction-slot values (`ScalarId` indexes).
    pub scalars: Vec<f64>,
}

impl<'p> EvalCtx<'p> {
    /// Fresh context with parameters from the program and scalar slots at
    /// their default (0; reductions overwrite with the op identity first).
    pub fn new(program: &'p Program) -> Self {
        EvalCtx {
            program,
            params: program.params.iter().map(|&(_, v)| v).collect(),
            scalars: vec![0.0; program.scalars.len()],
        }
    }

    /// Resolve an [`ArrayRef`] to a linear address at iteration `ivs`.
    ///
    /// Indirect indices read their base array through `mem`, so gather
    /// address loads are visible to access accounting exactly as the paper's
    /// "permutation lookups" would be.
    pub fn resolve_addr(
        &self,
        aref: &ArrayRef,
        ivs: &[i64],
        mem: &mut impl Memory,
    ) -> Result<usize, IrError> {
        resolve_ref_addr(self.program, aref, ivs, mem)
    }

    /// Evaluate an expression at iteration `ivs`, loading elements via `mem`.
    pub fn eval(&self, expr: &Expr, ivs: &[i64], mem: &mut impl Memory) -> Result<f64, IrError> {
        Ok(match expr {
            Expr::Const(c) => *c,
            Expr::Param(p) => self.params[p.0],
            Expr::Scalar(s) => self.scalars[s.0],
            Expr::LoopVar(v) => ivs[*v] as f64,
            Expr::Read(r) => {
                let addr = self.resolve_addr(r, ivs, mem)?;
                mem.load(r.array, addr)?
            }
            Expr::Unary(op, a) => op.apply(self.eval(a, ivs, mem)?),
            Expr::Binary(op, a, b) => {
                let va = self.eval(a, ivs, mem)?;
                let vb = self.eval(b, ivs, mem)?;
                op.apply(va, vb)
            }
        })
    }
}

/// Resolve an [`ArrayRef`] to a linear address at iteration `ivs`, loading
/// indirect index cells through `mem`.
///
/// This is the one address-resolution routine in the system: the reference
/// interpreter, the counting simulator and the thread runtime all call it
/// (directly or via [`EvalCtx::resolve_addr`]), so a gather subscript can
/// never resolve differently between executors. Ownership screening reuses
/// it too — `sa-core`'s `PartitionMap::resolved_anchor_owner` passes a
/// non-counting `mem` to discover where an indirect anchor lands.
pub fn resolve_ref_addr(
    program: &Program,
    aref: &ArrayRef,
    ivs: &[i64],
    mem: &mut impl Memory,
) -> Result<usize, IrError> {
    let decl = program.array(aref.array);
    let mut idx = Vec::with_capacity(aref.indices.len());
    for ix in &aref.indices {
        let v = match ix {
            IndexExpr::Affine(a) => a.eval(ivs),
            IndexExpr::Indirect {
                base,
                pos,
                scale,
                offset,
            } => {
                let base_decl = program.array(*base);
                let p = pos.eval(ivs);
                if p < 0 || p as usize >= base_decl.len() {
                    return Err(IrError::IndexOutOfBounds {
                        array: base_decl.name.clone(),
                        dim: 0,
                        index: p,
                        extent: base_decl.len(),
                    });
                }
                let fetched = mem.load(*base, p as usize)?;
                scale * (fetched as i64) + offset
            }
        };
        idx.push(v);
    }
    decl.linearize(&idx)
}

/// Final state of a program run.
#[derive(Debug, Clone)]
pub struct ProgramResult {
    /// Final array stores, indexable by `ArrayId`.
    pub arrays: Vec<SaArray<f64>>,
    /// Final reduction values.
    pub scalars: Vec<f64>,
    /// Total element writes performed.
    pub writes: usize,
    /// Total element reads performed (including gather index loads).
    pub reads: usize,
}

impl ProgramResult {
    /// Defined values of one array as `(addr, value)` pairs.
    pub fn defined_values(&self, id: ArrayId) -> Vec<(usize, f64)> {
        let a = &self.arrays[id.0];
        a.tags()
            .iter_set()
            .map(|i| (i, *a.read(i).unwrap().unwrap()))
            .collect()
    }

    /// Compare the defined cells of every array (and all scalars) with
    /// another result, within `tol`. Returns a human-readable mismatch.
    pub fn assert_matches(&self, other: &ProgramResult, tol: f64) -> Result<(), String> {
        if self.arrays.len() != other.arrays.len() {
            return Err(format!(
                "array count mismatch: {} vs {}",
                self.arrays.len(),
                other.arrays.len()
            ));
        }
        for (i, (a, b)) in self.arrays.iter().zip(&other.arrays).enumerate() {
            if a.len() != b.len() {
                return Err(format!(
                    "array {i} length mismatch: {} vs {}",
                    a.len(),
                    b.len()
                ));
            }
            for addr in 0..a.len() {
                let va = a.read(addr).map_err(|e| e.to_string())?;
                let vb = b.read(addr).map_err(|e| e.to_string())?;
                match (va, vb) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        if !((x - y).abs() <= tol || (x.is_nan() && y.is_nan())) {
                            return Err(format!(
                                "array {} ({}) addr {}: {} vs {}",
                                i,
                                a.name(),
                                addr,
                                x,
                                y
                            ));
                        }
                    }
                    (da, db) => {
                        return Err(format!(
                            "array {} ({}) addr {}: definedness mismatch {:?} vs {:?}",
                            i,
                            a.name(),
                            addr,
                            da.is_some(),
                            db.is_some()
                        ))
                    }
                }
            }
        }
        for (i, (x, y)) in self.scalars.iter().zip(&other.scalars).enumerate() {
            if (x - y).abs() > tol {
                return Err(format!("scalar {i}: {x} vs {y}"));
            }
        }
        Ok(())
    }
}

struct SeqMemory {
    arrays: Vec<SaArray<f64>>,
    reads: usize,
}

impl Memory for SeqMemory {
    fn load(&mut self, array: ArrayId, addr: usize) -> Result<f64, IrError> {
        self.reads += 1;
        let a = &self.arrays[array.0];
        match a.read(addr) {
            Ok(Some(v)) => Ok(*v),
            Ok(None) => Err(IrError::ReadUndefined {
                array: a.name().to_string(),
                addr,
            }),
            Err(_) => Err(IrError::IndexOutOfBounds {
                array: a.name().to_string(),
                dim: 0,
                index: addr as i64,
                extent: a.len(),
            }),
        }
    }
}

/// Build the generation-0 stores for a program's arrays.
pub fn initial_stores(program: &Program) -> Vec<SaArray<f64>> {
    program
        .arrays
        .iter()
        .map(|d| {
            let total = d.len();
            let seed = d.init.materialize(total);
            let mut a = SaArray::new(d.name.clone(), total);
            for (i, v) in seed.into_iter().enumerate() {
                a.write(i, v).expect("fresh store accepts initial writes");
            }
            a
        })
        .collect()
}

/// Run the program sequentially, enforcing single assignment, and return
/// the golden results.
///
/// Errors surface the first semantic violation: double write, read of a
/// never-defined cell, or an out-of-bounds index.
pub fn interpret(program: &Program) -> Result<ProgramResult, IrError> {
    let mut ctx = EvalCtx::new(program);
    let mut mem = SeqMemory {
        arrays: initial_stores(program),
        reads: 0,
    };
    let mut writes = 0usize;

    for phase in &program.phases {
        match phase {
            Phase::Reinit(id) => {
                mem.arrays[id.0]
                    .reinit()
                    .map_err(|_| IrError::DoubleWrite {
                        array: program.array(*id).name.clone(),
                        addr: usize::MAX,
                    })?;
            }
            Phase::Loop(nest) => {
                // Seed reductions with their identities before the nest runs.
                for stmt in &nest.body {
                    if let Stmt::Reduce { target, op, .. } = stmt {
                        ctx.scalars[target.0] = op.identity();
                    }
                }
                let mut err = None;
                nest.for_each_iteration(|ivs| {
                    if err.is_some() {
                        return;
                    }
                    for stmt in &nest.body {
                        let r = (|| -> Result<(), IrError> {
                            match stmt {
                                Stmt::Assign { target, value } => {
                                    let v = ctx.eval(value, ivs, &mut mem)?;
                                    let addr = ctx.resolve_addr(target, ivs, &mut mem)?;
                                    let store = &mut mem.arrays[target.array.0];
                                    store.write(addr, v).map_err(|_| IrError::DoubleWrite {
                                        array: store.name().to_string(),
                                        addr,
                                    })?;
                                    writes += 1;
                                    Ok(())
                                }
                                Stmt::Reduce { target, op, value } => {
                                    let v = ctx.eval(value, ivs, &mut mem)?;
                                    ctx.scalars[target.0] = op.combine(ctx.scalars[target.0], v);
                                    Ok(())
                                }
                            }
                        })();
                        if let Err(e) = r {
                            err = Some(e);
                            return;
                        }
                    }
                });
                if let Some(e) = err {
                    return Err(e);
                }
            }
        }
    }

    Ok(ProgramResult {
        arrays: mem.arrays,
        scalars: ctx.scalars,
        writes,
        reads: mem.reads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::ReduceOp;
    use crate::index::iv;
    use crate::program::InitPattern;

    /// X(k) = 2*Y(k) + 1 over k=0..9.
    fn simple_program() -> Program {
        let mut b = ProgramBuilder::new("simple");
        let y = b.input(
            "Y",
            &[10],
            InitPattern::Linear {
                base: 0.0,
                step: 1.0,
            },
        );
        let x = b.output("X", &[10]);
        b.nest("main", &[("k", 0, 9)], |n| {
            n.assign(x, [iv(0)], 2.0 * n.read(y, [iv(0)]) + 1.0);
        });
        b.finish()
    }

    #[test]
    fn straight_line_map_produces_expected_values() {
        let p = simple_program();
        let r = interpret(&p).unwrap();
        for k in 0..10 {
            let got = *r.arrays[1].read(k).unwrap().unwrap();
            assert_eq!(got, 2.0 * k as f64 + 1.0);
        }
        assert_eq!(r.writes, 10);
        assert_eq!(r.reads, 10);
    }

    #[test]
    fn recurrence_reads_prefix_init() {
        // X(0) = 100 (prefix init); X(i) = X(i-1) + 1 for i=1..9.
        let mut b = ProgramBuilder::new("rec");
        let x = b.array_with(
            "X",
            &[10],
            crate::program::ArrayInit::Prefix {
                pattern: InitPattern::Const(100.0),
                len: 1,
            },
        );
        b.nest("rec", &[("i", 1, 9)], |n| {
            n.assign(x, [iv(0)], n.read(x, [iv(0).plus(-1)]) + 1.0);
        });
        let r = interpret(&b.finish()).unwrap();
        assert_eq!(*r.arrays[0].read(9).unwrap().unwrap(), 109.0);
    }

    #[test]
    fn double_write_is_detected() {
        let mut b = ProgramBuilder::new("dw");
        let x = b.output("X", &[4]);
        b.nest("bad", &[("i", 0, 3)], |n| {
            n.assign(x, [AffineIndex::constant(0)], Expr::LoopVar(0));
        });
        use crate::index::AffineIndex;
        use crate::Expr;
        let err = interpret(&b.finish()).unwrap_err();
        assert!(matches!(err, IrError::DoubleWrite { addr: 0, .. }));
    }

    #[test]
    fn read_of_undefined_is_detected() {
        let mut b = ProgramBuilder::new("ru");
        let x = b.output("X", &[4]);
        let y = b.output("Y", &[4]);
        b.nest("bad", &[("i", 0, 3)], |n| {
            n.assign(x, [iv(0)], n.read(y, [iv(0)]));
        });
        let err = interpret(&b.finish()).unwrap_err();
        assert!(matches!(err, IrError::ReadUndefined { .. }));
    }

    #[test]
    fn reduction_accumulates_with_identity() {
        // s = Σ Y(k), Y = 0..9 → 45.
        let mut b = ProgramBuilder::new("red");
        let y = b.input(
            "Y",
            &[10],
            InitPattern::Linear {
                base: 0.0,
                step: 1.0,
            },
        );
        let s = b.scalar("s");
        b.nest("sum", &[("k", 0, 9)], |n| {
            n.reduce(s, ReduceOp::Sum, n.read(y, [iv(0)]));
        });
        let r = interpret(&b.finish()).unwrap();
        assert_eq!(r.scalars[0], 45.0);
    }

    #[test]
    fn reinit_allows_second_generation() {
        let mut b = ProgramBuilder::new("gen");
        let x = b.output("X", &[4]);
        b.nest("g0", &[("i", 0, 3)], |n| {
            n.assign(x, [iv(0)], Expr::LoopVar(0));
        });
        use crate::Expr;
        b.reinit(x);
        b.nest("g1", &[("i", 0, 3)], |n| {
            n.assign(x, [iv(0)], Expr::LoopVar(0) * 10.0);
        });
        let r = interpret(&b.finish()).unwrap();
        assert_eq!(*r.arrays[0].read(3).unwrap().unwrap(), 30.0);
        assert_eq!(r.arrays[0].generation(), 1);
    }

    #[test]
    fn gather_reads_count_and_permute() {
        // X(k) = D(P(k)) where P is the identity permutation reversed by
        // hand: use Permutation pattern and verify X is a permutation of D.
        let mut b = ProgramBuilder::new("gather");
        let d = b.input(
            "D",
            &[16],
            InitPattern::Linear {
                base: 0.0,
                step: 2.0,
            },
        );
        let perm = b.input("P", &[16], InitPattern::Permutation { seed: 7 });
        let x = b.output("X", &[16]);
        b.nest("g", &[("k", 0, 15)], |n| {
            n.assign(x, [iv(0)], n.read_indirect(d, perm, iv(0)));
        });
        let r = interpret(&b.finish()).unwrap();
        // Every X value must be one of D's values (even numbers 0..30).
        let mut got: Vec<f64> = (0..16)
            .map(|k| *r.arrays[2].read(k).unwrap().unwrap())
            .collect();
        got.sort_by(f64::total_cmp);
        assert_eq!(got, (0..16).map(|i| 2.0 * i as f64).collect::<Vec<_>>());
        // Reads: one gather index load + one data load per iteration.
        assert_eq!(r.reads, 32);
    }

    #[test]
    fn result_comparison_detects_mismatch() {
        let p = simple_program();
        let a = interpret(&p).unwrap();
        let b = interpret(&p).unwrap();
        assert!(a.assert_matches(&b, 0.0).is_ok());
        let mut c = interpret(&p).unwrap();
        c.scalars.push(0.0); // harmless: zip stops at shorter
        let mut d = interpret(&p).unwrap();
        d.arrays[1] = SaArray::new("X", 10);
        assert!(a.assert_matches(&d, 0.0).is_err());
    }
}
