//! # sa-ir — loop-nest intermediate representation
//!
//! The paper's workloads are FORTRAN loop fragments (the Livermore Loops).
//! This crate provides the small IR in which those fragments are expressed so
//! that the *same* program object can be
//!
//! 1. interpreted sequentially ([`interp`]) to produce golden results,
//! 2. statically analysed ([`analysis`]) into the paper's four
//!    access-distribution classes (Matched / Skewed / Cyclic / Random),
//! 3. automatically converted to single-assignment form ([`ssa`]) — the
//!    "automatic conversion tool" of paper §5, and
//! 4. executed under owner-computes partitioning by `sa-core` / `sa-runtime`.
//!
//! The IR is deliberately FORTRAN-shaped: perfect or imperfect loop nests
//! with affine (plus indirect/gather) index expressions, inclusive bounds
//! that may depend affinely on outer loop variables (triangular nests), and
//! straight-line statement bodies over `f64` arithmetic.

#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod expr;
pub mod grid;
pub mod index;
pub mod interp;
pub mod nest;
pub mod pretty;
pub mod program;
pub mod ssa;

pub use analysis::{classify_nest, classify_program, AccessClass, NestReport, PairRelation};
pub use builder::{validate_program, BuildError, ProgramBuilder};
pub use expr::{BinOp, Expr, ReduceOp, UnaryOp};
pub use grid::{Grid, GridError};
pub use index::{AffineIndex, IndexExpr};
pub use interp::{interpret, ProgramResult};
pub use nest::{ArrayRef, Bound, LoopNest, LoopVar, Stmt};
pub use program::{ArrayDecl, InitPattern, Phase, Program};

use core::fmt;

/// Identifies an array declared in a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// Identifies a scalar runtime parameter (FORTRAN `Q`, `R`, `T`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

/// Identifies a scalar reduction slot (vector→scalar results, paper §9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScalarId(pub usize);

/// Errors raised while evaluating or validating IR programs.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// A dimension index fell outside `0..extent`.
    IndexOutOfBounds {
        /// Array being accessed.
        array: String,
        /// Which dimension (0-based).
        dim: usize,
        /// The evaluated index value.
        index: i64,
        /// The dimension extent.
        extent: usize,
    },
    /// A single-assignment violation detected during interpretation.
    DoubleWrite {
        /// Array being written.
        array: String,
        /// Linearized element address.
        addr: usize,
    },
    /// A read of a cell that no statement ever defines.
    ReadUndefined {
        /// Array being read.
        array: String,
        /// Linearized element address.
        addr: usize,
    },
    /// Number of indices does not match the array's rank.
    RankMismatch {
        /// Array being accessed.
        array: String,
        /// Number of indices supplied.
        got: usize,
        /// Array rank.
        want: usize,
    },
    /// A loop bound evaluated such that the loop would run forever.
    BadLoopBounds {
        /// The nest label.
        nest: String,
        /// The loop variable name.
        var: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::IndexOutOfBounds {
                array,
                dim,
                index,
                extent,
            } => write!(
                f,
                "index {index} out of bounds for dimension {dim} (extent {extent}) of array {array}"
            ),
            IrError::DoubleWrite { array, addr } => {
                write!(
                    f,
                    "single-assignment violation: {array}[{addr}] written twice"
                )
            }
            IrError::ReadUndefined { array, addr } => {
                write!(f, "read of undefined cell {array}[{addr}]")
            }
            IrError::RankMismatch { array, got, want } => {
                write!(
                    f,
                    "array {array} has rank {want} but was indexed with {got} indices"
                )
            }
            IrError::BadLoopBounds { nest, var } => {
                write!(f, "loop {var} in nest {nest} has a zero or divergent step")
            }
        }
    }
}

impl std::error::Error for IrError {}
