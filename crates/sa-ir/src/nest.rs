//! Loop nests, bounds, array references and statements.

use crate::expr::{Expr, ReduceOp};
use crate::index::{AffineIndex, IndexExpr};
use crate::{ArrayId, ScalarId};

/// An inclusive loop bound, affine in *outer* loop variables
/// (so triangular nests like GLRE's `DO k = 1, i-1` are expressible).
pub type Bound = AffineIndex;

/// One loop of a nest: `for v = lo..=hi step step` (FORTRAN `DO` semantics:
/// zero iterations if `lo > hi` with positive step).
#[derive(Debug, Clone, PartialEq)]
pub struct LoopVar {
    /// Diagnostic name (`i`, `k`, …).
    pub name: String,
    /// Inclusive lower bound (may reference outer vars only).
    pub lo: Bound,
    /// Inclusive upper bound (may reference outer vars only).
    pub hi: Bound,
    /// Step; must be non-zero.
    pub step: i64,
}

impl LoopVar {
    /// A unit-step loop `name = lo..=hi` with constant bounds.
    pub fn simple(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        LoopVar {
            name: name.into(),
            lo: Bound::constant(lo),
            hi: Bound::constant(hi),
            step: 1,
        }
    }

    /// Number of iterations given outer variable values, or 0 if empty.
    pub fn trip_count(&self, outer: &[i64]) -> usize {
        let lo = self.lo.eval(outer);
        let hi = self.hi.eval(outer);
        if self.step > 0 {
            if lo > hi {
                0
            } else {
                ((hi - lo) / self.step + 1) as usize
            }
        } else if self.step < 0 {
            if lo < hi {
                0
            } else {
                ((lo - hi) / (-self.step) + 1) as usize
            }
        } else {
            0
        }
    }
}

/// A reference to one element of an array: `array[indices…]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayRef {
    /// Which array.
    pub array: ArrayId,
    /// One index per dimension, outermost dimension first (row-major).
    pub indices: Vec<IndexExpr>,
}

impl ArrayRef {
    /// Build a reference.
    pub fn new(array: ArrayId, indices: Vec<IndexExpr>) -> Self {
        ArrayRef { array, indices }
    }

    /// True if any index is a gather.
    pub fn has_indirection(&self) -> bool {
        self.indices.iter().any(IndexExpr::is_indirect)
    }

    /// All-affine index views, or `None` if any index is indirect.
    pub fn affine_indices(&self) -> Option<Vec<&AffineIndex>> {
        self.indices.iter().map(IndexExpr::as_affine).collect()
    }
}

/// A statement executed for every iteration of the enclosing nest.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `target ← value` — the single assignment of one array element.
    Assign {
        /// The element written (the statement's *producer* location;
        /// owner-computes maps the iteration to this element's PE).
        target: ArrayRef,
        /// Right-hand side.
        value: Expr,
    },
    /// `scalar ← scalar ⊕ value` — a loop reduction, collected at the
    /// array host processor in the distributed runtime (paper §9).
    Reduce {
        /// Destination scalar slot.
        target: ScalarId,
        /// Combining operator.
        op: ReduceOp,
        /// Per-iteration contribution.
        value: Expr,
    },
}

impl Stmt {
    /// The written element for an `Assign`, `None` for reductions.
    pub fn write_target(&self) -> Option<&ArrayRef> {
        match self {
            Stmt::Assign { target, .. } => Some(target),
            Stmt::Reduce { .. } => None,
        }
    }

    /// The right-hand-side expression.
    pub fn value(&self) -> &Expr {
        match self {
            Stmt::Assign { value, .. } | Stmt::Reduce { value, .. } => value,
        }
    }

    /// Every array read performed by the statement (RHS reads, plus reads
    /// hidden inside indirect indices are accounted separately during
    /// execution).
    pub fn reads(&self) -> Vec<&ArrayRef> {
        self.value().reads()
    }
}

/// A rectangular-or-triangular loop nest with a straight-line body.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNest {
    /// Diagnostic label (e.g. `"hydro-k1"`).
    pub label: String,
    /// Loops, outermost first. `loops[v]` binds loop variable `v`.
    pub loops: Vec<LoopVar>,
    /// Statements executed per iteration, in order.
    pub body: Vec<Stmt>,
}

impl LoopNest {
    /// Total iterations (product of trip counts; exact even for triangular
    /// nests — computed by enumeration of the outer dimensions).
    pub fn iteration_count(&self) -> usize {
        let mut count = 0usize;
        let mut ivs = Vec::with_capacity(self.loops.len());
        self.count_rec(0, &mut ivs, &mut count);
        count
    }

    fn count_rec(&self, depth: usize, ivs: &mut Vec<i64>, count: &mut usize) {
        if depth == self.loops.len() {
            *count += 1;
            return;
        }
        let lv = &self.loops[depth];
        let lo = lv.lo.eval(ivs);
        let hi = lv.hi.eval(ivs);
        // Only the innermost level can be counted arithmetically when the
        // deeper levels don't depend on it — keep it simple and exact.
        if depth + 1 == self.loops.len() {
            *count += lv.trip_count(ivs);
            return;
        }
        let mut v = lo;
        while (lv.step > 0 && v <= hi) || (lv.step < 0 && v >= hi) {
            ivs.push(v);
            self.count_rec(depth + 1, ivs, count);
            ivs.pop();
            v += lv.step;
        }
    }

    /// Enumerate every iteration (outermost-first index vectors) in
    /// lexicographic execution order, invoking `f` for each.
    pub fn for_each_iteration(&self, mut f: impl FnMut(&[i64])) {
        let mut ivs = Vec::with_capacity(self.loops.len());
        self.iter_rec(0, &mut ivs, &mut f);
    }

    fn iter_rec(&self, depth: usize, ivs: &mut Vec<i64>, f: &mut impl FnMut(&[i64])) {
        if depth == self.loops.len() {
            f(ivs);
            return;
        }
        let lv = &self.loops[depth];
        let lo = lv.lo.eval(ivs);
        let hi = lv.hi.eval(ivs);
        let mut v = lo;
        while (lv.step > 0 && v <= hi) || (lv.step < 0 && v >= hi) {
            ivs.push(v);
            self.iter_rec(depth + 1, ivs, f);
            ivs.pop();
            v += lv.step;
        }
    }

    /// Arrays written by this nest (deduplicated, in first-write order).
    pub fn written_arrays(&self) -> Vec<ArrayId> {
        let mut out = Vec::new();
        for s in &self.body {
            if let Some(t) = s.write_target() {
                if !out.contains(&t.array) {
                    out.push(t.array);
                }
            }
        }
        out
    }

    /// Arrays read by this nest (deduplicated; includes gather base arrays).
    pub fn read_arrays(&self) -> Vec<ArrayId> {
        let mut out = Vec::new();
        let mut push = |id: ArrayId| {
            if !out.contains(&id) {
                out.push(id);
            }
        };
        for s in &self.body {
            for r in s.reads() {
                push(r.array);
                for ix in &r.indices {
                    if let IndexExpr::Indirect { base, .. } = ix {
                        push(*base);
                    }
                }
            }
            if let Some(t) = s.write_target() {
                for ix in &t.indices {
                    if let IndexExpr::Indirect { base, .. } = ix {
                        push(*base);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::iv;

    #[test]
    fn trip_counts_fortran_semantics() {
        let l = LoopVar::simple("k", 1, 10);
        assert_eq!(l.trip_count(&[]), 10);
        let l = LoopVar {
            name: "k".into(),
            lo: 2.into(),
            hi: 10.into(),
            step: 2,
        };
        assert_eq!(l.trip_count(&[]), 5); // 2,4,6,8,10
        let l = LoopVar {
            name: "k".into(),
            lo: 10.into(),
            hi: 1.into(),
            step: -3,
        };
        assert_eq!(l.trip_count(&[]), 4); // 10,7,4,1
        let l = LoopVar::simple("k", 5, 4);
        assert_eq!(l.trip_count(&[]), 0);
    }

    #[test]
    fn triangular_nest_enumeration() {
        // for i = 1..=4 { for k = 1..=(i-1) { .. } } → 0+1+2+3 = 6 iterations
        let nest = LoopNest {
            label: "tri".into(),
            loops: vec![
                LoopVar::simple("i", 1, 4),
                LoopVar {
                    name: "k".into(),
                    lo: 1.into(),
                    hi: iv(0).plus(-1),
                    step: 1,
                },
            ],
            body: vec![],
        };
        assert_eq!(nest.iteration_count(), 6);
        let mut seen = Vec::new();
        nest.for_each_iteration(|ivs| seen.push((ivs[0], ivs[1])));
        assert_eq!(seen, vec![(2, 1), (3, 1), (3, 2), (4, 1), (4, 2), (4, 3)]);
    }

    #[test]
    fn lexicographic_order_with_negative_step() {
        let nest = LoopNest {
            label: "rev".into(),
            loops: vec![LoopVar {
                name: "k".into(),
                lo: 3.into(),
                hi: 1.into(),
                step: -1,
            }],
            body: vec![],
        };
        let mut seen = Vec::new();
        nest.for_each_iteration(|ivs| seen.push(ivs[0]));
        assert_eq!(seen, vec![3, 2, 1]);
    }

    #[test]
    fn written_and_read_arrays_deduplicate() {
        use crate::ArrayId;
        let x = ArrayId(0);
        let y = ArrayId(1);
        let nest = LoopNest {
            label: "t".into(),
            loops: vec![LoopVar::simple("k", 0, 9)],
            body: vec![
                Stmt::Assign {
                    target: ArrayRef::new(x, vec![iv(0).into()]),
                    value: Expr::Read(ArrayRef::new(y, vec![iv(0).into()]))
                        + Expr::Read(ArrayRef::new(y, vec![iv(0).plus(1).into()])),
                },
                Stmt::Assign {
                    target: ArrayRef::new(x, vec![iv(0).plus(10).into()]),
                    value: Expr::Const(0.0),
                },
            ],
        };
        assert_eq!(nest.written_arrays(), vec![x]);
        assert_eq!(nest.read_arrays(), vec![y]);
    }

    #[test]
    fn read_arrays_includes_gather_base() {
        use crate::index::IndexExpr;
        use crate::ArrayId;
        let data = ArrayId(0);
        let perm = ArrayId(1);
        let out = ArrayId(2);
        let gathered = ArrayRef::new(
            data,
            vec![IndexExpr::Indirect {
                base: perm,
                pos: iv(0),
                scale: 1,
                offset: 0,
            }],
        );
        let nest = LoopNest {
            label: "g".into(),
            loops: vec![LoopVar::simple("k", 0, 3)],
            body: vec![Stmt::Assign {
                target: ArrayRef::new(out, vec![iv(0).into()]),
                value: Expr::Read(gathered),
            }],
        };
        assert_eq!(nest.read_arrays(), vec![data, perm]);
    }

    #[test]
    fn stmt_accessors() {
        let x = ArrayRef::new(crate::ArrayId(0), vec![iv(0).into()]);
        let s = Stmt::Assign {
            target: x.clone(),
            value: Expr::Const(1.0),
        };
        assert_eq!(s.write_target(), Some(&x));
        let r = Stmt::Reduce {
            target: crate::ScalarId(0),
            op: ReduceOp::Sum,
            value: Expr::Const(1.0),
        };
        assert_eq!(r.write_target(), None);
        assert!(r.reads().is_empty());
    }
}
