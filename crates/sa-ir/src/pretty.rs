//! Pretty-printer: render IR programs as annotated pseudo-FORTRAN.
//!
//! Useful for debugging kernels, documenting conversions (the §5 tool's
//! output becomes reviewable), and sanity-checking that a built program
//! matches the loop it was transcribed from.

use std::fmt::Write as _;

use crate::expr::{BinOp, Expr, UnaryOp};
use crate::index::{AffineIndex, IndexExpr};
use crate::nest::{ArrayRef, LoopNest, Stmt};
use crate::program::{ArrayInit, Phase, Program};

/// Render a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "PROGRAM {}", p.name);
    for d in &p.arrays {
        let dims: Vec<String> = d.dims.iter().map(usize::to_string).collect();
        let init = match d.init {
            ArrayInit::Undefined => "undefined".to_string(),
            ArrayInit::Full(_) => "input".to_string(),
            ArrayInit::Prefix { len, .. } => format!("input[0..{len})"),
        };
        let _ = writeln!(out, "  ARRAY {}({}) : {}", d.name, dims.join(","), init);
    }
    for (name, v) in &p.params {
        let _ = writeln!(out, "  PARAM {name} = {v}");
    }
    for name in &p.scalars {
        let _ = writeln!(out, "  SCALAR {name}");
    }
    for phase in &p.phases {
        match phase {
            Phase::Reinit(id) => {
                let _ = writeln!(
                    out,
                    "  REINIT {}  ! host-processor protocol",
                    p.array(*id).name
                );
            }
            Phase::Loop(nest) => {
                out.push_str(&nest_to_string(p, nest));
            }
        }
    }
    let _ = writeln!(out, "END");
    out
}

/// Render one nest with FORTRAN-style DO headers.
pub fn nest_to_string(p: &Program, nest: &LoopNest) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "  ! nest {}", nest.label);
    let mut indent = String::from("  ");
    let names: Vec<&str> = nest.loops.iter().map(|l| l.name.as_str()).collect();
    for l in &nest.loops {
        let lo = affine_to_string(&l.lo, &names);
        let hi = affine_to_string(&l.hi, &names);
        if l.step == 1 {
            let _ = writeln!(out, "{indent}DO {} = {lo}, {hi}", l.name);
        } else {
            let _ = writeln!(out, "{indent}DO {} = {lo}, {hi}, {}", l.name, l.step);
        }
        indent.push_str("  ");
    }
    for stmt in &nest.body {
        match stmt {
            Stmt::Assign { target, value } => {
                let _ = writeln!(
                    out,
                    "{indent}{} = {}",
                    ref_to_string(p, target, &names),
                    expr_to_string(p, value, &names)
                );
            }
            Stmt::Reduce { target, op, value } => {
                let name = &p.scalars[target.0];
                let opname = match op {
                    crate::expr::ReduceOp::Sum => "+",
                    crate::expr::ReduceOp::Prod => "*",
                    crate::expr::ReduceOp::Max => "MAX",
                    crate::expr::ReduceOp::Min => "MIN",
                };
                let _ = writeln!(
                    out,
                    "{indent}{name} = {name} {opname} {}  ! reduction",
                    expr_to_string(p, value, &names)
                );
            }
        }
    }
    for _ in &nest.loops {
        indent.truncate(indent.len() - 2);
        let _ = writeln!(out, "{indent}END DO");
    }
    out
}

/// Render an affine index over the nest's variable names.
pub fn affine_to_string(a: &AffineIndex, names: &[&str]) -> String {
    let mut terms: Vec<String> = Vec::new();
    for (v, &c) in a.coeffs.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let name = names.get(v).copied().unwrap_or("?");
        terms.push(match c {
            1 => name.to_string(),
            -1 => format!("-{name}"),
            c => format!("{c}*{name}"),
        });
    }
    if a.offset != 0 || terms.is_empty() {
        terms.push(a.offset.to_string());
    }
    let mut s = terms.join("+");
    // Cosmetic: a+-b → a-b.
    while let Some(i) = s.find("+-") {
        s.replace_range(i..i + 2, "-");
    }
    s
}

fn index_to_string(p: &Program, ix: &IndexExpr, names: &[&str]) -> String {
    match ix {
        IndexExpr::Affine(a) => affine_to_string(a, names),
        IndexExpr::Indirect {
            base,
            pos,
            scale,
            offset,
        } => {
            let inner = format!("{}({})", p.array(*base).name, affine_to_string(pos, names));
            match (scale, offset) {
                (1, 0) => inner,
                (s, 0) => format!("{s}*{inner}"),
                (1, o) => format!("{inner}+{o}"),
                (s, o) => format!("{s}*{inner}+{o}"),
            }
        }
    }
}

fn ref_to_string(p: &Program, r: &ArrayRef, names: &[&str]) -> String {
    let idx: Vec<String> = r
        .indices
        .iter()
        .map(|ix| index_to_string(p, ix, names))
        .collect();
    format!("{}({})", p.array(r.array).name, idx.join(","))
}

/// Render an expression (fully parenthesized at operator boundaries).
pub fn expr_to_string(p: &Program, e: &Expr, names: &[&str]) -> String {
    match e {
        Expr::Const(c) => format!("{c}"),
        Expr::Param(id) => p.params[id.0].0.clone(),
        Expr::Scalar(id) => p.scalars[id.0].clone(),
        Expr::LoopVar(v) => names.get(*v).copied().unwrap_or("?").to_string(),
        Expr::Read(r) => ref_to_string(p, r, names),
        Expr::Unary(op, a) => {
            let inner = expr_to_string(p, a, names);
            match op {
                UnaryOp::Neg => format!("(-{inner})"),
                UnaryOp::Abs => format!("ABS({inner})"),
                UnaryOp::Sqrt => format!("SQRT({inner})"),
                UnaryOp::Exp => format!("EXP({inner})"),
                UnaryOp::Recip => format!("(1/{inner})"),
            }
        }
        Expr::Binary(op, a, b) => {
            let (l, r) = (expr_to_string(p, a, names), expr_to_string(p, b, names));
            match op {
                BinOp::Add => format!("({l} + {r})"),
                BinOp::Sub => format!("({l} - {r})"),
                BinOp::Mul => format!("{l}*{r}"),
                BinOp::Div => format!("{l}/{r}"),
                BinOp::Min => format!("MIN({l},{r})"),
                BinOp::Max => format!("MAX({l},{r})"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::index::iv;
    use crate::program::InitPattern;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new("sample");
        let q = b.param("Q", 0.5);
        let y = b.input("Y", &[16], InitPattern::Wavy);
        let x = b.output("X", &[16]);
        let s = b.scalar("ACC");
        b.nest("main", &[("k", 1, 14)], |nb| {
            nb.assign(x, [iv(0)], nb.par(q) + nb.read(y, [iv(0).plus(1)]) * 2.0);
            nb.reduce(s, crate::expr::ReduceOp::Sum, nb.read(y, [iv(0)]));
        });
        b.reinit(x);
        b.finish()
    }

    #[test]
    fn renders_program_structure() {
        let p = sample();
        let s = program_to_string(&p);
        assert!(s.contains("PROGRAM sample"));
        assert!(s.contains("ARRAY Y(16) : input"));
        assert!(s.contains("ARRAY X(16) : undefined"));
        assert!(s.contains("PARAM Q = 0.5"));
        assert!(s.contains("SCALAR ACC"));
        assert!(s.contains("DO k = 1, 14"));
        assert!(s.contains("X(k) = (Q + Y(k+1)*2)"));
        assert!(s.contains("ACC = ACC + Y(k)  ! reduction"));
        assert!(s.contains("REINIT X"));
        assert!(s.contains("END DO"));
    }

    #[test]
    fn affine_rendering_handles_signs_and_constants() {
        let names = ["i", "j"];
        assert_eq!(affine_to_string(&AffineIndex::constant(5), &names), "5");
        assert_eq!(affine_to_string(&iv(0), &names), "i");
        assert_eq!(affine_to_string(&iv(1).plus(-1), &names), "j-1");
        assert_eq!(
            affine_to_string(
                &AffineIndex {
                    coeffs: vec![2, -1],
                    offset: 3
                },
                &names
            ),
            "2*i-j+3"
        );
        assert_eq!(affine_to_string(&AffineIndex::constant(0), &names), "0");
    }

    #[test]
    fn renders_gathers_and_triangular_bounds() {
        let mut b = ProgramBuilder::new("g");
        let d = b.input("D", &[8], InitPattern::Wavy);
        let perm = b.input("P", &[8], InitPattern::Permutation { seed: 1 });
        let x = b.output("X", &[8, 8]);
        b.nest_loops(
            "tri",
            vec![
                crate::nest::LoopVar::simple("i", 0, 7),
                crate::nest::LoopVar {
                    name: "k".into(),
                    lo: 0.into(),
                    hi: iv(0),
                    step: 1,
                },
            ],
            |nb| {
                nb.assign(x, [iv(0), iv(1)], nb.read_indirect(d, perm, iv(1)));
            },
        );
        let p = b.finish();
        let s = program_to_string(&p);
        assert!(s.contains("DO k = 0, i"), "triangular bound:\n{s}");
        assert!(s.contains("X(i,k) = D(P(k))"), "gather:\n{s}");
    }

    #[test]
    fn livermore_kernels_render_without_panicking() {
        // Smoke over a couple of builder-produced programs with every
        // feature: reductions, reinits, strides, 3-D arrays.
        let s = program_to_string(&sample());
        assert!(s.len() > 50);
    }
}
