//! Whole-program container: array declarations, parameters, phases.

use crate::nest::LoopNest;
use crate::{ArrayId, IrError};

/// Deterministic generators for initialization data.
///
/// The paper's arrays are "either undefined or filled with initialization
/// data" (§3); read-only inputs (e.g. `Y`, `ZX` in the Hydro Fragment) use
/// one of these patterns so that results are reproducible without real
/// Livermore input decks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitPattern {
    /// All zeros.
    Zero,
    /// All cells equal to `c`.
    Const(f64),
    /// `base + step * i` over the linear address `i`.
    Linear {
        /// Value at address 0.
        base: f64,
        /// Increment per address.
        step: f64,
    },
    /// `1 / (i + 1)` — mimics the decaying magnitudes of physics data and
    /// keeps recurrences numerically tame.
    Harmonic,
    /// `0.5 + sin(0.37 * i) / 4` — bounded, non-constant, irrational period.
    Wavy,
    /// A deterministic pseudo-random permutation of `0..len` stored as
    /// `f64`s; the index data that produces Random-class "permutation
    /// lookups" (paper §7.1.4). The seed makes distinct arrays differ.
    Permutation {
        /// Seed for the shuffle (SplitMix64 driven Fisher–Yates).
        seed: u64,
    },
    /// A permutation reduced modulo `limit` — bounded pseudo-random index
    /// data (particle→cell coordinates and similar).
    BoundedPermutation {
        /// Seed for the underlying permutation.
        seed: u64,
        /// Exclusive upper bound of every value.
        limit: usize,
    },
}

impl InitPattern {
    /// Materialize the first `len` values of the pattern.
    pub fn materialize(self, len: usize) -> Vec<f64> {
        match self {
            InitPattern::Zero => vec![0.0; len],
            InitPattern::Const(c) => vec![c; len],
            InitPattern::Linear { base, step } => {
                (0..len).map(|i| base + step * i as f64).collect()
            }
            InitPattern::Harmonic => (0..len).map(|i| 1.0 / (i as f64 + 1.0)).collect(),
            InitPattern::Wavy => (0..len)
                .map(|i| 0.5 + (0.37 * i as f64).sin() / 4.0)
                .collect(),
            InitPattern::BoundedPermutation { seed, limit } => InitPattern::Permutation { seed }
                .materialize(len)
                .into_iter()
                .map(|v| (v as usize % limit.max(1)) as f64)
                .collect(),
            InitPattern::Permutation { seed } => {
                let mut v: Vec<f64> = (0..len).map(|i| i as f64).collect();
                let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut next = move || {
                    // SplitMix64 — deterministic, dependency-free.
                    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^ (z >> 31)
                };
                for i in (1..len).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    v.swap(i, j);
                }
                v
            }
        }
    }
}

/// How generation 0 of an array starts out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrayInit {
    /// Every cell undefined — a produced array.
    Undefined,
    /// Every cell defined from the pattern — an input array.
    Full(InitPattern),
    /// Only linear addresses `0..len` defined — boundary/seed data for
    /// recurrences (e.g. `X(1)` in Tri-diagonal Elimination, or the input
    /// half of ICCG's `X`).
    Prefix {
        /// Pattern for the defined prefix.
        pattern: InitPattern,
        /// Number of defined leading cells.
        len: usize,
    },
}

impl ArrayInit {
    /// Number of initially defined cells for an array of `total` elements.
    pub fn defined_len(&self, total: usize) -> usize {
        match *self {
            ArrayInit::Undefined => 0,
            ArrayInit::Full(_) => total,
            ArrayInit::Prefix { len, .. } => len.min(total),
        }
    }

    /// Materialize initial values for the defined region (empty for
    /// `Undefined`).
    pub fn materialize(&self, total: usize) -> Vec<f64> {
        match *self {
            ArrayInit::Undefined => Vec::new(),
            ArrayInit::Full(p) => p.materialize(total),
            ArrayInit::Prefix { pattern, len } => pattern.materialize(len.min(total)),
        }
    }
}

/// Declaration of one array: name, shape, and how generation 0 starts.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Diagnostic name.
    pub name: String,
    /// Dimension extents, outermost first; linearized row-major.
    pub dims: Vec<usize>,
    /// Initial definedness of generation 0.
    pub init: ArrayInit,
}

impl ArrayDecl {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True if the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Row-major strides: `strides[d]` is the address step of dimension `d`.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.dims.len()];
        for d in (0..self.dims.len().saturating_sub(1)).rev() {
            s[d] = s[d + 1] * self.dims[d + 1];
        }
        s
    }

    /// Linearize checked dimension indices into an address.
    pub fn linearize(&self, idx: &[i64]) -> Result<usize, IrError> {
        if idx.len() != self.dims.len() {
            return Err(IrError::RankMismatch {
                array: self.name.clone(),
                got: idx.len(),
                want: self.dims.len(),
            });
        }
        let mut addr = 0usize;
        for (d, (&i, &extent)) in idx.iter().zip(&self.dims).enumerate() {
            if i < 0 || i as usize >= extent {
                return Err(IrError::IndexOutOfBounds {
                    array: self.name.clone(),
                    dim: d,
                    index: i,
                    extent,
                });
            }
            addr = addr * extent + i as usize;
        }
        Ok(addr)
    }
}

/// One phase of a program's execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// Run a loop nest to completion.
    Loop(LoopNest),
    /// Re-initialize an array (all cells → undefined, generation += 1).
    /// In the distributed machine this triggers the host-processor
    /// synchronization protocol of paper §5.
    Reinit(ArrayId),
}

/// A complete workload: arrays, parameters, scalar slots and phases.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Diagnostic name (e.g. `"K1 hydro fragment"`).
    pub name: String,
    /// Array declarations; `ArrayId(i)` indexes this vector.
    pub arrays: Vec<ArrayDecl>,
    /// Named runtime parameters with their values; `ParamId(i)` indexes.
    pub params: Vec<(String, f64)>,
    /// Named scalar reduction slots; `ScalarId(i)` indexes.
    pub scalars: Vec<String>,
    /// Phases executed in order.
    pub phases: Vec<Phase>,
}

impl Program {
    /// An empty program shell (use [`crate::ProgramBuilder`] instead for
    /// anything nontrivial).
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            arrays: Vec::new(),
            params: Vec::new(),
            scalars: Vec::new(),
            phases: Vec::new(),
        }
    }

    /// Declaration of `id`. Panics on a dangling id (programs are built by
    /// the builder, which cannot produce one).
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    /// Only the loop phases, in order.
    pub fn nests(&self) -> impl Iterator<Item = &LoopNest> {
        self.phases.iter().filter_map(|p| match p {
            Phase::Loop(n) => Some(n),
            Phase::Reinit(_) => None,
        })
    }

    /// Total elements across all arrays (the simulated footprint).
    pub fn total_elements(&self) -> usize {
        self.arrays.iter().map(ArrayDecl::len).sum()
    }

    /// Look up a parameter id by name.
    pub fn param_id(&self, name: &str) -> Option<crate::ParamId> {
        self.params
            .iter()
            .position(|(n, _)| n == name)
            .map(crate::ParamId)
    }

    /// Look up an array id by name.
    pub fn array_id(&self, name: &str) -> Option<ArrayId> {
        self.arrays.iter().position(|a| a.name == name).map(ArrayId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_patterns_materialize_deterministically() {
        assert_eq!(InitPattern::Zero.materialize(3), vec![0.0, 0.0, 0.0]);
        assert_eq!(InitPattern::Const(2.5).materialize(2), vec![2.5, 2.5]);
        assert_eq!(
            InitPattern::Linear {
                base: 1.0,
                step: 0.5
            }
            .materialize(3),
            vec![1.0, 1.5, 2.0]
        );
        let h = InitPattern::Harmonic.materialize(4);
        assert_eq!(h[0], 1.0);
        assert_eq!(h[3], 0.25);
        let w = InitPattern::Wavy.materialize(100);
        assert!(w.iter().all(|&x| (0.25..=0.75).contains(&x)));
    }

    #[test]
    fn permutation_is_a_permutation_and_seed_sensitive() {
        let p = InitPattern::Permutation { seed: 1 }.materialize(257);
        let mut sorted: Vec<usize> = p.iter().map(|&x| x as usize).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..257).collect::<Vec<_>>());
        let q = InitPattern::Permutation { seed: 2 }.materialize(257);
        assert_ne!(p, q);
        // Same seed → same permutation.
        assert_eq!(p, InitPattern::Permutation { seed: 1 }.materialize(257));
    }

    #[test]
    fn bounded_permutation_stays_under_limit() {
        let v = InitPattern::BoundedPermutation { seed: 3, limit: 16 }.materialize(500);
        assert!(v.iter().all(|&x| (0.0..16.0).contains(&x)));
        let base = InitPattern::Permutation { seed: 3 }.materialize(500);
        assert!(v
            .iter()
            .zip(&base)
            .all(|(&b, &p)| b == (p as usize % 16) as f64));
        // limit 0 clamps to 1 (all zeros) rather than dividing by zero.
        let z = InitPattern::BoundedPermutation { seed: 3, limit: 0 }.materialize(8);
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn array_init_defined_lengths() {
        assert_eq!(ArrayInit::Undefined.defined_len(10), 0);
        assert_eq!(ArrayInit::Full(InitPattern::Zero).defined_len(10), 10);
        assert_eq!(
            ArrayInit::Prefix {
                pattern: InitPattern::Zero,
                len: 3
            }
            .defined_len(10),
            3
        );
        // Prefix longer than the array clamps.
        assert_eq!(
            ArrayInit::Prefix {
                pattern: InitPattern::Zero,
                len: 30
            }
            .defined_len(10),
            10
        );
        assert_eq!(ArrayInit::Undefined.materialize(10), Vec::<f64>::new());
        assert_eq!(
            ArrayInit::Prefix {
                pattern: InitPattern::Const(2.0),
                len: 2
            }
            .materialize(10),
            vec![2.0, 2.0]
        );
    }

    #[test]
    fn strides_and_linearize_row_major() {
        let d = ArrayDecl {
            name: "A".into(),
            dims: vec![4, 5, 6],
            init: ArrayInit::Undefined,
        };
        assert_eq!(d.len(), 120);
        assert_eq!(d.strides(), vec![30, 6, 1]);
        assert_eq!(d.linearize(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(d.linearize(&[1, 2, 3]).unwrap(), 30 + 12 + 3);
        assert_eq!(d.linearize(&[3, 4, 5]).unwrap(), 119);
    }

    #[test]
    fn linearize_rejects_bad_indices() {
        let d = ArrayDecl {
            name: "A".into(),
            dims: vec![4, 5],
            init: ArrayInit::Undefined,
        };
        assert!(matches!(
            d.linearize(&[4, 0]),
            Err(IrError::IndexOutOfBounds {
                dim: 0,
                index: 4,
                ..
            })
        ));
        assert!(matches!(
            d.linearize(&[0, -1]),
            Err(IrError::IndexOutOfBounds {
                dim: 1,
                index: -1,
                ..
            })
        ));
        assert!(matches!(
            d.linearize(&[0]),
            Err(IrError::RankMismatch {
                got: 1,
                want: 2,
                ..
            })
        ));
    }

    #[test]
    fn program_lookups() {
        let mut p = Program::new("t");
        p.arrays.push(ArrayDecl {
            name: "X".into(),
            dims: vec![10],
            init: ArrayInit::Undefined,
        });
        p.params.push(("Q".into(), 0.5));
        assert_eq!(p.array_id("X"), Some(ArrayId(0)));
        assert_eq!(p.array_id("Y"), None);
        assert_eq!(p.param_id("Q"), Some(crate::ParamId(0)));
        assert_eq!(p.total_elements(), 10);
        assert_eq!(p.array(ArrayId(0)).name, "X");
    }
}
