//! Automatic conversion of conventional (von Neumann) programs to
//! single-assignment form — the "automatic conversion tool" of paper §5.
//!
//! Two strategies, mirroring the paper's discussion:
//!
//! * [`SsaMode::Expand`] — *array expansion*: each phase that redefines an
//!   already-defined region of an array gets a fresh **version** array
//!   (`A@1`, `A@2`, …) and reads are redirected to the version that produced
//!   the value they consume. This "tends to increase the amount of memory
//!   used for array storage" (§5) but introduces no synchronization.
//! * [`SsaMode::Reinit`] — *array re-initialization*: a [`Phase::Reinit`] is
//!   inserted before each redefining phase, to be executed via the
//!   host-processor synchronization protocol at runtime. Memory stays
//!   constant "at the expense of an artificial synchronization point" (§5).
//!
//! Conversion is *value-based*: a relaxed tracing interpreter runs the
//! program under ordinary overwrite semantics and records, for every read
//! site, which phase produced the value consumed. Sites that mix producers
//! from different versions cannot be converted at nest granularity and are
//! reported precisely ([`SsaError::MixedProducers`]). Like any trace-based
//! tool the guarantee is per input size; [`verify_single_assignment`]
//! re-checks the converted program with the strict interpreter.

use std::collections::{BTreeMap, BTreeSet};

use crate::expr::Expr;
use crate::index::IndexExpr;
use crate::interp::{interpret, EvalCtx};
use crate::nest::{ArrayRef, Stmt};
use crate::program::{ArrayDecl, ArrayInit, Phase, Program};
use crate::{ArrayId, IrError};

/// Conversion strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsaMode {
    /// Rename redefining phases onto fresh version arrays.
    Expand,
    /// Insert re-initialization (generation) phases.
    Reinit,
}

/// Why a program could not be converted.
#[derive(Debug, Clone, PartialEq)]
pub enum SsaError {
    /// The same address is written more than once within one version
    /// (e.g. in-loop accumulation `W(i) = W(i) + …`); must be rewritten
    /// with a reduction.
    MultiWriteInVersion {
        /// Offending array name.
        array: String,
        /// Offending linear address.
        addr: usize,
        /// Phase performing the second write.
        phase: usize,
    },
    /// A read site consumes values produced by different versions; nest
    /// granularity renaming cannot express it.
    MixedProducers {
        /// Array being read.
        array: String,
        /// Phase containing the read.
        phase: usize,
        /// Statement index within the nest.
        stmt: usize,
    },
    /// In `Reinit` mode, a read needed a value from a version that the
    /// inserted re-initialization would destroy.
    ValueLost {
        /// Array being read.
        array: String,
        /// Phase containing the read.
        phase: usize,
    },
    /// The tracing run itself failed (out of bounds, read of never-written).
    Trace(IrError),
}

impl core::fmt::Display for SsaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SsaError::MultiWriteInVersion { array, addr, phase } => write!(
                f,
                "address {addr} of {array} written more than once within a version (phase {phase}); rewrite with a reduction"
            ),
            SsaError::MixedProducers { array, phase, stmt } => write!(
                f,
                "read of {array} at phase {phase} stmt {stmt} mixes producers from different versions"
            ),
            SsaError::ValueLost { array, phase } => write!(
                f,
                "re-initialization before phase {phase} would destroy values of {array} still needed"
            ),
            SsaError::Trace(e) => write!(f, "tracing failed: {e}"),
        }
    }
}

impl std::error::Error for SsaError {}

/// Result of a successful conversion.
#[derive(Debug, Clone)]
pub struct Conversion {
    /// The converted, single-assignment program.
    pub program: Program,
    /// Number of version arrays added (`Expand` mode).
    pub versions_added: usize,
    /// Number of re-initialization phases inserted (`Reinit` mode).
    pub reinits_added: usize,
}

/// True if the strict interpreter accepts the program (no double writes).
pub fn verify_single_assignment(program: &Program) -> bool {
    interpret(program).is_ok()
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

type Site = (usize, usize, usize); // (phase, stmt, read slot)

#[derive(Debug, Default)]
struct Trace {
    /// Version index of each (array, phase-writer) pair, as scheduled.
    version_of_phase: BTreeMap<(usize, usize), usize>, // (array, phase) -> version
    /// Versions in existence per array (>= 1 counting the original).
    version_count: BTreeMap<usize, usize>,
    /// Producer versions seen at each read site, per array.
    site_versions: BTreeMap<Site, BTreeMap<usize, BTreeSet<usize>>>, // site -> array -> versions
    /// Phases that start a new version (conflict points), per array.
    conflict_phases: BTreeMap<usize, Vec<usize>>,
    /// Reads occurring in phase `q` of array `a` from a version older than
    /// the version current at `q` — fatal for Reinit mode.
    cross_version_reads: BTreeSet<usize>, // arrays
}

struct VonNeumannStore {
    values: Vec<Vec<f64>>,
    /// Producer version per address, or usize::MAX if undefined.
    producer: Vec<Vec<usize>>,
    /// Addresses written in the current version, to detect multi-writes.
    written_in_version: Vec<BTreeSet<usize>>,
    current_version: Vec<usize>,
}

fn run_trace(program: &Program) -> Result<Trace, SsaError> {
    let mut ctx = EvalCtx::new(program);
    let mut store = VonNeumannStore {
        values: Vec::new(),
        producer: Vec::new(),
        written_in_version: Vec::new(),
        current_version: Vec::new(),
    };
    for d in &program.arrays {
        let total = d.len();
        let seed = d.init.materialize(total);
        let defined = seed.len();
        let mut vals = vec![0.0; total];
        vals[..defined].copy_from_slice(&seed);
        store.values.push(vals);
        let mut prod = vec![usize::MAX; total];
        for p in prod.iter_mut().take(defined) {
            *p = 0; // version 0 == initialization data
        }
        store.producer.push(prod);
        store.written_in_version.push(BTreeSet::new());
        store.current_version.push(0);
    }

    let mut trace = Trace::default();
    for (a, _) in program.arrays.iter().enumerate() {
        trace.version_count.insert(a, 1);
    }

    // A tiny recursive evaluator that attributes each Expr::Read (and the
    // gather index loads inside it) to a read slot.
    #[allow(clippy::too_many_arguments)]
    fn eval_rec(
        ctx: &EvalCtx<'_>,
        expr: &Expr,
        ivs: &[i64],
        phase: usize,
        stmt: usize,
        slot: &mut usize,
        store: &mut VonNeumannStore,
        trace: &mut Trace,
    ) -> Result<f64, SsaError> {
        Ok(match expr {
            Expr::Const(c) => *c,
            Expr::Param(p) => ctx.params[p.0],
            Expr::Scalar(s) => ctx.scalars[s.0],
            Expr::LoopVar(v) => ivs[*v] as f64,
            Expr::Unary(op, a) => op.apply(eval_rec(ctx, a, ivs, phase, stmt, slot, store, trace)?),
            Expr::Binary(op, a, b) => {
                let va = eval_rec(ctx, a, ivs, phase, stmt, slot, store, trace)?;
                let vb = eval_rec(ctx, b, ivs, phase, stmt, slot, store, trace)?;
                op.apply(va, vb)
            }
            Expr::Read(r) => {
                let my_slot = *slot;
                *slot += 1;
                let addr = resolve_vn(ctx, r, ivs, phase, stmt, my_slot, store, trace)?;
                load_vn(
                    ctx.program,
                    r.array,
                    addr,
                    phase,
                    stmt,
                    my_slot,
                    store,
                    trace,
                )?
            }
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_vn(
        ctx: &EvalCtx<'_>,
        aref: &ArrayRef,
        ivs: &[i64],
        phase: usize,
        stmt: usize,
        slot: usize,
        store: &mut VonNeumannStore,
        trace: &mut Trace,
    ) -> Result<usize, SsaError> {
        let decl = ctx.program.array(aref.array);
        let mut idx = Vec::with_capacity(aref.indices.len());
        for ix in &aref.indices {
            let v = match ix {
                IndexExpr::Affine(a) => a.eval(ivs),
                IndexExpr::Indirect {
                    base,
                    pos,
                    scale,
                    offset,
                } => {
                    let p = pos.eval(ivs);
                    let base_decl = ctx.program.array(*base);
                    if p < 0 || p as usize >= base_decl.len() {
                        return Err(SsaError::Trace(IrError::IndexOutOfBounds {
                            array: base_decl.name.clone(),
                            dim: 0,
                            index: p,
                            extent: base_decl.len(),
                        }));
                    }
                    let fetched = load_vn(
                        ctx.program,
                        *base,
                        p as usize,
                        phase,
                        stmt,
                        slot,
                        store,
                        trace,
                    )?;
                    scale * (fetched as i64) + offset
                }
            };
            idx.push(v);
        }
        decl.linearize(&idx).map_err(SsaError::Trace)
    }

    #[allow(clippy::too_many_arguments)]
    fn load_vn(
        program: &Program,
        array: ArrayId,
        addr: usize,
        phase: usize,
        stmt: usize,
        slot: usize,
        store: &mut VonNeumannStore,
        trace: &mut Trace,
    ) -> Result<f64, SsaError> {
        let a = array.0;
        let prod = store.producer[a][addr];
        if prod == usize::MAX {
            return Err(SsaError::Trace(IrError::ReadUndefined {
                array: program.array(array).name.clone(),
                addr,
            }));
        }
        trace
            .site_versions
            .entry((phase, stmt, slot))
            .or_default()
            .entry(a)
            .or_default()
            .insert(prod);
        if prod != store.current_version[a] {
            trace.cross_version_reads.insert(a);
        }
        Ok(store.values[a][addr])
    }

    for (pi, phase) in program.phases.iter().enumerate() {
        match phase {
            Phase::Reinit(id) => {
                // Pre-existing reinits already separate versions.
                let a = id.0;
                store.current_version[a] += 1;
                *trace.version_count.get_mut(&a).expect("seeded") += 1;
                store.written_in_version[a].clear();
                for p in &mut store.producer[a] {
                    *p = usize::MAX;
                }
                trace.conflict_phases.entry(a).or_default().push(pi);
            }
            Phase::Loop(nest) => {
                // First pass of this phase decides, lazily, whether a write
                // conflicts (address already defined in the current version).
                let mut phase_started_version: BTreeMap<usize, bool> = BTreeMap::new();
                for stmt in &nest.body {
                    if let Stmt::Reduce { target, op, .. } = stmt {
                        ctx.scalars[target.0] = op.identity();
                    }
                }
                let mut failure: Option<SsaError> = None;
                nest.for_each_iteration(|ivs| {
                    if failure.is_some() {
                        return;
                    }
                    for (si, stmt) in nest.body.iter().enumerate() {
                        let r = (|| -> Result<(), SsaError> {
                            let mut slot = 0usize;
                            match stmt {
                                Stmt::Assign { target, value } => {
                                    let v = eval_rec(
                                        &ctx, value, ivs, pi, si, &mut slot, &mut store, &mut trace,
                                    )?;
                                    let addr = resolve_vn(
                                        &ctx,
                                        target,
                                        ivs,
                                        pi,
                                        si,
                                        usize::MAX,
                                        &mut store,
                                        &mut trace,
                                    )?;
                                    let a = target.array.0;
                                    let already = store.producer[a][addr] != usize::MAX;
                                    let fresh_this_version =
                                        store.written_in_version[a].contains(&addr);
                                    if fresh_this_version {
                                        // Second write within the version this
                                        // phase writes into.
                                        if phase_started_version.get(&a).copied().unwrap_or(false)
                                            || !already
                                        {
                                            return Err(SsaError::MultiWriteInVersion {
                                                array: ctx.program.array(target.array).name.clone(),
                                                addr,
                                                phase: pi,
                                            });
                                        }
                                    }
                                    if already && !phase_started_version.contains_key(&a) {
                                        // First conflicting write by this phase:
                                        // start a new version of the array.
                                        phase_started_version.insert(a, true);
                                        store.current_version[a] += 1;
                                        *trace.version_count.get_mut(&a).expect("seeded") += 1;
                                        store.written_in_version[a].clear();
                                        trace.conflict_phases.entry(a).or_default().push(pi);
                                    } else {
                                        phase_started_version.entry(a).or_insert(false);
                                    }
                                    if store.written_in_version[a].contains(&addr) {
                                        return Err(SsaError::MultiWriteInVersion {
                                            array: ctx.program.array(target.array).name.clone(),
                                            addr,
                                            phase: pi,
                                        });
                                    }
                                    store.values[a][addr] = v;
                                    store.producer[a][addr] = store.current_version[a];
                                    store.written_in_version[a].insert(addr);
                                    trace
                                        .version_of_phase
                                        .insert((a, pi), store.current_version[a]);
                                    Ok(())
                                }
                                Stmt::Reduce { target, op, value } => {
                                    let v = eval_rec(
                                        &ctx, value, ivs, pi, si, &mut slot, &mut store, &mut trace,
                                    )?;
                                    ctx.scalars[target.0] = op.combine(ctx.scalars[target.0], v);
                                    Ok(())
                                }
                            }
                        })();
                        if let Err(e) = r {
                            failure = Some(e);
                            return;
                        }
                    }
                });
                if let Some(e) = failure {
                    return Err(e);
                }
            }
        }
    }
    Ok(trace)
}

// ---------------------------------------------------------------------------
// Conversion
// ---------------------------------------------------------------------------

/// Convert `program` to single-assignment form using `mode`.
///
/// Programs that are already single-assignment come back unchanged
/// (`versions_added == 0 && reinits_added == 0`).
pub fn convert_to_sa(program: &Program, mode: SsaMode) -> Result<Conversion, SsaError> {
    let trace = run_trace(program)?;

    let any_conflict = trace.conflict_phases.values().any(|v| !v.is_empty());
    if !any_conflict {
        return Ok(Conversion {
            program: program.clone(),
            versions_added: 0,
            reinits_added: 0,
        });
    }

    match mode {
        SsaMode::Reinit => {
            // Soundness: no read may consume a value from an older version
            // than the one current when it executes.
            for (a, _) in trace.conflict_phases.iter() {
                if trace.cross_version_reads.contains(a) {
                    return Err(SsaError::ValueLost {
                        array: program.arrays[*a].name.clone(),
                        phase: trace.conflict_phases[a][0],
                    });
                }
            }
            let mut out = program.clone();
            let mut inserted = 0usize;
            // Insert Reinit(A) before each conflict phase, adjusting for
            // previously inserted phases. Only for Loop-origin conflicts
            // (existing Reinit phases already separate versions).
            let mut insertions: Vec<(usize, ArrayId)> = Vec::new();
            for (a, phases) in &trace.conflict_phases {
                for &pi in phases {
                    if matches!(program.phases[pi], Phase::Loop(_)) {
                        insertions.push((pi, ArrayId(*a)));
                    }
                }
            }
            insertions.sort_by_key(|&(pi, _)| pi);
            for (off, (pi, a)) in insertions.into_iter().enumerate() {
                out.phases.insert(pi + off, Phase::Reinit(a));
                inserted += 1;
            }
            Ok(Conversion {
                program: out,
                versions_added: 0,
                reinits_added: inserted,
            })
        }
        SsaMode::Expand => {
            let mut out = program.clone();
            // Allocate version arrays: for array a with k versions, versions
            // 1..k get fresh ArrayIds. Version 0 is the original array.
            let mut version_ids: BTreeMap<(usize, usize), ArrayId> = BTreeMap::new();
            let mut added = 0usize;
            for (&a, &count) in &trace.version_count {
                version_ids.insert((a, 0), ArrayId(a));
                for v in 1..count {
                    let decl = &program.arrays[a];
                    let id = ArrayId(out.arrays.len());
                    out.arrays.push(ArrayDecl {
                        name: format!("{}@{v}", decl.name),
                        dims: decl.dims.clone(),
                        init: ArrayInit::Undefined,
                    });
                    version_ids.insert((a, v), id);
                    added += 1;
                }
            }

            // Rewrite phases: writes go to the phase's version; reads go to
            // the unique producer version recorded at their site.
            let mut new_phases = Vec::with_capacity(out.phases.len());
            for (pi, phase) in out.phases.iter().enumerate() {
                match phase {
                    Phase::Reinit(_) => {
                        // Superseded by expansion: versions replace reinits.
                        continue;
                    }
                    Phase::Loop(nest) => {
                        let mut nest = nest.clone();
                        for (si, stmt) in nest.body.iter_mut().enumerate() {
                            // Rewrite the write target.
                            if let Stmt::Assign { target, .. } = stmt {
                                let a = target.array.0;
                                if let Some(&v) = trace.version_of_phase.get(&(a, pi)) {
                                    target.array = version_ids[&(a, v)];
                                }
                            }
                            // Rewrite reads slot by slot.
                            let mut slot = 0usize;
                            let mut err = None;
                            let value = match stmt {
                                Stmt::Assign { value, .. } | Stmt::Reduce { value, .. } => value,
                            };
                            value.visit_reads_mut(&mut |r: &mut ArrayRef| {
                                let site = (pi, si, slot);
                                slot += 1;
                                if let Some(by_array) = trace.site_versions.get(&site) {
                                    if let Some(versions) = by_array.get(&r.array.0) {
                                        if versions.len() > 1 {
                                            err = Some(SsaError::MixedProducers {
                                                array: program.arrays[r.array.0].name.clone(),
                                                phase: pi,
                                                stmt: si,
                                            });
                                            return;
                                        }
                                        if let Some(&v) = versions.iter().next() {
                                            r.array = version_ids[&(r.array.0, v)];
                                        }
                                    }
                                }
                            });
                            if let Some(e) = err {
                                return Err(e);
                            }
                        }
                        new_phases.push(Phase::Loop(nest));
                    }
                }
            }
            out.phases = new_phases;
            Ok(Conversion {
                program: out,
                versions_added: added,
                reinits_added: 0,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::index::iv;
    use crate::program::InitPattern;

    /// A two-sweep Jacobi-ish program that rewrites X entirely each sweep —
    /// classic von Neumann array reuse.
    fn two_sweep() -> Program {
        let mut b = ProgramBuilder::new("two-sweep");
        let x = b.input(
            "X",
            &[16],
            InitPattern::Linear {
                base: 0.0,
                step: 1.0,
            },
        );
        b.nest("sweep1", &[("k", 0, 15)], |n| {
            n.assign(x, [iv(0)], n.read(x, [iv(0)]) * 2.0);
        });
        b.finish()
    }

    #[test]
    fn already_sa_program_is_unchanged() {
        let mut b = ProgramBuilder::new("sa");
        let y = b.input("Y", &[8], InitPattern::Zero);
        let x = b.output("X", &[8]);
        b.nest("copy", &[("k", 0, 7)], |n| {
            n.assign(x, [iv(0)], n.read(y, [iv(0)]));
        });
        let p = b.finish();
        let c = convert_to_sa(&p, SsaMode::Expand).unwrap();
        assert_eq!(c.versions_added, 0);
        assert_eq!(c.program, p);
    }

    #[test]
    fn expansion_renames_redefined_array() {
        let p = two_sweep();
        assert!(!verify_single_assignment(&p), "input must violate SA");
        let c = convert_to_sa(&p, SsaMode::Expand).unwrap();
        assert_eq!(c.versions_added, 1);
        assert!(verify_single_assignment(&c.program));
        // The converted program computes X@1(k) = 2k.
        let r = interpret(&c.program).unwrap();
        let v1 = c.program.array_id("X@1").unwrap();
        for k in 0..16 {
            assert_eq!(*r.arrays[v1.0].read(k).unwrap().unwrap(), 2.0 * k as f64);
        }
    }

    #[test]
    fn reinit_mode_inserts_generation_phase() {
        let p = two_sweep();
        let c = convert_to_sa(&p, SsaMode::Reinit);
        // sweep1 reads X(k) *before* rewriting it in the same phase — the
        // old value would be destroyed by a reinit, so this must fail.
        assert!(matches!(c, Err(SsaError::ValueLost { .. })));

        // A disjoint rewrite (writes only, reads from another array) is
        // convertible by reinit.
        let mut b = ProgramBuilder::new("disjoint");
        let y = b.input("Y", &[8], InitPattern::Wavy);
        let x = b.input("X", &[8], InitPattern::Zero);
        b.nest("rewrite", &[("k", 0, 7)], |n| {
            n.assign(x, [iv(0)], n.read(y, [iv(0)]) + 1.0);
        });
        let p = b.finish();
        let c = convert_to_sa(&p, SsaMode::Reinit).unwrap();
        assert_eq!(c.reinits_added, 1);
        assert!(verify_single_assignment(&c.program));
    }

    #[test]
    fn accumulation_is_rejected_with_reduction_hint() {
        // W(0) = W(0) + Y(k) over k — a second write to the same address
        // within one version.
        let mut b = ProgramBuilder::new("acc");
        let y = b.input("Y", &[8], InitPattern::Wavy);
        let w = b.input("W", &[1], InitPattern::Zero);
        b.nest("acc", &[("k", 0, 7)], |n| {
            n.assign(w, [0i64], n.read(w, [0i64]) + n.read(y, [iv(0)]));
        });
        let err = convert_to_sa(&b.finish(), SsaMode::Expand).unwrap_err();
        assert!(matches!(err, SsaError::MultiWriteInVersion { addr: 0, .. }));
    }

    #[test]
    fn three_generations_expand_to_three_versions() {
        let mut b = ProgramBuilder::new("three");
        let x = b.input("X", &[4], InitPattern::Const(1.0));
        for s in 0..3 {
            b.nest(format!("sweep{s}"), &[("k", 0, 3)], |n| {
                n.assign(x, [iv(0)], n.read(x, [iv(0)]) * 2.0);
            });
        }
        let c = convert_to_sa(&b.finish(), SsaMode::Expand).unwrap();
        assert_eq!(c.versions_added, 3);
        assert!(verify_single_assignment(&c.program));
        let r = interpret(&c.program).unwrap();
        let last = c.program.array_id("X@3").unwrap();
        assert_eq!(*r.arrays[last.0].read(0).unwrap().unwrap(), 8.0);
    }

    #[test]
    fn trace_failure_surfaces() {
        let mut b = ProgramBuilder::new("oob");
        let x = b.output("X", &[4]);
        b.nest("bad", &[("k", 0, 7)], |n| {
            n.assign(x, [iv(0)], crate::Expr::Const(0.0));
        });
        let err = convert_to_sa(&b.finish(), SsaMode::Expand).unwrap_err();
        assert!(matches!(
            err,
            SsaError::Trace(IrError::IndexOutOfBounds { .. })
        ));
    }
}
