//! Static dependence graphs and the passes built on them: deadlock-freedom
//! proofs (SA008), work/span analysis, and partition-projected speedup
//! bounds.
//!
//! Single assignment makes the full producer→consumer dataflow statically
//! derivable — the paper's core premise: every array cell has exactly one
//! producer per generation, so read-after-write pairs are the *whole*
//! dependence structure. Two granularities are exposed:
//!
//! * **Generation level** ([`DepGraph`]): nodes are array generations (the
//!   segments between `Reinit`s) plus reduction statements; edges are
//!   *may*-dependences between a producing and a consuming statement,
//!   derived from affine footprint intersection (Banerjee range overlap +
//!   GCD lattice residue via [`sa_ir::analysis`]), exact set enumeration
//!   for statically-resolvable gathers/scatters, and a conservative
//!   [`EdgeKind::Undecidable`] edge when an index array is runtime data.
//!   This is the graph `sapp graph` renders, the superset the soundness
//!   proptests check interpreter-observed RAW pairs against, and the
//!   superset the thread runtime's observed wait edges are asserted to
//!   fall inside ([`DepGraph::covers_wait`]).
//! * **Instance level** (exact, by enumeration): [`summary`] computes
//!   work, span (longest weighted path; reduction results cost a
//!   `⌈log₂ m⌉` tree-combine) and ideal parallelism; [`project`] /
//!   [`speedup_bound`] project the instance stream onto a concrete
//!   `PartitionScheme` × page size, yielding per-PE serialization bounds;
//!   [`check_deadlock`] builds the wait graph the thread runtime would
//!   realize (data waits + per-PE execution order + reduction/reinit
//!   barriers) and proves it acyclic or reports the cycle as SA008.
//!
//! ### Wait-graph model
//!
//! An edge `u → v` means *u cannot complete until v completes*. Three edge
//! families mirror the thread runtime exactly:
//!
//! 1. **Data**: a consumer instance waits on the producer instance of every
//!    cell it reads (reads satisfied by an initializer wait on nobody).
//! 2. **Chain**: a PE executes its instances in program order and a remote
//!    fetch blocks the whole PE, so each instance waits on its PE's
//!    previous instance. Same-PE *backward* data edges are implied by
//!    chains and dropped; cross-PE and same-PE *forward* data edges are
//!    kept.
//! 3. **Barrier**: reduction nests end with a collect/broadcast barrier and
//!    `Reinit` phases are two-round barriers; a barrier waits on every
//!    PE's last instance before it, and every PE's next instance waits on
//!    the barrier.
//!
//! A cycle means the runtime deadlocks (or aborts on an undefined read
//! along the cycle); acyclicity means any topological order — hence the
//! I-structure runtime's data-driven order — completes. Scalar reads never
//! block (workers read the last broadcast value), so they contribute value
//! edges to the span DAG but not wait edges.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

use sa_ir::analysis::{affine_address_range, anchor_ref, linear_address_form, relate_forms};
use sa_ir::index::IndexExpr;
use sa_ir::nest::{ArrayRef, LoopNest, Stmt};
use sa_ir::program::Phase;
use sa_ir::{ArrayId, Expr, PairRelation, Program};
use sa_machine::{ArrayShape, Placement};

use crate::diag::{Code, Diagnostic, Severity, Span};
use crate::sites::{resolve_static_addr, static_array_values, statically_resolvable};
use crate::writeonce::fmt_ivs;
use crate::LintConfig;

/// What a generation-level graph node stands for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// One generation of an array: the segment between consecutive
    /// `Reinit`s (generation 0 is the initial one).
    Gen {
        /// The array.
        array: ArrayId,
        /// Generation ordinal, starting at 0 and incremented per `Reinit`.
        generation: usize,
    },
    /// A reduction statement (its scalar result).
    Reduce {
        /// `ScalarId` index of the destination slot.
        scalar: usize,
        /// Phase index of the nest containing the reduction.
        phase: usize,
        /// Statement index within the nest body.
        stmt: usize,
    },
}

/// A node of the generation-level dependence graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// What the node stands for.
    pub kind: NodeKind,
    /// Display label (`X#0`, `sum@p3/s1`).
    pub label: String,
}

/// How a dependence edge was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Proven by exact footprint enumeration (statically-resolvable
    /// gathers/scatters) or an identical affine form in the same nest.
    Exact,
    /// May-dependence from affine range overlap + GCD residue tests.
    Affine,
    /// At least one side resolves through a runtime-valued index array;
    /// the edge is assumed conservatively.
    Undecidable,
}

impl EdgeKind {
    /// Stable lowercase name (`exact` / `affine` / `undecidable`).
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::Exact => "exact",
            EdgeKind::Affine => "affine",
            EdgeKind::Undecidable => "undecidable",
        }
    }
}

/// A statement location: phase index and statement index within the nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SiteRef {
    /// Phase index within [`sa_ir::Program::phases`].
    pub phase: usize,
    /// Statement index within the nest body.
    pub stmt: usize,
}

/// One read-after-write dependence at generation granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEdge {
    /// Producing node index (the generation or reduction read from).
    pub src: usize,
    /// Consuming node index (the generation or reduction the reader
    /// belongs to).
    pub dst: usize,
    /// The producing statement (for scalar-broadcast edges, the reduce).
    pub writer: SiteRef,
    /// The consuming statement.
    pub reader: SiteRef,
    /// Array carrying the dependence; `None` for scalar broadcasts.
    pub array: Option<ArrayId>,
    /// How the edge was established.
    pub kind: EdgeKind,
}

/// The static generation-level dependence graph of a program.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Program name (used as the DOT graph name).
    pub name: String,
    /// Nodes: one per generation segment (in `crate::sites` slot order:
    /// every array's initial generation first, then one per `Reinit` in
    /// phase order), then one per reduction statement.
    pub nodes: Vec<Node>,
    /// May-dependence edges, deduplicated.
    pub edges: Vec<DepEdge>,
}

impl DepGraph {
    /// Build the graph for `program`.
    pub fn build(program: &Program) -> DepGraph {
        build_depgraph(program)
    }

    /// Node index of `array`'s generation `generation`, if it exists.
    pub fn gen_node(&self, array: ArrayId, generation: usize) -> Option<usize> {
        self.nodes.iter().position(|n| {
            matches!(&n.kind, NodeKind::Gen { array: a, generation: g }
                     if *a == array && *g == generation)
        })
    }

    /// True if the graph contains an edge covering a runtime wait observed
    /// at statement (`phase`, `stmt`) on generation `generation` of
    /// `array` — the debug-mode runtime cross-check.
    pub fn covers_wait(
        &self,
        phase: usize,
        stmt: usize,
        array: ArrayId,
        generation: usize,
    ) -> bool {
        let Some(src) = self.gen_node(array, generation) else {
            return false;
        };
        self.edges.iter().any(|e| {
            e.src == src
                && e.array == Some(array)
                && e.reader.phase == phase
                && e.reader.stmt == stmt
        })
    }

    /// Render as Graphviz DOT. Edge style encodes the kind: solid =
    /// exact, dashed = affine (may), dotted = undecidable.
    pub fn to_dot(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("digraph \"{}\" {{\n", esc(&self.name)));
        s.push_str("  rankdir=LR;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = match n.kind {
                NodeKind::Gen { .. } => "box",
                NodeKind::Reduce { .. } => "ellipse",
            };
            s.push_str(&format!(
                "  n{i} [label=\"{}\", shape={shape}];\n",
                esc(&n.label)
            ));
        }
        for e in &self.edges {
            let style = match e.kind {
                EdgeKind::Exact => "solid",
                EdgeKind::Affine => "dashed",
                EdgeKind::Undecidable => "dotted",
            };
            s.push_str(&format!(
                "  n{} -> n{} [label=\"p{}/s{} -> p{}/s{}\", style={style}];\n",
                e.src, e.dst, e.writer.phase, e.writer.stmt, e.reader.phase, e.reader.stmt
            ));
        }
        s.push_str("}\n");
        s
    }

    /// Render as JSON (hand-rolled; the workspace carries no serde). The
    /// optional `summary` embeds work/span/parallelism when available.
    pub fn to_json(&self, program: &Program, summary: Option<&GraphSummary>) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"name\":\"{}\",\"nodes\":[", esc(&self.name)));
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match &n.kind {
                NodeKind::Gen { array, generation } => s.push_str(&format!(
                    "{{\"id\":{i},\"kind\":\"gen\",\"array\":\"{}\",\"generation\":{generation}}}",
                    esc(&program.array(*array).name)
                )),
                NodeKind::Reduce {
                    scalar,
                    phase,
                    stmt,
                } => s.push_str(&format!(
                    "{{\"id\":{i},\"kind\":\"reduce\",\"scalar\":\"{}\",\"phase\":{phase},\"stmt\":{stmt}}}",
                    esc(&program.scalars[*scalar])
                )),
            }
        }
        s.push_str("],\"edges\":[");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let arr = match e.array {
                Some(a) => format!("\"{}\"", esc(&program.array(a).name)),
                None => "null".to_string(),
            };
            s.push_str(&format!(
                "{{\"src\":{},\"dst\":{},\"kind\":\"{}\",\"array\":{arr},\
                 \"writer\":{{\"phase\":{},\"stmt\":{}}},\"reader\":{{\"phase\":{},\"stmt\":{}}}}}",
                e.src,
                e.dst,
                e.kind.name(),
                e.writer.phase,
                e.writer.stmt,
                e.reader.phase,
                e.reader.stmt
            ));
        }
        s.push(']');
        if let Some(sum) = summary {
            s.push_str(&format!(
                ",\"work\":{},\"span\":{},\"parallelism\":{:.3}",
                sum.work, sum.span, sum.parallelism
            ));
        }
        s.push('}');
        s
    }
}

fn esc(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s
}

/// Collect every `Expr::Scalar` read in evaluation order.
fn scalar_reads(e: &Expr, out: &mut Vec<usize>) {
    match e {
        Expr::Scalar(s) => out.push(s.0),
        Expr::Unary(_, a) => scalar_reads(a, out),
        Expr::Binary(_, a, b) => {
            scalar_reads(a, out);
            scalar_reads(b, out);
        }
        Expr::Const(_) | Expr::Param(_) | Expr::LoopVar(_) | Expr::Read(_) => {}
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn vec_gcd(coeffs: &[i64]) -> u64 {
    coeffs.iter().fold(0u64, |g, &c| gcd(g, c.unsigned_abs()))
}

/// All array reads a statement performs, including the affine reads of
/// index arrays hidden inside indirect indices (of both RHS reads and an
/// assign target). Synthesized refs are owned; plain refs are cloned.
fn all_reads(stmt: &Stmt) -> Vec<ArrayRef> {
    let mut out = Vec::new();
    let push_index_reads = |r: &ArrayRef, out: &mut Vec<ArrayRef>| {
        for ix in &r.indices {
            if let IndexExpr::Indirect { base, pos, .. } = ix {
                out.push(ArrayRef::new(*base, vec![IndexExpr::Affine(pos.clone())]));
            }
        }
    };
    for r in stmt.reads() {
        out.push(r.clone());
        push_index_reads(r, &mut out);
    }
    if let Some(t) = stmt.write_target() {
        push_index_reads(t, &mut out);
    }
    out
}

type FootSet = Option<Rc<HashSet<usize>>>;

/// Exact address set of `aref` over `nest`'s domain, seen through static
/// index arrays; iterations that fail to resolve (the runtime would abort
/// there) are skipped. `None` if some indirection is runtime data.
fn footprint_set(
    program: &Program,
    statics: &[Option<Vec<f64>>],
    nest: &LoopNest,
    aref: &ArrayRef,
) -> FootSet {
    if !statically_resolvable(aref, statics) {
        return None;
    }
    let mut set = HashSet::new();
    nest.for_each_iteration(|ivs| {
        if let Ok(addr) = resolve_static_addr(program, statics, aref, ivs) {
            set.insert(addr);
        }
    });
    Some(Rc::new(set))
}

/// Decide whether (write site, read ref) can be a RAW pair, and how.
#[allow(clippy::too_many_arguments)]
fn dep_between(
    program: &Program,
    w_nest: &LoopNest,
    w_phase: usize,
    w_target: &ArrayRef,
    r_nest: &LoopNest,
    r_phase: usize,
    aref: &ArrayRef,
    w_set: &FootSet,
    r_set: &FootSet,
) -> Option<EdgeKind> {
    let w_ind = w_target.has_indirection();
    let r_ind = aref.has_indirection();
    if !w_ind && !r_ind {
        // Affine × affine: Banerjee range overlap + GCD lattice residue.
        let (wlo, whi) = affine_address_range(program, w_nest, w_target)?;
        let (rlo, rhi) = affine_address_range(program, r_nest, aref)?;
        if whi < rlo || rhi < wlo {
            return None;
        }
        let (wc, wo) = linear_address_form(program, w_target, w_nest.loops.len())?;
        let (rc, ro) = linear_address_form(program, aref, r_nest.loops.len())?;
        let g = gcd(vec_gcd(&wc), vec_gcd(&rc));
        if g == 0 {
            if wo != ro {
                return None;
            }
        } else if (wo - ro).rem_euclid(g as i64) != 0 {
            return None;
        }
        if w_phase == r_phase
            && matches!(relate_forms(&(wc, wo), &(rc, ro)), PairRelation::Identical)
        {
            return Some(EdgeKind::Exact);
        }
        Some(EdgeKind::Affine)
    } else {
        match (w_set, r_set) {
            (Some(ws), Some(rs)) => {
                let (small, big) = if ws.len() <= rs.len() {
                    (ws, rs)
                } else {
                    (rs, ws)
                };
                if small.iter().any(|a| big.contains(a)) {
                    Some(EdgeKind::Exact)
                } else {
                    None
                }
            }
            // Runtime-valued index array: conservatively assume the pair.
            _ => Some(EdgeKind::Undecidable),
        }
    }
}

fn build_depgraph(program: &Program) -> DepGraph {
    let statics = static_array_values(program);
    let n_arrays = program.arrays.len();

    // Generation nodes, in sites::segments slot order, plus per-slot write
    // site lists (recomputed here so slot indices and node indices agree).
    let mut nodes: Vec<Node> = Vec::new();
    let mut gen_count = vec![1usize; n_arrays];
    for (a, decl) in program.arrays.iter().enumerate() {
        nodes.push(Node {
            kind: NodeKind::Gen {
                array: ArrayId(a),
                generation: 0,
            },
            label: format!("{}#0", decl.name),
        });
    }
    let mut slot: Vec<usize> = (0..n_arrays).collect();
    // Per-slot writes: (phase, stmt, nest, target).
    let mut writes: Vec<Vec<(usize, usize, &LoopNest, &ArrayRef)>> = vec![Vec::new(); n_arrays];
    // Reduce nodes + per-scalar site lists, and the slot live at each phase
    // (snapshotted so the edge pass can look it up per reading phase).
    let mut slot_at_phase: Vec<Vec<usize>> = Vec::with_capacity(program.phases.len());
    let mut reduce_node: HashMap<(usize, usize), usize> = HashMap::new();
    let mut reduce_sites: Vec<Vec<(usize, usize)>> = vec![Vec::new(); program.scalars.len()];
    for (pidx, phase) in program.phases.iter().enumerate() {
        slot_at_phase.push(slot.clone());
        match phase {
            Phase::Reinit(id) => {
                let g = gen_count[id.0];
                gen_count[id.0] += 1;
                nodes.push(Node {
                    kind: NodeKind::Gen {
                        array: *id,
                        generation: g,
                    },
                    label: format!("{}#{g}", program.arrays[id.0].name),
                });
                slot[id.0] = nodes.len() - 1;
                writes.push(Vec::new());
            }
            Phase::Loop(nest) => {
                for (sidx, stmt) in nest.body.iter().enumerate() {
                    match stmt {
                        Stmt::Assign { target, .. } => {
                            writes[slot[target.array.0]].push((pidx, sidx, nest, target));
                        }
                        Stmt::Reduce { target, .. } => {
                            reduce_sites[target.0].push((pidx, sidx));
                            reduce_node.insert((pidx, sidx), usize::MAX); // patched below
                        }
                    }
                }
            }
        }
    }
    // Append reduce nodes in phase order and patch the map.
    let mut reduce_keys: Vec<(usize, usize)> = reduce_node.keys().copied().collect();
    reduce_keys.sort_unstable();
    for (pidx, sidx) in reduce_keys {
        if let Phase::Loop(nest) = &program.phases[pidx] {
            if let Stmt::Reduce { target, .. } = &nest.body[sidx] {
                nodes.push(Node {
                    kind: NodeKind::Reduce {
                        scalar: target.0,
                        phase: pidx,
                        stmt: sidx,
                    },
                    label: format!("{}@p{pidx}/s{sidx}", program.scalars[target.0]),
                });
                reduce_node.insert((pidx, sidx), nodes.len() - 1);
            }
        }
    }

    // Edge pass.
    let mut edges: Vec<DepEdge> = Vec::new();
    let mut seen: HashSet<(usize, usize, SiteRef, SiteRef, Option<ArrayId>)> = HashSet::new();
    let mut foot_memo: HashMap<(usize, usize, usize), FootSet> = HashMap::new();
    for (pidx, phase) in program.phases.iter().enumerate() {
        let Phase::Loop(nest) = phase else { continue };
        let live = &slot_at_phase[pidx];
        for (sidx, stmt) in nest.body.iter().enumerate() {
            let reader = SiteRef {
                phase: pidx,
                stmt: sidx,
            };
            let dst = match stmt {
                Stmt::Assign { target, .. } => live[target.array.0],
                Stmt::Reduce { .. } => reduce_node[&(pidx, sidx)],
            };
            for (ridx, aref) in all_reads(stmt).iter().enumerate() {
                let seg = live[aref.array.0];
                if writes[seg].is_empty() {
                    continue;
                }
                let r_set = foot_memo
                    .entry((pidx, sidx, ridx + 1))
                    .or_insert_with(|| {
                        if aref.has_indirection() {
                            footprint_set(program, &statics, nest, aref)
                        } else {
                            None
                        }
                    })
                    .clone();
                for &(wp, ws, w_nest, w_target) in &writes[seg] {
                    let w_set = foot_memo
                        .entry((wp, ws, 0))
                        .or_insert_with(|| {
                            if w_target.has_indirection() {
                                footprint_set(program, &statics, w_nest, w_target)
                            } else {
                                None
                            }
                        })
                        .clone();
                    // For mixed affine × indirect pairs the affine side
                    // needs a set too (exact intersection).
                    let (w_set, r_set) = if aref.has_indirection() || w_target.has_indirection() {
                        let ws2 = if w_set.is_none() && !w_target.has_indirection() {
                            footprint_set(program, &statics, w_nest, w_target)
                        } else {
                            w_set.clone()
                        };
                        let rs2 = if r_set.is_none() && !aref.has_indirection() {
                            footprint_set(program, &statics, nest, aref)
                        } else {
                            r_set.clone()
                        };
                        (ws2, rs2)
                    } else {
                        (None, None)
                    };
                    if let Some(kind) = dep_between(
                        program, w_nest, wp, w_target, nest, pidx, aref, &w_set, &r_set,
                    ) {
                        let writer = SiteRef {
                            phase: wp,
                            stmt: ws,
                        };
                        let key = (seg, dst, writer, reader, Some(aref.array));
                        if seen.insert(key) {
                            edges.push(DepEdge {
                                src: seg,
                                dst,
                                writer,
                                reader,
                                array: Some(aref.array),
                                kind,
                            });
                        }
                    }
                }
            }
            // Scalar broadcasts: reduce result → consumer.
            let mut sids = Vec::new();
            scalar_reads(stmt.value(), &mut sids);
            for sid in sids {
                let Some(&(wp, ws)) = reduce_sites
                    .get(sid)
                    .and_then(|sites| sites.iter().rev().find(|(p, _)| *p < pidx))
                else {
                    continue;
                };
                let src = reduce_node[&(wp, ws)];
                let writer = SiteRef {
                    phase: wp,
                    stmt: ws,
                };
                let key = (src, dst, writer, reader, None);
                if seen.insert(key) {
                    edges.push(DepEdge {
                        src,
                        dst,
                        writer,
                        reader,
                        array: None,
                        kind: EdgeKind::Exact,
                    });
                }
            }
        }
    }

    DepGraph {
        name: program.name.clone(),
        nodes,
        edges,
    }
}

// ---------------------------------------------------------------------------
// Instance level
// ---------------------------------------------------------------------------

/// Why exact instance-level analysis is unavailable for a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceError {
    /// A gather/scatter resolves through a runtime-valued index array.
    RuntimeIndirection(ArrayId),
    /// A reference failed static resolution (out of bounds or an undefined
    /// index-array prefix) — the executors would abort on it.
    Unresolvable(ArrayId),
    /// The instance graph exceeds the `u32` id space.
    TooLarge,
    /// The value dependence graph itself is cyclic (an instance
    /// transitively reads its own output); span is undefined.
    Cyclic,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::RuntimeIndirection(_) => {
                write!(f, "indirection through a runtime-valued index array")
            }
            InstanceError::Unresolvable(_) => {
                write!(f, "a reference fails static address resolution")
            }
            InstanceError::TooLarge => write!(f, "instance graph exceeds the u32 id space"),
            InstanceError::Cyclic => write!(f, "the value dependence graph is cyclic"),
        }
    }
}

/// Work/span/ideal-parallelism summary of the instance-level value DAG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphSummary {
    /// Total statement instances (unit cost each; reduction tree combines
    /// are charged to span only).
    pub work: u64,
    /// Longest weighted path: instances weigh 1, a reduction result weighs
    /// `⌈log₂ m⌉` for `m` contributions (tree combine).
    pub span: u64,
    /// `work / span` (1.0 for empty programs).
    pub parallelism: f64,
}

fn err_array(e: InstanceError) -> Option<ArrayId> {
    match e {
        InstanceError::RuntimeIndirection(a) | InstanceError::Unresolvable(a) => Some(a),
        _ => None,
    }
}

/// Reject programs whose indirections cannot be seen through statically.
fn check_static(program: &Program, statics: &[Option<Vec<f64>>]) -> Result<(), InstanceError> {
    for phase in &program.phases {
        let Phase::Loop(nest) = phase else { continue };
        for stmt in &nest.body {
            let check = |r: &ArrayRef| -> Result<(), InstanceError> {
                for ix in &r.indices {
                    if let IndexExpr::Indirect { base, .. } = ix {
                        if statics[base.0].is_none() {
                            return Err(InstanceError::RuntimeIndirection(*base));
                        }
                    }
                }
                Ok(())
            };
            for r in stmt.reads() {
                check(r)?;
            }
            if let Some(t) = stmt.write_target() {
                check(t)?;
            }
        }
    }
    Ok(())
}

const NONE: u32 = u32::MAX;

/// Per-statement static classification shared by the instance walks.
struct StmtClass<'p> {
    stmt: &'p Stmt,
    reads: Vec<&'p ArrayRef>,
    sreads: Vec<usize>,
    /// `Some(aref)` = anchored (assign target or reduce first read);
    /// `None` = anchorless, placed round-robin.
    anchor: Option<&'p ArrayRef>,
    /// Index among the nest's anchorless statements (when anchorless).
    rr_q: usize,
}

fn classify_nest(nest: &LoopNest) -> (Vec<StmtClass<'_>>, usize) {
    let mut out = Vec::with_capacity(nest.body.len());
    let mut a_cnt = 0usize;
    for stmt in &nest.body {
        let anchor = anchor_ref(stmt);
        let rr_q = if anchor.is_none() {
            a_cnt += 1;
            a_cnt - 1
        } else {
            0
        };
        let mut sreads = Vec::new();
        scalar_reads(stmt.value(), &mut sreads);
        out.push(StmtClass {
            stmt,
            reads: stmt.reads(),
            sreads,
            anchor,
            rr_q,
        });
    }
    (out, a_cnt)
}

fn owner_of(program: &Program, cfg: &LintConfig, array: ArrayId, addr: usize) -> usize {
    // One geometry-aware chokepoint: SA008's wait graph must agree with the
    // executors' placement, or its deadlock proofs are unsound under tiled
    // schemes.
    Placement::new(
        cfg.scheme,
        cfg.page_size,
        cfg.n_pes,
        ArrayShape::from_dims(&program.array(array).dims),
    )
    .owner_of_addr(addr)
}

/// Compute work and span of the instance-level value DAG.
///
/// Forward deferrals make program order differ from topological order, so
/// depths come from a Kahn longest-path pass over the materialized DAG.
pub fn summary(program: &Program) -> Result<GraphSummary, InstanceError> {
    let statics = static_array_values(program);
    check_static(program, &statics)?;

    // Reduce-site prepass: collector k per (phase, stmt), per-scalar lists.
    let mut collector_of: HashMap<(usize, usize), usize> = HashMap::new();
    let mut sites_of_scalar: Vec<Vec<(usize, usize)>> = vec![Vec::new(); program.scalars.len()];
    for (pidx, phase) in program.phases.iter().enumerate() {
        let Phase::Loop(nest) = phase else { continue };
        for (sidx, stmt) in nest.body.iter().enumerate() {
            if let Stmt::Reduce { target, .. } = stmt {
                collector_of.insert((pidx, sidx), collector_of.len());
                sites_of_scalar[target.0].push((pidx, sidx));
            }
        }
    }
    let n_collectors = collector_of.len();

    let mut writers: Vec<Vec<u32>> = program.arrays.iter().map(|a| vec![NONE; a.len()]).collect();
    let mut init_cov: Vec<usize> = program
        .arrays
        .iter()
        .map(|a| a.init.defined_len(a.len()))
        .collect();
    // Forward deferrals: value edges discovered when the write arrives.
    let mut pending: Vec<HashMap<usize, Vec<u32>>> = vec![HashMap::new(); program.arrays.len()];
    let mut edges: Vec<(u32, u32)> = Vec::new(); // (consumer, producer) — instance ids
    let mut cedges: Vec<(u32, u32)> = Vec::new(); // (collector k, reduce instance)
    let mut sedges: Vec<(u32, u32)> = Vec::new(); // (instance, collector k)
    let mut contribs: Vec<u64> = vec![0; n_collectors];
    let mut next: usize = 0;
    let mut err: Option<InstanceError> = None;

    for (pidx, phase) in program.phases.iter().enumerate() {
        match phase {
            Phase::Reinit(id) => {
                // A fresh generation: prior writers can no longer satisfy
                // reads of this array, old dangling reads never will be,
                // and reinit clears every definedness tag.
                writers[id.0] = vec![NONE; program.array(*id).len()];
                pending[id.0].clear();
                init_cov[id.0] = 0;
            }
            Phase::Loop(nest) => {
                let (classes, _) = classify_nest(nest);
                // Scalar producer per read, resolved once per stmt: the
                // last reduce site strictly before this phase.
                let producer_k: Vec<Vec<usize>> = classes
                    .iter()
                    .map(|c| {
                        c.sreads
                            .iter()
                            .filter_map(|&sid| {
                                sites_of_scalar[sid]
                                    .iter()
                                    .rev()
                                    .find(|(p, _)| *p < pidx)
                                    .map(|site| collector_of[site])
                            })
                            .collect()
                    })
                    .collect();
                nest.for_each_iteration(|ivs| {
                    if err.is_some() {
                        return;
                    }
                    for (sidx, c) in classes.iter().enumerate() {
                        let id = next;
                        next += 1;
                        if id >= NONE as usize - 1 {
                            err = Some(InstanceError::TooLarge);
                            return;
                        }
                        for r in &c.reads {
                            match resolve_static_addr(program, &statics, r, ivs) {
                                Ok(addr) => {
                                    let w = writers[r.array.0][addr];
                                    if w != NONE {
                                        edges.push((id as u32, w));
                                    } else if addr >= init_cov[r.array.0] {
                                        pending[r.array.0].entry(addr).or_default().push(id as u32);
                                    }
                                }
                                Err(_) => {
                                    err = Some(InstanceError::Unresolvable(r.array));
                                    return;
                                }
                            }
                        }
                        for &k in &producer_k[sidx] {
                            sedges.push((id as u32, k as u32));
                        }
                        match c.stmt {
                            Stmt::Assign { target, .. } => {
                                match resolve_static_addr(program, &statics, target, ivs) {
                                    Ok(addr) => {
                                        writers[target.array.0][addr] = id as u32;
                                        if let Some(waiters) = pending[target.array.0].remove(&addr)
                                        {
                                            for cid in waiters {
                                                edges.push((cid, id as u32));
                                            }
                                        }
                                    }
                                    Err(_) => {
                                        err = Some(InstanceError::Unresolvable(target.array));
                                        return;
                                    }
                                }
                            }
                            Stmt::Reduce { .. } => {
                                let k = collector_of[&(pidx, sidx)];
                                cedges.push((k as u32, id as u32));
                                contribs[k] += 1;
                            }
                        }
                    }
                });
                if let Some(e) = err {
                    return Err(e);
                }
            }
        }
    }

    let n = next;
    let total = n + n_collectors;
    if total == 0 {
        return Ok(GraphSummary {
            work: 0,
            span: 0,
            parallelism: 1.0,
        });
    }
    // Unify node ids: instances 0..n, collectors n..n+K.
    let mut all_edges: Vec<(u32, u32)> = edges;
    all_edges.extend(cedges.iter().map(|&(k, i)| ((n + k as usize) as u32, i)));
    all_edges.extend(sedges.iter().map(|&(i, k)| (i, (n + k as usize) as u32)));
    let mut weight = vec![1u64; total];
    for (k, &m) in contribs.iter().enumerate() {
        weight[n + k] = ceil_log2(m.max(1));
    }

    // Kahn longest path (producer → consumer CSR).
    let mut out_count = vec![0u32; total];
    let mut indeg = vec![0u32; total];
    for &(c, p) in &all_edges {
        out_count[p as usize] += 1;
        indeg[c as usize] += 1;
    }
    let mut start = vec![0usize; total + 1];
    for i in 0..total {
        start[i + 1] = start[i] + out_count[i] as usize;
    }
    let mut fill = start.clone();
    let mut csr = vec![0u32; all_edges.len()];
    for &(c, p) in &all_edges {
        csr[fill[p as usize]] = c;
        fill[p as usize] += 1;
    }
    let mut depth: Vec<u64> = weight.clone();
    let mut queue: Vec<u32> = (0..total as u32)
        .filter(|&i| indeg[i as usize] == 0)
        .collect();
    let mut processed = 0usize;
    while let Some(x) = queue.pop() {
        processed += 1;
        let xi = x as usize;
        for &c in &csr[start[xi]..start[xi + 1]] {
            let ci = c as usize;
            let cand = depth[xi] + weight[ci];
            if cand > depth[ci] {
                depth[ci] = cand;
            }
            indeg[ci] -= 1;
            if indeg[ci] == 0 {
                queue.push(c);
            }
        }
    }
    if processed < total {
        return Err(InstanceError::Cyclic);
    }
    let span = depth.iter().copied().max().unwrap_or(0);
    let work = n as u64;
    let parallelism = if span == 0 {
        1.0
    } else {
        work as f64 / span as f64
    };
    Ok(GraphSummary {
        work,
        span,
        parallelism,
    })
}

fn ceil_log2(m: u64) -> u64 {
    if m <= 1 {
        0
    } else {
        (64 - (m - 1).leading_zeros()) as u64
    }
}

/// Per-PE projection of the instance stream onto a partition config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Projection {
    /// Assign instances per owning PE — exactly the counting engines'
    /// `Stats::writes_per_pe` (owner-computes places each assignment on
    /// the PE owning its target element).
    pub writes_per_pe: Vec<u64>,
    /// All statement instances per executing PE (assigns at their target's
    /// owner, reductions at their first read's owner, anchorless
    /// statements round-robin) — the serialization bound.
    pub instances_per_pe: Vec<u64>,
}

/// Project the instance stream onto `cfg`, mirroring the communication
/// estimator's screening rules exactly (including the global round-robin
/// counter for anchorless statements).
pub fn project(program: &Program, cfg: &LintConfig) -> Result<Projection, InstanceError> {
    let statics = static_array_values(program);
    check_static(program, &statics)?;
    let mut writes_per_pe = vec![0u64; cfg.n_pes];
    let mut instances_per_pe = vec![0u64; cfg.n_pes];
    let mut rr: usize = 0;
    let mut err: Option<InstanceError> = None;
    for phase in &program.phases {
        let Phase::Loop(nest) = phase else { continue };
        let (classes, a_cnt) = classify_nest(nest);
        let mut iter_idx = 0usize;
        nest.for_each_iteration(|ivs| {
            if err.is_some() {
                return;
            }
            for c in &classes {
                let pe = match c.anchor {
                    Some(aref) => match resolve_static_addr(program, &statics, aref, ivs) {
                        Ok(addr) => owner_of(program, cfg, aref.array, addr),
                        Err(_) => {
                            err = Some(InstanceError::Unresolvable(aref.array));
                            return;
                        }
                    },
                    None => (rr + iter_idx * a_cnt + c.rr_q) % cfg.n_pes,
                };
                instances_per_pe[pe] += 1;
                if matches!(c.stmt, Stmt::Assign { .. }) {
                    writes_per_pe[pe] += 1;
                }
            }
            iter_idx += 1;
        });
        if let Some(e) = err {
            return Err(e);
        }
        rr += iter_idx * a_cnt;
    }
    Ok(Projection {
        writes_per_pe,
        instances_per_pe,
    })
}

/// Static per-PE write counts under `cfg`, or `None` when the program is
/// not statically projectable. Certified identical to the counting
/// engines' `writes_per_pe`, and the basis of search pruning's imbalance
/// lower bound.
pub fn static_writes_per_pe(program: &Program, cfg: &LintConfig) -> Option<Vec<u64>> {
    project(program, cfg).ok().map(|p| p.writes_per_pe)
}

/// Certified static upper bound on parallel speedup under `cfg`:
/// `work / max(span, max_p instances_p)` — no execution can beat both the
/// critical path and the busiest PE's serial workload. `None` when the
/// program is not statically analyzable.
pub fn speedup_bound(program: &Program, cfg: &LintConfig) -> Option<f64> {
    let sum = summary(program).ok()?;
    let proj = project(program, cfg).ok()?;
    if sum.work == 0 {
        return Some(1.0);
    }
    let serial = proj.instances_per_pe.iter().copied().max().unwrap_or(0);
    let denom = sum.span.max(serial).max(1);
    Some(sum.work as f64 / denom as f64)
}

// ---------------------------------------------------------------------------
// Deadlock-freedom (SA008)
// ---------------------------------------------------------------------------

/// Why one wait-graph node waits on another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Why {
    /// The consumer reads `addr` of `array` produced by the waitee.
    Data { array: ArrayId, addr: u32 },
    /// Same-PE program order (a blocked PE executes nothing else).
    Chain,
    /// A reduction or reinit barrier.
    Barrier,
}

/// A compact wait-graph node: a participating instance or a barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WgNode {
    Instance(u32),
    /// Barrier index (into the barrier list).
    Barrier(u32),
}

struct WaitGraph {
    nodes: Vec<WgNode>,
    adj: Vec<Vec<(u32, Why)>>,
    /// Phase index per barrier, for witness text.
    barrier_phase: Vec<usize>,
}

/// Instance enumeration for the wait graph: instance count, the PE each
/// instance runs on, wait-relevant data edges `(consumer, producer, array,
/// addr)`, and barrier watermarks `(instance id, phase)`.
type WaitInstances = (
    usize,
    Vec<u16>,
    Vec<(u32, u32, ArrayId, u32)>,
    Vec<(u32, usize)>,
);

/// Enumerate instances under `cfg`, keeping only wait-relevant data edges
/// (cross-PE, or same-PE forward — same-PE backward waits are implied by
/// chain order), plus per-instance PEs and barrier watermarks.
fn wait_edges(
    program: &Program,
    cfg: &LintConfig,
    statics: &[Option<Vec<f64>>],
) -> Result<WaitInstances, InstanceError> {
    check_static(program, statics)?;
    if cfg.n_pes == 0 || cfg.n_pes > u16::MAX as usize {
        return Err(InstanceError::TooLarge);
    }
    let mut writers: Vec<Vec<u32>> = program.arrays.iter().map(|a| vec![NONE; a.len()]).collect();
    // Addresses the initializer already defines: reads of them never wait.
    let mut init_cov: Vec<usize> = program
        .arrays
        .iter()
        .map(|a| a.init.defined_len(a.len()))
        .collect();
    // Forward deferrals: reads of cells nobody has written yet wait for
    // the eventual producer, discovered when the write is enumerated.
    let mut pending: Vec<HashMap<usize, Vec<u32>>> = vec![HashMap::new(); program.arrays.len()];
    let mut pe_of: Vec<u16> = Vec::new();
    let mut data: Vec<(u32, u32, ArrayId, u32)> = Vec::new();
    let mut barriers: Vec<(u32, usize)> = Vec::new();
    let mut next: usize = 0;
    let mut rr: usize = 0;
    let mut err: Option<InstanceError> = None;

    for (pidx, phase) in program.phases.iter().enumerate() {
        match phase {
            Phase::Reinit(id) => {
                barriers.push((next as u32, pidx));
                writers[id.0] = vec![NONE; program.array(*id).len()];
                // Reads the old generation never satisfied are dangling
                // deferrals (SA004's domain), not wait edges into the new
                // generation; reinit also clears every definedness tag.
                pending[id.0].clear();
                init_cov[id.0] = 0;
            }
            Phase::Loop(nest) => {
                let (classes, a_cnt) = classify_nest(nest);
                let has_reduce = classes
                    .iter()
                    .any(|c| matches!(c.stmt, Stmt::Reduce { .. }));
                let mut iter_idx = 0usize;
                nest.for_each_iteration(|ivs| {
                    if err.is_some() {
                        return;
                    }
                    for c in &classes {
                        let id = next;
                        next += 1;
                        if id >= NONE as usize - 1 {
                            err = Some(InstanceError::TooLarge);
                            return;
                        }
                        let pe = match c.anchor {
                            Some(aref) => match resolve_static_addr(program, statics, aref, ivs) {
                                Ok(addr) => owner_of(program, cfg, aref.array, addr),
                                Err(_) => {
                                    err = Some(InstanceError::Unresolvable(aref.array));
                                    return;
                                }
                            },
                            None => (rr + iter_idx * a_cnt + c.rr_q) % cfg.n_pes,
                        };
                        pe_of.push(pe as u16);
                        for r in &c.reads {
                            match resolve_static_addr(program, statics, r, ivs) {
                                Ok(addr) => {
                                    let w = writers[r.array.0][addr];
                                    if w != NONE {
                                        // Same-PE backward waits are implied
                                        // by chain order; keep cross-PE ones.
                                        if pe_of[w as usize] != pe as u16 {
                                            data.push((id as u32, w, r.array, addr as u32));
                                        }
                                    } else if addr >= init_cov[r.array.0] {
                                        pending[r.array.0].entry(addr).or_default().push(id as u32);
                                    }
                                }
                                Err(_) => {
                                    err = Some(InstanceError::Unresolvable(r.array));
                                    return;
                                }
                            }
                        }
                        if let Stmt::Assign { target, .. } = c.stmt {
                            match resolve_static_addr(program, statics, target, ivs) {
                                Ok(addr) => {
                                    writers[target.array.0][addr] = id as u32;
                                    // Forward waits are never chain-implied
                                    // (producer id > consumer id): keep all.
                                    if let Some(waiters) = pending[target.array.0].remove(&addr) {
                                        for cid in waiters {
                                            data.push((cid, id as u32, target.array, addr as u32));
                                        }
                                    }
                                }
                                Err(_) => {
                                    err = Some(InstanceError::Unresolvable(target.array));
                                    return;
                                }
                            }
                        }
                    }
                    iter_idx += 1;
                });
                if let Some(e) = err {
                    return Err(e);
                }
                rr += iter_idx * a_cnt;
                if has_reduce {
                    barriers.push((next as u32, pidx));
                }
            }
        }
    }
    Ok((next, pe_of, data, barriers))
}

/// Build the compact wait graph: participating instances + barriers, with
/// data, chain and barrier edges.
fn build_wait_graph(
    n_pes: usize,
    pe_of: &[u16],
    data: &[(u32, u32, ArrayId, u32)],
    barriers: &[(u32, usize)],
) -> WaitGraph {
    let mut participating: Vec<u32> = data.iter().flat_map(|&(c, p, _, _)| [c, p]).collect();
    participating.sort_unstable();
    participating.dedup();
    let compact = |id: u32| participating.binary_search(&id).unwrap() as u32;
    let np = participating.len();
    let mut nodes: Vec<WgNode> = participating.iter().map(|&i| WgNode::Instance(i)).collect();
    let mut barrier_phase = Vec::with_capacity(barriers.len());
    for (bi, &(_, phase)) in barriers.iter().enumerate() {
        nodes.push(WgNode::Barrier(bi as u32));
        barrier_phase.push(phase);
    }
    let mut adj: Vec<Vec<(u32, Why)>> = vec![Vec::new(); nodes.len()];
    for &(c, p, array, addr) in data {
        adj[compact(c) as usize].push((compact(p), Why::Data { array, addr }));
    }
    // Chains and barrier edges, in global instance order.
    let mut last: Vec<Option<u32>> = vec![None; n_pes];
    let mut bi = 0usize;
    for (ci, &inst) in participating.iter().enumerate() {
        while bi < barriers.len() && barriers[bi].0 <= inst {
            let bnode = (np + bi) as u32;
            for l in last.iter_mut() {
                if let Some(prev) = *l {
                    adj[bnode as usize].push((prev, Why::Barrier));
                }
                *l = Some(bnode);
            }
            bi += 1;
        }
        let pe = pe_of[inst as usize] as usize;
        if let Some(prev) = last[pe] {
            let why = match nodes[prev as usize] {
                WgNode::Barrier(_) => Why::Barrier,
                WgNode::Instance(_) => Why::Chain,
            };
            adj[ci].push((prev, why));
        }
        last[pe] = Some(ci as u32);
    }
    while bi < barriers.len() {
        let bnode = (np + bi) as u32;
        for l in last.iter_mut() {
            if let Some(prev) = *l {
                adj[bnode as usize].push((prev, Why::Barrier));
            }
            *l = Some(bnode);
        }
        bi += 1;
    }
    WaitGraph {
        nodes,
        adj,
        barrier_phase,
    }
}

/// Find a directed cycle; returns compact node indices in edge order
/// (`v0 → v1 → … → vk → v0`).
fn find_cycle(adj: &[Vec<(u32, Why)>]) -> Option<Vec<usize>> {
    let n = adj.len();
    let mut color = vec![0u8; n]; // 0 white, 1 grey, 2 black
    for s in 0..n {
        if color[s] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(s, 0)];
        color[s] = 1;
        while let Some(&(u, ei)) = stack.last() {
            if ei < adj[u].len() {
                stack.last_mut().unwrap().1 += 1;
                let v = adj[u][ei].0 as usize;
                match color[v] {
                    0 => {
                        color[v] = 1;
                        stack.push((v, 0));
                    }
                    1 => {
                        let pos = stack.iter().position(|&(x, _)| x == v).unwrap();
                        return Some(stack[pos..].iter().map(|&(x, _)| x).collect());
                    }
                    _ => {}
                }
            } else {
                color[u] = 2;
                stack.pop();
            }
        }
    }
    None
}

/// Human description of a set of instances: phase, stmt, nest label,
/// formatted iteration vector. Recovered by re-enumeration (ids are dense
/// global sequence numbers), so the main pass never stores per-instance
/// iteration vectors.
fn describe_instances(
    program: &Program,
    wanted: &HashSet<u32>,
) -> HashMap<u32, (usize, usize, String, String)> {
    let mut out = HashMap::new();
    let mut next: usize = 0;
    for (pidx, phase) in program.phases.iter().enumerate() {
        let Phase::Loop(nest) = phase else { continue };
        let body_len = nest.body.len();
        nest.for_each_iteration(|ivs| {
            if out.len() == wanted.len() {
                next += body_len;
                return;
            }
            for sidx in 0..body_len {
                let id = next as u32;
                next += 1;
                if wanted.contains(&id) {
                    out.insert(id, (pidx, sidx, nest.label.clone(), fmt_ivs(nest, ivs)));
                }
            }
        });
    }
    out
}

/// Prove the wait graph acyclic under `cfg`, or report the cycle as SA008
/// (with iteration vectors and owning PEs on each hop). Programs that
/// cannot be statically enumerated get an `Info`-severity SA008 note —
/// deadlock-freedom is then undecidable, not disproven.
pub fn check_deadlock(program: &Program, cfg: &LintConfig) -> Vec<Diagnostic> {
    let statics = static_array_values(program);
    let enumerated = match wait_edges(program, cfg, &statics) {
        Ok(e) => e,
        Err(e) => {
            let span = match err_array(e) {
                Some(a) => Span::array(&program.array(a).name),
                None => Span::default(),
            };
            return vec![Diagnostic::new(
                Code::Sa008DeadlockCycle,
                span,
                format!("deadlock-freedom not statically provable: {e}"),
            )
            .with_severity(Severity::Info)
            .explain(
                "The wait graph can only be proven acyclic when every reference \
                 resolves statically. This program's instance stream cannot be \
                 enumerated at lint time, so the deadlock check is skipped — the \
                 runtime may still complete normally.",
            )];
        }
    };
    let (_, pe_of, data, barriers) = enumerated;
    let wg = build_wait_graph(cfg.n_pes, &pe_of, &data, &barriers);
    let Some(cycle) = find_cycle(&wg.adj) else {
        return Vec::new();
    };

    // Recover the witness: describe every instance node in the cycle.
    let wanted: HashSet<u32> = cycle
        .iter()
        .filter_map(|&ni| match wg.nodes[ni] {
            WgNode::Instance(id) => Some(id),
            WgNode::Barrier(_) => None,
        })
        .collect();
    let info = describe_instances(program, &wanted);
    let name_node = |ni: usize| -> String {
        match wg.nodes[ni] {
            WgNode::Instance(id) => {
                let pe = pe_of[id as usize];
                match info.get(&id) {
                    Some((p, s, label, ivs)) => {
                        format!("`{label}`/s{s} {ivs} on PE{pe} (phase {p})")
                    }
                    None => format!("instance {id} on PE{pe}"),
                }
            }
            WgNode::Barrier(bi) => format!("barrier(phase {})", wg.barrier_phase[bi as usize]),
        }
    };
    let edge_why = |from: usize, to: usize| -> Why {
        wg.adj[from]
            .iter()
            .find(|(t, _)| *t as usize == to)
            .map_or(Why::Chain, |&(_, w)| w)
    };
    const MAX_HOPS: usize = 8;
    let mut msg = format!(
        "cyclic I-structure wait under {} x {} PEs x page {}: ",
        cfg.scheme.name(),
        cfg.n_pes,
        cfg.page_size
    );
    let k = cycle.len();
    for (i, &ni) in cycle.iter().take(MAX_HOPS).enumerate() {
        let nj = cycle[(i + 1) % k];
        let why = match edge_why(ni, nj) {
            Why::Data { array, addr } => {
                format!(" waits for {}[{addr}] from ", program.array(array).name)
            }
            Why::Chain => " waits (PE order) for ".to_string(),
            Why::Barrier => " waits (barrier) for ".to_string(),
        };
        if i > 0 {
            msg.push_str("; ");
        }
        msg.push_str(&name_node(ni));
        msg.push_str(&why);
        msg.push_str(&name_node(nj));
    }
    if k > MAX_HOPS {
        msg.push_str(&format!("; ... ({} more hops)", k - MAX_HOPS));
    }
    msg.push_str(" (cycle closes)");
    let span = cycle
        .iter()
        .find_map(|&ni| match wg.nodes[ni] {
            WgNode::Instance(id) => info
                .get(&id)
                .map(|(p, s, label, _)| Span::stmt(*p, label, *s, "")),
            WgNode::Barrier(_) => None,
        })
        .unwrap_or_default();
    vec![
        Diagnostic::new(Code::Sa008DeadlockCycle, span, msg).explain(
            "Every hop is a wait the thread runtime would actually perform: a \
         consumer blocking on the producer of a cell it reads, a PE's \
         program-order execution chain, or a reduction/reinit barrier. A \
         cycle means no instance on it can ever complete — the runtime \
         deadlocks (or aborts on an undefined read along the cycle). \
         Break it by repartitioning (different scheme/page size), by \
         splitting the mutually-waiting nests, or by separating the \
         generations with a Reinit.",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::{Expr, InitPattern, ProgramBuilder, ReduceOp};
    use sa_machine::PartitionScheme;

    fn cfg(n_pes: usize, page_size: usize) -> LintConfig {
        LintConfig {
            n_pes,
            page_size,
            scheme: PartitionScheme::Modulo,
        }
    }

    /// X[k] = Y[k] (Y input): no edges, two gen nodes.
    #[test]
    fn input_satisfied_reads_make_no_edges() {
        let mut b = ProgramBuilder::new("copy");
        let x = b.output("X", &[64]);
        let y = b.input("Y", &[64], InitPattern::Wavy);
        b.nest("copy", &[("k", 0, 63)], |nb| {
            let rhs = nb.read(y, [iv(0)]);
            nb.assign(x, [iv(0)], rhs);
        });
        let g = DepGraph::build(&b.finish());
        assert_eq!(g.nodes.len(), 2);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    /// Two-nest chain: X produced, then Z reads X → one affine edge.
    #[test]
    fn cross_nest_chain_has_one_edge() {
        let mut b = ProgramBuilder::new("chain");
        let x = b.output("X", &[64]);
        let z = b.output("Z", &[64]);
        b.nest("produce", &[("k", 0, 63)], |nb| {
            nb.assign(x, [iv(0)], Expr::Const(1.0));
        });
        b.nest("consume", &[("k", 0, 63)], |nb| {
            let rhs = nb.read(x, [iv(0)]);
            nb.assign(z, [iv(0)], rhs);
        });
        let p = b.finish();
        let g = DepGraph::build(&p);
        assert_eq!(g.edges.len(), 1);
        let e = &g.edges[0];
        assert_eq!(e.kind, EdgeKind::Affine);
        assert_eq!(e.writer, SiteRef { phase: 0, stmt: 0 });
        assert_eq!(e.reader, SiteRef { phase: 1, stmt: 0 });
        assert_eq!(g.nodes[e.src].label, "X#0");
        assert_eq!(g.nodes[e.dst].label, "Z#0");
        assert!(g.covers_wait(1, 0, x, 0));
        assert!(!g.covers_wait(0, 0, x, 0));
    }

    /// Disjoint halves: the nest writes X[32..64) while the reader reads
    /// the init-covered X[0..32) → range test rejects the pair.
    #[test]
    fn disjoint_ranges_make_no_edge() {
        let mut b = ProgramBuilder::new("disjoint");
        let x = b.array_with(
            "X",
            &[64],
            sa_ir::program::ArrayInit::Prefix {
                pattern: InitPattern::Zero,
                len: 32,
            },
        );
        let z = b.output("Z", &[32]);
        b.nest("hi", &[("k", 0, 31)], |nb| {
            nb.assign(x, [iv(0).plus(32)], Expr::Const(1.0));
        });
        b.nest("lo", &[("k", 0, 31)], |nb| {
            let rhs = nb.read(x, [iv(0)]);
            nb.assign(z, [iv(0)], rhs);
        });
        let g = DepGraph::build(&b.finish());
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    /// GCD residue: writes even cells, reads odd cells → no edge even
    /// though ranges overlap.
    #[test]
    fn gcd_residue_rejects_interleaved_footprints() {
        let mut b = ProgramBuilder::new("parity");
        let x = b.output("X", &[64]);
        let z = b.output("Z", &[31]);
        b.nest("even", &[("k", 0, 31)], |nb| {
            nb.assign(x, [iv(0).scale(2)], Expr::Const(0.0));
        });
        b.nest("odd", &[("k", 0, 30)], |nb| {
            let rhs = nb.read(x, [iv(0).scale(2).plus(1)]);
            nb.assign(z, [iv(0)], rhs);
        });
        let p = b.finish();
        let g = DepGraph::build(&p);
        assert!(
            g.edges.is_empty(),
            "even writes must not alias odd reads: {:?}",
            g.edges
        );
    }

    /// Same-nest recurrence X[k] = X[k-1]: self-edge on the X generation.
    #[test]
    fn recurrence_is_a_self_edge() {
        let mut b = ProgramBuilder::new("rec");
        let x = b.array_with(
            "X",
            &[64],
            sa_ir::program::ArrayInit::Prefix {
                pattern: InitPattern::Const(2.0),
                len: 1,
            },
        );
        b.nest("scan", &[("k", 1, 63)], |nb| {
            let prev = nb.read(x, [iv(0).plus(-1)]);
            nb.assign(x, [iv(0)], prev);
        });
        let g = DepGraph::build(&b.finish());
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].src, g.edges[0].dst);
    }

    /// Reinit splits generations: post-reinit reads depend on the new
    /// generation's writer, not the old one.
    #[test]
    fn reinit_separates_generations() {
        let mut b = ProgramBuilder::new("gens");
        let x = b.output("X", &[16]);
        let z = b.output("Z", &[16]);
        let w = b.output("W", &[16]);
        b.nest("g0", &[("k", 0, 15)], |nb| {
            nb.assign(x, [iv(0)], Expr::Const(0.0));
        });
        b.nest("use0", &[("k", 0, 15)], |nb| {
            let rhs = nb.read(x, [iv(0)]);
            nb.assign(z, [iv(0)], rhs);
        });
        b.reinit(x);
        b.nest("g1", &[("k", 0, 15)], |nb| {
            nb.assign(x, [iv(0)], Expr::Const(1.0));
        });
        b.nest("use1", &[("k", 0, 15)], |nb| {
            let rhs = nb.read(x, [iv(0)]);
            nb.assign(w, [iv(0)], rhs);
        });
        let p = b.finish();
        let g = DepGraph::build(&p);
        let g0 = g.gen_node(x, 0).unwrap();
        let g1 = g.gen_node(x, 1).unwrap();
        assert!(g.edges.iter().any(|e| e.src == g0 && e.reader.phase == 1));
        assert!(g.edges.iter().any(|e| e.src == g1 && e.reader.phase == 4));
        assert!(!g.edges.iter().any(|e| e.src == g0 && e.reader.phase == 4));
        assert!(g.covers_wait(4, 0, x, 1));
        assert!(!g.covers_wait(4, 0, x, 0));
    }

    /// A reduction result consumed later: scalar-broadcast edge from the
    /// reduce node.
    #[test]
    fn scalar_broadcast_edge() {
        let mut b = ProgramBuilder::new("dot");
        let x = b.input(
            "X",
            &[32],
            InitPattern::Linear {
                base: 1.0,
                step: 1.0,
            },
        );
        let z = b.output("Z", &[32]);
        let s = b.scalar("sum");
        b.nest("acc", &[("k", 0, 31)], |nb| {
            let v = nb.read(x, [iv(0)]);
            nb.reduce(s, ReduceOp::Sum, v);
        });
        b.nest("scale", &[("k", 0, 31)], |nb| {
            nb.assign(z, [iv(0)], Expr::Scalar(s));
        });
        let p = b.finish();
        let g = DepGraph::build(&p);
        let scalar_edges: Vec<_> = g.edges.iter().filter(|e| e.array.is_none()).collect();
        assert_eq!(scalar_edges.len(), 1);
        let e = scalar_edges[0];
        assert!(matches!(g.nodes[e.src].kind, NodeKind::Reduce { .. }));
        assert_eq!(e.kind, EdgeKind::Exact);
        assert_eq!(e.reader.phase, 1);
    }

    /// Runtime-valued index array → conservative undecidable edge.
    #[test]
    fn runtime_gather_is_undecidable() {
        let mut b = ProgramBuilder::new("rt");
        let idx = b.output("IDX", &[16]);
        let x = b.output("X", &[16]);
        let z = b.output("Z", &[16]);
        b.nest("mkidx", &[("k", 0, 15)], |nb| {
            nb.assign(idx, [iv(0)], Expr::LoopVar(0));
        });
        b.nest("mkx", &[("k", 0, 15)], |nb| {
            nb.assign(x, [iv(0)], Expr::Const(2.0));
        });
        b.nest("gather", &[("k", 0, 15)], |nb| {
            let rhs = nb.read_indirect(x, idx, iv(0));
            nb.assign(z, [iv(0)], rhs);
        });
        let p = b.finish();
        let g = DepGraph::build(&p);
        assert!(g
            .edges
            .iter()
            .any(|e| e.kind == EdgeKind::Undecidable && e.array == Some(x)));
        // The index-array read itself is affine and exact/affine-edged.
        assert!(g
            .edges
            .iter()
            .any(|e| e.array == Some(idx) && e.kind != EdgeKind::Undecidable));
        assert!(summary(&p).is_err());
        assert_eq!(
            project(&p, &cfg(4, 8)),
            Err(InstanceError::RuntimeIndirection(idx))
        );
    }

    /// Static gather footprints intersect exactly.
    #[test]
    fn static_gather_is_exact() {
        let mut b = ProgramBuilder::new("sg");
        let idx = b.input("IDX", &[16], InitPattern::Permutation { seed: 7 });
        let x = b.output("X", &[16]);
        let z = b.output("Z", &[16]);
        b.nest("mkx", &[("k", 0, 15)], |nb| {
            nb.assign(x, [iv(0)], Expr::Const(2.0));
        });
        b.nest("gather", &[("k", 0, 15)], |nb| {
            let rhs = nb.read_indirect(x, idx, iv(0));
            nb.assign(z, [iv(0)], rhs);
        });
        let p = b.finish();
        let g = DepGraph::build(&p);
        let e: Vec<_> = g.edges.iter().filter(|e| e.array == Some(x)).collect();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].kind, EdgeKind::Exact);
    }

    /// Span of an elementwise nest is 1 step; a chained consumer adds one.
    #[test]
    fn summary_of_chain() {
        let mut b = ProgramBuilder::new("chain");
        let x = b.output("X", &[100]);
        let z = b.output("Z", &[100]);
        b.nest("produce", &[("k", 0, 99)], |nb| {
            nb.assign(x, [iv(0)], Expr::Const(1.0));
        });
        b.nest("consume", &[("k", 0, 99)], |nb| {
            let rhs = nb.read(x, [iv(0)]);
            nb.assign(z, [iv(0)], rhs);
        });
        let s = summary(&b.finish()).unwrap();
        assert_eq!(s.work, 200);
        assert_eq!(s.span, 2);
        assert!((s.parallelism - 100.0).abs() < 1e-9);
    }

    /// A sequential scan has span ≈ n: no parallelism to find.
    #[test]
    fn summary_of_scan_is_sequential() {
        let mut b = ProgramBuilder::new("scan");
        let x = b.array_with(
            "X",
            &[65],
            sa_ir::program::ArrayInit::Prefix {
                pattern: InitPattern::Const(2.0),
                len: 1,
            },
        );
        b.nest("scan", &[("k", 1, 64)], |nb| {
            let prev = nb.read(x, [iv(0).plus(-1)]);
            nb.assign(x, [iv(0)], prev);
        });
        let s = summary(&b.finish()).unwrap();
        assert_eq!(s.work, 64);
        assert_eq!(s.span, 64);
    }

    /// Reduction span includes the log-depth combine tree, and consumers
    /// of the scalar sit beneath it.
    #[test]
    fn summary_reduction_tree_depth() {
        let mut b = ProgramBuilder::new("dot");
        let x = b.input(
            "X",
            &[64],
            InitPattern::Linear {
                base: 1.0,
                step: 1.0,
            },
        );
        let z = b.output("Z", &[64]);
        let s = b.scalar("sum");
        b.nest("acc", &[("k", 0, 63)], |nb| {
            let v = nb.read(x, [iv(0)]);
            nb.reduce(s, ReduceOp::Sum, v);
        });
        b.nest("scale", &[("k", 0, 63)], |nb| {
            nb.assign(z, [iv(0)], Expr::Scalar(s));
        });
        let sum = summary(&b.finish()).unwrap();
        // contributions depth 1, collector +log2(64)=6, consumer +1.
        assert_eq!(sum.span, 1 + 6 + 1);
        assert_eq!(sum.work, 128);
    }

    /// Projection matches hand-computed modulo ownership, and the bound
    /// respects both span and serialization.
    #[test]
    fn projection_and_speedup_bound() {
        let mut b = ProgramBuilder::new("proj");
        let x = b.output("X", &[64]);
        b.nest("fill", &[("k", 0, 63)], |nb| {
            nb.assign(x, [iv(0)], Expr::Const(0.0));
        });
        let p = b.finish();
        // 4 PEs, page 8 → 8 pages round-robin → 2 pages = 16 writes per PE.
        let c = cfg(4, 8);
        let proj = project(&p, &c).unwrap();
        assert_eq!(proj.writes_per_pe, vec![16, 16, 16, 16]);
        assert_eq!(proj.instances_per_pe, vec![16, 16, 16, 16]);
        let bound = speedup_bound(&p, &c).unwrap();
        // work 64, span 1, serialization 16 → bound 4 = n_pes.
        assert!((bound - 4.0).abs() < 1e-9);
        // One PE owns everything under Block with a huge page.
        let c1 = LintConfig {
            n_pes: 4,
            page_size: 64,
            scheme: PartitionScheme::Block,
        };
        let bound1 = speedup_bound(&p, &c1).unwrap();
        assert!((bound1 - 1.0).abs() < 1e-9);
    }

    /// Anchorless statements go round-robin with a persistent counter.
    #[test]
    fn anchorless_round_robin_projection() {
        let mut b = ProgramBuilder::new("rr");
        let s = b.scalar("acc");
        b.nest("count", &[("k", 0, 9)], |nb| {
            nb.reduce(s, ReduceOp::Sum, Expr::Const(1.0));
        });
        let p = b.finish();
        let c = cfg(4, 8);
        let proj = project(&p, &c).unwrap();
        assert_eq!(proj.writes_per_pe, vec![0, 0, 0, 0]);
        // 10 instances round-robin over 4 PEs starting at 0.
        assert_eq!(proj.instances_per_pe, vec![3, 3, 2, 2]);
    }

    /// A clean forward-deferral program is deadlock-free.
    #[test]
    fn forward_deferral_is_not_a_deadlock() {
        let mut b = ProgramBuilder::new("fwd");
        let x = b.output("X", &[8]);
        let z = b.output("Z", &[8]);
        // Z reads X before X's producing nest runs: legal deferral.
        b.nest("consume", &[("k", 0, 7)], |nb| {
            let rhs = nb.read(x, [iv(0)]);
            nb.assign(z, [iv(0)], rhs);
        });
        b.nest("produce", &[("k", 0, 7)], |nb| {
            nb.assign(x, [iv(0)], Expr::Const(1.0));
        });
        let p = b.finish();
        // Different PEs own X[k] and Z[k]? Under modulo page 1 they map the
        // same, so consumer and producer share a PE — the forward wait
        // deadlocks there. Use page 1 × 2 PEs but shift the read.
        let diags = check_deadlock(&p, &cfg(16, 1));
        // Same-PE forward wait: consumer at X[k] waits for its own PE's
        // later instance → this IS a deadlock under owner-computes.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::Sa008DeadlockCycle);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    /// Cross-PE *backward* dependence (producers run first, consumers
    /// later read a shifted neighbour): provably deadlock-free.
    #[test]
    fn cross_pe_backward_dependence_is_clean() {
        let mut b = ProgramBuilder::new("bwd2");
        let x = b.output("X", &[8]);
        let z = b.output("Z", &[7]);
        b.nest("produce", &[("k", 0, 7)], |nb| {
            nb.assign(x, [iv(0)], Expr::Const(1.0));
        });
        // Z[k] reads X[k+1]: under modulo × page 1 × 2 PEs the producer
        // lives on the opposite PE, but it already ran → every wait is
        // backward and the wait graph is acyclic.
        b.nest("consume", &[("k", 0, 6)], |nb| {
            let rhs = nb.read(x, [iv(0).plus(1)]);
            nb.assign(z, [iv(0)], rhs);
        });
        let p = b.finish();
        let diags = check_deadlock(&p, &cfg(2, 1));
        assert!(diags.is_empty(), "{diags:?}");
    }

    /// The seeded cyclic-deferral mutant: two nests exchange through each
    /// other's outputs cross-PE → SA008 with iteration vectors.
    #[test]
    fn cyclic_exchange_mutant_is_rejected() {
        let mut b = ProgramBuilder::new("mutant");
        let w = b.output("W", &[2]);
        let x = b.output("X", &[2]);
        b.nest("xch1", &[("k", 0, 1)], |nb| {
            let rhs = nb.read(x, [iv(0).scale(-1).plus(1)]);
            nb.assign(w, [iv(0)], rhs);
        });
        b.nest("xch2", &[("k", 0, 1)], |nb| {
            let rhs = nb.read(w, [iv(0).scale(-1).plus(1)]);
            nb.assign(x, [iv(0)], rhs);
        });
        let p = b.finish();
        let diags = check_deadlock(&p, &cfg(2, 1));
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.code, Code::Sa008DeadlockCycle);
        assert_eq!(d.severity, Severity::Error);
        assert!(
            d.message.contains("k="),
            "no iteration vector: {}",
            d.message
        );
        assert!(d.message.contains("PE"), "no PE in witness: {}", d.message);
    }

    /// The same exchange under 1 PE also deadlocks (chain + forward wait).
    #[test]
    fn exchange_deadlocks_on_one_pe_too() {
        let mut b = ProgramBuilder::new("mutant1");
        let w = b.output("W", &[2]);
        let x = b.output("X", &[2]);
        b.nest("xch1", &[("k", 0, 1)], |nb| {
            let rhs = nb.read(x, [iv(0).scale(-1).plus(1)]);
            nb.assign(w, [iv(0)], rhs);
        });
        b.nest("xch2", &[("k", 0, 1)], |nb| {
            let rhs = nb.read(w, [iv(0).scale(-1).plus(1)]);
            nb.assign(x, [iv(0)], rhs);
        });
        let p = b.finish();
        let diags = check_deadlock(&p, &cfg(1, 32));
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    /// DOT and JSON render without panicking and carry the basics.
    #[test]
    fn renders_dot_and_json() {
        let mut b = ProgramBuilder::new("render");
        let x = b.output("X", &[8]);
        let z = b.output("Z", &[8]);
        b.nest("a", &[("k", 0, 7)], |nb| {
            nb.assign(x, [iv(0)], Expr::Const(1.0));
        });
        b.nest("b", &[("k", 0, 7)], |nb| {
            let rhs = nb.read(x, [iv(0)]);
            nb.assign(z, [iv(0)], rhs);
        });
        let p = b.finish();
        let g = DepGraph::build(&p);
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("X#0"));
        assert!(dot.contains("style=dashed"));
        let sum = summary(&p).unwrap();
        let json = g.to_json(&p, Some(&sum));
        assert!(json.contains("\"kind\":\"gen\""));
        assert!(json.contains("\"work\":16"));
        assert!(json.contains("\"span\":2"));
    }
}
