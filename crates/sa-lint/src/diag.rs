//! The machine-readable diagnostic model every lint pass reports through.
//!
//! A [`Diagnostic`] is a severity, a stable code, a location ([`Span`]),
//! a one-line message and a longer explanation — enough for a CLI table,
//! for JSON consumed by CI gates, and for tests asserting on exact codes.

use std::fmt;

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note; never fails a gate.
    Info,
    /// Suspicious but not provably wrong (e.g. statically undecidable).
    Warning,
    /// A proven defect: the program or configuration is broken.
    Error,
}

impl Severity {
    /// Stable lowercase name (`info` / `warning` / `error`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Stable diagnostic codes. The numeric part is permanent; new checks get
/// new codes rather than reusing retired ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// Two statement instances assign the same array element.
    Sa001DoubleWrite,
    /// A statement writes into an element the array's initializer already
    /// defined (dynamically indistinguishable from a double write).
    Sa002WriteIntoInit,
    /// A scatter through a runtime-produced index array: single assignment
    /// is statically undecidable for it.
    Sa003UndecidableScatter,
    /// A read of an element no initializer or statement ever defines — a
    /// dangling I-structure deferral that would hang the thread runtime.
    Sa004DanglingRead,
    /// An indirect anchor whose index array has no static producer.
    Sa005AnchorNoProducer,
    /// A reference provably outside its array's bounds.
    Sa006OutOfBounds,
    /// A structurally malformed program (builder validation failure).
    Sa007Malformed,
    /// A cyclic I-structure wait under some partition config: the static
    /// wait graph (data waits + per-PE execution order + barriers) has a
    /// cycle, so the thread runtime would deadlock or abort.
    Sa008DeadlockCycle,
    /// A partition scheme × page size that leaves PEs owning no data.
    Pl001OrphanedPes,
}

impl Code {
    /// The stable code string (e.g. `"SA001"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Sa001DoubleWrite => "SA001",
            Code::Sa002WriteIntoInit => "SA002",
            Code::Sa003UndecidableScatter => "SA003",
            Code::Sa004DanglingRead => "SA004",
            Code::Sa005AnchorNoProducer => "SA005",
            Code::Sa006OutOfBounds => "SA006",
            Code::Sa007Malformed => "SA007",
            Code::Sa008DeadlockCycle => "SA008",
            Code::Pl001OrphanedPes => "PL001",
        }
    }

    /// The default severity findings with this code carry.
    pub fn severity(self) -> Severity {
        match self {
            Code::Sa001DoubleWrite
            | Code::Sa002WriteIntoInit
            | Code::Sa004DanglingRead
            | Code::Sa006OutOfBounds
            | Code::Sa007Malformed
            | Code::Sa008DeadlockCycle => Severity::Error,
            Code::Sa003UndecidableScatter | Code::Pl001OrphanedPes => Severity::Warning,
            // Same-nest producers break only the thread runtime; absent
            // producers are upgraded to Error by the progress checker.
            Code::Sa005AnchorNoProducer => Severity::Warning,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the program a finding points.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Span {
    /// Phase index within [`sa_ir::Program::phases`].
    pub phase: Option<usize>,
    /// The nest's label, when the phase is a loop.
    pub nest: Option<String>,
    /// Statement index within the nest body.
    pub stmt: Option<usize>,
    /// Name of the array the finding concerns.
    pub array: Option<String>,
}

impl Span {
    /// A span pointing at a statement of a nest.
    pub fn stmt(phase: usize, nest: &str, stmt: usize, array: &str) -> Self {
        Span {
            phase: Some(phase),
            nest: Some(nest.to_string()),
            stmt: Some(stmt),
            array: Some(array.to_string()),
        }
    }

    /// A span pointing at an array as a whole.
    pub fn array(name: &str) -> Self {
        Span {
            array: Some(name.to_string()),
            ..Span::default()
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        if let Some(p) = self.phase {
            write!(f, "phase {p}")?;
            wrote = true;
        }
        if let Some(n) = &self.nest {
            if wrote {
                f.write_str(" ")?;
            }
            write!(f, "nest `{n}`")?;
            wrote = true;
        }
        if let Some(s) = self.stmt {
            if wrote {
                f.write_str(" ")?;
            }
            write!(f, "stmt {s}")?;
            wrote = true;
        }
        if let Some(a) = &self.array {
            if wrote {
                f.write_str(" ")?;
            }
            write!(f, "array `{a}`")?;
            wrote = true;
        }
        if !wrote {
            f.write_str("<program>")?;
        }
        Ok(())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Finding severity.
    pub severity: Severity,
    /// Stable code.
    pub code: Code,
    /// Location.
    pub span: Span,
    /// One-line message (what is wrong, with the concrete evidence).
    pub message: String,
    /// Longer explanation (why it matters, how to fix it).
    pub explanation: String,
}

impl Diagnostic {
    /// A finding at the code's default severity.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: code.severity(),
            code,
            span,
            message: message.into(),
            explanation: String::new(),
        }
    }

    /// Attach a longer explanation.
    pub fn explain(mut self, text: impl Into<String>) -> Self {
        self.explanation = text.into();
        self
    }

    /// Override the default severity.
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// This diagnostic as one JSON object (hand-rolled; the workspace is
    /// offline and carries no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        push_kv(&mut s, "severity", self.severity.name());
        s.push(',');
        push_kv(&mut s, "code", self.code.as_str());
        s.push(',');
        s.push_str("\"span\":{");
        let mut first = true;
        if let Some(p) = self.span.phase {
            s.push_str(&format!("\"phase\":{p}"));
            first = false;
        }
        if let Some(n) = &self.span.nest {
            if !first {
                s.push(',');
            }
            push_kv(&mut s, "nest", n);
            first = false;
        }
        if let Some(st) = self.span.stmt {
            if !first {
                s.push(',');
            }
            s.push_str(&format!("\"stmt\":{st}"));
            first = false;
        }
        if let Some(a) = &self.span.array {
            if !first {
                s.push(',');
            }
            push_kv(&mut s, "array", a);
        }
        s.push_str("},");
        push_kv(&mut s, "message", &self.message);
        s.push(',');
        push_kv(&mut s, "explanation", &self.explanation);
        s.push('}');
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )
    }
}

fn push_kv(s: &mut String, key: &str, value: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Render a batch of diagnostics as a JSON array.
pub fn to_json_array(diags: &[Diagnostic]) -> String {
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&d.to_json());
    }
    s.push(']');
    s
}

/// Highest severity in a batch (`None` when empty).
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_have_stable_names_and_severities() {
        assert_eq!(Code::Sa001DoubleWrite.as_str(), "SA001");
        assert_eq!(Code::Pl001OrphanedPes.as_str(), "PL001");
        assert_eq!(Code::Sa001DoubleWrite.severity(), Severity::Error);
        assert_eq!(Code::Sa003UndecidableScatter.severity(), Severity::Warning);
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn json_escapes_and_shapes() {
        let d = Diagnostic::new(
            Code::Sa001DoubleWrite,
            Span::stmt(0, "k1", 1, "X"),
            "element 3 written twice: \"both\" at it",
        )
        .explain("line1\nline2");
        let j = d.to_json();
        assert!(j.contains("\"code\":\"SA001\""));
        assert!(j.contains("\"phase\":0"));
        assert!(j.contains("\\\"both\\\""));
        assert!(j.contains("line1\\nline2"));
        let arr = to_json_array(&[d.clone(), d]);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
        assert_eq!(arr.matches("SA001").count(), 2);
    }

    #[test]
    fn max_severity_picks_worst() {
        let w = Diagnostic::new(Code::Pl001OrphanedPes, Span::default(), "w");
        let e = Diagnostic::new(Code::Sa006OutOfBounds, Span::default(), "e");
        assert_eq!(max_severity(&[]), None);
        assert_eq!(
            max_severity(std::slice::from_ref(&w)),
            Some(Severity::Warning)
        );
        assert_eq!(max_severity(&[w, e]), Some(Severity::Error));
    }
}
