//! The static communication estimator: per-PE access counts for any affine
//! program × [`sa_machine::PartitionScheme`] × page size, **without executing a single
//! statement**.
//!
//! The counting simulator's verdict for an affine program is fully
//! determined by static data: under owner-computes every `Assign` executes
//! on the PE owning its target element, every read classifies by comparing
//! the read element's owning PE against the executing PE, and (with caches
//! disabled) every non-local read is exactly one remote read plus one page
//! fetch (two network messages). Nothing depends on the *values* flowing
//! through the program — only on the affine address functions, the loop
//! bounds, and the placement map.
//!
//! The estimator exploits that: it enumerates the outer loop levels (whose
//! trip counts are tiny at kernel scale — they exist mostly for sweeps and
//! 2-D/3-D grids) and treats the innermost level *symbolically*. For a
//! fixed outer iteration vector, every reference's linear address is
//! `a + b·t` in the normalized innermost trip `t`, so its page number is a
//! staircase in `t`; the estimator splits `0..T` into maximal runs on which
//! every reference of the statement sits on a constant page and charges
//! whole runs at once — `O(pages touched)` instead of `O(iterations)` for
//! the innermost loop, the usual `O(1)`-per-page closed form.
//!
//! The result is certified bit-identical against the counting simulator
//! (`sa_core::exec::simulate` with caches disabled) on every affine
//! workload in the registry — see `tests/lint_static.rs` at the workspace
//! root — which is what lets partition searches use it as a zero-execution
//! oracle.
//!
//! Out of scope (reported as [`EstimateError`], never silently wrong):
//! gathers/scatters (their addresses depend on runtime data) and non-zero
//! cache sizes (hit rates depend on access *order*, which the closed form
//! deliberately discards).

use sa_ir::index::AffineIndex;
use sa_ir::nest::{LoopNest, Stmt};
use sa_ir::program::Phase;
use sa_ir::Program;
use sa_machine::{host_of, ArrayShape, MachineConfig, Placement, Stats};

/// The estimator's verdict: the same counters the counting simulator
/// reports, computed in closed form.
#[derive(Debug, Clone, PartialEq)]
pub struct CommEstimate {
    /// Per-PE access counters plus fetch/protocol tallies, bit-identical
    /// to `simulate(..)` with caches disabled.
    pub stats: Stats,
    /// Total network messages: page fetches ×2 + host-protocol
    /// re-initialization traffic + reduction partial shipping.
    pub network_messages: u64,
}

/// Why the estimator declined or failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// The program gathers or scatters through an index array; those
    /// addresses depend on runtime data.
    Indirect {
        /// Name of the array referenced through the indirection.
        array: String,
    },
    /// A cache was configured; cached counts depend on access order.
    CacheUnsupported,
    /// A machine with no PEs.
    NoPes,
    /// A reference provably leaves its array's bounds (the simulator would
    /// abort on the same iteration).
    OutOfBounds {
        /// The array's name.
        array: String,
        /// The nest's label.
        nest: String,
        /// Offending dimension.
        dim: usize,
        /// Offending index value.
        index: i64,
        /// The dimension's extent.
        extent: usize,
    },
}

impl core::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EstimateError::Indirect { array } => write!(
                f,
                "program reads or writes `{array}` through an index array; \
                 static estimation needs affine addresses"
            ),
            EstimateError::CacheUnsupported => write!(
                f,
                "cache hit rates depend on access order; run the estimator \
                 with cache_elems = 0"
            ),
            EstimateError::NoPes => write!(f, "machine has no PEs"),
            EstimateError::OutOfBounds {
                array,
                nest,
                dim,
                index,
                extent,
            } => write!(
                f,
                "nest `{nest}`: index {index} leaves dimension {dim} of \
                 `{array}` (extent {extent})"
            ),
        }
    }
}

impl std::error::Error for EstimateError {}

/// One reference of a statement, lowered for a fixed outer iteration
/// vector: per-dimension start/step plus the folded linear address line.
struct RefLine {
    /// Linear address at inner trip `t` is `a + b·t`.
    a: i64,
    b: i64,
    /// Index of the referenced array's [`Placement`].
    array: usize,
}

/// A statement's references, split by role.
struct StmtRefs<'p> {
    /// `Assign` target, if any (also the anchor).
    target: Option<&'p sa_ir::ArrayRef>,
    /// Reads in evaluation order (the anchor of a `Reduce` is `reads[0]`).
    reads: Vec<&'p sa_ir::ArrayRef>,
    /// Reduction scalar, for `Reduce`.
    reduce_sid: Option<usize>,
}

/// Estimate `program`'s counting-simulator verdict under `cfg` without
/// executing it. See the module docs for the model and its limits.
pub fn estimate(program: &Program, cfg: &MachineConfig) -> Result<CommEstimate, EstimateError> {
    if cfg.n_pes == 0 {
        return Err(EstimateError::NoPes);
    }
    if cfg.cache_elems > 0 {
        return Err(EstimateError::CacheUnsupported);
    }
    // Refuse indirection up front so the error names the array instead of
    // surfacing as a missing linear form mid-nest.
    for nest in program.nests() {
        for stmt in &nest.body {
            for aref in refs_of(stmt) {
                if aref.has_indirection() {
                    return Err(EstimateError::Indirect {
                        array: program.array(aref.array).name.clone(),
                    });
                }
            }
        }
    }

    // Per-array placements: tiled schemes see each array's declared grid,
    // the page-linear schemes keep the paper's flattened-page arithmetic.
    let placements: Vec<Placement> = program
        .arrays
        .iter()
        .map(|d| {
            Placement::new(
                cfg.partition,
                cfg.page_size,
                cfg.n_pes,
                ArrayShape::from_dims(&d.dims),
            )
        })
        .collect();

    let mut stats = Stats::new(cfg.n_pes);
    // Round-robin counter for anchorless statements — global across nests,
    // mirroring the simulator's.
    let mut rr = 0usize;

    for phase in &program.phases {
        match phase {
            Phase::Reinit(_) => {
                // §5 host protocol: n-1 collect requests + n-1 release
                // broadcasts.
                stats.reinit_messages += 2 * (cfg.n_pes as u64 - 1);
            }
            Phase::Loop(nest) => {
                estimate_nest(program, nest, cfg, &placements, &mut stats, &mut rr)?;
            }
        }
    }

    let network_messages =
        2 * stats.page_fetches + stats.reinit_messages + stats.reduction_messages;
    Ok(CommEstimate {
        stats,
        network_messages,
    })
}

/// All array references of a statement: the write target first, then the
/// reads in evaluation order.
fn refs_of(stmt: &Stmt) -> Vec<&sa_ir::ArrayRef> {
    let mut v = Vec::new();
    if let Some(t) = stmt.write_target() {
        v.push(t);
    }
    v.extend(stmt.value().reads());
    v
}

fn split_refs(stmt: &Stmt) -> StmtRefs<'_> {
    match stmt {
        Stmt::Assign { target, value } => StmtRefs {
            target: Some(target),
            reads: value.reads(),
            reduce_sid: None,
        },
        Stmt::Reduce { target, value, .. } => StmtRefs {
            target: None,
            reads: value.reads(),
            reduce_sid: Some(target.0),
        },
    }
}

fn estimate_nest(
    program: &Program,
    nest: &LoopNest,
    cfg: &MachineConfig,
    placements: &[Placement],
    stats: &mut Stats,
    rr: &mut usize,
) -> Result<(), EstimateError> {
    let split: Vec<StmtRefs<'_>> = nest.body.iter().map(split_refs).collect();
    // Which PEs contributed to each reduction, in body order, keyed by the
    // target scalar exactly like the simulator's participant table.
    let mut participants: Vec<(usize, Vec<bool>)> = split
        .iter()
        .filter_map(|s| s.reduce_sid.map(|sid| (sid, vec![false; cfg.n_pes])))
        .collect();
    // Anchorless statements (reductions reading no array) and their dealt
    // round-robin schedule.
    let anchorless: Vec<usize> = split
        .iter()
        .enumerate()
        .filter(|(_, s)| s.target.is_none() && s.reads.is_empty())
        .map(|(i, _)| i)
        .collect();

    if nest.loops.is_empty() {
        return Ok(());
    }
    let inner = nest.loops.len() - 1;

    // Enumerate the outer levels; each call handles one symbolic innermost
    // sweep.
    let mut ivs: Vec<i64> = Vec::with_capacity(inner);
    enumerate_outer(nest, 0, inner, &mut ivs, &mut |outer_ivs| {
        estimate_chunk(
            program,
            nest,
            cfg,
            placements,
            &split,
            &anchorless,
            &mut participants,
            outer_ivs,
            stats,
            rr,
        )
    })?;

    // Vector→scalar collection: every participating PE ships its partial
    // to the scalar's host; the host's own partial stays local.
    for (sid, parts) in &participants {
        let host = host_of(*sid, cfg.n_pes);
        for (pe, &took_part) in parts.iter().enumerate() {
            if took_part && pe != host {
                stats.reduction_messages += 1;
            }
        }
    }
    Ok(())
}

fn enumerate_outer(
    nest: &LoopNest,
    level: usize,
    inner: usize,
    ivs: &mut Vec<i64>,
    f: &mut impl FnMut(&[i64]) -> Result<(), EstimateError>,
) -> Result<(), EstimateError> {
    if level == inner {
        return f(ivs);
    }
    let lv = &nest.loops[level];
    let lo = lv.lo.eval(ivs);
    let hi = lv.hi.eval(ivs);
    let mut v = lo;
    while (lv.step > 0 && v <= hi) || (lv.step < 0 && v >= hi) {
        ivs.push(v);
        enumerate_outer(nest, level + 1, inner, ivs, f)?;
        ivs.pop();
        v += lv.step;
    }
    Ok(())
}

/// Lower one reference for fixed outer ivs: per-dimension bounds proof at
/// the sweep's endpoints (affine ⇒ monotone in `t`), then the folded
/// `a + b·t` address line.
#[allow(clippy::too_many_arguments)]
fn lower_ref(
    program: &Program,
    nest: &LoopNest,
    aref: &sa_ir::ArrayRef,
    outer_ivs: &[i64],
    inner_lo: i64,
    inner_step: i64,
    trips: i64,
) -> Result<RefLine, EstimateError> {
    let decl = program.array(aref.array);
    let strides = decl.strides();
    let inner = nest.loops.len() - 1;
    let mut a = 0i64;
    let mut b = 0i64;
    for (d, ix) in aref.indices.iter().enumerate() {
        let idx: &AffineIndex = ix
            .as_affine()
            .expect("indirection rejected before lowering");
        let mut start = idx.offset + idx.coeff(inner) * inner_lo;
        for (v, &iv) in outer_ivs.iter().enumerate() {
            start += idx.coeff(v) * iv;
        }
        let step = idx.coeff(inner) * inner_step;
        let extent = decl.dims[d] as i64;
        let last = start + step * (trips - 1);
        for endpoint in [start, last] {
            if endpoint < 0 || endpoint >= extent {
                return Err(EstimateError::OutOfBounds {
                    array: decl.name.clone(),
                    nest: nest.label.clone(),
                    dim: d,
                    index: endpoint,
                    extent: extent as usize,
                });
            }
        }
        a += strides[d] as i64 * start;
        b += strides[d] as i64 * step;
    }
    Ok(RefLine {
        a,
        b,
        array: aref.array.0,
    })
}

impl RefLine {
    fn addr(&self, t: i64) -> i64 {
        self.a + self.b * t
    }

    fn owner(&self, t: i64, placements: &[Placement]) -> usize {
        placements[self.array].owner_of_addr(self.addr(t) as usize)
    }

    /// First `t > t_cur` at which this reference leaves its current page
    /// (`i64::MAX` when it never does).
    fn next_crossing(&self, t_cur: i64, page_size: usize) -> i64 {
        let ps = page_size as i64;
        let p = self.addr(t_cur) / ps;
        if self.b > 0 {
            // Smallest t with a + b·t ≥ (p+1)·ps.
            let num = (p + 1) * ps - self.a;
            (num + self.b - 1) / self.b
        } else if self.b < 0 {
            // Smallest t with a + b·t < p·ps.
            let bp = -self.b;
            (self.a - p * ps) / bp + 1
        } else {
            i64::MAX
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn estimate_chunk(
    program: &Program,
    nest: &LoopNest,
    cfg: &MachineConfig,
    placements: &[Placement],
    split: &[StmtRefs<'_>],
    anchorless: &[usize],
    participants: &mut [(usize, Vec<bool>)],
    outer_ivs: &[i64],
    stats: &mut Stats,
    rr: &mut usize,
) -> Result<(), EstimateError> {
    let lv = nest.loops.last().expect("nest has loops");
    let trips = lv.trip_count(outer_ivs) as i64;
    if trips == 0 {
        return Ok(());
    }
    let inner_lo = lv.lo.eval(outer_ivs);

    let mut reduce_idx = 0usize;
    for srefs in split {
        let is_reduce = srefs.reduce_sid.is_some();
        let my_reduce = if is_reduce {
            let i = reduce_idx;
            reduce_idx += 1;
            Some(i)
        } else {
            None
        };
        // The anchor: the Assign target, or a Reduce's first read.
        let anchor_ref = srefs.target.or_else(|| srefs.reads.first().copied());
        let Some(anchor_ref) = anchor_ref else {
            continue; // anchorless: dealt round-robin below
        };

        let anchor = lower_ref(
            program, nest, anchor_ref, outer_ivs, inner_lo, lv.step, trips,
        )?;
        let reads: Vec<RefLine> = srefs
            .reads
            .iter()
            .map(|r| lower_ref(program, nest, r, outer_ivs, inner_lo, lv.step, trips))
            .collect::<Result<_, _>>()?;

        // Split 0..trips into maximal runs on which every reference sits
        // on a constant page; charge each run in closed form.
        let mut t = 0i64;
        while t < trips {
            let mut next = anchor.next_crossing(t, cfg.page_size);
            for r in &reads {
                next = next.min(r.next_crossing(t, cfg.page_size));
            }
            let next = next.min(trips);
            let run = (next - t) as u64;
            let pe = anchor.owner(t, placements);
            if srefs.target.is_some() {
                stats.per_pe[pe].writes += run;
            }
            if let Some(ri) = my_reduce {
                participants[ri].1[pe] = true;
            }
            for r in &reads {
                if r.owner(t, placements) == pe {
                    stats.per_pe[pe].local_reads += run;
                } else {
                    stats.per_pe[pe].remote_reads += run;
                    stats.page_fetches += run;
                }
            }
            t = next;
        }
    }

    // Anchorless statements: the q-th anchorless statement of the body at
    // global chunk iteration i executes on PE (rr + i·A + q) mod n, where
    // A is the number of anchorless statements per iteration. They touch
    // no arrays, so only reduction participation needs marking — and the
    // PE set cycles with period n / gcd(A, n).
    if !anchorless.is_empty() {
        let n = cfg.n_pes;
        let a_cnt = anchorless.len();
        let cycle = n / gcd(a_cnt % n, n).max(1);
        // Map body index → participant-table index.
        for (q, &body_idx) in anchorless.iter().enumerate() {
            let ri = split[..body_idx]
                .iter()
                .filter(|s| s.reduce_sid.is_some())
                .count();
            let distinct = (trips as usize).min(cycle.max(1));
            for i in 0..distinct {
                let pe = (*rr + q + i * a_cnt) % n;
                participants[ri].1[pe] = true;
            }
        }
        *rr += trips as usize * a_cnt;
    }
    Ok(())
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::{InitPattern, ProgramBuilder, ReduceOp};
    use sa_machine::PartitionScheme;

    fn skewed(n: usize) -> Program {
        let mut b = ProgramBuilder::new("sk");
        let y = b.input("Y", &[n + 1], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("s", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(
                x,
                [iv(0)],
                nb.read(y, [iv(0).plus(1)]) - nb.read(y, [iv(0)]),
            );
        });
        b.finish()
    }

    #[test]
    fn skewed_kernel_counts_match_by_hand() {
        // 128 elements, 4 PEs, page 32 (modulo): X page k → PE k; reads of
        // Y hit the same page except at each page's last element, where
        // Y[k+1] crosses into the next page (remote). 3 boundary crossings
        // inside Y's pages 0..3 land remote; everything else local.
        let p = skewed(128);
        let cfg = MachineConfig::new(4, 32).with_cache_elems(0);
        let est = estimate(&p, &cfg).unwrap();
        assert_eq!(est.stats.writes(), 128);
        assert_eq!(est.stats.total_reads(), 256);
        assert_eq!(est.stats.remote_reads(), 4);
        assert_eq!(est.stats.page_fetches, 4);
        assert_eq!(est.network_messages, 8);
    }

    #[test]
    fn cache_and_indirection_are_refused() {
        let p = skewed(64);
        let cached = MachineConfig::new(4, 32);
        assert!(matches!(
            estimate(&p, &cached),
            Err(EstimateError::CacheUnsupported)
        ));

        let mut b = ProgramBuilder::new("g");
        let idx = b.input("IDX", &[8], InitPattern::Permutation { seed: 1 });
        let y = b.input("Y", &[8], InitPattern::Wavy);
        let x = b.output("X", &[8]);
        b.nest("n", &[("k", 0, 7)], |nb| {
            nb.assign(x, [iv(0)], nb.read_indirect(y, idx, iv(0)));
        });
        let g = b.finish();
        let nocache = MachineConfig::new(4, 32).with_cache_elems(0);
        assert!(matches!(
            estimate(&g, &nocache),
            Err(EstimateError::Indirect { .. })
        ));
    }

    #[test]
    fn out_of_bounds_is_detected_statically() {
        let mut b = ProgramBuilder::new("oob");
        let x = b.output("X", &[16]);
        b.nest("n", &[("k", 0, 16)], |nb| {
            nb.assign(x, [iv(0)], 1.0);
        });
        let p = b.finish();
        let cfg = MachineConfig::new(2, 8).with_cache_elems(0);
        assert!(matches!(
            estimate(&p, &cfg),
            Err(EstimateError::OutOfBounds { index: 16, .. })
        ));
    }

    #[test]
    fn reduction_partials_ship_to_the_host() {
        // sum over Y: anchor = Y[k]; 64 elements over 4 PEs at page 16 →
        // every PE participates; host of scalar 0 is PE 0 → 3 partials.
        let mut b = ProgramBuilder::new("red");
        let y = b.input("Y", &[64], InitPattern::Wavy);
        let s = b.scalar("sum");
        b.nest("n", &[("k", 0, 63)], |nb| {
            nb.reduce(s, ReduceOp::Sum, nb.read(y, [iv(0)]));
        });
        let p = b.finish();
        let cfg = MachineConfig::new(4, 16).with_cache_elems(0);
        let est = estimate(&p, &cfg).unwrap();
        assert_eq!(est.stats.reduction_messages, 3);
        // All reads anchor-local.
        assert_eq!(est.stats.remote_reads(), 0);
        assert_eq!(est.stats.local_reads(), 64);
        assert_eq!(est.network_messages, 3);
    }

    #[test]
    fn block_scheme_and_reinit_accounting() {
        let mut b = ProgramBuilder::new("blk");
        let y = b.input("Y", &[64], InitPattern::Wavy);
        let x = b.output("X", &[64]);
        b.nest("n", &[("k", 0, 63)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) + 1.0);
        });
        b.reinit(x);
        let p = b.finish();
        let cfg = MachineConfig::new(4, 8)
            .with_cache_elems(0)
            .with_partition(PartitionScheme::Block);
        let est = estimate(&p, &cfg).unwrap();
        // Matched access: everything local; reinit costs 2·(4−1) messages.
        assert_eq!(est.stats.remote_reads(), 0);
        assert_eq!(est.stats.reinit_messages, 6);
        assert_eq!(est.network_messages, 6);
    }
}
