//! # sa-lint — static analysis for single-assignment programs
//!
//! Four passes over the loop-nest IR, all zero-execution:
//!
//! * **Write-once verification** ([`writeonce::check_write_once`]) — proves
//!   the single-assignment property per array generation with closed-form
//!   affine conflict tests (Banerjee-style range, GCD lattice residue,
//!   mixed-radix self-injectivity), falling back to exact footprint
//!   enumeration that recovers the two conflicting iteration vectors.
//! * **Progress and partition legality** ([`progress::check_progress`],
//!   [`progress::check_partition`]) — dangling I-structure deferrals
//!   (reads no producer ever satisfies), indirect anchors with no static
//!   producer, provable out-of-bounds references, and partition schemes
//!   that orphan PEs.
//! * **Communication estimation** ([`estimate::estimate`]) — per-PE
//!   local/remote access counts and network messages in closed form for
//!   any affine program × [`sa_machine::MachineConfig`], certified
//!   bit-identical against the counting simulator.
//! * **Dependence graphs** ([`depgraph`]) — the generation-level
//!   producer→consumer graph single assignment makes statically
//!   derivable, with work/span analysis, partition-projected speedup
//!   bounds, and a per-config deadlock-freedom proof (cyclic
//!   I-structure waits are reported as `SA008` with the iteration
//!   vectors and owning PEs along the cycle).
//!
//! Findings are reported through the machine-readable [`Diagnostic`]
//! model (severity, stable code, span, explanation, JSON rendering), so
//! CLI tables, CI gates and tests all consume the same structure.

pub mod depgraph;
pub mod diag;
pub mod estimate;
pub mod progress;
mod sites;
pub mod writeonce;

pub use depgraph::{
    check_deadlock, speedup_bound, static_writes_per_pe, summary, DepEdge, DepGraph, EdgeKind,
    GraphSummary, InstanceError, Node, NodeKind, SiteRef,
};
pub use diag::{max_severity, to_json_array, Code, Diagnostic, Severity, Span};
pub use estimate::{estimate, CommEstimate, EstimateError};
pub use progress::{check_partition, check_progress};
pub use writeonce::{check_write_once, WriteOnceReport};

use sa_ir::Program;
use sa_machine::PartitionScheme;

/// Partition context the legality check runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintConfig {
    /// Number of processing elements.
    pub n_pes: usize,
    /// Page size in elements.
    pub page_size: usize,
    /// Data partitioning scheme.
    pub scheme: PartitionScheme,
}

impl Default for LintConfig {
    /// The paper's default machine shape: 16 PEs, 32-element pages,
    /// modulo partitioning.
    fn default() -> Self {
        LintConfig {
            n_pes: 16,
            page_size: 32,
            scheme: PartitionScheme::Modulo,
        }
    }
}

/// Run every lint pass on `program` and return the combined findings,
/// worst first (stable within one severity).
///
/// Structural validation runs first: a malformed program (dangling ids,
/// rank mismatches, zero-step loops…) yields a single `SA007` error and
/// the deeper passes — which assume a structurally sound program — are
/// skipped.
pub fn lint_program(program: &Program, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if let Err(e) = sa_ir::validate_program(program) {
        diags.push(
            Diagnostic::new(Code::Sa007Malformed, Span::default(), e.to_string()).explain(
                "The program fails structural validation (ProgramBuilder::try_finish \
                 reports the same error); executors would panic or abort on it, and \
                 the deeper lint passes assume a well-formed program, so they are \
                 skipped.",
            ),
        );
        return diags;
    }
    diags.extend(check_write_once(program).diagnostics);
    diags.extend(check_progress(program));
    diags.extend(check_partition(
        program,
        cfg.n_pes,
        cfg.page_size,
        cfg.scheme,
    ));
    diags.extend(depgraph::check_deadlock(program, cfg));
    // Stable sort: errors first, original pass order within a severity.
    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::{Expr, ProgramBuilder};

    #[test]
    fn malformed_program_short_circuits_to_sa007() {
        let mut b = ProgramBuilder::new("bad");
        let x = b.output("X", &[8]);
        b.nest("n", &[("k", 0, 7)], |nb| {
            nb.assign(x, [iv(1)], Expr::Const(0.0)); // iv(1) out of scope
        });
        let diags = lint_program(&b.finish(), &LintConfig::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::Sa007Malformed);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn clean_program_lints_clean() {
        let mut b = ProgramBuilder::new("ok");
        let x = b.output("X", &[1024]);
        let y = b.input("Y", &[1024], sa_ir::InitPattern::Wavy);
        b.nest("copy", &[("k", 0, 1023)], |nb| {
            let rhs = nb.read(y, [iv(0)]);
            nb.assign(x, [iv(0)], rhs);
        });
        let diags = lint_program(&b.finish(), &LintConfig::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn diagnostics_sorted_worst_first() {
        // A double write (error) and an orphaned-PE config (warning).
        let mut b = ProgramBuilder::new("mixed");
        let x = b.output("X", &[8]);
        b.nest("dup", &[("k", 0, 7)], |nb| {
            nb.assign(x, [iv(0)], Expr::Const(0.0));
            nb.assign(x, [iv(0)], Expr::Const(1.0));
        });
        let cfg = LintConfig {
            n_pes: 4,
            page_size: 32,
            scheme: PartitionScheme::Modulo,
        };
        let diags = lint_program(&b.finish(), &cfg);
        assert!(diags.len() >= 2, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags.windows(2).all(|w| w[0].severity >= w[1].severity));
        assert!(diags.iter().any(|d| d.code == Code::Pl001OrphanedPes));
    }
}
