//! Progress and partition-legality checking.
//!
//! * `SA004` — a read of an element no initializer and no statement of the
//!   current array generation ever defines. Under the thread runtime's
//!   I-structure semantics such a read becomes a *dangling deferral*: the
//!   consumer parks forever because no producer exists. Definedness is
//!   checked against the union of all writes in the generation segment
//!   regardless of phase order — deferred reads legally consume values
//!   produced by later statements.
//! * `SA005` — an indirect statement anchor whose index array has no
//!   static producer (mirrors `sa_runtime::unsupported_reason`).
//! * `SA006` — a reference provably outside its array's bounds.
//! * `PL001` — a partition configuration that leaves PEs owning no pages.

use crate::diag::{Code, Diagnostic, Severity, Span};
use crate::sites::{self, eval_affine, static_array_values};
use sa_ir::analysis::anchor_index_arrays;
use sa_ir::index::IndexExpr;
use sa_ir::nest::ArrayRef;
use sa_ir::program::{ArrayInit, Phase};
use sa_ir::Program;
use sa_machine::{ArrayShape, PartitionScheme, Placement};

/// Run the progress checks (`SA004`, `SA005`, `SA006`) on `program`.
pub fn check_progress(program: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_anchors(program, &mut diags);
    check_bounds_and_definedness(program, &mut diags);
    diags
}

// ---------------------------------------------------------------------------
// SA005 — indirect anchors without a static producer
// ---------------------------------------------------------------------------

/// Mirrors `sa_runtime::unsupported_reason`: an anchor gathered through an
/// index array the same nest produces is a warning (the counting engines
/// still run it; the thread runtime rejects it), while an index array with
/// no producer at all is an error (every engine aborts on the first
/// lookup).
fn check_anchors(program: &Program, diags: &mut Vec<Diagnostic>) {
    let mut statically_init: Vec<bool> = program
        .arrays
        .iter()
        .map(|d| !matches!(d.init, ArrayInit::Undefined))
        .collect();
    let mut written_earlier = vec![false; program.arrays.len()];
    for (phase_idx, phase) in program.phases.iter().enumerate() {
        match phase {
            Phase::Reinit(id) => {
                statically_init[id.0] = false;
                written_earlier[id.0] = false;
            }
            Phase::Loop(nest) => {
                let written_here = nest.written_arrays();
                for (stmt_idx, stmt) in nest.body.iter().enumerate() {
                    for base in anchor_index_arrays(stmt) {
                        let name = &program.array(base).name;
                        if written_here.contains(&base) {
                            diags.push(
                                Diagnostic::new(
                                    Code::Sa005AnchorNoProducer,
                                    Span::stmt(phase_idx, &nest.label, stmt_idx, name),
                                    format!(
                                        "statement anchor gathers through index array `{name}`, \
                                         which the same nest produces"
                                    ),
                                )
                                .explain(
                                    "Ownership of the written element would depend on \
                                     intra-nest timing; the thread runtime rejects this shape \
                                     (unsupported program). Produce the index array in an \
                                     earlier nest.",
                                ),
                            );
                        } else if !statically_init[base.0] && !written_earlier[base.0] {
                            diags.push(
                                Diagnostic::new(
                                    Code::Sa005AnchorNoProducer,
                                    Span::stmt(phase_idx, &nest.label, stmt_idx, name),
                                    format!(
                                        "statement anchor gathers through index array `{name}`, \
                                         which is neither statically initialized nor produced \
                                         by an earlier nest"
                                    ),
                                )
                                .with_severity(Severity::Error)
                                .explain(
                                    "Anchor resolution would block on cells no statement will \
                                     ever produce; every engine aborts on the first lookup. \
                                     Initialize the index array or produce it in an earlier \
                                     nest.",
                                ),
                            );
                        }
                    }
                }
                for id in written_here {
                    written_earlier[id.0] = true;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SA004 / SA006 — dangling reads and out-of-bounds references
// ---------------------------------------------------------------------------

/// Per-(array, segment) definedness, computed from the initializer region
/// plus *every* write of the segment (order-free: I-structure deferrals
/// make later producers reach earlier readers).
struct Definedness {
    /// `bits[slot]` — defined elements of that segment; `None` when some
    /// write is a scatter through runtime data (definedness unknowable).
    bits: Vec<Option<Vec<bool>>>,
}

fn check_bounds_and_definedness(program: &Program, diags: &mut Vec<Diagnostic>) {
    let statics = static_array_values(program);
    let segments = sites::segments(program);

    // Pass A: build per-segment defined bitmaps from the write sites, and
    // report provably out-of-bounds *writes* as we go (first per site).
    let mut def = Definedness {
        bits: Vec::with_capacity(segments.len()),
    };
    for seg in &segments {
        let decl = program.array(seg.array);
        let opaque = seg
            .writes
            .iter()
            .any(|w| !sites::statically_resolvable(w.target, &statics));
        if opaque {
            def.bits.push(None);
            continue;
        }
        let mut bits = vec![false; decl.len()];
        for cell in bits.iter_mut().take(seg.init_len) {
            *cell = true;
        }
        for site in &seg.writes {
            let mut oob: Option<Vec<i64>> = None;
            site.nest.for_each_iteration(|ivs| {
                if oob.is_some() {
                    return;
                }
                match sites::resolve_static_addr(program, &statics, site.target, ivs) {
                    Ok(addr) => bits[addr] = true,
                    Err(sites::ResolveFail::OutOfBounds) => oob = Some(ivs.to_vec()),
                    // An undefined index cell surfaces below as a dangling
                    // read of the index array itself.
                    Err(_) => {}
                }
            });
            if let Some(ivs) = oob {
                diags.push(oob_diag(
                    program,
                    site.phase,
                    &site.nest.label,
                    site.stmt,
                    site.target,
                    &ivs,
                ));
            }
        }
        def.bits.push(Some(bits));
    }

    // Pass B: walk phases in order, checking every read reference of every
    // iteration against the segment bitmaps (and bounds). The phase→slot
    // mapping is rebuilt exactly like `sites::segments` builds it.
    let mut slot: Vec<usize> = (0..program.arrays.len()).collect();
    let mut next_slot = program.arrays.len();
    for (phase_idx, phase) in program.phases.iter().enumerate() {
        match phase {
            Phase::Reinit(id) => {
                slot[id.0] = next_slot;
                next_slot += 1;
            }
            Phase::Loop(nest) => {
                for (stmt_idx, stmt) in nest.body.iter().enumerate() {
                    // Bounds of the write anchor's affine dims are covered
                    // in pass A; here: every read reference.
                    let mut reported_oob = false;
                    let mut reported_dangling = vec![false; program.arrays.len()];
                    let mut refs: Vec<(&ArrayRef, bool)> = stmt
                        .value()
                        .reads()
                        .into_iter()
                        .map(|r| (r, false))
                        .collect();
                    // A scatter target's index-array lookups are reads too.
                    if let Some(t) = stmt.write_target() {
                        if t.has_indirection() {
                            refs.push((t, true));
                        }
                    }
                    if refs.is_empty() {
                        continue;
                    }
                    nest.for_each_iteration(|ivs| {
                        for (ri, &(aref, is_target)) in refs.iter().enumerate() {
                            check_ref(
                                program,
                                &statics,
                                &def,
                                &slot,
                                aref,
                                is_target,
                                ivs,
                                (phase_idx, &nest.label, stmt_idx, ri),
                                &mut reported_oob,
                                &mut reported_dangling,
                                diags,
                            );
                        }
                    });
                }
            }
        }
    }
}

/// Check one reference instance: bounds of every index, definedness of the
/// index-array lookups, and (for RHS reads) definedness of the data
/// element itself.
#[allow(clippy::too_many_arguments)]
fn check_ref(
    program: &Program,
    statics: &[Option<Vec<f64>>],
    def: &Definedness,
    slot: &[usize],
    aref: &ArrayRef,
    is_target: bool,
    ivs: &[i64],
    at: (usize, &str, usize, usize),
    reported_oob: &mut bool,
    reported_dangling: &mut [bool],
    diags: &mut Vec<Diagnostic>,
) {
    let (phase_idx, label, stmt_idx, _) = at;
    let decl = program.array(aref.array);
    let mut idx: Vec<i64> = Vec::with_capacity(aref.indices.len());
    let mut resolvable = true;
    for ix in &aref.indices {
        match ix {
            IndexExpr::Affine(a) => idx.push(eval_affine(a, ivs)),
            IndexExpr::Indirect {
                base,
                pos,
                scale,
                offset,
            } => {
                let base_decl = program.array(*base);
                let p = eval_affine(pos, ivs);
                if p < 0 || p as usize >= base_decl.len() {
                    if !*reported_oob {
                        *reported_oob = true;
                        diags.push(
                            Diagnostic::new(
                                Code::Sa006OutOfBounds,
                                Span::stmt(phase_idx, label, stmt_idx, &base_decl.name),
                                format!(
                                    "index-array lookup `{}[{p}]` is out of bounds \
                                     (len {}) at iteration {ivs:?}",
                                    base_decl.name,
                                    base_decl.len()
                                ),
                            )
                            .explain(
                                "The gather position leaves the index array; execution \
                                 aborts with IndexOutOfBounds here.",
                            ),
                        );
                    }
                    return;
                }
                // Definedness of the index cell itself.
                if let Some(Some(bits)) = def.bits.get(slot[base.0]) {
                    if !bits[p as usize] && !reported_dangling[base.0] {
                        reported_dangling[base.0] = true;
                        diags.push(dangling_diag(
                            &base_decl.name,
                            p as usize,
                            phase_idx,
                            label,
                            stmt_idx,
                            ivs,
                        ));
                    }
                }
                match &statics[base.0] {
                    Some(values) if (p as usize) < values.len() => {
                        idx.push(scale * (values[p as usize] as i64) + offset);
                    }
                    _ => resolvable = false,
                }
            }
        }
    }
    if !resolvable {
        return;
    }
    match decl.linearize(&idx) {
        Ok(addr) => {
            if is_target {
                return; // writes define; their conflicts are SA001's job
            }
            if let Some(Some(bits)) = def.bits.get(slot[aref.array.0]) {
                if !bits[addr] && !reported_dangling[aref.array.0] {
                    reported_dangling[aref.array.0] = true;
                    diags.push(dangling_diag(
                        &decl.name, addr, phase_idx, label, stmt_idx, ivs,
                    ));
                }
            }
        }
        Err(_) => {
            if !*reported_oob {
                *reported_oob = true;
                diags.push(oob_diag(program, phase_idx, label, stmt_idx, aref, ivs));
            }
        }
    }
}

fn oob_diag(
    program: &Program,
    phase_idx: usize,
    label: &str,
    stmt_idx: usize,
    aref: &ArrayRef,
    ivs: &[i64],
) -> Diagnostic {
    let decl = program.array(aref.array);
    Diagnostic::new(
        Code::Sa006OutOfBounds,
        Span::stmt(phase_idx, label, stmt_idx, &decl.name),
        format!(
            "reference to `{}` (dims {:?}) leaves its bounds at iteration {ivs:?}",
            decl.name, decl.dims
        ),
    )
    .explain(
        "Some iteration of the nest produces an index outside the declared \
         extents; execution aborts with IndexOutOfBounds here. Shrink the loop \
         bounds or grow the array.",
    )
}

fn dangling_diag(
    array: &str,
    addr: usize,
    phase_idx: usize,
    label: &str,
    stmt_idx: usize,
    ivs: &[i64],
) -> Diagnostic {
    Diagnostic::new(
        Code::Sa004DanglingRead,
        Span::stmt(phase_idx, label, stmt_idx, array),
        format!(
            "`{array}[{addr}]` is read at iteration {ivs:?} but no initializer or \
             statement of this generation ever defines it"
        ),
    )
    .explain(
        "Under I-structure semantics this read defers forever — a dangling \
         deferral: the interpreter reports ReadUndefined and the thread runtime's \
         consumer parks with no producer to wake it. Define the element \
         (initialization or an assignment anywhere in the generation) or drop \
         the read.",
    )
}

// ---------------------------------------------------------------------------
// PL001 — partition legality
// ---------------------------------------------------------------------------

/// Check that `scheme` at `page_size` actually spreads the program's pages
/// over all `n_pes` PEs; a PE owning nothing contributes no work in the
/// owner-computes model and the "parallel" run degenerates.
pub fn check_partition(
    program: &Program,
    n_pes: usize,
    page_size: usize,
    scheme: PartitionScheme,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if n_pes <= 1 || page_size == 0 {
        return diags;
    }
    let mut owns = vec![false; n_pes];
    for decl in &program.arrays {
        // Geometry-aware ownership: tiled schemes can orphan PEs that the
        // flattened-page arithmetic would have covered (and vice versa), so
        // legality must probe the same placement the executors use.
        let pl = Placement::new(scheme, page_size, n_pes, ArrayShape::from_dims(&decl.dims));
        for page in 0..pl.pages() {
            owns[pl.page_owner(page)] = true;
        }
    }
    let orphans: Vec<usize> = (0..n_pes).filter(|&pe| !owns[pe]).collect();
    if !orphans.is_empty() {
        diags.push(
            Diagnostic::new(
                Code::Pl001OrphanedPes,
                Span::default(),
                format!(
                    "{} of {n_pes} PEs own no pages of any array under {scheme:?} \
                     with {page_size}-element pages (e.g. PE {})",
                    orphans.len(),
                    orphans[0],
                ),
            )
            .explain(
                "Owner-computes assigns work where the written pages live; a PE \
                 owning nothing executes nothing, so the configuration wastes \
                 processors. Use smaller pages, fewer PEs, or a scheme that \
                 spreads pages (e.g. Modulo).",
            ),
        );
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::{Expr, ProgramBuilder};

    #[test]
    fn dangling_read_detected() {
        // x[k] = y[k] where y is never initialized or written.
        let mut b = ProgramBuilder::new("dangle");
        let x = b.output("X", &[16]);
        let y = b.output("Y", &[16]);
        b.nest("copy", &[("k", 0, 15)], |nb| {
            let rhs = nb.read(y, [iv(0)]);
            nb.assign(x, [iv(0)], rhs);
        });
        let diags = check_progress(&b.finish());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::Sa004DanglingRead);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("Y[0]"), "{}", diags[0].message);
    }

    #[test]
    fn later_producer_satisfies_earlier_reader() {
        // Nest 1 reads x[k+8]; nest 2 writes x[8..16]: deferral resolves.
        let mut b = ProgramBuilder::new("deferral");
        let x = b.output("X", &[16]);
        let z = b.output("Z", &[8]);
        b.nest("consume", &[("k", 0, 7)], |nb| {
            let rhs = nb.read(x, [iv(0).plus(8)]);
            nb.assign(z, [iv(0)], rhs);
        });
        b.nest("produce", &[("k", 8, 15)], |nb| {
            nb.assign(x, [iv(0)], Expr::Const(1.0));
        });
        let diags = check_progress(&b.finish());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn out_of_bounds_read_detected() {
        let mut b = ProgramBuilder::new("oob");
        let x = b.output("X", &[16]);
        let y = b.input("Y", &[16], sa_ir::InitPattern::Zero);
        b.nest("walk", &[("k", 0, 15)], |nb| {
            let rhs = nb.read(y, [iv(0).plus(1)]); // y[16] at k=15
            nb.assign(x, [iv(0)], rhs);
        });
        let diags = check_progress(&b.finish());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::Sa006OutOfBounds);
    }

    #[test]
    fn anchor_without_producer_is_error_same_nest_is_warning() {
        // No producer at all → error.
        let mut b = ProgramBuilder::new("no-prod");
        let idx = b.output("I", &[8]);
        let x = b.output("X", &[8]);
        b.nest("scat", &[("k", 0, 7)], |nb| {
            nb.assign_indirect(x, idx, iv(0), Expr::Const(1.0));
        });
        let diags = check_progress(&b.finish());
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Sa005AnchorNoProducer && d.severity == Severity::Error));

        // Same-nest producer → warning.
        let mut b = ProgramBuilder::new("same-nest");
        let idx = b.output("I", &[8]);
        let x = b.output("X", &[8]);
        b.nest("both", &[("k", 0, 7)], |nb| {
            nb.assign(idx, [iv(0)], Expr::Const(0.0));
            nb.assign_indirect(x, idx, iv(0), Expr::Const(1.0));
        });
        let diags = check_progress(&b.finish());
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Sa005AnchorNoProducer && d.severity == Severity::Warning));
    }

    #[test]
    fn partition_orphans_flagged() {
        // One 8-element array, 32-element pages → 1 page; 4 PEs → 3 orphans.
        let mut b = ProgramBuilder::new("tiny");
        let x = b.output("X", &[8]);
        b.nest("w", &[("k", 0, 7)], |nb| {
            nb.assign(x, [iv(0)], Expr::Const(0.0));
        });
        let p = b.finish();
        let diags = check_partition(&p, 4, 32, PartitionScheme::Modulo);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::Pl001OrphanedPes);
        assert!(diags[0].message.contains("3 of 4"), "{}", diags[0].message);
        // Page size 2 → 4 pages → everyone owns one.
        assert!(check_partition(&p, 4, 2, PartitionScheme::Modulo).is_empty());
    }
}
