//! Shared static model of a program's writes and reads: generation
//! segments, write sites, and static resolution of gathers/scatters whose
//! index arrays are compile-time constants.

use sa_ir::index::IndexExpr;
use sa_ir::nest::{ArrayRef, LoopNest};
use sa_ir::program::{ArrayInit, Phase};
use sa_ir::{ArrayId, Program};

/// One statement that writes an array, with its location.
pub(crate) struct WriteSite<'p> {
    pub phase: usize,
    pub stmt: usize,
    pub nest: &'p LoopNest,
    pub target: &'p ArrayRef,
}

impl WriteSite<'_> {
    /// True if every target index is affine.
    pub fn is_affine(&self) -> bool {
        !self.target.has_indirection()
    }
}

/// All write sites of one array within one generation segment (the phases
/// between consecutive `Reinit`s of that array).
pub(crate) struct Segment<'p> {
    pub array: ArrayId,
    /// Elements `[0, init_len)` start defined (non-zero only for the
    /// segment before the first reinit).
    pub init_len: usize,
    pub writes: Vec<WriteSite<'p>>,
}

/// Split the program into per-array generation segments, attaching every
/// write site to the segment of its array that is live at that phase.
/// The slot layout (one segment per array up front, then one appended per
/// `Reinit` in phase order) is mirrored by the progress checker's
/// phase walk.
pub(crate) fn segments(program: &Program) -> Vec<Segment<'_>> {
    let n = program.arrays.len();
    let mut out: Vec<Segment<'_>> = (0..n)
        .map(|a| Segment {
            array: ArrayId(a),
            init_len: program.arrays[a].init.defined_len(program.arrays[a].len()),
            writes: Vec::new(),
        })
        .collect();
    let mut slot: Vec<usize> = (0..n).collect();

    for (phase_idx, phase) in program.phases.iter().enumerate() {
        match phase {
            Phase::Reinit(id) => {
                out.push(Segment {
                    array: *id,
                    init_len: 0, // reinit clears every definedness tag
                    writes: Vec::new(),
                });
                slot[id.0] = out.len() - 1;
            }
            Phase::Loop(nest) => {
                for (stmt_idx, stmt) in nest.body.iter().enumerate() {
                    if let Some(target) = stmt.write_target() {
                        out[slot[target.array.0]].writes.push(WriteSite {
                            phase: phase_idx,
                            stmt: stmt_idx,
                            nest,
                            target,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Materialized contents of every *compile-time-constant* array: one that
/// is statically initialized, never written by any statement, and never
/// re-initialized. These are the index arrays a scatter/gather can be
/// resolved through statically. Entry is `None` for runtime-valued arrays;
/// the `Vec` holds the defined prefix (shorter than the array for
/// [`ArrayInit::Prefix`]).
pub(crate) fn static_array_values(program: &Program) -> Vec<Option<Vec<f64>>> {
    let n = program.arrays.len();
    let mut runtime = vec![false; n];
    for phase in &program.phases {
        match phase {
            Phase::Reinit(id) => runtime[id.0] = true,
            Phase::Loop(nest) => {
                for stmt in &nest.body {
                    if let Some(t) = stmt.write_target() {
                        runtime[t.array.0] = true;
                    }
                }
            }
        }
    }
    program
        .arrays
        .iter()
        .enumerate()
        .map(|(a, decl)| {
            if runtime[a] || matches!(decl.init, ArrayInit::Undefined) {
                None
            } else {
                Some(decl.init.materialize(decl.len()))
            }
        })
        .collect()
}

/// Why a static address resolution failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ResolveFail {
    /// Some index goes through an array whose values are runtime data.
    NotStatic,
    /// The index-array position or the final index leaves its bounds.
    OutOfBounds,
    /// The index-array position lands past the statically defined prefix.
    UndefinedIndex,
}

/// Resolve a reference's linear address at iteration `ivs`, using
/// `statics` (from [`static_array_values`]) to see through gathers.
/// Mirrors `sa_ir::interp::resolve_ref_addr` exactly, including the
/// truncating `f64 → i64` conversion.
pub(crate) fn resolve_static_addr(
    program: &Program,
    statics: &[Option<Vec<f64>>],
    aref: &ArrayRef,
    ivs: &[i64],
) -> Result<usize, ResolveFail> {
    let decl = program.array(aref.array);
    let mut idx = Vec::with_capacity(aref.indices.len());
    for ix in &aref.indices {
        match ix {
            IndexExpr::Affine(a) => idx.push(eval_affine(a, ivs)),
            IndexExpr::Indirect {
                base,
                pos,
                scale,
                offset,
            } => {
                let Some(values) = &statics[base.0] else {
                    return Err(ResolveFail::NotStatic);
                };
                let p = eval_affine(pos, ivs);
                let base_len = program.array(*base).len();
                if p < 0 || p as usize >= base_len {
                    return Err(ResolveFail::OutOfBounds);
                }
                if p as usize >= values.len() {
                    return Err(ResolveFail::UndefinedIndex);
                }
                idx.push(scale * (values[p as usize] as i64) + offset);
            }
        }
    }
    decl.linearize(&idx).map_err(|_| ResolveFail::OutOfBounds)
}

/// `AffineIndex::eval` tolerant of coefficient vectors longer than `ivs`
/// (possible for malformed programs the caller still wants to walk).
pub(crate) fn eval_affine(a: &sa_ir::AffineIndex, ivs: &[i64]) -> i64 {
    let mut acc = a.offset;
    for (v, &iv) in ivs.iter().enumerate() {
        acc += a.coeff(v) * iv;
    }
    acc
}

/// True if every indirection in `aref` goes through a compile-time-constant
/// index array.
pub(crate) fn statically_resolvable(aref: &ArrayRef, statics: &[Option<Vec<f64>>]) -> bool {
    aref.indices.iter().all(|ix| match ix {
        IndexExpr::Affine(_) => true,
        IndexExpr::Indirect { base, .. } => statics[base.0].is_some(),
    })
}
