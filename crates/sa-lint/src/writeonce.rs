//! Static single-assignment (write-once) verification.
//!
//! For every array generation segment (the phases between `Reinit`s of
//! that array) the verifier proves that no element is assigned twice.
//! Affine write sites are first attacked with closed-form conflict tests
//! — a Banerjee-style address-range test, a GCD lattice-residue test for
//! rectangular nests, and a mixed-radix self-injectivity test. Only when
//! some pair stays inconclusive does the verifier fall back to an exact
//! enumeration of the segment's write footprint, which also recovers the
//! two concrete iteration vectors of a genuine conflict for the
//! diagnostic. Scatters through compile-time-constant index arrays are
//! enumerated exactly; scatters through runtime data are reported as
//! statically undecidable (`SA003`).

use crate::diag::{Code, Diagnostic, Span};
use crate::sites::{
    self, resolve_static_addr, static_array_values, statically_resolvable, ResolveFail, Segment,
    WriteSite,
};
use sa_ir::analysis::{self, PairRelation};
use sa_ir::nest::LoopNest;
use sa_ir::Program;

/// Outcome of the write-once pass.
#[derive(Debug, Default)]
pub struct WriteOnceReport {
    /// Findings (empty ⇒ every checkable segment is proven write-once).
    pub diagnostics: Vec<Diagnostic>,
    /// Array segments discharged purely by the closed-form affine tests.
    pub proven_affine: usize,
    /// Array segments that required exact footprint enumeration.
    pub enumerated: usize,
}

impl WriteOnceReport {
    /// True if no error-severity finding was produced.
    pub fn is_clean(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity < crate::Severity::Error)
    }
}

/// Verify the single-assignment property of every array generation
/// segment of `program`.
pub fn check_write_once(program: &Program) -> WriteOnceReport {
    let mut report = WriteOnceReport::default();
    let statics = static_array_values(program);
    for seg in sites::segments(program) {
        if seg.writes.is_empty() {
            continue;
        }
        check_segment(program, &seg, &statics, &mut report);
    }
    report
}

fn check_segment(
    program: &Program,
    seg: &Segment<'_>,
    statics: &[Option<Vec<f64>>],
    report: &mut WriteOnceReport,
) {
    let decl = program.array(seg.array);

    // Scatters through runtime-valued index arrays are undecidable — flag
    // once and bail out of this segment: any exact answer would be a guess.
    for site in &seg.writes {
        if !site.is_affine() && !statically_resolvable(site.target, statics) {
            let d = Diagnostic::new(
                Code::Sa003UndecidableScatter,
                Span::stmt(site.phase, &site.nest.label, site.stmt, &decl.name),
                format!(
                    "scatter into `{}` goes through a runtime-produced index array; \
                     single assignment cannot be verified statically",
                    decl.name
                ),
            )
            .explain(
                "The written element depends on data computed at run time, so the \
                 write-once property is only checked dynamically (the machine traps \
                 DoubleWrite). Use a statically-initialized permutation for the index \
                 array if the scatter pattern is actually fixed.",
            );
            report.diagnostics.push(d);
            return;
        }
    }

    // All-affine fast path: closed-form pairwise conflict tests.
    if seg.writes.iter().all(WriteSite::is_affine) {
        if let Some(affine) = seg
            .writes
            .iter()
            .map(|s| AffineSite::build(program, s))
            .collect::<Option<Vec<_>>>()
        {
            let mut clean = true;
            'pairs: for (i, a) in affine.iter().enumerate() {
                if a.self_injective() != Verdict::NoConflict
                    || a.overlaps_init(seg.init_len) != Verdict::NoConflict
                {
                    clean = false;
                    break;
                }
                for b in affine.iter().skip(i + 1) {
                    if a.may_conflict(b) != Verdict::NoConflict {
                        clean = false;
                        break 'pairs;
                    }
                }
            }
            if clean {
                report.proven_affine += 1;
                return;
            }
        }
    }

    // Exact fallback: enumerate the segment footprint in program order.
    report.enumerated += 1;
    enumerate_segment(program, seg, statics, report);
}

// ---------------------------------------------------------------------------
// Closed-form affine conflict tests
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// Proven disjoint.
    NoConflict,
    /// Possibly (or certainly) conflicting — needs exact enumeration.
    May,
}

/// Per-level static facts about a nest, shared by its sites.
struct LevelInfo {
    /// Interval the loop variable's *value* stays within (box superset for
    /// triangular nests).
    min: i64,
    max: i64,
    step: i64,
    /// Maximum trip count of the level (from `analysis::level_extents`).
    trips: usize,
    /// Both bounds are constants (rectangular level).
    rect: bool,
}

fn nest_levels(nest: &LoopNest) -> Vec<LevelInfo> {
    let trips = analysis::level_extents(nest);
    let mut out: Vec<LevelInfo> = Vec::with_capacity(nest.loops.len());
    for (v, lv) in nest.loops.iter().enumerate() {
        let lo = interval_eval(&lv.lo, &out);
        let hi = interval_eval(&lv.hi, &out);
        out.push(LevelInfo {
            min: lo.0.min(hi.0),
            max: lo.1.max(hi.1),
            step: lv.step,
            trips: trips.get(v).copied().unwrap_or(0),
            rect: lv.lo.is_constant() && lv.hi.is_constant(),
        });
    }
    out
}

/// Interval evaluation of an affine bound over the (already computed)
/// outer-level value intervals.
fn interval_eval(a: &sa_ir::AffineIndex, outer: &[LevelInfo]) -> (i64, i64) {
    let mut lo = a.offset;
    let mut hi = a.offset;
    for (v, info) in outer.iter().enumerate() {
        let c = a.coeff(v);
        let (x, y) = (c * info.min, c * info.max);
        lo += x.min(y);
        hi += x.max(y);
    }
    (lo, hi)
}

/// One affine write site reduced to closed-form address facts.
struct AffineSite {
    /// Linearized address form: coefficient per loop variable + offset.
    form: (Vec<i64>, i64),
    levels: Vec<LevelInfo>,
    /// Inclusive range of attainable linear addresses (superset).
    addr_lo: i64,
    addr_hi: i64,
    /// Address lattice `base + gcd·ℤ ⊇ attained` for fully rectangular
    /// nests; `None` when some level is triangular.
    lattice: Option<(i64, i64)>, // (gcd, base); gcd == 0 ⇒ single address
}

impl AffineSite {
    fn build(program: &Program, site: &WriteSite<'_>) -> Option<AffineSite> {
        let nvars = site.nest.loops.len();
        let form = analysis::linear_address_form(program, site.target, nvars)?;
        let levels = nest_levels(site.nest);
        let (coeffs, offset) = &form;
        let mut lo = *offset;
        let mut hi = *offset;
        for (v, info) in levels.iter().enumerate() {
            let c = coeffs.get(v).copied().unwrap_or(0);
            let (x, y) = (c * info.min, c * info.max);
            lo += x.min(y);
            hi += x.max(y);
        }
        let lattice = if levels.iter().all(|l| l.rect) {
            let mut g = 0i64;
            let mut base = *offset;
            for (v, info) in levels.iter().enumerate() {
                let c = coeffs.get(v).copied().unwrap_or(0);
                // Rectangular ⇒ the first value of the level is the
                // constant lower bound.
                base += c * site.nest.loops[v].lo.offset;
                if c != 0 && info.trips > 1 {
                    g = gcd(g, (c * info.step).unsigned_abs() as i64);
                }
            }
            Some((g, base))
        } else {
            None
        };
        Some(AffineSite {
            form,
            levels,
            addr_lo: lo,
            addr_hi: hi,
            lattice,
        })
    }

    /// Mixed-radix injectivity: two distinct iterations of the site's own
    /// nest always hit distinct addresses?
    fn self_injective(&self) -> Verdict {
        let (coeffs, _) = &self.form;
        let mut terms: Vec<(i64, i64)> = Vec::new(); // (|effective coeff|, span)
        for (v, info) in self.levels.iter().enumerate() {
            let c = coeffs.get(v).copied().unwrap_or(0);
            if info.trips <= 1 {
                continue;
            }
            if c == 0 {
                // A free level: iterations differing only here may repeat
                // the address (definitely, for rectangular nests).
                return Verdict::May;
            }
            terms.push(((c * info.step).abs(), info.trips as i64 - 1));
        }
        terms.sort_unstable_by_key(|t| std::cmp::Reverse(t.0));
        // Sorted coarse→fine: each stride must out-reach everything finer.
        let mut finer_reach = 0i64;
        for &(e, span) in terms.iter().rev() {
            if e <= finer_reach {
                return Verdict::May;
            }
            finer_reach += e * span;
        }
        Verdict::NoConflict
    }

    /// Can this site's footprint intersect another's?
    fn may_conflict(&self, other: &AffineSite) -> Verdict {
        // Banerjee-style range test.
        if self.addr_hi < other.addr_lo || other.addr_hi < self.addr_lo {
            return Verdict::NoConflict;
        }
        // GCD residue test on the joint lattice.
        if let (Some((ga, ba)), Some((gb, bb))) = (self.lattice, other.lattice) {
            let g = gcd(ga, gb);
            let d = ba - bb;
            if g == 0 {
                return if d == 0 {
                    Verdict::May
                } else {
                    Verdict::NoConflict
                };
            }
            if d.rem_euclid(g) != 0 {
                return Verdict::NoConflict;
            }
        }
        Verdict::May
    }

    /// Can this site write into the initializer-defined region `[0, init)`?
    fn overlaps_init(&self, init: usize) -> Verdict {
        if init == 0 {
            return Verdict::NoConflict;
        }
        let lo = self.addr_lo.max(0);
        let hi = self.addr_hi.min(init as i64 - 1);
        if lo > hi {
            return Verdict::NoConflict;
        }
        if let Some((g, base)) = self.lattice {
            if g == 0 {
                return if (0..init as i64).contains(&base) {
                    Verdict::May
                } else {
                    Verdict::NoConflict
                };
            }
            // First lattice point ≥ lo; conflict possible iff it is ≤ hi.
            let r = base.rem_euclid(g);
            let first = lo + (r - lo).rem_euclid(g);
            if first > hi {
                return Verdict::NoConflict;
            }
        }
        Verdict::May
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

// ---------------------------------------------------------------------------
// Exact enumeration fallback
// ---------------------------------------------------------------------------

/// Walk every write of the segment in program order over a definedness
/// bitmap; the first collision yields the diagnostic, with both involved
/// iteration vectors recovered.
fn enumerate_segment(
    program: &Program,
    seg: &Segment<'_>,
    statics: &[Option<Vec<f64>>],
    report: &mut WriteOnceReport,
) {
    let decl = program.array(seg.array);
    let mut defined = vec![false; decl.len()];
    for cell in defined.iter_mut().take(seg.init_len) {
        *cell = true;
    }

    for (si, site) in seg.writes.iter().enumerate() {
        let mut conflict: Option<(usize, Vec<i64>)> = None;
        site.nest.for_each_iteration(|ivs| {
            if conflict.is_some() {
                return;
            }
            match resolve_static_addr(program, statics, site.target, ivs) {
                Ok(addr) => {
                    if defined[addr] {
                        conflict = Some((addr, ivs.to_vec()));
                    } else {
                        defined[addr] = true;
                    }
                }
                // Bounds/definedness failures are the progress checker's
                // findings (SA006/SA004); skip the address here.
                Err(ResolveFail::OutOfBounds | ResolveFail::UndefinedIndex) => {}
                Err(ResolveFail::NotStatic) => unreachable!("segment pre-screened"),
            }
        });
        if let Some((addr, ivs)) = conflict {
            report
                .diagnostics
                .push(conflict_diagnostic(program, seg, si, addr, &ivs, statics));
            return; // one finding per array segment
        }
    }
}

/// Recover the *first* writer of `addr` (initializer or an earlier/same
/// site instance) and build the SA001/SA002 diagnostic.
fn conflict_diagnostic(
    program: &Program,
    seg: &Segment<'_>,
    second_site: usize,
    addr: usize,
    second_ivs: &[i64],
    statics: &[Option<Vec<f64>>],
) -> Diagnostic {
    let decl = program.array(seg.array);
    let second = &seg.writes[second_site];
    let span = Span::stmt(second.phase, &second.nest.label, second.stmt, &decl.name);

    if addr < seg.init_len {
        // First writer is the initializer.
        return Diagnostic::new(
            Code::Sa002WriteIntoInit,
            span,
            format!(
                "`{}[{addr}]` is defined by the array initializer and assigned again \
                 at iteration {}",
                decl.name,
                fmt_ivs(second.nest, second_ivs),
            ),
        )
        .explain(
            "Initialization data and statement writes share one generation; \
             re-assigning an initialized element violates single assignment exactly \
             like a double write. Shrink the initialized region (ArrayInit::Prefix) \
             or shift the write's index range.",
        );
    }

    // Re-walk the earlier instances to find the first writer of `addr`.
    let mut first: Option<(usize, Vec<i64>)> = None;
    'sites: for (si, site) in seg.writes.iter().enumerate().take(second_site + 1) {
        let mut found: Option<Vec<i64>> = None;
        site.nest.for_each_iteration(|ivs| {
            if found.is_some() {
                return;
            }
            if si == second_site && ivs == second_ivs {
                return; // stop before the colliding instance itself
            }
            if resolve_static_addr(program, statics, site.target, ivs) == Ok(addr) {
                found = Some(ivs.to_vec());
            }
        });
        if let Some(ivs) = found {
            first = Some((si, ivs));
            break 'sites;
        }
    }
    let (fsi, fivs) = first.expect("a colliding address must have a first writer");
    let fsite = &seg.writes[fsi];

    // Same-nest conflicts get the analysis machinery's flavor label.
    let flavor = if fsite.phase == second.phase && fsite.is_affine() && second.is_affine() {
        let nvars = second.nest.loops.len();
        match (
            analysis::linear_address_form(program, fsite.target, nvars),
            analysis::linear_address_form(program, second.target, nvars),
        ) {
            (Some(a), Some(b)) => match analysis::relate_forms(&a, &b) {
                PairRelation::Identical => " (identical index functions)",
                PairRelation::Skew(_) => " (skewed index functions)",
                PairRelation::RateMismatch => " (rate-mismatched index functions)",
                PairRelation::Mixed | PairRelation::Indirect => "",
            },
            _ => "",
        }
    } else {
        ""
    };

    Diagnostic::new(
        Code::Sa001DoubleWrite,
        span,
        format!(
            "`{}[{addr}]` is assigned twice: first by nest `{}` stmt {} at iteration {}, \
             again by nest `{}` stmt {} at iteration {}{flavor}",
            decl.name,
            fsite.nest.label,
            fsite.stmt,
            fmt_ivs(fsite.nest, &fivs),
            second.nest.label,
            second.stmt,
            fmt_ivs(second.nest, second_ivs),
        ),
    )
    .explain(
        "Single assignment permits exactly one producer per array element per \
         generation; the distributed machine aborts with DoubleWrite here and the \
         thread runtime's I-structure semantics become racy. Separate the two \
         producers into different generations with a Reinit, or disjoint their \
         index ranges.",
    )
}

/// Render an iteration vector as `(i=3, k=7)` using the nest's loop names.
/// Shared with the dependence-graph pass for SA008 cycle witnesses.
pub(crate) fn fmt_ivs(nest: &LoopNest, ivs: &[i64]) -> String {
    let mut s = String::from("(");
    for (v, iv) in ivs.iter().enumerate() {
        if v > 0 {
            s.push_str(", ");
        }
        match nest.loops.get(v) {
            Some(lv) => s.push_str(&format!("{}={iv}", lv.name)),
            None => s.push_str(&format!("v{v}={iv}")),
        }
    }
    s.push(')');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::nest::LoopVar;
    use sa_ir::program::{ArrayInit, InitPattern};
    use sa_ir::{Expr, ProgramBuilder};

    #[test]
    fn clean_copy_is_proven_affine() {
        let mut b = ProgramBuilder::new("clean");
        let x = b.output("X", &[64]);
        let y = b.input("Y", &[64], InitPattern::Harmonic);
        b.nest("copy", &[("k", 0, 63)], |nb| {
            let rhs = nb.read(y, [iv(0)]);
            nb.assign(x, [iv(0)], rhs);
        });
        let r = check_write_once(&b.finish());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.proven_affine, 1);
        assert_eq!(r.enumerated, 0);
    }

    #[test]
    fn double_write_same_nest_detected_with_witnesses() {
        let mut b = ProgramBuilder::new("dw");
        let x = b.output("X", &[32]);
        b.nest("dup", &[("k", 0, 31)], |nb| {
            // x[k] and x[31-k] collide pairwise across the midpoint.
            nb.assign(x, [iv(0)], Expr::Const(1.0));
            nb.assign(x, [iv(0).scale(-1).plus(31)], Expr::Const(2.0));
        });
        let r = check_write_once(&b.finish());
        assert_eq!(r.diagnostics.len(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.code, Code::Sa001DoubleWrite);
        assert_eq!(d.severity, crate::Severity::Error);
        assert!(d.message.contains("assigned twice"), "{}", d.message);
        assert!(d.message.contains("k="), "{}", d.message);
    }

    #[test]
    fn rewrite_in_second_nest_detected_and_reinit_clears_it() {
        let build = |with_reinit: bool| {
            let mut b = ProgramBuilder::new("two-nests");
            let x = b.output("X", &[16]);
            b.nest("first", &[("k", 0, 15)], |nb| {
                nb.assign(x, [iv(0)], Expr::Const(1.0));
            });
            if with_reinit {
                b.reinit(x);
            }
            b.nest("second", &[("k", 0, 15)], |nb| {
                nb.assign(x, [iv(0)], Expr::Const(2.0));
            });
            b.finish()
        };
        let bad = check_write_once(&build(false));
        assert_eq!(bad.diagnostics.len(), 1);
        assert_eq!(bad.diagnostics[0].code, Code::Sa001DoubleWrite);
        assert!(
            bad.diagnostics[0].message.contains("nest `first`"),
            "{}",
            bad.diagnostics[0].message
        );
        let good = check_write_once(&build(true));
        assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
    }

    #[test]
    fn write_into_initialized_prefix_is_sa002() {
        let mut b = ProgramBuilder::new("init-clash");
        let x = b.array_with(
            "X",
            &[16],
            ArrayInit::Prefix {
                pattern: InitPattern::Zero,
                len: 4,
            },
        );
        b.nest("fill", &[("k", 0, 15)], |nb| {
            nb.assign(x, [iv(0)], Expr::Const(1.0));
        });
        let r = check_write_once(&b.finish());
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, Code::Sa002WriteIntoInit);
        assert!(r.diagnostics[0].message.contains("initializer"));
    }

    #[test]
    fn strided_disjoint_writes_proven_clean() {
        // Evens in one nest, odds in another — GCD residue test separates.
        let mut b = ProgramBuilder::new("parity");
        let x = b.output("X", &[64]);
        b.nest("evens", &[("k", 0, 31)], |nb| {
            nb.assign(x, [iv(0).scale(2)], Expr::Const(0.0));
        });
        b.nest("odds", &[("k", 0, 31)], |nb| {
            nb.assign(x, [iv(0).scale(2).plus(1)], Expr::Const(1.0));
        });
        let r = check_write_once(&b.finish());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.proven_affine, 1);
        assert_eq!(r.enumerated, 0);
    }

    #[test]
    fn static_permutation_scatter_is_enumerated_clean() {
        let mut b = ProgramBuilder::new("scatter");
        let perm = b.input("P", &[32], InitPattern::Permutation { seed: 9 });
        let x = b.output("X", &[32]);
        b.nest("scat", &[("k", 0, 31)], |nb| {
            nb.assign_indirect(x, perm, iv(0), Expr::Const(1.0));
        });
        let r = check_write_once(&b.finish());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.enumerated, 1);
    }

    #[test]
    fn bounded_scatter_collision_and_runtime_scatter_warning() {
        // BoundedPermutation over limit 4 on 32 writes must collide.
        let mut b = ProgramBuilder::new("collide");
        let idx = b.input(
            "I",
            &[32],
            InitPattern::BoundedPermutation { seed: 5, limit: 4 },
        );
        let x = b.output("X", &[32]);
        b.nest("scat", &[("k", 0, 31)], |nb| {
            nb.assign_indirect(x, idx, iv(0), Expr::Const(1.0));
        });
        let r = check_write_once(&b.finish());
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, Code::Sa001DoubleWrite);

        // Same shape but with a runtime-written index array → SA003.
        let mut b = ProgramBuilder::new("runtime-scatter");
        let idx = b.output("I", &[32]);
        let x = b.output("X", &[32]);
        b.nest("mk-idx", &[("k", 0, 31)], |nb| {
            nb.assign(idx, [iv(0)], Expr::Const(0.0));
        });
        b.nest("scat", &[("k", 0, 31)], |nb| {
            nb.assign_indirect(x, idx, iv(0), Expr::Const(1.0));
        });
        let r = check_write_once(&b.finish());
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == Code::Sa003UndecidableScatter));
    }

    #[test]
    fn triangular_nest_proven_by_self_injectivity() {
        // x[8i + k] with k < i ≤ 8 — affine and injective, but triangular
        // (no lattice), so the box-superset self-injectivity test must
        // discharge it: |8| > (8-1)·1.
        let mut b = ProgramBuilder::new("tri");
        let x = b.output("X", &[80]);
        b.nest_loops(
            "tri",
            vec![
                LoopVar::simple("i", 1, 8),
                LoopVar {
                    name: "k".into(),
                    lo: 0.into(),
                    hi: iv(0).plus(-1),
                    step: 1,
                },
            ],
            |nb| {
                nb.assign(x, [iv(0).scale(8).add(&iv(1))], Expr::Const(1.0));
            },
        );
        let r = check_write_once(&b.finish());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.proven_affine, 1);
        assert_eq!(r.enumerated, 0);
    }
}
