//! K1 — Hydro Fragment. Paper class: **SD** (skew 10/11; Figure 1).
//!
//! ```fortran
//! DO 1 k = 1,n
//! 1    X(k) = Q + Y(k)*(R*ZX(k+10) + T*ZX(k+11))
//! ```

use sa_ir::index::iv;
use sa_ir::{AccessClass, InitPattern, ProgramBuilder};

use crate::suite::Kernel;

/// Build K1 at problem size `n` (official: 1001).
pub fn build(n: usize) -> Kernel {
    let mut b = ProgramBuilder::new("K1 hydro fragment");
    let q = b.param("Q", 0.5);
    let r = b.param("R", 0.25);
    let t = b.param("T", 0.125);
    let y = b.input("Y", &[n + 1], InitPattern::Wavy);
    let zx = b.input("ZX", &[n + 12], InitPattern::Harmonic);
    let x = b.output("X", &[n + 1]);
    b.nest("k1", &[("k", 1, n as i64)], |nb| {
        let rhs = nb.par(q)
            + nb.read(y, [iv(0)])
                * (nb.par(r) * nb.read(zx, [iv(0).plus(10)])
                    + nb.par(t) * nb.read(zx, [iv(0).plus(11)]));
        nb.assign(x, [iv(0)], rhs);
    });
    Kernel {
        id: 1,
        code: "K1",
        name: "Hydro Fragment",
        program: b.finish(),
        expected_class: AccessClass::Skewed { max_skew: 11 },
        paper_class: Some("SD"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    #[test]
    fn interprets_and_fills_x() {
        let k = build(100);
        let r = interpret(&k.program).unwrap();
        let x = k.program.array_id("X").unwrap();
        // X(1..100) written, X(0) padding stays undefined.
        assert_eq!(r.arrays[x.0].defined_count(), 100);
        assert!(r.arrays[x.0].read(0).unwrap().is_none());
        // Spot check: X(1) = Q + Y(1)*(R*ZX(11) + T*ZX(12)).
        let y = InitPattern::Wavy.materialize(101);
        let zx = InitPattern::Harmonic.materialize(112);
        let want = 0.5 + y[1] * (0.25 * zx[11] + 0.125 * zx[12]);
        assert!((r.arrays[x.0].read(1).unwrap().unwrap() - want).abs() < 1e-12);
    }

    #[test]
    fn classifies_as_skew_11() {
        let k = build(100);
        assert_eq!(
            classify_program(&k.program).class,
            AccessClass::Skewed { max_skew: 11 }
        );
    }
}
