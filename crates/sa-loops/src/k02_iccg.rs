//! K2 — Incomplete Cholesky Conjugate Gradient excerpt.
//! Paper class: **CD** ("an excellent example" of cyclic distribution;
//! Figure 2).
//!
//! ```fortran
//!       II = n
//!       IPNTP = 0
//!  22   IPNT = IPNTP
//!       IPNTP = IPNTP + II
//!       II = II/2
//!       i = IPNTP
//!       DO 2 k = IPNT+2, IPNTP, 2
//!       i = i + 1
//!  2    X(i) = X(k) - V(k)*X(k-1) - V(k+1)*X(k+1)
//!       IF (II.GT.1) GOTO 22
//! ```
//!
//! The write index `i` advances half as fast as the read index `k` — the
//! rate mismatch that defines the Cyclic class. Each halving level becomes
//! one nest (the `GOTO 22` structure unrolled by the builder, sizes
//! computed with exact FORTRAN semantics). The paper notes the loop is
//! already single-assignment.

use sa_ir::index::AffineIndex;
use sa_ir::program::ArrayInit;
use sa_ir::{AccessClass, InitPattern, ProgramBuilder};

use crate::suite::Kernel;

/// The `(ipnt, ipntp, count)` of every halving level for problem size `n`.
pub fn levels(n: usize) -> Vec<(i64, i64, i64)> {
    let mut out = Vec::new();
    let mut ii = n as i64;
    let mut ipntp = 0i64;
    loop {
        let ipnt = ipntp;
        ipntp += ii;
        ii /= 2;
        // DO 2 k = ipnt+2, ipntp, 2
        let count = if ipntp >= ipnt + 2 {
            (ipntp - (ipnt + 2)) / 2 + 1
        } else {
            0
        };
        // A span-2 level (count 1 with k = ipntp) would read X(k+1) in the
        // very iteration that produces it — the FORTRAN original reads a
        // stale cell there, which only non-standard problem sizes trigger.
        // Such degenerate trailing levels are skipped.
        let span = ipntp - ipnt;
        if count > 0 && span != 2 {
            out.push((ipnt, ipntp, count));
        }
        if ii <= 1 {
            break;
        }
    }
    out
}

/// Build K2 at problem size `n` (official: 1001).
pub fn build(n: usize) -> Kernel {
    let lv = levels(n);
    let (_, last_ipntp, last_count) = *lv.last().expect("n ≥ 2");
    let x_len = (last_ipntp + last_count + 2) as usize;

    let mut b = ProgramBuilder::new("K2 ICCG");
    // X(1..n) is input data; X(n+1..) is produced level by level.
    let x = b.array_with(
        "X",
        &[x_len],
        ArrayInit::Prefix {
            pattern: InitPattern::Wavy,
            len: n + 1,
        },
    );
    let v = b.input("V", &[x_len], InitPattern::Harmonic);

    for (li, &(ipnt, ipntp, count)) in lv.iter().enumerate() {
        // t = 0..count-1;  k = ipnt+2+2t;  i = ipntp+1+t.
        let k = AffineIndex {
            coeffs: vec![2],
            offset: ipnt + 2,
        };
        let i = AffineIndex {
            coeffs: vec![1],
            offset: ipntp + 1,
        };
        b.nest(format!("k2-level{li}"), &[("t", 0, count - 1)], |nb| {
            let rhs = nb.read(x, [k.clone()])
                - nb.read(v, [k.clone()]) * nb.read(x, [k.clone().plus(-1)])
                - nb.read(v, [k.clone().plus(1)]) * nb.read(x, [k.clone().plus(1)]);
            nb.assign(x, [i.clone()], rhs);
        });
    }

    Kernel {
        id: 2,
        code: "K2",
        name: "Incomplete Cholesky-Conjugate Gradient",
        program: b.finish(),
        expected_class: AccessClass::Cyclic,
        paper_class: Some("CD"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    #[test]
    fn levels_match_fortran_semantics() {
        // n=1001: first level k = 2..1000 step 2 → 500 writes at 1002..1501.
        let lv = levels(1001);
        assert_eq!(lv[0], (0, 1001, 500));
        assert_eq!(lv[1], (1001, 1501, 250));
        assert_eq!(lv[2], (1501, 1751, 125));
        // Level sizes halve (with FORTRAN rounding) down to 1.
        let counts: Vec<i64> = lv.iter().map(|&(_, _, c)| c).collect();
        assert_eq!(counts, vec![500, 250, 125, 62, 31, 15, 7, 3, 1]);
    }

    #[test]
    fn interprets_cleanly_as_single_assignment() {
        for n in [16usize, 100, 255, 1001] {
            let k = build(n);
            let r = interpret(&k.program);
            assert!(r.is_ok(), "n={n}: {:?}", r.err());
        }
    }

    #[test]
    fn reads_stay_within_produced_regions() {
        // The total writes must equal the sum of level counts.
        let k = build(1001);
        let r = interpret(&k.program).unwrap();
        let total: i64 = levels(1001).iter().map(|&(_, _, c)| c).sum();
        assert_eq!(r.writes as i64, total);
    }

    #[test]
    fn classifies_as_cyclic() {
        let k = build(256);
        assert_eq!(classify_program(&k.program).class, AccessClass::Cyclic);
    }
}
