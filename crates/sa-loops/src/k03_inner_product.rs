//! K3 — Inner Product. Class: **MD** (all indices matched); the reduction
//! result is collected at the scalar's host PE (paper §9's vector→scalar
//! mechanism).
//!
//! ```fortran
//!       Q = 0.0
//!       DO 3 k = 1,n
//!  3    Q = Q + Z(k)*X(k)
//! ```

use sa_ir::index::iv;
use sa_ir::{AccessClass, InitPattern, ProgramBuilder, ReduceOp};

use crate::suite::Kernel;

/// Build K3 at problem size `n` (official: 1001).
pub fn build(n: usize) -> Kernel {
    let mut b = ProgramBuilder::new("K3 inner product");
    let z = b.input("Z", &[n + 1], InitPattern::Wavy);
    let x = b.input("X", &[n + 1], InitPattern::Harmonic);
    let q = b.scalar("Q");
    b.nest("k3", &[("k", 1, n as i64)], |nb| {
        nb.reduce(q, ReduceOp::Sum, nb.read(z, [iv(0)]) * nb.read(x, [iv(0)]));
    });
    Kernel {
        id: 3,
        code: "K3",
        name: "Inner Product",
        program: b.finish(),
        expected_class: AccessClass::Matched,
        paper_class: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    #[test]
    fn computes_the_dot_product() {
        let k = build(100);
        let r = interpret(&k.program).unwrap();
        let z = InitPattern::Wavy.materialize(101);
        let x = InitPattern::Harmonic.materialize(101);
        let want: f64 = (1..=100).map(|i| z[i] * x[i]).sum();
        assert!((r.scalars[0] - want).abs() < 1e-9);
    }

    #[test]
    fn classifies_as_matched() {
        let k = build(64);
        assert_eq!(classify_program(&k.program).class, AccessClass::Matched);
    }
}
