//! K4 — Banded Linear Equations.
//!
//! ```fortran
//!       m = (1001-7)/2
//!       DO 444 k = 6,1001,m
//!          lw = k - 6
//!          temp = X(k-1)
//!          DO 4 j = 5,n,5
//!             temp = temp - X(lw)*Y(j)
//!  4          lw = lw + 1
//!          XB(k-1) = Y(5)*temp
//! 444   CONTINUE
//! ```
//!
//! The in-loop scalar accumulation (`temp`) becomes a `Reduce` per `k`
//! (there are only three `k` values at the official size), and the final
//! write goes to a fresh array `XB` since the original overwrites `X(k-1)`
//! after reading it — the §5 conversion in action. The strided `Y(j)` read
//! advances five times faster than the `X(lw)` anchor: a rate mismatch,
//! hence the Cyclic class.

use sa_ir::index::AffineIndex;
use sa_ir::{AccessClass, InitPattern, ProgramBuilder, ReduceOp};

use crate::suite::Kernel;

/// Build K4 at problem size `n` (official: 1001).
pub fn build(n: usize) -> Kernel {
    let m = (1001 - 7) / 2; // the official stride, independent of n
    let cnt = (n as i64 - 5) / 5 + 1;
    let mut b = ProgramBuilder::new("K4 banded linear equations");
    // X is over-dimensioned exactly as in the LFK sources: the band walk
    // `lw = k-6 … k-6+cnt-1` runs past n for the last k.
    let x = b.input("X", &[n + cnt as usize + 1], InitPattern::Wavy);
    let y = b.input("Y", &[n + 1], InitPattern::Harmonic);
    let xb = b.output("XB", &[n + 1]);

    let mut k = 6i64;
    let mut ki = 0usize;
    while k <= n as i64 {
        let temp = b.scalar(format!("temp{ki}"));
        // j = 5 + 5t, lw = (k-6) + t,  t = 0..cnt-1  (DO 4 j = 5,n,5)
        let lw = AffineIndex {
            coeffs: vec![1],
            offset: k - 6,
        };
        let j = AffineIndex {
            coeffs: vec![5],
            offset: 5,
        };
        b.nest(format!("k4-reduce-{ki}"), &[("t", 0, cnt - 1)], |nb| {
            nb.reduce(
                temp,
                ReduceOp::Sum,
                nb.read(x, [lw.clone()]) * nb.read(y, [j.clone()]),
            );
        });
        b.nest(format!("k4-write-{ki}"), &[("one", 0, 0)], |nb| {
            nb.assign(
                xb,
                [AffineIndex::constant(k - 1)],
                nb.read(y, [AffineIndex::constant(5)])
                    * (nb.read(x, [AffineIndex::constant(k - 1)]) - nb.scalar_value(temp)),
            );
        });
        k += m;
        ki += 1;
    }

    Kernel {
        id: 4,
        code: "K4",
        name: "Banded Linear Equations",
        program: b.finish(),
        expected_class: AccessClass::Cyclic,
        paper_class: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    #[test]
    fn computes_the_banded_solve_steps() {
        let n = 1001;
        let k4 = build(n);
        let r = interpret(&k4.program).unwrap();
        let cnt = (n - 5) / 5 + 1;
        let x = InitPattern::Wavy.materialize(n + cnt + 1);
        let y = InitPattern::Harmonic.materialize(n + 1);
        let m = (1001 - 7) / 2;
        let mut k = 6usize;
        while k <= n {
            let mut temp = x[k - 1];
            let mut lw = k - 6;
            let mut j = 5;
            while j <= n {
                temp -= x[lw] * y[j];
                lw += 1;
                j += 5;
            }
            let want = y[5] * temp;
            let got = *r.arrays[2].read(k - 1).unwrap().unwrap();
            assert!((got - want).abs() < 1e-9, "XB({})", k - 1);
            k += m;
        }
    }

    #[test]
    fn classifies_as_cyclic_rate_mismatch() {
        let k = build(1001);
        assert_eq!(classify_program(&k.program).class, AccessClass::Cyclic);
    }
}
