//! K5 — Tri-Diagonal Elimination, Below Diagonal. Paper class: **SD**
//! (named in §7.1.2 as a member of the skewed class).
//!
//! ```fortran
//!       DO 5 i = 2,n
//!  5    X(i) = Z(i)*(Y(i) - X(i-1))
//! ```
//!
//! The loop is a first-order recurrence: each `X(i)` depends on the
//! previous element, so under owner-computes the PEs form a pipeline whose
//! cross-page handoffs are the skew-1 remote reads.

use sa_ir::index::iv;
use sa_ir::program::ArrayInit;
use sa_ir::{AccessClass, InitPattern, ProgramBuilder};

use crate::suite::Kernel;

/// Build K5 at problem size `n` (official: 1001).
pub fn build(n: usize) -> Kernel {
    let mut b = ProgramBuilder::new("K5 tri-diagonal elimination");
    let y = b.input("Y", &[n + 1], InitPattern::Wavy);
    let z = b.input("Z", &[n + 1], InitPattern::Harmonic);
    // X(1) is the recurrence seed; X(2..n) is produced.
    let x = b.array_with(
        "X",
        &[n + 1],
        ArrayInit::Prefix {
            pattern: InitPattern::Const(0.01),
            len: 2,
        },
    );
    b.nest("k5", &[("i", 2, n as i64)], |nb| {
        nb.assign(
            x,
            [iv(0)],
            nb.read(z, [iv(0)]) * (nb.read(y, [iv(0)]) - nb.read(x, [iv(0).plus(-1)])),
        );
    });
    Kernel {
        id: 5,
        code: "K5",
        name: "Tri-Diagonal Elimination",
        program: b.finish(),
        expected_class: AccessClass::Skewed { max_skew: 1 },
        paper_class: Some("SD"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    #[test]
    fn recurrence_unwinds_correctly() {
        let k = build(50);
        let r = interpret(&k.program).unwrap();
        let y = InitPattern::Wavy.materialize(51);
        let z = InitPattern::Harmonic.materialize(51);
        let mut x = 0.01; // X(1)
        for i in 2..=50 {
            x = z[i] * (y[i] - x);
            let got = *r.arrays[2].read(i).unwrap().unwrap();
            assert!((got - x).abs() < 1e-12, "X({i})");
        }
    }

    #[test]
    fn classifies_as_skew_1() {
        let k = build(64);
        assert_eq!(
            classify_program(&k.program).class,
            AccessClass::Skewed { max_skew: 1 }
        );
    }
}
