//! K6 — General Linear Recurrence Equations. Paper class: **RD**
//! (Figure 4: high remote percentage with or without the cache).
//!
//! ```fortran
//!       DO 6 i = 2,n
//!       DO 6 k = 1,i-1
//!  6    W(i) = W(i) + B(i,k) * W(i-k)
//! ```
//!
//! Single-assignment conversion: the in-place accumulation becomes a
//! partial-sum array `P(i,k)` (`P(i,0)` seeds with the initial `W`, and the
//! final `W(i)` is `P(i,i-1)`), so the recurrence read `W(i-k)` becomes
//! `P(i-k, i-k-1)` — still affine. Layout fidelity: FORTRAN `B(i,k)` is
//! column-major, i.e. our row-major `B[[k],[i]]`, so the inner `k` loop
//! jumps a whole row stride per iteration — the "multi-dimensional arrays
//! … combined with skewed accesses" that produce random-looking page
//! traffic (§7.1.4).

use sa_ir::index::{iv, AffineIndex};
use sa_ir::nest::LoopVar;
use sa_ir::{AccessClass, InitPattern, ProgramBuilder};

use crate::suite::Kernel;

/// Build K6 at problem size `n` (official: 64).
pub fn build(n: usize) -> Kernel {
    let nn = n + 1;
    let mut b = ProgramBuilder::new("K6 general linear recurrence");
    let w0 = b.input("W0", &[nn], InitPattern::Harmonic);
    // FORTRAN B(i,k) → row-major B[k][i].
    let bb = b.input("B", &[nn, nn], InitPattern::Wavy);
    let p = b.output("P", &[nn, nn]);
    let w = b.output("W", &[nn]);

    // P(i,0) = W0(i): the accumulator seeds.
    b.nest("k6-seed", &[("i", 1, n as i64)], |nb| {
        nb.assign(p, [iv(0), AffineIndex::constant(0)], nb.read(w0, [iv(0)]));
    });

    // P(i,k) = P(i,k-1) + B(i,k) * P(i-k, i-k-1)   [W(i-k) = P(i-k,i-k-1)]
    b.nest_loops(
        "k6",
        vec![
            LoopVar::simple("i", 2, n as i64),
            LoopVar {
                name: "k".into(),
                lo: 1.into(),
                hi: iv(0).plus(-1),
                step: 1,
            },
        ],
        |nb| {
            let w_prev = nb.read(
                p,
                [
                    iv(0).add(&iv(1).scale(-1)),
                    iv(0).add(&iv(1).scale(-1)).plus(-1),
                ],
            );
            nb.assign(
                p,
                [iv(0), iv(1)],
                nb.read(p, [iv(0), iv(1).plus(-1)]) + nb.read(bb, [iv(1), iv(0)]) * w_prev,
            );
        },
    );

    // W(i) = P(i, i-1): expose the recurrence results.
    b.nest("k6-extract", &[("i", 2, n as i64)], |nb| {
        nb.assign(w, [iv(0)], nb.read(p, [iv(0), iv(0).plus(-1)]));
    });

    Kernel {
        id: 6,
        code: "K6",
        name: "General Linear Recurrence Equations",
        program: b.finish(),
        expected_class: AccessClass::Random,
        paper_class: Some("RD"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    #[test]
    fn matches_the_fortran_recurrence() {
        let n = 24;
        let k6 = build(n);
        let r = interpret(&k6.program).unwrap();
        // Von Neumann model of the original kernel.
        let w0 = InitPattern::Harmonic.materialize(n + 1);
        let bb = InitPattern::Wavy.materialize((n + 1) * (n + 1));
        let b_at = |i: usize, k: usize| bb[k * (n + 1) + i]; // B[k][i]
        let mut w = w0.clone();
        for i in 2..=n {
            for k in 1..i {
                w[i] += b_at(i, k) * w[i - k];
            }
        }
        let w_id = k6.program.array_id("W").unwrap();
        for (i, want) in w.iter().enumerate().take(n + 1).skip(2) {
            let got = *r.arrays[w_id.0].read(i).unwrap().unwrap();
            assert!((got - want).abs() < 1e-9, "W({i}): {got} vs {want}");
        }
    }

    #[test]
    fn classifies_as_random() {
        let k = build(16);
        assert_eq!(classify_program(&k.program).class, AccessClass::Random);
    }
}
