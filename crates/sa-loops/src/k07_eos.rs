//! K7 — Equation of State Fragment. Paper class: **SD** (named in §7.1.2;
//! skews 1..6).
//!
//! ```fortran
//!       DO 7 k = 1,n
//!  7    X(k) = U(k) + R*(Z(k) + R*Y(k))
//!      .       + T*(U(k+3) + R*(U(k+2) + R*U(k+1))
//!      .       + T*(U(k+6) + Q*(U(k+5) + Q*U(k+4))))
//! ```

use sa_ir::index::iv;
use sa_ir::{AccessClass, InitPattern, ProgramBuilder};

use crate::suite::Kernel;

/// Build K7 at problem size `n` (official: 995).
pub fn build(n: usize) -> Kernel {
    let mut b = ProgramBuilder::new("K7 equation of state");
    let q = b.param("Q", 0.5);
    let r = b.param("R", 0.25);
    let t = b.param("T", 0.125);
    let u = b.input("U", &[n + 7], InitPattern::Wavy);
    let y = b.input("Y", &[n + 1], InitPattern::Harmonic);
    let z = b.input("Z", &[n + 1], InitPattern::Wavy);
    let x = b.output("X", &[n + 1]);
    b.nest("k7", &[("k", 1, n as i64)], |nb| {
        let uk = |d: i64| nb.read(u, [iv(0).plus(d)]);
        let rhs = uk(0)
            + nb.par(r) * (nb.read(z, [iv(0)]) + nb.par(r) * nb.read(y, [iv(0)]))
            + nb.par(t)
                * (uk(3)
                    + nb.par(r) * (uk(2) + nb.par(r) * uk(1))
                    + nb.par(t) * (uk(6) + nb.par(q) * (uk(5) + nb.par(q) * uk(4))));
        nb.assign(x, [iv(0)], rhs);
    });
    Kernel {
        id: 7,
        code: "K7",
        name: "Equation of State Fragment",
        program: b.finish(),
        expected_class: AccessClass::Skewed { max_skew: 6 },
        paper_class: Some("SD"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    #[test]
    fn interprets_and_matches_scalar_model() {
        let k = build(64);
        let r = interpret(&k.program).unwrap();
        let u = InitPattern::Wavy.materialize(71);
        let y = InitPattern::Harmonic.materialize(65);
        let z = InitPattern::Wavy.materialize(65);
        let (q, rr, t) = (0.5, 0.25, 0.125);
        let kk = 10usize;
        let want = u[kk]
            + rr * (z[kk] + rr * y[kk])
            + t * (u[kk + 3]
                + rr * (u[kk + 2] + rr * u[kk + 1])
                + t * (u[kk + 6] + q * (u[kk + 5] + q * u[kk + 4])));
        let x = k.program.array_id("X").unwrap();
        assert!((r.arrays[x.0].read(kk).unwrap().unwrap() - want).abs() < 1e-12);
    }

    #[test]
    fn classifies_as_skew_6() {
        let k = build(64);
        assert_eq!(
            classify_program(&k.program).class,
            AccessClass::Skewed { max_skew: 6 }
        );
    }
}
