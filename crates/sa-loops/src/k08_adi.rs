//! K8 — A.D.I. Integration. Paper class: **RD** (named in §7.1.4).
//!
//! ```fortran
//!       DO 8 kx = 2,3
//!       DO 8 ky = 2,n
//!          DU1(ky) = U1(kx,ky+1,1) - U1(kx,ky-1,1)
//!          DU2(ky) = U2(kx,ky+1,1) - U2(kx,ky-1,1)
//!          DU3(ky) = U3(kx,ky+1,1) - U3(kx,ky-1,1)
//!          U1(kx,ky,2) = U1(kx,ky,1) + A11*DU1(ky) + A12*DU2(ky) + A13*DU3(ky)
//!      .       + SIG*(U1(kx+1,ky,1) - 2.*U1(kx,ky,1) + U1(kx-1,ky,1))
//!          U2(kx,ky,2) = … (A2j row)        U3(kx,ky,2) = … (A3j row)
//!  8    CONTINUE
//! ```
//!
//! Conversion notes: `DU1(ky)` is written once per `kx` iteration — a
//! double write under single assignment — so the `DU` arrays gain a `kx`
//! dimension (array expansion, §5). Layout fidelity: FORTRAN
//! `U1(kx,ky,l)` is column-major (`kx` fastest), i.e. our row-major
//! `U1[[l],[ky],[kx]]`; plane 1 is input (prefix-initialized), plane 2 is
//! produced. The `DU(ky)` reads advance one element while the write
//! advances a whole `kx`-row — incommensurate rates over several arrays at
//! once, which is what makes the working set exceed the cache and the
//! access distribution effectively random.

use sa_ir::index::iv;
use sa_ir::program::ArrayInit;
use sa_ir::{AccessClass, Expr, InitPattern, ParamId, ProgramBuilder};

use crate::suite::Kernel;

const KXD: usize = 5; // FORTRAN kx dimension extent

/// Build K8 at problem size `n` (official: 101).
pub fn build(n: usize) -> Kernel {
    let kyd = n + 2;
    let plane = kyd * KXD;
    let mut b = ProgramBuilder::new("K8 ADI integration");

    let a: Vec<Vec<ParamId>> = (1..=3)
        .map(|i| {
            (1..=3)
                .map(|j| b.param(format!("A{i}{j}"), 0.1 * (i * 3 + j) as f64))
                .collect()
        })
        .collect();
    let sig = b.param("SIG", 0.05);

    // U*(kx,ky,l) → U*[l][ky][kx]; plane l=1 (addresses 0..plane) is input.
    let mk_u = |b: &mut ProgramBuilder, name: &str, p: InitPattern| {
        b.array_with(
            name,
            &[2, kyd, KXD],
            ArrayInit::Prefix {
                pattern: p,
                len: plane,
            },
        )
    };
    let u1 = mk_u(&mut b, "U1", InitPattern::Wavy);
    let u2 = mk_u(&mut b, "U2", InitPattern::Harmonic);
    let u3 = mk_u(&mut b, "U3", InitPattern::Wavy);
    // DU*(ky) expanded with the kx dimension.
    let du1 = b.output("DU1", &[KXD, kyd]);
    let du2 = b.output("DU2", &[KXD, kyd]);
    let du3 = b.output("DU3", &[KXD, kyd]);

    b.nest("k8", &[("kx", 2, 3), ("ky", 2, n as i64)], |nb| {
        let (d1, d2, d3, up1, up2, up3) = {
            let du_rhs = |u: sa_ir::ArrayId| {
                nb.read(u, [0.into(), iv(1).plus(1), iv(0)])
                    - nb.read(u, [0.into(), iv(1).plus(-1), iv(0)])
            };
            let update = |row: &[ParamId], u: sa_ir::ArrayId| -> Expr {
                nb.read(u, [0.into(), iv(1), iv(0)])
                    + Expr::Param(row[0]) * nb.read(du1, [iv(0), iv(1)])
                    + Expr::Param(row[1]) * nb.read(du2, [iv(0), iv(1)])
                    + Expr::Param(row[2]) * nb.read(du3, [iv(0), iv(1)])
                    + nb.par(sig)
                        * (nb.read(u, [0.into(), iv(1), iv(0).plus(1)])
                            - 2.0 * nb.read(u, [0.into(), iv(1), iv(0)])
                            + nb.read(u, [0.into(), iv(1), iv(0).plus(-1)]))
            };
            (
                du_rhs(u1),
                du_rhs(u2),
                du_rhs(u3),
                update(&a[0], u1),
                update(&a[1], u2),
                update(&a[2], u3),
            )
        };
        nb.assign(du1, [iv(0), iv(1)], d1);
        nb.assign(du2, [iv(0), iv(1)], d2);
        nb.assign(du3, [iv(0), iv(1)], d3);
        nb.assign(u1, [1.into(), iv(1), iv(0)], up1);
        nb.assign(u2, [1.into(), iv(1), iv(0)], up2);
        nb.assign(u3, [1.into(), iv(1), iv(0)], up3);
    });

    Kernel {
        id: 8,
        code: "K8",
        name: "A.D.I. Integration",
        program: b.finish(),
        expected_class: AccessClass::Random,
        paper_class: Some("RD"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    #[test]
    fn interprets_and_spot_checks_u1() {
        let n = 20;
        let k8 = build(n);
        let r = interpret(&k8.program).unwrap();
        let kyd = n + 2;
        let plane = kyd * KXD;
        let u1 = InitPattern::Wavy.materialize(plane);
        let u2 = InitPattern::Harmonic.materialize(plane);
        let u3 = InitPattern::Wavy.materialize(plane);
        let at = |v: &[f64], ky: usize, kx: usize| v[ky * KXD + kx];
        let (kx, ky) = (2usize, 5usize);
        let du1 = at(&u1, ky + 1, kx) - at(&u1, ky - 1, kx);
        let du2 = at(&u2, ky + 1, kx) - at(&u2, ky - 1, kx);
        let du3 = at(&u3, ky + 1, kx) - at(&u3, ky - 1, kx);
        let want = at(&u1, ky, kx)
            + 0.4 * du1
            + 0.5 * du2
            + 0.6 * du3
            + 0.05 * (at(&u1, ky, kx + 1) - 2.0 * at(&u1, ky, kx) + at(&u1, ky, kx - 1));
        let id = k8.program.array_id("U1").unwrap();
        let got = *r.arrays[id.0].read(plane + ky * KXD + kx).unwrap().unwrap();
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn classifies_as_random() {
        let k = build(20);
        assert_eq!(classify_program(&k.program).class, AccessClass::Random);
    }
}
