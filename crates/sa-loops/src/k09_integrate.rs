//! K9 — Integrate Predictors. Class: **SD** (all reads in the writer's own
//! predictor row, skews ≤ 12).
//!
//! ```fortran
//!       DO 9 i = 1,n
//!  9    PX(1,i) = DM28*PX(13,i) + DM27*PX(12,i) + DM26*PX(11,i) +
//!      .          DM25*PX(10,i) + DM24*PX( 9,i) + DM23*PX( 8,i) +
//!      .          DM22*PX( 7,i) + C0*(PX(5,i) + PX(6,i)) + PX(3,i)
//! ```
//!
//! `PX(1,i)` is written and only columns 3..13 are read, so the kernel is
//! already single-assignment provided column 1 starts undefined: `PX` is
//! split into the input columns (`PXI`, fully initialized) and the output
//! column written here. Layout fidelity: FORTRAN `PX(j,i)` → row-major
//! `PX[[i],[j]]` (predictor row contiguous).

use sa_ir::index::iv;
use sa_ir::{AccessClass, InitPattern, ProgramBuilder};

use crate::suite::Kernel;

const JD: usize = 25; // predictor row width, as in the official source

/// Build K9 at problem size `n` (official: 101).
pub fn build(n: usize) -> Kernel {
    let mut b = ProgramBuilder::new("K9 integrate predictors");
    let dm: Vec<_> = (22..=28)
        .map(|d| b.param(format!("DM{d}"), 0.01 * d as f64))
        .collect();
    let c0 = b.param("C0", 1.5);
    let pxi = b.input("PXI", &[n + 1, JD], InitPattern::Wavy);
    // The written column 1 lives in an identically-shaped output array so
    // that write addresses stride exactly as the FORTRAN `PX(1,i)` does.
    let pxo = b.output("PXO", &[n + 1, JD]);
    b.nest("k9", &[("i", 1, n as i64)], |nb| {
        let col = |j: i64| nb.read(pxi, [iv(0), j.into()]);
        let rhs = nb.par(dm[6]) * col(13)
            + nb.par(dm[5]) * col(12)
            + nb.par(dm[4]) * col(11)
            + nb.par(dm[3]) * col(10)
            + nb.par(dm[2]) * col(9)
            + nb.par(dm[1]) * col(8)
            + nb.par(dm[0]) * col(7)
            + nb.par(c0) * (col(5) + col(6))
            + col(3);
        nb.assign(pxo, [iv(0), 1i64.into()], rhs);
    });
    Kernel {
        id: 9,
        code: "K9",
        name: "Integrate Predictors",
        program: b.finish(),
        expected_class: AccessClass::Skewed { max_skew: 12 },
        paper_class: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    #[test]
    fn integrates_each_row() {
        let n = 30;
        let k9 = build(n);
        let r = interpret(&k9.program).unwrap();
        let px = InitPattern::Wavy.materialize((n + 1) * JD);
        let at = |i: usize, j: usize| px[i * JD + j];
        for i in 1..=n {
            let want = 0.28 * at(i, 13)
                + 0.27 * at(i, 12)
                + 0.26 * at(i, 11)
                + 0.25 * at(i, 10)
                + 0.24 * at(i, 9)
                + 0.23 * at(i, 8)
                + 0.22 * at(i, 7)
                + 1.5 * (at(i, 5) + at(i, 6))
                + at(i, 3);
            let got = *r.arrays[1].read(i * JD + 1).unwrap().unwrap();
            assert!((got - want).abs() < 1e-12, "PXO(1,{i})");
        }
    }

    #[test]
    fn classification_is_stable() {
        let k = build(16);
        assert_eq!(
            classify_program(&k.program).class.abbrev(),
            k.expected_class.abbrev()
        );
    }
}
