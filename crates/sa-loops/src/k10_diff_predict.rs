//! K10 — Difference Predictors. Class: **SD** (chained column rewrites
//! become forward-substituted skewed reads).
//!
//! ```fortran
//!       DO 10 i = 1,n
//!          AR      = CX(5,i)
//!          BR      = AR - PX(5,i)
//!          PX(5,i) = AR
//!          CR      = BR - PX(6,i)
//!          PX(6,i) = BR
//!          …                        (continues through PX(14,i))
//! 10    CONTINUE
//! ```
//!
//! Conversion: the iteration-local scalars (`AR`, `BR`, …) are forward
//! substituted — the value stored to column `j` is
//! `CX(5,i) − Σ_{m=5}^{j-1} PX(m,i)` — and the rewritten columns go to a
//! fresh array `PXN` (array expansion, §5). Layout: FORTRAN `PX(j,i)` →
//! row-major `PX[[i],[j]]`.

use sa_ir::index::iv;
use sa_ir::{AccessClass, Expr, InitPattern, ProgramBuilder};

use crate::suite::Kernel;

const JD: usize = 25;

/// Build K10 at problem size `n` (official: 101).
pub fn build(n: usize) -> Kernel {
    let mut b = ProgramBuilder::new("K10 difference predictors");
    let cx = b.input("CX", &[n + 1, JD], InitPattern::Wavy);
    let px = b.input("PX", &[n + 1, JD], InitPattern::Harmonic);
    let pxn = b.output("PXN", &[n + 1, JD]);
    b.nest("k10", &[("i", 1, n as i64)], |nb| {
        // PXN(5,i) = AR = CX(5,i);
        // PXN(j,i) = CX(5,i) − Σ_{m=5}^{j-1} PX(m,i)   for j = 6..14.
        let ar = nb.read(cx, [iv(0), 5i64.into()]);
        nb.assign(pxn, [iv(0), 5i64.into()], ar.clone());
        let mut acc: Expr = ar;
        for j in 6..=14i64 {
            acc = acc - nb.read(px, [iv(0), (j - 1).into()]);
            nb.assign(pxn, [iv(0), j.into()], acc.clone());
        }
    });
    Kernel {
        id: 10,
        code: "K10",
        name: "Difference Predictors",
        program: b.finish(),
        expected_class: AccessClass::Skewed { max_skew: 9 },
        paper_class: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    #[test]
    fn forward_substitution_matches_the_chained_original() {
        let n = 40;
        let k10 = build(n);
        let r = interpret(&k10.program).unwrap();
        let cx = InitPattern::Wavy.materialize((n + 1) * JD);
        let px0 = InitPattern::Harmonic.materialize((n + 1) * JD);
        for i in 1..=n {
            // Chained original (von Neumann).
            let mut px = px0.clone();
            let ar = cx[i * JD + 5];
            let mut vals = vec![ar];
            let mut cur = ar;
            for j in 6..=14usize {
                cur -= px[i * JD + (j - 1)];
                vals.push(cur);
            }
            px[i * JD + 5] = ar; // the original stores as it goes
            for (idx, j) in (5..=14usize).enumerate() {
                let got = *r.arrays[2].read(i * JD + j).unwrap().unwrap();
                assert!((got - vals[idx]).abs() < 1e-9, "PXN({j},{i})");
            }
        }
    }

    #[test]
    fn classifies_as_skewed() {
        let k = build(16);
        assert_eq!(
            classify_program(&k.program).class,
            AccessClass::Skewed { max_skew: 9 }
        );
    }
}
