//! K11 — First Sum (running sum). Paper class: **SD** (named in §7.1.2 as
//! "First Sum").
//!
//! ```fortran
//!       X(1) = Y(1)
//!       DO 11 k = 2,n
//! 11    X(k) = X(k-1) + Y(k)
//! ```

use sa_ir::index::iv;
use sa_ir::{AccessClass, InitPattern, ProgramBuilder};

use crate::suite::Kernel;

/// Build K11 at problem size `n` (official: 1001).
pub fn build(n: usize) -> Kernel {
    let mut b = ProgramBuilder::new("K11 first sum");
    let y = b.input("Y", &[n + 1], InitPattern::Wavy);
    let x = b.output("X", &[n + 1]);
    // The seed write X(1) = Y(1) is its own (single-iteration) nest.
    b.nest("k11-seed", &[("k", 1, 1)], |nb| {
        nb.assign(x, [iv(0)], nb.read(y, [iv(0)]));
    });
    b.nest("k11", &[("k", 2, n as i64)], |nb| {
        nb.assign(
            x,
            [iv(0)],
            nb.read(x, [iv(0).plus(-1)]) + nb.read(y, [iv(0)]),
        );
    });
    Kernel {
        id: 11,
        code: "K11",
        name: "First Sum",
        program: b.finish(),
        expected_class: AccessClass::Skewed { max_skew: 1 },
        paper_class: Some("SD"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    #[test]
    fn prefix_sums_are_exact() {
        let k = build(200);
        let r = interpret(&k.program).unwrap();
        let y = InitPattern::Wavy.materialize(201);
        let mut acc = 0.0;
        for (i, yv) in y.iter().enumerate().take(201).skip(1) {
            acc += yv;
            let got = *r.arrays[1].read(i).unwrap().unwrap();
            assert!((got - acc).abs() < 1e-9, "X({i})");
        }
    }

    #[test]
    fn classifies_as_skew_1() {
        let k = build(64);
        assert_eq!(
            classify_program(&k.program).class,
            AccessClass::Skewed { max_skew: 1 }
        );
    }
}
