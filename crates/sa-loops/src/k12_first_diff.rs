//! K12 — First Difference. Paper class: **SD** (named in §7.1.2 as
//! "First Differential").
//!
//! ```fortran
//!       DO 12 k = 1,n
//! 12    X(k) = Y(k+1) - Y(k)
//! ```

use sa_ir::index::iv;
use sa_ir::{AccessClass, InitPattern, ProgramBuilder};

use crate::suite::Kernel;

/// Build K12 at problem size `n` (official: 1000).
pub fn build(n: usize) -> Kernel {
    let mut b = ProgramBuilder::new("K12 first difference");
    let y = b.input("Y", &[n + 2], InitPattern::Wavy);
    let x = b.output("X", &[n + 1]);
    b.nest("k12", &[("k", 1, n as i64)], |nb| {
        nb.assign(
            x,
            [iv(0)],
            nb.read(y, [iv(0).plus(1)]) - nb.read(y, [iv(0)]),
        );
    });
    Kernel {
        id: 12,
        code: "K12",
        name: "First Difference",
        program: b.finish(),
        expected_class: AccessClass::Skewed { max_skew: 1 },
        paper_class: Some("SD"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    #[test]
    fn differences_are_exact() {
        let k = build(100);
        let r = interpret(&k.program).unwrap();
        let y = InitPattern::Wavy.materialize(102);
        for i in 1..=100usize {
            let got = *r.arrays[1].read(i).unwrap().unwrap();
            assert!((got - (y[i + 1] - y[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn classifies_as_skew_1() {
        let k = build(64);
        assert_eq!(
            classify_program(&k.program).class,
            AccessClass::Skewed { max_skew: 1 }
        );
    }
}
