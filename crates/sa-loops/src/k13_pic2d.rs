//! K13 — 2-D Particle in a Cell (gather stages). Class: **RD**.
//!
//! ```fortran
//!       DO 13 ip = 1,n
//!          i1 = P(1,ip); j1 = P(2,ip)
//!          P(3,ip) = P(3,ip) + B(i1,j1)
//!          P(4,ip) = P(4,ip) + C(i1,j1)
//!          …
//!          H(i2,j2) = H(i2,j2) + 1.0
//! 13    CONTINUE
//! ```
//!
//! **Substitution notes.** The kernel's integer modular arithmetic and the
//! histogram scatter (`H(i2,j2) += 1`, a data-dependent multi-write) have
//! no single-assignment analogue at element granularity; what the paper
//! measures is the *page traffic of particle↔grid indirection*. The SA
//! version keeps exactly that: per-particle cell indices (`IX`, `IY`,
//! bounded pseudo-random permutations) drive **two-dimensional gathers**
//! `B(IX(ip), IY(ip))` into the velocity-update arrays, followed by the
//! matched position update. The charge-deposit scatter becomes a
//! per-particle deposit array (same reads, conflict-free writes) — the
//! standard SA/PIC transformation.

use sa_ir::index::{iv, IndexExpr};
use sa_ir::nest::ArrayRef;
use sa_ir::{AccessClass, Expr, InitPattern, ProgramBuilder};

use crate::suite::Kernel;

const GRID: usize = 64; // 64×64 field grids

/// Build K13 with `n` particles (official: 1001; grid 64×64).
pub fn build(n: usize) -> Kernel {
    build_with(n, false)
}

/// Build K13 with the charge-deposit stage in *true scatter form*: the
/// per-particle deposit is pushed through a particle permutation `IP`,
/// `DEP(IP(ip)) = B(IX(ip),IY(ip)) + C(IX(ip),IY(ip))` — a 2-D gather on
/// the right and an indirect statement anchor on the left, so owner
/// screening must resolve the scattered subscript first. `IP` is a
/// permutation, keeping the write single-assignment.
pub fn build_scatter(n: usize) -> Kernel {
    build_with(n, true)
}

fn build_with(n: usize, scatter: bool) -> Kernel {
    let mut b = ProgramBuilder::new(if scatter {
        "K13 2-D particle in a cell (scatter deposit)"
    } else {
        "K13 2-D particle in a cell"
    });
    let ip = scatter.then(|| b.input("IP", &[n + 1], InitPattern::Permutation { seed: 133 }));
    // Particle cell coordinates: bounded index data. The permutation
    // pattern modulo the grid edge keeps lookups in range while scattering
    // them across the whole field — the paper's "permutation lookups".
    let ix = b.input("IX", &[n + 1], InitPattern::Permutation { seed: 131 });
    let iy = b.input("IY", &[n + 1], InitPattern::Permutation { seed: 132 });
    let field_b = b.input("B", &[GRID, GRID], InitPattern::Wavy);
    let field_c = b.input("C", &[GRID, GRID], InitPattern::Harmonic);
    let px = b.input("PX", &[n + 1], InitPattern::Wavy);
    let py = b.input("PY", &[n + 1], InitPattern::Harmonic);
    let vx = b.output("VX", &[n + 1]);
    let vy = b.output("VY", &[n + 1]);
    let xn = b.output("XN", &[n + 1]);
    let yn = b.output("YN", &[n + 1]);
    let dep = b.output("DEP", &[n + 1]);

    // 2-D gather: field(B)(IX(ip) mod GRID-ish, IY(ip) mod GRID-ish).
    // Permutation values are < n+1; scale/offset folds them into range via
    // the affine hook on the gather (scale 1; the permutations are built
    // over n+1 ≤ GRID² so we bound each coordinate with a modular index
    // array instead: IX/IY hold values < GRID by construction below).
    let cell = |field: sa_ir::ArrayId| {
        Expr::Read(ArrayRef::new(
            field,
            vec![
                IndexExpr::Indirect {
                    base: ix,
                    pos: iv(0),
                    scale: 1,
                    offset: 0,
                },
                IndexExpr::Indirect {
                    base: iy,
                    pos: iv(0),
                    scale: 1,
                    offset: 0,
                },
            ],
        ))
    };

    // Velocity update: V = P + field(cell).
    b.nest("k13-velocity", &[("ip", 1, n as i64)], |nb| {
        nb.assign(vx, [iv(0)], nb.read(px, [iv(0)]) + cell(field_b));
        nb.assign(vy, [iv(0)], nb.read(py, [iv(0)]) + cell(field_c));
    });
    // Position update (matched).
    b.nest("k13-position", &[("ip", 1, n as i64)], |nb| {
        nb.assign(xn, [iv(0)], nb.read(px, [iv(0)]) + nb.read(vx, [iv(0)]));
        nb.assign(yn, [iv(0)], nb.read(py, [iv(0)]) + nb.read(vy, [iv(0)]));
    });
    // Charge deposit: conflict-free SA form, or the true scatter through
    // the particle permutation when requested.
    if let Some(ip) = ip {
        b.nest("k13-deposit", &[("ip", 1, n as i64)], |nb| {
            nb.assign_indirect(dep, ip, iv(0), cell(field_b) + cell(field_c));
        });
    } else {
        b.nest("k13-deposit", &[("ip", 1, n as i64)], |nb| {
            nb.assign(dep, [iv(0)], cell(field_b) + cell(field_c));
        });
    }

    let mut program = b.finish();
    // Bound the index data: the permutations were generated over 0..n+1;
    // clamp them into the grid by regenerating modulo GRID. (Done here so
    // the declaration stays a plain Permutation for documentation.)
    bound_indices(&mut program, "IX", GRID);
    bound_indices(&mut program, "IY", GRID);

    Kernel {
        id: 13,
        code: if scatter { "K13S" } else { "K13" },
        name: if scatter {
            "2-D Particle in a Cell (scatter deposit)"
        } else {
            "2-D Particle in a Cell"
        },
        program,
        expected_class: AccessClass::Random,
        paper_class: None,
    }
}

/// Replace an index array's init pattern with one bounded below `limit`.
fn bound_indices(program: &mut sa_ir::Program, name: &str, limit: usize) {
    let id = program.array_id(name).expect("index array exists");
    let decl = &mut program.arrays[id.0];
    if let sa_ir::program::ArrayInit::Full(InitPattern::Permutation { seed }) = decl.init {
        // Deterministic bounded sequence: (permutation value) mod limit.
        let len = decl.len();
        let vals = InitPattern::Permutation { seed }.materialize(len);
        let _ = vals; // values regenerated by the interpreter via the same
                      // pattern; we swap the declaration to a bounded one.
        decl.init =
            sa_ir::program::ArrayInit::Full(InitPattern::BoundedPermutation { seed, limit });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    #[test]
    fn gathers_resolve_within_the_grid() {
        let k = build(500);
        let r = interpret(&k.program);
        assert!(r.is_ok(), "{:?}", r.err());
        let r = r.unwrap();
        let vx = k.program.array_id("VX").unwrap();
        assert_eq!(r.arrays[vx.0].defined_count(), 500);
    }

    #[test]
    fn velocity_matches_hand_gather() {
        let n = 100;
        let k = build(n);
        let r = interpret(&k.program).unwrap();
        let ixv = InitPattern::BoundedPermutation {
            seed: 131,
            limit: GRID,
        }
        .materialize(n + 1);
        let iyv = InitPattern::BoundedPermutation {
            seed: 132,
            limit: GRID,
        }
        .materialize(n + 1);
        let bb = InitPattern::Wavy.materialize(GRID * GRID);
        let px = InitPattern::Wavy.materialize(n + 1);
        let vx = k.program.array_id("VX").unwrap();
        for ip in 1..=n {
            let cell = bb[ixv[ip] as usize * GRID + iyv[ip] as usize];
            let want = px[ip] + cell;
            let got = *r.arrays[vx.0].read(ip).unwrap().unwrap();
            assert!((got - want).abs() < 1e-12, "VX({ip})");
        }
    }

    #[test]
    fn classifies_as_random() {
        let k = build(64);
        assert_eq!(classify_program(&k.program).class, AccessClass::Random);
    }

    #[test]
    fn scatter_deposit_permutes_the_deposit_vector() {
        let n = 120;
        let plain = interpret(&build(n).program).unwrap();
        let k = build_scatter(n);
        assert_eq!(classify_program(&k.program).class, AccessClass::Random);
        let scat = interpret(&k.program).unwrap();
        let dep_plain = plain.arrays[build(n).program.array_id("DEP").unwrap().0].clone();
        let dep_id = k.program.array_id("DEP").unwrap();
        let ipv = InitPattern::Permutation { seed: 133 }.materialize(n + 1);
        // DEP(IP(ip)) in the scatter build holds what DEP(ip) holds in the
        // conflict-free build.
        for (ip, &target) in ipv.iter().enumerate().take(n + 1).skip(1) {
            let want = *dep_plain.read(ip).unwrap().unwrap();
            let got = *scat.arrays[dep_id.0]
                .read(target as usize)
                .unwrap()
                .unwrap();
            assert_eq!(got, want, "DEP(IP({ip}))");
        }
    }
}
