//! K14 — 1-D Particle in a Cell.
//!
//! The paper uses the matched fragment as its Class-1 exemplar (§7.1.1):
//!
//! ```fortran
//!       DO 1 k = 1,n
//!  1    RX(k) = XX(k) - IR(k)
//! ```
//!
//! [`build`] produces that fragment (class **MD**, as the paper assigns).
//! [`build_full`] adds the kernel's gather stage — charge deposition reads
//! `EX`/`DEX` through the particle-cell index array `GRD` — whose
//! permutation lookups are the textbook Random-class pattern, useful for
//! exercising indirect addressing end to end.

use sa_ir::index::iv;
use sa_ir::{AccessClass, InitPattern, ProgramBuilder};

use crate::suite::Kernel;

/// Build the paper's matched fragment at size `n` (official: 1001).
pub fn build(n: usize) -> Kernel {
    let mut b = ProgramBuilder::new("K14 1-D particle in a cell (fragment)");
    let xx = b.input("XX", &[n + 1], InitPattern::Wavy);
    let ir = b.input("IR", &[n + 1], InitPattern::Harmonic);
    let rx = b.output("RX", &[n + 1]);
    b.nest("k14-fragment", &[("k", 1, n as i64)], |nb| {
        nb.assign(rx, [iv(0)], nb.read(xx, [iv(0)]) - nb.read(ir, [iv(0)]));
    });
    Kernel {
        id: 14,
        code: "K14",
        name: "1-D Particle in a Cell",
        program: b.finish(),
        expected_class: AccessClass::Matched,
        paper_class: Some("MD"),
    }
}

/// Build the kernel with its *scatter* stage in true indirect form:
/// gather + field update + fragment as in [`build_full`], plus the charge
/// push-back `RXS(GRD(k)) = EX(k) - DEX(k)` — a write whose target address
/// goes through the particle→cell permutation, the shape that forces the
/// executor to resolve the statement anchor before owner screening
/// (single-assignment holds because `GRD` is a permutation: every target
/// cell is hit at most once).
pub fn build_scatter(n: usize) -> Kernel {
    let mut b = ProgramBuilder::new("K14 1-D particle in a cell (scatter)");
    let grd = b.input("GRD", &[n + 1], InitPattern::Permutation { seed: 14 });
    let ex = b.input("EX", &[n + 1], InitPattern::Wavy);
    let dex = b.input("DEX", &[n + 1], InitPattern::Harmonic);
    let xx = b.input("XX", &[n + 1], InitPattern::Wavy);
    let xi = b.input("XI", &[n + 1], InitPattern::Harmonic);
    let ir = b.input("IR", &[n + 1], InitPattern::Harmonic);
    let ex1 = b.output("EX1", &[n + 1]);
    let dex1 = b.output("DEX1", &[n + 1]);
    let vx = b.output("VX", &[n + 1]);
    let rx = b.output("RX", &[n + 1]);
    let rxs = b.output("RXS", &[n + 1]);

    // Gather stage: EX1(k) = EX(GRD(k)), DEX1(k) = DEX(GRD(k)).
    b.nest("k14-gather", &[("k", 1, n as i64)], |nb| {
        nb.assign(ex1, [iv(0)], nb.read_indirect(ex, grd, iv(0)));
        nb.assign(dex1, [iv(0)], nb.read_indirect(dex, grd, iv(0)));
    });
    // Field update: VX(k) = EX1(k) + (XX(k) - XI(k))*DEX1(k).
    b.nest("k14-update", &[("k", 1, n as i64)], |nb| {
        nb.assign(
            vx,
            [iv(0)],
            nb.read(ex1, [iv(0)])
                + (nb.read(xx, [iv(0)]) - nb.read(xi, [iv(0)])) * nb.read(dex1, [iv(0)]),
        );
    });
    // Scatter stage: deposit back through the permutation (indirect anchor).
    b.nest("k14-scatter", &[("k", 1, n as i64)], |nb| {
        nb.assign_indirect(
            rxs,
            grd,
            iv(0),
            nb.read(ex, [iv(0)]) - nb.read(dex, [iv(0)]),
        );
    });
    // The paper's fragment.
    b.nest("k14-fragment", &[("k", 1, n as i64)], |nb| {
        nb.assign(rx, [iv(0)], nb.read(xx, [iv(0)]) - nb.read(ir, [iv(0)]));
    });

    Kernel {
        id: 14,
        code: "K14S",
        name: "1-D Particle in a Cell (scatter)",
        program: b.finish(),
        expected_class: AccessClass::Random,
        paper_class: None,
    }
}

/// Build the fuller kernel: gather stage + field update + the fragment.
pub fn build_full(n: usize) -> Kernel {
    let mut b = ProgramBuilder::new("K14 1-D particle in a cell (full)");
    // GRD holds particle→cell indices: a deterministic permutation keeps
    // every lookup in bounds while scattering accesses across the grid.
    let grd = b.input("GRD", &[n + 1], InitPattern::Permutation { seed: 14 });
    let ex = b.input("EX", &[n + 1], InitPattern::Wavy);
    let dex = b.input("DEX", &[n + 1], InitPattern::Harmonic);
    let xx = b.input("XX", &[n + 1], InitPattern::Wavy);
    let xi = b.input("XI", &[n + 1], InitPattern::Harmonic);
    let ir = b.input("IR", &[n + 1], InitPattern::Harmonic);
    let ex1 = b.output("EX1", &[n + 1]);
    let dex1 = b.output("DEX1", &[n + 1]);
    let vx = b.output("VX", &[n + 1]);
    let rx = b.output("RX", &[n + 1]);

    // Gather stage: EX1(k) = EX(GRD(k)), DEX1(k) = DEX(GRD(k)).
    b.nest("k14-gather", &[("k", 1, n as i64)], |nb| {
        nb.assign(ex1, [iv(0)], nb.read_indirect(ex, grd, iv(0)));
        nb.assign(dex1, [iv(0)], nb.read_indirect(dex, grd, iv(0)));
    });
    // Field update: VX(k) = EX1(k) + (XX(k) - XI(k))*DEX1(k).
    b.nest("k14-update", &[("k", 1, n as i64)], |nb| {
        nb.assign(
            vx,
            [iv(0)],
            nb.read(ex1, [iv(0)])
                + (nb.read(xx, [iv(0)]) - nb.read(xi, [iv(0)])) * nb.read(dex1, [iv(0)]),
        );
    });
    // The paper's fragment.
    b.nest("k14-fragment", &[("k", 1, n as i64)], |nb| {
        nb.assign(rx, [iv(0)], nb.read(xx, [iv(0)]) - nb.read(ir, [iv(0)]));
    });

    Kernel {
        id: 14,
        code: "K14F",
        name: "1-D Particle in a Cell (full)",
        program: b.finish(),
        expected_class: AccessClass::Random,
        paper_class: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_nest, classify_program, interpret};

    #[test]
    fn fragment_is_matched_and_exact() {
        let k = build(100);
        assert_eq!(classify_program(&k.program).class, AccessClass::Matched);
        let r = interpret(&k.program).unwrap();
        let xx = InitPattern::Wavy.materialize(101);
        let ir = InitPattern::Harmonic.materialize(101);
        for i in 1..=100usize {
            let got = *r.arrays[2].read(i).unwrap().unwrap();
            assert!((got - (xx[i] - ir[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn full_kernel_gathers_through_the_permutation() {
        let k = build_full(64);
        let r = interpret(&k.program).unwrap();
        let grd = InitPattern::Permutation { seed: 14 }.materialize(65);
        let ex = InitPattern::Wavy.materialize(65);
        for i in 1..=64usize {
            let got = *r.arrays[6].read(i).unwrap().unwrap();
            assert_eq!(got, ex[grd[i] as usize], "EX1({i})");
        }
    }

    #[test]
    fn scatter_build_deposits_through_the_permutation() {
        let n = 80;
        let k = build_scatter(n);
        let rep = classify_program(&k.program);
        assert_eq!(rep.class, AccessClass::Random);
        let r = interpret(&k.program).unwrap();
        let grd = InitPattern::Permutation { seed: 14 }.materialize(n + 1);
        let ex = InitPattern::Wavy.materialize(n + 1);
        let dex = InitPattern::Harmonic.materialize(n + 1);
        let rxs = k.program.array_id("RXS").unwrap();
        for kx in 1..=n {
            let got = *r.arrays[rxs.0].read(grd[kx] as usize).unwrap().unwrap();
            assert!((got - (ex[kx] - dex[kx])).abs() < 1e-12, "RXS(GRD({kx}))");
        }
        // Exactly n of the n+1 cells are written (GRD misses one value).
        assert_eq!(r.arrays[rxs.0].defined_count(), n);
    }

    #[test]
    fn full_kernel_is_random_but_fragment_nest_is_matched() {
        let k = build_full(64);
        let rep = classify_program(&k.program);
        assert_eq!(rep.class, AccessClass::Random);
        // Per-nest: the gather is Random, the paper's fragment is Matched.
        let nests: Vec<_> = k.program.nests().collect();
        assert_eq!(
            classify_nest(&k.program, nests[0]).class,
            AccessClass::Random
        );
        assert_eq!(
            classify_nest(&k.program, nests[2]).class,
            AccessClass::Matched
        );
    }
}
