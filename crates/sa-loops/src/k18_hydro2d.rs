//! K18 — 2-D Explicit Hydrodynamics Fragment. Paper class: **CD**
//! ("cyclic and skewed access pattern combination", Figure 3; also the
//! load-balance subject of Figure 5).
//!
//! ```fortran
//!       DO 70 k = 2,KN
//!       DO 70 j = 2,JN
//!          ZA(j,k) = (ZP(j-1,k+1)+ZQ(j-1,k+1)-ZP(j-1,k)-ZQ(j-1,k))
//!      .            *(ZR(j,k)+ZR(j-1,k))/(ZM(j-1,k)+ZM(j-1,k+1))
//!          ZB(j,k) = (ZP(j-1,k)+ZQ(j-1,k)-ZP(j,k)-ZQ(j,k))
//!      .            *(ZR(j,k)+ZR(j,k-1))/(ZM(j,k)+ZM(j-1,k))
//! 70    CONTINUE
//!       DO 72 k = 2,KN
//!       DO 72 j = 2,JN
//!          ZU(j,k) = ZU(j,k) + S*(ZA(j,k)*(ZZ(j,k)-ZZ(j+1,k))
//!      .        - ZA(j-1,k)*(ZZ(j,k)-ZZ(j-1,k))
//!      .        - ZB(j,k)  *(ZZ(j,k)-ZZ(j,k-1))
//!      .        + ZB(j,k+1)*(ZZ(j,k)-ZZ(j,k+1)))
//!          ZV(j,k) = … (same stencil over ZR)
//! 72    CONTINUE
//!       DO 75 k = 2,KN
//!       DO 75 j = 2,JN
//!          ZR(j,k) = ZR(j,k) + T*ZU(j,k)
//!          ZZ(j,k) = ZZ(j,k) + T*ZV(j,k)
//! 75    CONTINUE
//! ```
//!
//! Conversion: the `+=` updates expand into fresh arrays (`ZUN`, `ZVN`,
//! `ZRN`, `ZZN`), and the two boundary strips the original picks up from
//! pre-existing zone data (`ZA(1,k)` and `ZB(j,KN+1)`) are seeded by tiny
//! boundary nests. Layout: the paper's literal "row-major ordering" of the
//! FORTRAN subscripts — `ZA(j,k)` → `ZA[[j],[k]]` with the tiny `k` extent
//! innermost. The inner `j` loop then strides 8 elements per iteration and
//! the outer `k` loop re-sweeps the whole array five times: each PE's page
//! set is revisited cyclically, and as PEs are added each PE's share of
//! that cycle shrinks below its cache — the decreasing remote-% curve of
//! Figure 3.

use sa_ir::index::iv;
use sa_ir::{AccessClass, ArrayId, InitPattern, ProgramBuilder};

use crate::suite::Kernel;

const KN: i64 = 6;
const KD: usize = 8; // k extent (indices 0..7 used)

/// Build one pass of K18 with `JN = n` (official LFK size: 101).
pub fn build(n: usize) -> Kernel {
    build_with_passes(n, 1)
}

/// Build K18 run `passes` times, with the §5 host-processor
/// re-initialization of every produced array between passes — the LFK
/// harness re-executes each kernel many times, and the steady-state
/// (warm-cache) behaviour is what the paper's figures show.
pub fn build_with_passes(n: usize, passes: usize) -> Kernel {
    let jn = n as i64;
    let jd = n + 2;
    let mut b = ProgramBuilder::new("K18 2-D explicit hydrodynamics");
    let s = b.param("S", 0.0025);
    let t = b.param("T", 0.0045);

    let input = |b: &mut ProgramBuilder, name: &str, p: InitPattern| -> ArrayId {
        b.input(name, &[jd, KD], p)
    };
    let zp = input(&mut b, "ZP", InitPattern::Wavy);
    let zq = input(&mut b, "ZQ", InitPattern::Harmonic);
    let zr = input(&mut b, "ZR", InitPattern::Wavy);
    let zm = input(&mut b, "ZM", InitPattern::Wavy);
    let zz = input(&mut b, "ZZ", InitPattern::Harmonic);
    let zu = input(&mut b, "ZU", InitPattern::Wavy);
    let zv = input(&mut b, "ZV", InitPattern::Harmonic);
    let za = b.output("ZA", &[jd, KD]);
    let zb = b.output("ZB", &[jd, KD]);
    let zun = b.output("ZUN", &[jd, KD]);
    let zvn = b.output("ZVN", &[jd, KD]);
    let zrn = b.output("ZRN", &[jd, KD]);
    let zzn = b.output("ZZN", &[jd, KD]);

    for pass in 0..passes.max(1) {
        if pass > 0 {
            for a in [za, zb, zun, zvn, zrn, zzn] {
                b.reinit(a);
            }
        }
        add_pass(
            &mut b,
            jn,
            s,
            t,
            [zp, zq, zr, zm, zz, zu, zv, za, zb, zun, zvn, zrn, zzn],
        );
    }

    Kernel {
        id: 18,
        code: "K18",
        name: "2-D Explicit Hydrodynamics Fragment",
        program: b.finish(),
        expected_class: AccessClass::Cyclic,
        paper_class: Some("CD"),
    }
}

#[allow(clippy::too_many_arguments)]
fn add_pass(
    b: &mut ProgramBuilder,
    jn: i64,
    s: sa_ir::ParamId,
    t: sa_ir::ParamId,
    ids: [ArrayId; 13],
) {
    let [zp, zq, zr, zm, zz, zu, zv, za, zb, zun, zvn, zrn, zzn] = ids;

    // Boundary seeds: ZA(1,k) for k=2..KN and ZB(j,KN+1) for j=2..JN come
    // from pre-existing zone data in the original program.
    b.nest("k18-za-boundary", &[("k", 2, KN)], |nb| {
        nb.assign(za, [1i64.into(), iv(0)], sa_ir::Expr::Const(0.25));
    });
    b.nest("k18-zb-boundary", &[("j", 2, jn)], |nb| {
        nb.assign(zb, [iv(0), (KN + 1).into()], sa_ir::Expr::Const(0.25));
    });

    // DO 70: pressure/viscosity face quantities.
    b.nest("k18-70", &[("k", 2, KN), ("j", 2, jn)], |nb| {
        let (a_rhs, b_rhs) = {
            let at = |a: ArrayId, dj: i64, dk: i64| nb.read(a, [iv(1).plus(dj), iv(0).plus(dk)]);
            (
                (at(zp, -1, 1) + at(zq, -1, 1) - at(zp, -1, 0) - at(zq, -1, 0))
                    * (at(zr, 0, 0) + at(zr, -1, 0))
                    / (at(zm, -1, 0) + at(zm, -1, 1)),
                (at(zp, -1, 0) + at(zq, -1, 0) - at(zp, 0, 0) - at(zq, 0, 0))
                    * (at(zr, 0, 0) + at(zr, 0, -1))
                    / (at(zm, 0, 0) + at(zm, -1, 0)),
            )
        };
        nb.assign(za, [iv(1), iv(0)], a_rhs);
        nb.assign(zb, [iv(1), iv(0)], b_rhs);
    });

    // DO 72: velocity updates (array-expanded ZU/ZV).
    b.nest("k18-72", &[("k", 2, KN), ("j", 2, jn)], |nb| {
        let (u_rhs, v_rhs) = {
            let at = |a: ArrayId, dj: i64, dk: i64| nb.read(a, [iv(1).plus(dj), iv(0).plus(dk)]);
            let stencil = |f: ArrayId| {
                at(za, 0, 0) * (at(f, 0, 0) - at(f, 1, 0))
                    - at(za, -1, 0) * (at(f, 0, 0) - at(f, -1, 0))
                    - at(zb, 0, 0) * (at(f, 0, 0) - at(f, 0, -1))
                    + at(zb, 0, 1) * (at(f, 0, 0) - at(f, 0, 1))
            };
            (
                at(zu, 0, 0) + nb.par(s) * stencil(zz),
                at(zv, 0, 0) + nb.par(s) * stencil(zr),
            )
        };
        nb.assign(zun, [iv(1), iv(0)], u_rhs);
        nb.assign(zvn, [iv(1), iv(0)], v_rhs);
    });

    // DO 75: position/field updates (array-expanded ZR/ZZ).
    b.nest("k18-75", &[("k", 2, KN), ("j", 2, jn)], |nb| {
        let (r_rhs, z_rhs) = {
            let at = |a: ArrayId, dj: i64, dk: i64| nb.read(a, [iv(1).plus(dj), iv(0).plus(dk)]);
            (
                at(zr, 0, 0) + nb.par(t) * at(zun, 0, 0),
                at(zz, 0, 0) + nb.par(t) * at(zvn, 0, 0),
            )
        };
        nb.assign(zrn, [iv(1), iv(0)], r_rhs);
        nb.assign(zzn, [iv(1), iv(0)], z_rhs);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_nest, classify_program, interpret};

    #[test]
    fn interprets_cleanly() {
        let k = build(40);
        assert!(interpret(&k.program).is_ok());
    }

    #[test]
    fn za_matches_hand_stencil() {
        let n = 30;
        let k18 = build(n);
        let r = interpret(&k18.program).unwrap();
        let jd = n + 2;
        let zp = InitPattern::Wavy.materialize(jd * KD);
        let zq = InitPattern::Harmonic.materialize(jd * KD);
        let zr = InitPattern::Wavy.materialize(jd * KD);
        let zm = InitPattern::Wavy.materialize(jd * KD);
        let at = |v: &[f64], j: usize, k: usize| v[j * KD + k];
        let (j, k) = (7usize, 3usize);
        let want =
            (at(&zp, j - 1, k + 1) + at(&zq, j - 1, k + 1) - at(&zp, j - 1, k) - at(&zq, j - 1, k))
                * (at(&zr, j, k) + at(&zr, j - 1, k))
                / (at(&zm, j - 1, k) + at(&zm, j - 1, k + 1));
        let za = k18.program.array_id("ZA").unwrap();
        let got = *r.arrays[za.0].read(j * KD + k).unwrap().unwrap();
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn classifies_as_cyclic_via_plane_revisit() {
        let k = build(64);
        let rep = classify_program(&k.program);
        assert_eq!(rep.class, AccessClass::Cyclic);
        // The DO 70 nest specifically must be flagged as revisiting.
        let nest70 = k.program.nests().find(|n| n.label == "k18-70").unwrap();
        let nr = classify_nest(&k.program, nest70);
        assert!(nr.sweep_revisit, "plane re-reads must be detected");
        assert_eq!(nr.class, AccessClass::Cyclic);
    }

    #[test]
    fn every_interior_cell_is_written_once() {
        let n = 20;
        let k18 = build(n);
        let r = interpret(&k18.program).unwrap();
        let zun = k18.program.array_id("ZUN").unwrap();
        // Interior: (KN-1) planes × (n-1) cells.
        assert_eq!(r.arrays[zun.0].defined_count(), 5 * (n - 1));
    }

    #[test]
    fn multi_pass_reinitializes_and_recomputes() {
        let k1 = build(16);
        let k3 = build_with_passes(16, 3);
        let r1 = interpret(&k1.program).unwrap();
        let r3 = interpret(&k3.program).unwrap();
        let za = k1.program.array_id("ZA").unwrap();
        // Three passes over unchanged inputs produce the same values…
        for addr in 0..r1.arrays[za.0].len() {
            assert_eq!(
                r1.arrays[za.0].read(addr).unwrap().copied(),
                r3.arrays[za.0].read(addr).unwrap().copied()
            );
        }
        // …at a later generation, and with 3× the writes.
        assert_eq!(r3.arrays[za.0].generation(), 2);
        assert_eq!(r3.writes, 3 * r1.writes);
    }
}
