//! K21 — Matrix × Matrix Product. Class: **RD** (running accumulation over
//! the outer `k` loop, with column-major operand reads jumping pages).
//!
//! ```fortran
//!       DO 21 k = 1,25
//!       DO 21 i = 1,25
//!       DO 21 j = 1,n
//! 21    PX(i,j) = PX(i,j) + VY(i,k) * CX(k,j)
//! ```
//!
//! Conversion: the running sum over `k` expands into partial-sum planes —
//! `PXS(k,i,j) = PXS(k-1,i,j) + VY(i,k)*CX(k,j)` with plane 0 holding the
//! initial `PX` (a 26-plane array; the §5 tool's memory-for-synchronization
//! trade made explicit). Layout fidelity: FORTRAN `PX(i,j)` → row-major
//! `[[j],[i]]`, etc.

use sa_ir::index::iv;
use sa_ir::program::ArrayInit;
use sa_ir::{AccessClass, InitPattern, ProgramBuilder};

use crate::suite::Kernel;

const MD: usize = 26; // 25 accumulation steps + seed plane
const ID: usize = 26; // i extent (1..25 used)

/// Build K21 with inner extent `n` (official: 101).
pub fn build(n: usize) -> Kernel {
    let jd = n + 1;
    let mut b = ProgramBuilder::new("K21 matrix product");
    // PXS[k][j][i]: plane 0 = initial PX (prefix-initialized).
    let pxs = b.array_with(
        "PXS",
        &[MD, jd, ID],
        ArrayInit::Prefix {
            pattern: InitPattern::Harmonic,
            len: jd * ID,
        },
    );
    // FORTRAN VY(i,k) → VY[k][i]; CX(k,j) → CX[j][k].
    let vy = b.input("VY", &[MD, ID], InitPattern::Wavy);
    let cx = b.input("CX", &[jd, MD], InitPattern::Wavy);

    b.nest(
        "k21",
        &[("k", 1, 25), ("i", 1, 25), ("j", 1, n as i64)],
        |nb| {
            nb.assign(
                pxs,
                [iv(0), iv(2), iv(1)],
                nb.read(pxs, [iv(0).plus(-1), iv(2), iv(1)])
                    + nb.read(vy, [iv(0), iv(1)]) * nb.read(cx, [iv(2), iv(0)]),
            );
        },
    );

    Kernel {
        id: 21,
        code: "K21",
        name: "Matrix Product",
        program: b.finish(),
        expected_class: AccessClass::Random,
        paper_class: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    #[test]
    fn accumulated_planes_equal_the_matrix_product() {
        let n = 12;
        let k21 = build(n);
        let r = interpret(&k21.program).unwrap();
        let jd = n + 1;
        let px0 = InitPattern::Harmonic.materialize(jd * ID);
        let vy = InitPattern::Wavy.materialize(MD * ID);
        let cx = InitPattern::Wavy.materialize(jd * MD);
        for i in 1..=3usize {
            for j in 1..=n {
                let mut want = px0[j * ID + i];
                for k in 1..=25usize {
                    want += vy[k * ID + i] * cx[j * MD + k];
                }
                // Final plane 25 holds the answer.
                let got = *r.arrays[0]
                    .read(25 * jd * ID + j * ID + i)
                    .unwrap()
                    .unwrap();
                assert!((got - want).abs() < 1e-9, "PX({i},{j})");
            }
        }
    }

    #[test]
    fn classifies_as_random() {
        let k = build(8);
        assert_eq!(classify_program(&k.program).class, AccessClass::Random);
    }
}
