//! K22 — Planckian Distribution. Class: **MD** (all indices matched).
//!
//! ```fortran
//!       DO 22 k = 1,n
//!       Y(k) = U(k)/V(k)
//! 22    W(k) = X(k)/(EXP(Y(k)) - 1.0)
//! ```

use sa_ir::index::iv;
use sa_ir::{AccessClass, Expr, InitPattern, ProgramBuilder, UnaryOp};

use crate::suite::Kernel;

/// Build K22 at problem size `n` (official: 101).
pub fn build(n: usize) -> Kernel {
    let mut b = ProgramBuilder::new("K22 planckian distribution");
    let u = b.input("U", &[n + 1], InitPattern::Wavy);
    let v = b.input("V", &[n + 1], InitPattern::Wavy);
    let x = b.input("X", &[n + 1], InitPattern::Harmonic);
    let y = b.output("Y", &[n + 1]);
    let w = b.output("W", &[n + 1]);
    b.nest("k22", &[("k", 1, n as i64)], |nb| {
        nb.assign(y, [iv(0)], nb.read(u, [iv(0)]) / nb.read(v, [iv(0)]));
        let ey = Expr::Unary(UnaryOp::Exp, Box::new(nb.read(y, [iv(0)])));
        nb.assign(w, [iv(0)], nb.read(x, [iv(0)]) / (ey - 1.0));
    });
    Kernel {
        id: 22,
        code: "K22",
        name: "Planckian Distribution",
        program: b.finish(),
        expected_class: AccessClass::Matched,
        paper_class: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    #[test]
    fn values_match_scalar_model() {
        let k = build(50);
        let r = interpret(&k.program).unwrap();
        let u = InitPattern::Wavy.materialize(51);
        let v = InitPattern::Wavy.materialize(51);
        let x = InitPattern::Harmonic.materialize(51);
        for i in 1..=50usize {
            let y = u[i] / v[i];
            let want = x[i] / (y.exp() - 1.0);
            let got = *r.arrays[4].read(i).unwrap().unwrap();
            assert!((got - want).abs() < 1e-12, "W({i})");
        }
    }

    #[test]
    fn classifies_as_matched() {
        // W(k) reads Y(k) written in the same iteration — skew 0 → matched.
        let k = build(64);
        assert_eq!(classify_program(&k.program).class, AccessClass::Matched);
    }
}
