//! K24 — Location of First Minimum (here: the minimum value).
//!
//! ```fortran
//!       m = 1
//!       DO 24 k = 2,n
//! 24    IF (X(k) .LT. X(m)) m = k
//! ```
//!
//! **Substitution note:** the IR has no data-dependent control flow, so the
//! kernel reduces to the minimum *value* via a [`sa_ir::ReduceOp::Min`]
//! reduction — the same access pattern (one matched sweep over `X`), the
//! same vector→scalar collection at the host PE. The argmin *index* would
//! ride along in a real implementation at no additional memory traffic,
//! which is the quantity the paper measures.

use sa_ir::index::iv;
use sa_ir::{AccessClass, InitPattern, ProgramBuilder, ReduceOp};

use crate::suite::Kernel;

/// Build K24 at problem size `n` (official: 1001).
pub fn build(n: usize) -> Kernel {
    let mut b = ProgramBuilder::new("K24 first minimum");
    let x = b.input("X", &[n + 1], InitPattern::Wavy);
    let m = b.scalar("MIN");
    b.nest("k24", &[("k", 1, n as i64)], |nb| {
        nb.reduce(m, ReduceOp::Min, nb.read(x, [iv(0)]));
    });
    Kernel {
        id: 24,
        code: "K24",
        name: "First Minimum",
        program: b.finish(),
        expected_class: AccessClass::Matched,
        paper_class: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    #[test]
    fn finds_the_minimum() {
        let k = build(500);
        let r = interpret(&k.program).unwrap();
        let x = InitPattern::Wavy.materialize(501);
        let want = x[1..=500].iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(r.scalars[0], want);
    }

    #[test]
    fn classifies_as_matched() {
        let k = build(64);
        assert_eq!(classify_program(&k.program).class, AccessClass::Matched);
    }
}
