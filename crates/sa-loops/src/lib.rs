//! # sa-loops — the Livermore Loops in single-assignment form
//!
//! The paper's evaluation (§6–§7) runs "a set of loops (extracted from the
//! Livermore Loops benchmark program) with data access patterns that are
//! typically found in scientific programs". This crate expresses those
//! kernels in the `sa-ir` loop-nest IR, faithful to the FORTRAN originals:
//!
//! * **Index fidelity.** Loop bounds, strides and index expressions are
//!   taken verbatim from the LFK sources (1-based indices preserved; index
//!   0 of each array is padding).
//! * **Layout fidelity.** FORTRAN arrays are column-major — the *first*
//!   subscript varies fastest. Since `sa-ir` linearizes row-major, a
//!   FORTRAN reference `A(i,k)` is written here as `A[[k],[i]]` (dims
//!   reversed). This is what makes GLRE and ADI jump across pages (the
//!   paper's Random class) and makes 2-D Explicit Hydro revisit planes
//!   cyclically (the paper's Fig. 3).
//! * **Single-assignment conversion.** Kernels that re-use arrays
//!   (K18's `ZU = ZU + …`, K21's running matrix product) are array-expanded
//!   exactly as the paper's §5 "automatic conversion tool" would do;
//!   in-loop scalar accumulations become `Reduce` statements collected at
//!   the host PE (§9's vector→scalar mechanism).
//!
//! Every kernel module documents its FORTRAN original, its default problem
//! size (the official LFK sizes) and the access class the paper assigns it
//! (where the paper names it).

#![warn(missing_docs)]

pub mod k01_hydro;
pub mod k02_iccg;
pub mod k03_inner_product;
pub mod k04_banded;
pub mod k05_tridiag;
pub mod k06_glre;
pub mod k07_eos;
pub mod k08_adi;
pub mod k09_integrate;
pub mod k10_diff_predict;
pub mod k11_first_sum;
pub mod k12_first_diff;
pub mod k13_pic2d;
pub mod k14_pic1d;
pub mod k18_hydro2d;
pub mod k21_matmul;
pub mod k22_planckian;
pub mod k24_argmin;
pub mod spmv;
pub mod stencil;
pub mod suite;

pub use suite::{
    reduced_suite, scale_suite, suite, workload, workloads, Family, Kernel, Size, Workload,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_complete_and_interpretable() {
        let kernels = suite();
        assert_eq!(kernels.len(), 18);
        for k in &kernels {
            assert!(
                sa_ir::interpret(&k.program).is_ok(),
                "{} must be valid single-assignment",
                k.code
            );
        }
    }

    #[test]
    fn reduced_registry_is_interpretable() {
        // Every registry entry — variants and scale workloads included —
        // is valid single-assignment at its reduced size.
        for k in reduced_suite() {
            assert!(
                sa_ir::interpret(&k.program).is_ok(),
                "{} must be valid single-assignment",
                k.code
            );
        }
    }

    #[test]
    fn paper_named_kernels_are_present() {
        let kernels = suite();
        let codes: Vec<&str> = kernels.iter().map(|k| k.code).collect();
        // Every kernel the paper names in §7 must be in the suite.
        for code in [
            "K1", "K2", "K5", "K6", "K7", "K8", "K11", "K12", "K14", "K18",
        ] {
            assert!(codes.contains(&code), "paper kernel {code} missing");
        }
    }
}
