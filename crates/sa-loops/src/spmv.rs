//! Sparse matrix–vector product in CSR form — the scale-class gather
//! workload.
//!
//! The paper blames its Random class on "permutation lookups" (§7.1.4);
//! SpMV is that pattern at production scale: a sparse matrix stored as
//! `row_ptr` / `col_idx` / `vals`, with every multiply gathering `x`
//! through `col_idx` and locating its row's values through `row_ptr`.
//!
//! **Representable structure.** The IR's loop bounds are affine in outer
//! loop variables only and its gathers take affine positions, so a row's
//! trip count cannot depend on a *value* of `row_ptr`: the builders emit
//! CSR matrices with a **uniform row degree** `deg` (`row_ptr(i) = deg·i`,
//! materialized as a real index array and gathered through — the engines
//! never exploit its regularity). Irregular row degrees need
//! value-dependent trip counts, noted as a ROADMAP follow-up.
//!
//! Per row `i`, the single nest `spmv-gather` unrolls the `deg` nonzeros as
//! body statements (constant offset `t` into the row), chaining a running
//! sum through `S` — the standard SA conversion of the accumulation loop:
//!
//! ```text
//! S(i,0) = VALS(ROWPTR(i)+0) * X(COLIDX(deg·i+0))
//! S(i,t) = S(i,t-1) + VALS(ROWPTR(i)+t) * X(COLIDX(deg·i+t))   t = 1..deg-1
//! ```
//!
//! and `spmv-collect` extracts `Y(i) = S(i,deg-1)`.
//!
//! Two variants:
//!
//! * [`build_csr`] — `row_ptr`/`col_idx` fully statically initialized
//!   ([`ArrayInit::Full`]): every engine handles it, and the compiled
//!   replay fast path resolves the gathers from the static init patterns.
//! * [`build_csr_dynamic`] — the index data is only
//!   [`ArrayInit::Prefix`]-initialized and the collect stage *scatters*
//!   `Y(ROWPERM(i)) = S(i,deg-1)` through a prefix-initialized row
//!   permutation. Replay cannot lower prefix-backed gathers and falls back
//!   to the interpreter cleanly; the thread runtime has no static mirror
//!   for prefix arrays, so anchor resolution exercises the
//!   `IndirectFetch`/`IndirectReply` protocol for real.
//!
//! [`ArrayInit::Full`]: sa_ir::program::ArrayInit::Full
//! [`ArrayInit::Prefix`]: sa_ir::program::ArrayInit::Prefix

use sa_ir::index::{iv, IndexExpr};
use sa_ir::nest::ArrayRef;
use sa_ir::program::ArrayInit;
use sa_ir::{AccessClass, Expr, InitPattern, ProgramBuilder};

use crate::suite::Kernel;

/// Default seed for the column-index data.
const COL_SEED: u64 = 201;
/// Seed for the dynamic variant's row permutation.
const PERM_SEED: u64 = 202;

/// Build CSR SpMV with statically initialized index arrays:
/// `rows × cols` matrix, `deg` nonzeros per row (official size:
/// 16384 × 16384 at degree 8 — 131 072 nonzeros).
///
/// Panics unless `rows, cols, deg ≥ 1`.
pub fn build_csr(rows: usize, cols: usize, deg: usize) -> Kernel {
    build_with(rows, cols, deg, COL_SEED, false)
}

/// [`build_csr`] with an explicit seed for the column-index data (the
/// proptest differentials randomize the CSR structure through it).
pub fn build_csr_seeded(rows: usize, cols: usize, deg: usize, seed: u64) -> Kernel {
    build_with(rows, cols, deg, seed, false)
}

/// Build the "dynamic" CSR variant: index data is only
/// `Prefix`-initialized and the result vector is scattered through a
/// prefix-initialized row permutation, forcing runtime `IndirectFetch`
/// anchor resolution (and a clean replay→interpreter fallback).
///
/// Panics unless `rows, cols, deg ≥ 1`.
pub fn build_csr_dynamic(rows: usize, cols: usize, deg: usize) -> Kernel {
    build_with(rows, cols, deg, COL_SEED, true)
}

fn build_with(rows: usize, cols: usize, deg: usize, seed: u64, dynamic: bool) -> Kernel {
    assert!(
        rows >= 1 && cols >= 1 && deg >= 1,
        "SpMV needs rows/cols/deg ≥ 1"
    );
    let nnz = rows * deg;
    let mut b = ProgramBuilder::new(if dynamic {
        "SPMVD CSR sparse matvec (prefix index data)"
    } else {
        "SPMV CSR sparse matvec"
    });

    // Index data. `row_ptr` is a genuine CSR row-pointer array (monotone by
    // construction: Linear base 0 step deg); `col_idx` holds in-bounds
    // column indices (a permutation reduced modulo `cols`).
    let row_ptr_pat = InitPattern::Linear {
        base: 0.0,
        step: deg as f64,
    };
    let col_idx_pat = InitPattern::BoundedPermutation { seed, limit: cols };
    let (row_ptr, col_idx) = if dynamic {
        (
            b.array_with(
                "ROWPTR",
                &[rows + 1],
                ArrayInit::Prefix {
                    pattern: row_ptr_pat,
                    len: rows + 1,
                },
            ),
            b.array_with(
                "COLIDX",
                &[nnz],
                ArrayInit::Prefix {
                    pattern: col_idx_pat,
                    len: nnz,
                },
            ),
        )
    } else {
        (
            b.input("ROWPTR", &[rows + 1], row_ptr_pat),
            b.input("COLIDX", &[nnz], col_idx_pat),
        )
    };
    let row_perm = dynamic.then(|| {
        b.array_with(
            "ROWPERM",
            &[rows],
            ArrayInit::Prefix {
                pattern: InitPattern::Permutation { seed: PERM_SEED },
                len: rows,
            },
        )
    });
    let vals = b.input("VALS", &[nnz], InitPattern::Wavy);
    let x = b.input("X", &[cols], InitPattern::Harmonic);
    let s = b.output("S", &[rows, deg]);
    let y = b.output("Y", &[rows]);

    // One statement per nonzero of the row, chaining the running sum.
    b.nest("spmv-gather", &[("i", 0, rows as i64 - 1)], |nb| {
        for t in 0..deg as i64 {
            // VALS(ROWPTR(i) + t): the row-pointer gather.
            let a_it = Expr::Read(ArrayRef::new(
                vals,
                vec![IndexExpr::Indirect {
                    base: row_ptr,
                    pos: iv(0),
                    scale: 1,
                    offset: t,
                }],
            ));
            // X(COLIDX(deg·i + t)): the column gather.
            let x_it = Expr::Read(ArrayRef::new(
                x,
                vec![IndexExpr::Indirect {
                    base: col_idx,
                    pos: iv(0).scale(deg as i64).plus(t),
                    scale: 1,
                    offset: 0,
                }],
            ));
            let product = a_it * x_it;
            if t == 0 {
                nb.assign(s, [iv(0), 0i64.into()], product);
            } else {
                nb.assign(
                    s,
                    [iv(0), t.into()],
                    nb.read(s, [iv(0), (t - 1).into()]) + product,
                );
            }
        }
    });
    // Collect the row sums — scattered through the row permutation in the
    // dynamic variant (an indirect statement anchor), plain otherwise.
    b.nest("spmv-collect", &[("i", 0, rows as i64 - 1)], |nb| {
        let sum = nb.read(s, [iv(0), (deg as i64 - 1).into()]);
        match row_perm {
            Some(p) => nb.assign_indirect(y, p, iv(0), sum),
            None => nb.assign(y, [iv(0)], sum),
        }
    });

    Kernel {
        id: if dynamic { 202 } else { 201 },
        code: if dynamic { "SPMVD" } else { "SPMV" },
        name: if dynamic {
            "CSR SpMV (prefix index data, scattered result)"
        } else {
            "CSR SpMV"
        },
        program: b.finish(),
        expected_class: AccessClass::Random,
        paper_class: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret};

    /// Reference SpMV from the materialized init patterns.
    fn reference(rows: usize, cols: usize, deg: usize, seed: u64) -> Vec<f64> {
        let col_idx = InitPattern::BoundedPermutation { seed, limit: cols }.materialize(rows * deg);
        let vals = InitPattern::Wavy.materialize(rows * deg);
        let x = InitPattern::Harmonic.materialize(cols);
        (0..rows)
            .map(|i| {
                (0..deg)
                    .map(|t| vals[i * deg + t] * x[col_idx[i * deg + t] as usize])
                    .sum()
            })
            .collect()
    }

    #[test]
    fn matvec_matches_reference() {
        let (rows, cols, deg) = (60, 48, 5);
        let k = build_csr(rows, cols, deg);
        let r = interpret(&k.program).unwrap();
        let want = reference(rows, cols, deg, COL_SEED);
        let y = k.program.array_id("Y").unwrap();
        for (i, w) in want.iter().enumerate() {
            let got = *r.arrays[y.0].read(i).unwrap().unwrap();
            assert!((got - w).abs() < 1e-12, "Y({i})");
        }
    }

    #[test]
    fn dynamic_variant_permutes_the_result() {
        let (rows, cols, deg) = (40, 32, 3);
        let k = build_csr_dynamic(rows, cols, deg);
        let r = interpret(&k.program).unwrap();
        let want = reference(rows, cols, deg, COL_SEED);
        let perm = InitPattern::Permutation { seed: PERM_SEED }.materialize(rows);
        let y = k.program.array_id("Y").unwrap();
        for (i, w) in want.iter().enumerate() {
            let got = *r.arrays[y.0].read(perm[i] as usize).unwrap().unwrap();
            assert!((got - w).abs() < 1e-12, "Y(ROWPERM({i}))");
        }
    }

    #[test]
    fn classifies_as_random() {
        assert_eq!(
            classify_program(&build_csr(32, 32, 4).program).class,
            AccessClass::Random
        );
        assert_eq!(
            classify_program(&build_csr_dynamic(32, 32, 4).program).class,
            AccessClass::Random
        );
    }

    #[test]
    fn row_ptr_is_monotone_and_col_idx_in_bounds() {
        let (rows, cols, deg) = (100, 64, 7);
        let rp = InitPattern::Linear {
            base: 0.0,
            step: deg as f64,
        }
        .materialize(rows + 1);
        assert!(rp.windows(2).all(|w| w[0] < w[1]), "row_ptr monotone");
        assert_eq!(rp[rows] as usize, rows * deg, "row_ptr(rows) = nnz");
        let ci = InitPattern::BoundedPermutation {
            seed: COL_SEED,
            limit: cols,
        }
        .materialize(rows * deg);
        assert!(ci.iter().all(|&c| (c as usize) < cols), "col_idx in bounds");
    }

    #[test]
    fn degree_one_rows_work() {
        let k = build_csr(16, 16, 1);
        let r = interpret(&k.program).unwrap();
        let y = k.program.array_id("Y").unwrap();
        assert_eq!(r.arrays[y.0].defined_count(), 16);
    }
}
