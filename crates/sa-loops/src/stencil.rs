//! Multi-dimensional stencil family — scale-class workloads beyond the
//! paper's 1-D kernels.
//!
//! The paper stops at 1001-element Livermore fragments; its partitioning
//! argument, though, is about *structured locality*, which multi-dimensional
//! stencils stress directly: a 5-point sweep over a `nx × ny` grid re-reads
//! every row of the source three times (rows `i-1`, `i`, `i+1` across
//! successive outer iterations), so pages revisit cyclically across the
//! outer loop — the same mechanism as 2-D Explicit Hydro's plane revisits
//! (paper Fig. 3), which is why the static classifier assigns the whole
//! family class **CD**.
//!
//! Three members, each with configurable grid dims and sweep counts:
//!
//! * [`build_jacobi5`] — 2-D 5-point Jacobi relaxation,
//! * [`build_ninepoint`] — 2-D 9-point (adds the diagonal taps),
//! * [`build_heat7`] — 3-D 7-point explicit heat step.
//!
//! **Single-assignment conversion.** A Jacobi sweep is already
//! single-assignment; *multiple* sweeps ping-pong between two produced
//! arrays (`W0`, `W1`), with the §5 host-processor re-initialization
//! clearing the older one before it is rewritten — exactly the conversion
//! K18's multi-pass build uses. Every sweep writes its full grid: the
//! interior from the stencil, the boundary strips copied from the source,
//! so the next sweep's halo reads always land on defined cells.
//!
//! All addressing is the row-major convention of [`sa_ir::grid::Grid`]:
//! loop variable `d` walks array dimension `d`, taps are built with
//! [`sa_ir::builder::NestBuilder::read_off`], and the innermost loop is the
//! unit-stride dimension.

use sa_ir::index::iv;
use sa_ir::{AccessClass, ArrayId, Expr, InitPattern, ParamId, ProgramBuilder};

use crate::suite::Kernel;

/// Build the 2-D 5-point Jacobi stencil: `sweeps` relaxation sweeps over an
/// `nx × ny` grid (official size: 512 × 512, 2 sweeps).
///
/// ```text
/// W(i,j) = C*U(i,j) + E*(U(i-1,j) + U(i+1,j) + U(i,j-1) + U(i,j+1))
/// ```
///
/// Panics unless `nx, ny ≥ 3` (a stencil needs an interior) and
/// `sweeps ≥ 1`.
pub fn build_jacobi5(nx: usize, ny: usize, sweeps: usize) -> Kernel {
    let taps: &[(&[i64], Weight)] = &[
        (&[0, 0], Weight::Center),
        (&[-1, 0], Weight::Edge),
        (&[1, 0], Weight::Edge),
        (&[0, -1], Weight::Edge),
        (&[0, 1], Weight::Edge),
    ];
    build_stencil(StencilSpec {
        id: 101,
        code: "ST5",
        name: "2-D 5-point Jacobi stencil",
        program: "ST5 2-D 5-point Jacobi",
        label: "st5",
        dims: &[nx, ny],
        sweeps,
        taps,
        // 5-point average: C = E = 1/5.
        center_w: 0.2,
        edge_w: 0.2,
        corner_w: 0.0,
    })
}

/// Build the 2-D 9-point stencil: the 5-point taps plus the four diagonals
/// (official size: 512 × 512, 2 sweeps).
///
/// Panics unless `nx, ny ≥ 3` and `sweeps ≥ 1`.
pub fn build_ninepoint(nx: usize, ny: usize, sweeps: usize) -> Kernel {
    let taps: &[(&[i64], Weight)] = &[
        (&[0, 0], Weight::Center),
        (&[-1, 0], Weight::Edge),
        (&[1, 0], Weight::Edge),
        (&[0, -1], Weight::Edge),
        (&[0, 1], Weight::Edge),
        (&[-1, -1], Weight::Corner),
        (&[-1, 1], Weight::Corner),
        (&[1, -1], Weight::Corner),
        (&[1, 1], Weight::Corner),
    ];
    build_stencil(StencilSpec {
        id: 102,
        code: "ST9",
        name: "2-D 9-point stencil",
        program: "ST9 2-D 9-point stencil",
        label: "st9",
        dims: &[nx, ny],
        sweeps,
        taps,
        // Classic 9-point weights: 4/8, 2/16, 1/16 scaled to sum to 1.
        center_w: 0.25,
        edge_w: 0.125,
        corner_w: 0.0625,
    })
}

/// Build the 3-D 7-point explicit heat step over an `nx × ny × nz` grid
/// (official size: 64 × 64 × 64, 2 sweeps).
///
/// ```text
/// W(i,j,k) = C*U(i,j,k) + E*(six face neighbours)
/// ```
///
/// Panics unless every extent is ≥ 3 and `sweeps ≥ 1`.
pub fn build_heat7(nx: usize, ny: usize, nz: usize, sweeps: usize) -> Kernel {
    let taps: &[(&[i64], Weight)] = &[
        (&[0, 0, 0], Weight::Center),
        (&[-1, 0, 0], Weight::Edge),
        (&[1, 0, 0], Weight::Edge),
        (&[0, -1, 0], Weight::Edge),
        (&[0, 1, 0], Weight::Edge),
        (&[0, 0, -1], Weight::Edge),
        (&[0, 0, 1], Weight::Edge),
    ];
    build_stencil(StencilSpec {
        id: 103,
        code: "ST7",
        name: "3-D 7-point heat stencil",
        program: "ST7 3-D 7-point heat",
        label: "st7",
        dims: &[nx, ny, nz],
        sweeps,
        taps,
        // Explicit heat step u + α∇²u with α = 0.1:
        // C = 1 - 6α, E = α — weights sum to 1, keeping values tame.
        center_w: 0.4,
        edge_w: 0.1,
        corner_w: 0.0,
    })
}

/// Which weight parameter a tap multiplies by.
#[derive(Clone, Copy, PartialEq)]
enum Weight {
    Center,
    Edge,
    Corner,
}

struct StencilSpec<'a> {
    id: u32,
    code: &'static str,
    name: &'static str,
    program: &'a str,
    label: &'a str,
    dims: &'a [usize],
    sweeps: usize,
    taps: &'a [(&'a [i64], Weight)],
    center_w: f64,
    edge_w: f64,
    corner_w: f64,
}

fn build_stencil(spec: StencilSpec<'_>) -> Kernel {
    assert!(
        spec.dims.iter().all(|&e| e >= 3),
        "{}: every grid extent must be ≥ 3 (got {:?})",
        spec.code,
        spec.dims
    );
    assert!(spec.sweeps >= 1, "{}: at least one sweep", spec.code);

    let mut b = ProgramBuilder::new(spec.program);
    let center = b.param("C", spec.center_w);
    let edge = b.param("E", spec.edge_w);
    let corner =
        (spec.taps.iter().any(|(_, w)| *w == Weight::Corner)).then(|| b.param("D", spec.corner_w));
    let u0 = b.input("U0", spec.dims, InitPattern::Wavy);
    let w0 = b.output("W0", spec.dims);
    // The second ping-pong grid exists only when a second sweep needs it —
    // a 1-sweep build carries no dead full-size array.
    let w1 = (spec.sweeps >= 2).then(|| b.output("W1", spec.dims));
    let pp = |i: usize| {
        if i.is_multiple_of(2) {
            w0
        } else {
            w1.expect("multi-sweep builds declare W1")
        }
    };

    for s in 0..spec.sweeps {
        let src = if s == 0 { u0 } else { pp(s - 1) };
        let dst = pp(s);
        if s >= 2 {
            // Ping-pong re-use: clear the stale generation first (§5).
            b.reinit(dst);
        }
        add_sweep(&mut b, &spec, s, src, dst, center, edge, corner);
    }

    Kernel {
        id: spec.id,
        code: spec.code,
        name: spec.name,
        program: b.finish(),
        expected_class: AccessClass::Cyclic,
        paper_class: None,
    }
}

#[allow(clippy::too_many_arguments)]
fn add_sweep(
    b: &mut ProgramBuilder,
    spec: &StencilSpec<'_>,
    sweep: usize,
    src: ArrayId,
    dst: ArrayId,
    center: ParamId,
    edge: ParamId,
    corner: Option<ParamId>,
) {
    let rank = spec.dims.len();
    let hi = |d: usize| spec.dims[d] as i64 - 1;

    // Boundary strips: every cell with some index on its dimension's edge,
    // copied from the source so the whole destination grid ends up defined.
    // The strips are kept disjoint by fixing dimension `d` to an edge and
    // restricting dimensions before `d` to their interiors (dimensions
    // after `d` run full) — the standard face/edge decomposition.
    for d in 0..rank {
        for edge_ix in [0i64, hi(d)] {
            let mut loops: Vec<(String, i64, i64)> = Vec::new();
            let mut offsets: Vec<Option<i64>> = Vec::new(); // None = loop var
            for v in 0..rank {
                if v == d {
                    offsets.push(Some(edge_ix));
                } else if v < d {
                    loops.push((format!("b{v}"), 1, hi(v) - 1));
                    offsets.push(None);
                } else {
                    loops.push((format!("b{v}"), 0, hi(v)));
                    offsets.push(None);
                }
            }
            if loops.iter().any(|&(_, lo, hi)| lo > hi) {
                continue; // degenerate strip on a tiny grid
            }
            let loop_refs: Vec<(&str, i64, i64)> = loops
                .iter()
                .map(|(n, lo, hi)| (n.as_str(), *lo, *hi))
                .collect();
            let side = if edge_ix == 0 { "lo" } else { "hi" };
            b.nest(
                format!("{}-b{}{}-s{}", spec.label, d, side, sweep),
                &loop_refs,
                |nb| {
                    // Index vector: fixed edge on dim d, loop vars elsewhere.
                    let mut var = 0usize;
                    let idx: Vec<sa_ir::AffineIndex> = offsets
                        .iter()
                        .map(|o| match o {
                            Some(c) => sa_ir::AffineIndex::constant(*c),
                            None => {
                                let e = iv(var);
                                var += 1;
                                e
                            }
                        })
                        .collect();
                    let value = nb.read(src, idx.clone());
                    nb.assign(dst, idx, value);
                },
            );
        }
    }

    // Interior: the stencil proper, loop variable d walking dimension d.
    let names = ["i", "j", "k"];
    let loops: Vec<(&str, i64, i64)> = (0..rank).map(|d| (names[d], 1, hi(d) - 1)).collect();
    b.nest(format!("{}-sweep-s{sweep}", spec.label), &loops, |nb| {
        let mut value: Option<Expr> = None;
        for (offsets, w) in spec.taps {
            let p = match w {
                Weight::Center => center,
                Weight::Edge => edge,
                Weight::Corner => corner.expect("corner taps declare a corner weight"),
            };
            let term = nb.par(p) * nb.read_off(src, offsets);
            value = Some(match value {
                None => term,
                Some(v) => v + term,
            });
        }
        nb.assign_off(dst, &vec![0i64; rank], value.expect("taps are non-empty"));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::{classify_program, interpret, Grid};

    #[test]
    fn jacobi5_interprets_and_defines_every_cell() {
        for sweeps in [1usize, 2, 3] {
            let k = build_jacobi5(9, 7, sweeps);
            let r = interpret(&k.program).unwrap_or_else(|e| panic!("{sweeps} sweeps: {e}"));
            // The last destination grid is fully defined.
            let dst = k
                .program
                .array_id(if sweeps % 2 == 1 { "W0" } else { "W1" })
                .unwrap();
            assert_eq!(r.arrays[dst.0].defined_count(), 9 * 7, "{sweeps} sweeps");
        }
    }

    #[test]
    fn jacobi5_matches_hand_stencil() {
        let (nx, ny) = (10, 8);
        let k = build_jacobi5(nx, ny, 1);
        let r = interpret(&k.program).unwrap();
        let g = Grid::new(&[nx, ny]);
        let u0 = InitPattern::Wavy.materialize(nx * ny);
        let at = |i: i64, j: i64| u0[g.linearize(&[i, j]).unwrap()];
        let w0 = k.program.array_id("W0").unwrap();
        let (i, j) = (4i64, 3i64);
        let want = 0.2 * (at(i, j) + at(i - 1, j) + at(i + 1, j) + at(i, j - 1) + at(i, j + 1));
        let got = *r.arrays[w0.0]
            .read(g.linearize(&[i, j]).unwrap())
            .unwrap()
            .unwrap();
        assert!((got - want).abs() < 1e-12);
        // Boundary cells are copies of the source.
        let got_edge = *r.arrays[w0.0]
            .read(g.linearize(&[0, 5]).unwrap())
            .unwrap()
            .unwrap();
        assert_eq!(got_edge, at(0, 5));
    }

    #[test]
    fn heat7_matches_hand_stencil_across_two_sweeps() {
        let (nx, ny, nz) = (6, 5, 4);
        let k = build_heat7(nx, ny, nz, 2);
        let r = interpret(&k.program).unwrap();
        let g = Grid::new(&[nx, ny, nz]);
        let u0 = InitPattern::Wavy.materialize(nx * ny * nz);
        let step = |u: &dyn Fn(i64, i64, i64) -> f64, i: i64, j: i64, k: i64| {
            0.4 * u(i, j, k)
                + 0.1
                    * (u(i - 1, j, k)
                        + u(i + 1, j, k)
                        + u(i, j - 1, k)
                        + u(i, j + 1, k)
                        + u(i, j, k - 1)
                        + u(i, j, k + 1))
        };
        let at0 = |i: i64, j: i64, k: i64| u0[g.linearize(&[i, j, k]).unwrap()];
        // Sweep 0 writes W0; sweep 1 reads it (interior + copied boundary).
        let w0_cell = |i: i64, j: i64, k: i64| {
            let interior = (1..nx as i64 - 1).contains(&i)
                && (1..ny as i64 - 1).contains(&j)
                && (1..nz as i64 - 1).contains(&k);
            if interior {
                step(&at0, i, j, k)
            } else {
                at0(i, j, k)
            }
        };
        let want = step(&w0_cell, 2, 2, 2);
        let w1 = k.program.array_id("W1").unwrap();
        let got = *r.arrays[w1.0]
            .read(g.linearize(&[2, 2, 2]).unwrap())
            .unwrap()
            .unwrap();
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn family_classifies_as_cyclic() {
        for k in [
            build_jacobi5(16, 12, 1),
            build_ninepoint(16, 12, 2),
            build_heat7(8, 8, 8, 1),
        ] {
            let rep = classify_program(&k.program);
            assert_eq!(rep.class, AccessClass::Cyclic, "{}", k.code);
            // Specifically via the row/plane revisit of the interior nest.
            let interior = rep
                .nests
                .iter()
                .find(|n| n.label.contains("sweep"))
                .unwrap();
            assert!(interior.sweep_revisit, "{}: revisit expected", k.code);
            assert_eq!(interior.class, AccessClass::Cyclic, "{}", k.code);
        }
    }

    #[test]
    fn ping_pong_reinitializes_from_sweep_two() {
        let k = build_jacobi5(8, 8, 4);
        let reinits = k
            .program
            .phases
            .iter()
            .filter(|p| matches!(p, sa_ir::Phase::Reinit(_)))
            .count();
        assert_eq!(reinits, 2); // sweeps 2 and 3 clear their targets
        let r = interpret(&k.program).unwrap();
        let w1 = k.program.array_id("W1").unwrap();
        assert_eq!(r.arrays[w1.0].generation(), 1);
    }

    #[test]
    #[should_panic(expected = "extent must be ≥ 3")]
    fn tiny_grids_are_rejected() {
        build_jacobi5(2, 8, 1);
    }
}
