//! The sized workload registry.
//!
//! Problem sizes are defined in exactly one place: each [`Workload`]
//! descriptor names its builder plus an **official** size (the paper's LFK
//! sizes for the Livermore kernels; the scale-class defaults for the
//! stencil/SpMV family) and a **reduced** size small enough for the
//! debug-build certification suites. [`suite`], [`scale_suite`] and
//! [`reduced_suite`] are all views of the same table.

use sa_ir::{AccessClass, Program};

/// One kernel, ready to simulate.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Livermore kernel number (scale workloads use ids ≥ 100).
    pub id: u32,
    /// Short code (`"K1"` …).
    pub code: &'static str,
    /// Human name as used in the paper.
    pub name: &'static str,
    /// The program, in single-assignment form.
    pub program: Program,
    /// Class the static classifier is expected to produce.
    pub expected_class: AccessClass,
    /// Class the *paper* assigns (§7), where it names the kernel.
    pub paper_class: Option<&'static str>,
}

impl Kernel {
    /// Abbreviation of the expected class.
    pub fn class_abbrev(&self) -> &'static str {
        self.expected_class.abbrev()
    }
}

/// A problem size, shaped like the workload it sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Size {
    /// 1-D problem size `n` (the Livermore kernels' loop length).
    N(usize),
    /// 2-D grid with a sweep count (the stencil family).
    Grid2 {
        /// Outer (slow) extent.
        nx: usize,
        /// Inner (unit-stride) extent.
        ny: usize,
        /// Relaxation sweeps.
        sweeps: usize,
    },
    /// 3-D grid with a sweep count.
    Grid3 {
        /// Outermost extent.
        nx: usize,
        /// Middle extent.
        ny: usize,
        /// Unit-stride extent.
        nz: usize,
        /// Relaxation sweeps.
        sweeps: usize,
    },
    /// Sparse matrix: `rows × cols` with a uniform row degree.
    Sparse {
        /// Matrix rows.
        rows: usize,
        /// Matrix columns (the gathered vector's length).
        cols: usize,
        /// Nonzeros per row.
        deg: usize,
    },
}

impl Size {
    /// Render the size compactly (`"1001"`, `"512×512 ×2"`, `"16384×16384 d8"`).
    pub fn label(&self) -> String {
        match *self {
            Size::N(n) => n.to_string(),
            Size::Grid2 { nx, ny, sweeps } => format!("{nx}×{ny} ×{sweeps}"),
            Size::Grid3 { nx, ny, nz, sweeps } => format!("{nx}×{ny}×{nz} ×{sweeps}"),
            Size::Sparse { rows, cols, deg } => format!("{rows}×{cols} d{deg}"),
        }
    }
}

/// Which part of the evaluation a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// The paper's Livermore suite (§6–§8) — what [`suite`] returns.
    Livermore,
    /// Alternative builds of Livermore kernels (gather/scatter forms) used
    /// by the certification suites.
    Variant,
    /// The scale-class workloads beyond the paper (stencils, SpMV).
    Scale,
}

/// One entry of the registry: a builder plus its canonical sizes.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Short code (`"K1"`, `"ST5"`, `"SPMV"` …), unique across the registry.
    pub code: &'static str,
    /// Which slice of the evaluation the workload belongs to.
    pub family: Family,
    /// The official problem size ([`suite`]/[`scale_suite`] use it).
    pub official: Size,
    /// A reduced size for debug-build certification runs.
    pub reduced: Size,
    build: fn(Size) -> Kernel,
}

impl Workload {
    /// Build the workload at an arbitrary size (panics if `size`'s shape
    /// does not match the workload's — e.g. a grid size for a 1-D kernel).
    pub fn build(&self, size: Size) -> Kernel {
        (self.build)(size)
    }

    /// Build at the official size.
    pub fn official(&self) -> Kernel {
        self.build(self.official)
    }

    /// Build at the reduced size.
    pub fn reduced(&self) -> Kernel {
        self.build(self.reduced)
    }
}

fn n_of(s: Size) -> usize {
    match s {
        Size::N(n) => n,
        other => panic!("1-D workload sized with {other:?}; use Size::N"),
    }
}

fn grid2_of(s: Size) -> (usize, usize, usize) {
    match s {
        Size::Grid2 { nx, ny, sweeps } => (nx, ny, sweeps),
        other => panic!("2-D workload sized with {other:?}; use Size::Grid2"),
    }
}

fn grid3_of(s: Size) -> (usize, usize, usize, usize) {
    match s {
        Size::Grid3 { nx, ny, nz, sweeps } => (nx, ny, nz, sweeps),
        other => panic!("3-D workload sized with {other:?}; use Size::Grid3"),
    }
}

fn sparse_of(s: Size) -> (usize, usize, usize) {
    match s {
        Size::Sparse { rows, cols, deg } => (rows, cols, deg),
        other => panic!("sparse workload sized with {other:?}; use Size::Sparse"),
    }
}

/// The full registry: the 18 Livermore kernels, their gather/scatter
/// variant builds, and the scale-class stencil/SpMV family — each with its
/// official and reduced problem sizes. This table is the *only* place
/// sizes are written down.
pub fn workloads() -> Vec<Workload> {
    use Family::*;
    use Size::*;
    let w = |code, family, official, reduced, build| Workload {
        code,
        family,
        official,
        reduced,
        build,
    };
    vec![
        w("K1", Livermore, N(1001), N(300), |s| {
            crate::k01_hydro::build(n_of(s))
        }),
        w("K2", Livermore, N(1001), N(300), |s| {
            crate::k02_iccg::build(n_of(s))
        }),
        w("K3", Livermore, N(1001), N(300), |s| {
            crate::k03_inner_product::build(n_of(s))
        }),
        w("K4", Livermore, N(1001), N(300), |s| {
            crate::k04_banded::build(n_of(s))
        }),
        w("K5", Livermore, N(1001), N(200), |s| {
            crate::k05_tridiag::build(n_of(s))
        }),
        w("K6", Livermore, N(64), N(24), |s| {
            crate::k06_glre::build(n_of(s))
        }),
        w("K7", Livermore, N(995), N(300), |s| {
            crate::k07_eos::build(n_of(s))
        }),
        w("K8", Livermore, N(101), N(33), |s| {
            crate::k08_adi::build(n_of(s))
        }),
        w("K9", Livermore, N(101), N(65), |s| {
            crate::k09_integrate::build(n_of(s))
        }),
        w("K10", Livermore, N(101), N(65), |s| {
            crate::k10_diff_predict::build(n_of(s))
        }),
        w("K11", Livermore, N(1001), N(300), |s| {
            crate::k11_first_sum::build(n_of(s))
        }),
        w("K12", Livermore, N(1000), N(300), |s| {
            crate::k12_first_diff::build(n_of(s))
        }),
        w("K13", Livermore, N(1001), N(150), |s| {
            crate::k13_pic2d::build(n_of(s))
        }),
        w("K14", Livermore, N(1001), N(300), |s| {
            crate::k14_pic1d::build(n_of(s))
        }),
        w("K18", Livermore, N(101), N(33), |s| {
            crate::k18_hydro2d::build(n_of(s))
        }),
        w("K21", Livermore, N(101), N(12), |s| {
            crate::k21_matmul::build(n_of(s))
        }),
        w("K22", Livermore, N(101), N(33), |s| {
            crate::k22_planckian::build(n_of(s))
        }),
        w("K24", Livermore, N(1001), N(300), |s| {
            crate::k24_argmin::build(n_of(s))
        }),
        // Gather/scatter variant builds, certified by the runtime suite.
        w("K13S", Variant, N(1001), N(150), |s| {
            crate::k13_pic2d::build_scatter(n_of(s))
        }),
        w("K14F", Variant, N(1001), N(200), |s| {
            crate::k14_pic1d::build_full(n_of(s))
        }),
        w("K14S", Variant, N(1001), N(200), |s| {
            crate::k14_pic1d::build_scatter(n_of(s))
        }),
        // Scale-class workloads beyond the paper.
        w(
            "ST5",
            Scale,
            Grid2 {
                nx: 512,
                ny: 512,
                sweeps: 2,
            },
            Grid2 {
                nx: 24,
                ny: 20,
                sweeps: 2,
            },
            |s| {
                let (nx, ny, sweeps) = grid2_of(s);
                crate::stencil::build_jacobi5(nx, ny, sweeps)
            },
        ),
        w(
            "ST9",
            Scale,
            Grid2 {
                nx: 512,
                ny: 512,
                sweeps: 2,
            },
            Grid2 {
                nx: 20,
                ny: 16,
                sweeps: 2,
            },
            |s| {
                let (nx, ny, sweeps) = grid2_of(s);
                crate::stencil::build_ninepoint(nx, ny, sweeps)
            },
        ),
        w(
            "ST7",
            Scale,
            Grid3 {
                nx: 64,
                ny: 64,
                nz: 64,
                sweeps: 2,
            },
            Grid3 {
                nx: 10,
                ny: 8,
                nz: 6,
                sweeps: 2,
            },
            |s| {
                let (nx, ny, nz, sweeps) = grid3_of(s);
                crate::stencil::build_heat7(nx, ny, nz, sweeps)
            },
        ),
        w(
            "SPMV",
            Scale,
            Sparse {
                rows: 16384,
                cols: 16384,
                deg: 8,
            },
            Sparse {
                rows: 128,
                cols: 96,
                deg: 4,
            },
            |s| {
                let (rows, cols, deg) = sparse_of(s);
                crate::spmv::build_csr(rows, cols, deg)
            },
        ),
        w(
            "SPMVD",
            Scale,
            Sparse {
                rows: 16384,
                cols: 16384,
                deg: 8,
            },
            Sparse {
                rows: 96,
                cols: 64,
                deg: 4,
            },
            |s| {
                let (rows, cols, deg) = sparse_of(s);
                crate::spmv::build_csr_dynamic(rows, cols, deg)
            },
        ),
    ]
}

/// Look up a registry entry by code (case-insensitive).
pub fn workload(code: &str) -> Option<Workload> {
    workloads()
        .into_iter()
        .find(|w| w.code.eq_ignore_ascii_case(code))
}

/// Build every workload of `family` at the given official/reduced slice.
fn family_suite(family: Family, reduced: bool) -> Vec<Kernel> {
    workloads()
        .iter()
        .filter(|w| w.family == family)
        .map(|w| if reduced { w.reduced() } else { w.official() })
        .collect()
}

/// The paper's Livermore suite at the official LFK problem sizes.
pub fn suite() -> Vec<Kernel> {
    family_suite(Family::Livermore, false)
}

/// The scale-class workloads (stencil family + SpMV) at their official
/// sizes — the ROADMAP's "larger-scale workloads" item.
pub fn scale_suite() -> Vec<Kernel> {
    family_suite(Family::Scale, false)
}

/// Every registry workload — Livermore suite, gather/scatter variants and
/// the scale family — at the reduced sizes the debug-build certification
/// suites (`tests/runtime_full_suite.rs`, `tests/replay_vs_interp.rs`)
/// run at.
pub fn reduced_suite() -> Vec<Kernel> {
    workloads().iter().map(Workload::reduced).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_classes_match_expectations() {
        for k in suite().into_iter().chain(family_suite(Family::Scale, true)) {
            let got = sa_ir::classify_program(&k.program).class;
            assert_eq!(
                got.abbrev(),
                k.expected_class.abbrev(),
                "{}: static classifier said {got}, kernel expects {}",
                k.code,
                k.expected_class
            );
        }
    }

    #[test]
    fn paper_classes_are_consistent_with_expectations() {
        for k in suite() {
            if let Some(pc) = k.paper_class {
                assert_eq!(
                    k.expected_class.abbrev(),
                    pc,
                    "{}: expected class disagrees with the paper's {pc}",
                    k.code
                );
            }
        }
    }

    #[test]
    fn ids_and_codes_are_unique() {
        let kernels = suite();
        let mut ids: Vec<u32> = kernels.iter().map(|k| k.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), kernels.len());
        // Registry codes are unique across every family.
        let mut codes: Vec<&str> = workloads().iter().map(|w| w.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), workloads().len());
    }

    #[test]
    fn official_sizes_match_the_paper_literals() {
        // Regression guard for the registry refactor: the official suite is
        // program-for-program identical to direct builds at the historical
        // size literals.
        let direct = [
            crate::k01_hydro::build(1001),
            crate::k02_iccg::build(1001),
            crate::k03_inner_product::build(1001),
            crate::k04_banded::build(1001),
            crate::k05_tridiag::build(1001),
            crate::k06_glre::build(64),
            crate::k07_eos::build(995),
            crate::k08_adi::build(101),
            crate::k09_integrate::build(101),
            crate::k10_diff_predict::build(101),
            crate::k11_first_sum::build(1001),
            crate::k12_first_diff::build(1000),
            crate::k13_pic2d::build(1001),
            crate::k14_pic1d::build(1001),
            crate::k18_hydro2d::build(101),
            crate::k21_matmul::build(101),
            crate::k22_planckian::build(101),
            crate::k24_argmin::build(1001),
        ];
        let from_registry = suite();
        assert_eq!(from_registry.len(), direct.len());
        for (r, d) in from_registry.iter().zip(&direct) {
            assert_eq!(r.code, d.code);
            assert_eq!(r.program, d.program, "{}: program changed", r.code);
        }
    }

    #[test]
    fn registry_codes_resolve_and_size_shapes_are_enforced() {
        assert_eq!(workload("k12").unwrap().code, "K12");
        assert_eq!(workload("spmv").unwrap().code, "SPMV");
        assert!(workload("K99").is_none());
        assert!(matches!(
            workload("ST5").unwrap().official,
            Size::Grid2 {
                nx: 512,
                ny: 512,
                ..
            }
        ));
        assert_eq!(Size::N(1001).label(), "1001");
        assert_eq!(
            Size::Grid3 {
                nx: 4,
                ny: 5,
                nz: 6,
                sweeps: 2
            }
            .label(),
            "4×5×6 ×2"
        );
        assert_eq!(
            Size::Sparse {
                rows: 10,
                cols: 20,
                deg: 3
            }
            .label(),
            "10×20 d3"
        );
    }

    #[test]
    #[should_panic(expected = "use Size::N")]
    fn mismatched_size_shape_panics() {
        workload("K1").unwrap().build(Size::Sparse {
            rows: 1,
            cols: 1,
            deg: 1,
        });
    }

    #[test]
    fn reduced_suite_covers_every_workload() {
        let reduced = reduced_suite();
        assert_eq!(reduced.len(), workloads().len());
        for code in ["K13S", "K14F", "K14S", "ST5", "ST7", "SPMV", "SPMVD"] {
            assert!(
                reduced.iter().any(|k| k.code == code),
                "{code} missing from the reduced suite"
            );
        }
    }
}
