//! The kernel registry.

use sa_ir::{AccessClass, Program};

/// One Livermore kernel, ready to simulate.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Livermore kernel number.
    pub id: u32,
    /// Short code (`"K1"` …).
    pub code: &'static str,
    /// Human name as used in the paper.
    pub name: &'static str,
    /// The program, in single-assignment form.
    pub program: Program,
    /// Class the static classifier is expected to produce.
    pub expected_class: AccessClass,
    /// Class the *paper* assigns (§7), where it names the kernel.
    pub paper_class: Option<&'static str>,
}

impl Kernel {
    /// Abbreviation of the expected class.
    pub fn class_abbrev(&self) -> &'static str {
        self.expected_class.abbrev()
    }
}

/// The full suite at the official LFK problem sizes.
pub fn suite() -> Vec<Kernel> {
    vec![
        crate::k01_hydro::build(1001),
        crate::k02_iccg::build(1001),
        crate::k03_inner_product::build(1001),
        crate::k04_banded::build(1001),
        crate::k05_tridiag::build(1001),
        crate::k06_glre::build(64),
        crate::k07_eos::build(995),
        crate::k08_adi::build(101),
        crate::k09_integrate::build(101),
        crate::k10_diff_predict::build(101),
        crate::k11_first_sum::build(1001),
        crate::k12_first_diff::build(1000),
        crate::k13_pic2d::build(1001),
        crate::k14_pic1d::build(1001),
        crate::k18_hydro2d::build(101),
        crate::k21_matmul::build(101),
        crate::k22_planckian::build(101),
        crate::k24_argmin::build(1001),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_classes_match_expectations() {
        for k in suite() {
            let got = sa_ir::classify_program(&k.program).class;
            assert_eq!(
                got.abbrev(),
                k.expected_class.abbrev(),
                "{}: static classifier said {got}, kernel expects {}",
                k.code,
                k.expected_class
            );
        }
    }

    #[test]
    fn paper_classes_are_consistent_with_expectations() {
        for k in suite() {
            if let Some(pc) = k.paper_class {
                assert_eq!(
                    k.expected_class.abbrev(),
                    pc,
                    "{}: expected class disagrees with the paper's {pc}",
                    k.code
                );
            }
        }
    }

    #[test]
    fn ids_and_codes_are_unique() {
        let kernels = suite();
        let mut ids: Vec<u32> = kernels.iter().map(|k| k.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), kernels.len());
    }
}
