//! Per-PE page caches.
//!
//! "Each PE may safely cache a remotely fetched page in a local data cache,
//! preventing future accesses of the same remote page. The cache used will
//! be of fixed size and thus must use some sort of page replacement
//! strategy. For our simulation, we chose a least-recently-used page
//! replacement strategy." (paper §4). Single assignment is what makes this
//! coherence-free: a cached page can never be invalidated by a write.
//!
//! Pages are keyed by `(array, page, generation)` — a re-initialization
//! bumps the generation, so stale pages are unreachable even before the
//! host broadcast evicts them.

use std::collections::HashMap;

use sa_mem::TagBits;

use crate::config::PartialPagePolicy;

/// Cache key: one page of one generation of one array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// Array identity (the IR's `ArrayId.0`).
    pub array: usize,
    /// Page index within the array's linear address space.
    pub page: usize,
    /// Array generation at fetch time.
    pub generation: u32,
}

/// Replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Least-recently-used (the paper's choice).
    Lru,
    /// First-in-first-out (ablation).
    Fifo,
    /// Uniform random victim (ablation; deterministic via the seed).
    Random {
        /// Seed for the xorshift victim picker.
        seed: u64,
    },
}

/// Result of probing the cache for one element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Page present and the element usable → cached read.
    Hit,
    /// Page present but the element was not filled when the page was
    /// fetched → remote refetch under [`PartialPagePolicy::Refetch`].
    PartialMiss,
    /// Page absent → remote read.
    Miss,
}

#[derive(Debug, Clone)]
struct Entry {
    /// Fill snapshot shipped with the page; `None` means the page was
    /// complete at fetch time (or the policy ignores partial fills).
    fill: Option<TagBits>,
    /// LRU/FIFO stamp.
    stamp: u64,
}

/// A fixed-capacity page cache.
#[derive(Debug, Clone)]
pub struct PageCache {
    capacity: usize,
    policy: CachePolicy,
    entries: HashMap<PageKey, Entry>,
    tick: u64,
    rng: u64,
    hits: u64,
    misses: u64,
}

impl PageCache {
    /// A cache holding at most `capacity_pages` pages.
    pub fn new(capacity_pages: usize, policy: CachePolicy) -> Self {
        let rng = match policy {
            CachePolicy::Random { seed } => seed | 1,
            _ => 1,
        };
        PageCache {
            capacity: capacity_pages,
            policy,
            entries: HashMap::with_capacity(capacity_pages),
            tick: 0,
            rng,
            hits: 0,
            misses: 0,
        }
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses) since construction — partial misses count as misses.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Probe for element `offset` (within the page) of `key`.
    ///
    /// An LRU hit refreshes the entry's recency stamp; FIFO and Random do
    /// not touch stamps on hit.
    pub fn probe(
        &mut self,
        key: PageKey,
        offset: usize,
        partial: PartialPagePolicy,
    ) -> CacheOutcome {
        self.tick += 1;
        let tick = self.tick;
        let policy = self.policy;
        match self.entries.get_mut(&key) {
            None => {
                self.misses += 1;
                CacheOutcome::Miss
            }
            Some(e) => {
                let filled = match (&e.fill, partial) {
                    (_, PartialPagePolicy::Ignore) | (None, _) => true,
                    (Some(bits), PartialPagePolicy::Refetch) => bits.get(offset),
                };
                if filled {
                    if matches!(policy, CachePolicy::Lru) {
                        e.stamp = tick;
                    }
                    self.hits += 1;
                    CacheOutcome::Hit
                } else {
                    self.misses += 1;
                    CacheOutcome::PartialMiss
                }
            }
        }
    }

    /// Insert (or upgrade) a fetched page with its fill snapshot.
    ///
    /// `fill = None` marks the page complete. If the page is resident the
    /// snapshot is unioned in (a partial-page refetch "upgrades" the copy);
    /// otherwise the page is inserted, evicting per policy when full.
    pub fn insert(&mut self, key: PageKey, fill: Option<TagBits>) {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            match fill {
                None => e.fill = None,
                Some(new) => {
                    if let Some(old) = &mut e.fill {
                        old.union_with(&new);
                    }
                    // An already-complete entry stays complete.
                }
            }
            e.stamp = self.tick;
            return;
        }
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity {
            self.evict_one();
        }
        self.entries.insert(
            key,
            Entry {
                fill,
                stamp: self.tick,
            },
        );
    }

    fn evict_one(&mut self) {
        let victim = match self.policy {
            CachePolicy::Lru | CachePolicy::Fifo => self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k),
            CachePolicy::Random { .. } => {
                // xorshift64* pick over a *sorted* key list so the victim
                // is independent of HashMap iteration order (determinism).
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                let n = self.entries.len() as u64;
                let pick = (self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D) % n) as usize;
                let mut keys: Vec<PageKey> = self.entries.keys().copied().collect();
                keys.sort_unstable();
                keys.get(pick).copied()
            }
        };
        if let Some(k) = victim {
            self.entries.remove(&k);
        }
    }

    /// Drop every resident page of `array` (host re-initialization
    /// broadcast, §5).
    pub fn invalidate_array(&mut self, array: usize) {
        self.entries.retain(|k, _| k.array != array);
    }

    /// Drop everything (between independent experiment phases).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// True if the page is resident (any fill state).
    pub fn contains(&self, key: &PageKey) -> bool {
        self.entries.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(array: usize, page: usize) -> PageKey {
        PageKey {
            array,
            page,
            generation: 0,
        }
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut c = PageCache::new(2, CachePolicy::Lru);
        assert_eq!(
            c.probe(key(0, 0), 3, PartialPagePolicy::Ignore),
            CacheOutcome::Miss
        );
        c.insert(key(0, 0), None);
        assert_eq!(
            c.probe(key(0, 0), 3, PartialPagePolicy::Ignore),
            CacheOutcome::Hit
        );
        assert_eq!(c.hit_stats(), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PageCache::new(2, CachePolicy::Lru);
        c.insert(key(0, 0), None);
        c.insert(key(0, 1), None);
        // Touch page 0 so page 1 becomes LRU.
        assert_eq!(
            c.probe(key(0, 0), 0, PartialPagePolicy::Ignore),
            CacheOutcome::Hit
        );
        c.insert(key(0, 2), None);
        assert!(c.contains(&key(0, 0)), "recently used page must survive");
        assert!(!c.contains(&key(0, 1)), "LRU page must be evicted");
        assert!(c.contains(&key(0, 2)));
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = PageCache::new(2, CachePolicy::Fifo);
        c.insert(key(0, 0), None);
        c.insert(key(0, 1), None);
        // Touch page 0; FIFO must still evict it (it is oldest).
        assert_eq!(
            c.probe(key(0, 0), 0, PartialPagePolicy::Ignore),
            CacheOutcome::Hit
        );
        c.insert(key(0, 2), None);
        assert!(!c.contains(&key(0, 0)), "FIFO evicts the oldest insert");
        assert!(c.contains(&key(0, 1)));
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let run = |seed| {
            let mut c = PageCache::new(4, CachePolicy::Random { seed });
            for p in 0..32 {
                c.insert(key(0, p), None);
            }
            let mut resident: Vec<usize> = (0..32).filter(|&p| c.contains(&key(0, p))).collect();
            resident.sort_unstable();
            resident
        };
        assert_eq!(run(7), run(7));
        assert_eq!(run(7).len(), 4);
    }

    #[test]
    fn capacity_zero_caches_nothing() {
        let mut c = PageCache::new(0, CachePolicy::Lru);
        c.insert(key(0, 0), None);
        assert_eq!(
            c.probe(key(0, 0), 0, PartialPagePolicy::Ignore),
            CacheOutcome::Miss
        );
        assert!(c.is_empty());
    }

    #[test]
    fn partial_page_semantics() {
        let mut c = PageCache::new(2, CachePolicy::Lru);
        let mut fill = TagBits::new(8);
        fill.set(0);
        fill.set(1);
        c.insert(key(0, 0), Some(fill));
        // Ignore policy: any element hits.
        assert_eq!(
            c.probe(key(0, 0), 7, PartialPagePolicy::Ignore),
            CacheOutcome::Hit
        );
        // Refetch policy: unfilled element is a partial miss…
        assert_eq!(
            c.probe(key(0, 0), 7, PartialPagePolicy::Refetch),
            CacheOutcome::PartialMiss
        );
        // …until an upgraded snapshot arrives.
        let mut more = TagBits::new(8);
        more.set(7);
        c.insert(key(0, 0), Some(more));
        assert_eq!(
            c.probe(key(0, 0), 7, PartialPagePolicy::Refetch),
            CacheOutcome::Hit
        );
        assert_eq!(
            c.probe(key(0, 0), 0, PartialPagePolicy::Refetch),
            CacheOutcome::Hit
        );
        // A complete insert clears the snapshot entirely.
        c.insert(key(0, 0), None);
        assert_eq!(
            c.probe(key(0, 0), 5, PartialPagePolicy::Refetch),
            CacheOutcome::Hit
        );
    }

    #[test]
    fn generation_changes_miss() {
        let mut c = PageCache::new(2, CachePolicy::Lru);
        c.insert(key(0, 0), None);
        let stale = PageKey {
            array: 0,
            page: 0,
            generation: 1,
        };
        assert_eq!(
            c.probe(stale, 0, PartialPagePolicy::Ignore),
            CacheOutcome::Miss
        );
    }

    #[test]
    fn invalidate_array_drops_only_that_array() {
        let mut c = PageCache::new(4, CachePolicy::Lru);
        c.insert(key(0, 0), None);
        c.insert(key(1, 0), None);
        c.invalidate_array(0);
        assert!(!c.contains(&key(0, 0)));
        assert!(c.contains(&key(1, 0)));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn cyclic_reuse_fits_when_capacity_suffices() {
        // A cycle over 3 pages with capacity 4: after the first lap, every
        // probe hits — the mechanism behind the paper's Figure 2.
        let mut c = PageCache::new(4, CachePolicy::Lru);
        let mut remote = 0;
        for _lap in 0..10 {
            for p in 0..3 {
                if c.probe(key(0, p), 0, PartialPagePolicy::Ignore) == CacheOutcome::Miss {
                    remote += 1;
                    c.insert(key(0, p), None);
                }
            }
        }
        assert_eq!(remote, 3, "only the first lap misses");

        // Capacity 2 < cycle length 3 with LRU: every probe misses
        // (the thrashing regime of Figure 4).
        let mut c = PageCache::new(2, CachePolicy::Lru);
        let mut remote = 0;
        for _lap in 0..10 {
            for p in 0..3 {
                if c.probe(key(0, p), 0, PartialPagePolicy::Ignore) == CacheOutcome::Miss {
                    remote += 1;
                    c.insert(key(0, p), None);
                }
            }
        }
        assert_eq!(remote, 30, "LRU thrashes when the cycle exceeds capacity");
    }
}
