//! Machine configuration — every knob the paper fixes, varies or proposes.

use crate::cache::CachePolicy;
use crate::network::NetworkTopology;
use crate::partition::PartitionScheme;
use crate::timing::AccessCosts;

/// What happens when a cached page turns out to be only partially filled.
///
/// The paper's simulation treats cached pages as complete ("ignoring for now
/// the possibility of partially filled pages", §4) but §8 acknowledges that
/// "a single page might have to be fetched more than once if that page is
/// only partially filled at the time of the first request".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartialPagePolicy {
    /// Paper semantics: a resident page always hits.
    Ignore,
    /// Realistic semantics: an element missing from the fetch-time snapshot
    /// triggers a re-fetch (counted as a remote read and as
    /// `partial_refetches`); the snapshot is upgraded in place.
    Refetch,
}

/// Why a [`MachineConfig`] is unusable. Produced by
/// [`MachineConfig::validate`], which every machine/runtime constructor
/// calls exactly once — downstream page arithmetic (`page_of`, `pages_in`,
/// [`MachineConfig::cache_pages`]) may then assume non-zero parameters
/// instead of re-checking or silently special-casing them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `n_pes` was 0; the machine needs at least one PE.
    ZeroPes,
    /// `page_size` was 0; partitioning needs non-empty pages.
    ZeroPageSize,
    /// `BlockCyclic { block_pages: 0 }`; chunks must hold at least a page.
    ZeroBlockPages,
    /// `Tile2D` with a zero `tile_rows` or `tile_cols`; tiles must cover
    /// at least one grid element.
    ZeroTileShape,
    /// An experiment-plan axis held no values, so the cross product is
    /// empty and no grid point can be enumerated.
    EmptyAxis {
        /// Name of the offending axis (e.g. `"pes"`).
        axis: &'static str,
    },
    /// The same axis kind was added to an experiment plan twice; the
    /// cross product would double-count it.
    DuplicateAxis {
        /// Name of the repeated axis.
        axis: &'static str,
    },
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::ZeroPes => write!(f, "n_pes must be ≥ 1"),
            ConfigError::ZeroPageSize => write!(f, "page_size must be ≥ 1"),
            ConfigError::ZeroBlockPages => write!(f, "block_pages must be ≥ 1"),
            ConfigError::ZeroTileShape => write!(f, "tile_rows and tile_cols must be ≥ 1"),
            ConfigError::EmptyAxis { axis } => write!(f, "axis `{axis}` has no values"),
            ConfigError::DuplicateAxis { axis } => write!(f, "axis `{axis}` was added twice"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Number of processing elements (simulation parameter 1, §6).
    pub n_pes: usize,
    /// Page size in elements (simulation parameter 2, §6).
    pub page_size: usize,
    /// Per-PE cache size in *elements* (fixed at 256 in the paper, §6);
    /// the page capacity is `cache_elems / page_size`. 0 disables caching.
    pub cache_elems: usize,
    /// Replacement policy (LRU in the paper, §4).
    pub cache_policy: CachePolicy,
    /// Page placement scheme (modulo in the paper, §2).
    pub partition: PartitionScheme,
    /// Partial-page semantics (paper ignores; runtime refetches).
    pub partial_pages: PartialPagePolicy,
    /// Interconnect model for message/hop accounting.
    pub network: NetworkTopology,
    /// Cycle costs for the execution-time extension (§9).
    pub costs: AccessCosts,
}

impl MachineConfig {
    /// The canonical constructor: the paper's reference machine at the two
    /// swept parameters (§6). Defaults — modulo placement, 256-element LRU
    /// cache, complete-page semantics, ideal network — are overridden with
    /// the `with_*` builders (`with_cache_elems(0)` is the "No Cache"
    /// series of Figures 1–4).
    pub fn new(n_pes: usize, page_size: usize) -> Self {
        MachineConfig {
            n_pes,
            page_size,
            cache_elems: 256,
            cache_policy: CachePolicy::Lru,
            partition: PartitionScheme::Modulo,
            partial_pages: PartialPagePolicy::Ignore,
            network: NetworkTopology::Ideal,
            costs: AccessCosts::default(),
        }
    }

    /// The paper's simulated machine.
    #[deprecated(since = "0.1.0", note = "use `MachineConfig::new`")]
    pub fn paper(n_pes: usize, page_size: usize) -> Self {
        Self::new(n_pes, page_size)
    }

    /// The paper's machine with caching disabled.
    #[deprecated(
        since = "0.1.0",
        note = "use `MachineConfig::new(n, ps).with_cache_elems(0)`"
    )]
    pub fn paper_no_cache(n_pes: usize, page_size: usize) -> Self {
        Self::new(n_pes, page_size).with_cache_elems(0)
    }

    /// Number of pages the cache can hold. Requires a validated config
    /// (`page_size ≥ 1`); zero page sizes are a [`ConfigError`], not a
    /// silently uncached machine.
    pub fn cache_pages(&self) -> usize {
        debug_assert!(self.page_size > 0, "cache_pages on an unvalidated config");
        self.cache_elems / self.page_size
    }

    /// True if caching is active.
    pub fn cache_enabled(&self) -> bool {
        self.cache_pages() > 0
    }

    /// Builder-style override: cache size in elements.
    pub fn with_cache_elems(mut self, elems: usize) -> Self {
        self.cache_elems = elems;
        self
    }

    /// Builder-style override: replacement policy.
    pub fn with_cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Builder-style override: partition scheme.
    pub fn with_partition(mut self, scheme: PartitionScheme) -> Self {
        self.partition = scheme;
        self
    }

    /// Builder-style override: partial-page semantics.
    pub fn with_partial_pages(mut self, p: PartialPagePolicy) -> Self {
        self.partial_pages = p;
        self
    }

    /// Builder-style override: network topology.
    pub fn with_network(mut self, n: NetworkTopology) -> Self {
        self.network = n;
        self
    }

    /// Builder-style override: access cost model.
    pub fn with_costs(mut self, c: AccessCosts) -> Self {
        self.costs = c;
        self
    }

    /// Validate the configuration. Machine and runtime constructors call
    /// this once up front, so rejection happens with a typed error before
    /// any page arithmetic can divide by zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_pes == 0 {
            return Err(ConfigError::ZeroPes);
        }
        if self.page_size == 0 {
            return Err(ConfigError::ZeroPageSize);
        }
        if let PartitionScheme::BlockCyclic { block_pages } = self.partition {
            if block_pages == 0 {
                return Err(ConfigError::ZeroBlockPages);
            }
        }
        if let PartitionScheme::Tile2D {
            tile_rows,
            tile_cols,
        } = self.partition
        {
            if tile_rows == 0 || tile_cols == 0 {
                return Err(ConfigError::ZeroTileShape);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_the_text() {
        let c = MachineConfig::new(8, 32);
        assert_eq!(c.n_pes, 8);
        assert_eq!(c.page_size, 32);
        assert_eq!(c.cache_elems, 256);
        assert_eq!(c.cache_pages(), 8); // 256/32
        assert!(c.cache_enabled());
        assert_eq!(c.cache_policy, CachePolicy::Lru);
        assert_eq!(c.partition, PartitionScheme::Modulo);
        assert_eq!(c.partial_pages, PartialPagePolicy::Ignore);
        assert!(c.validate().is_ok());
        // Page size 64 → 4 cache pages, as in Figures 1–4.
        assert_eq!(MachineConfig::new(8, 64).cache_pages(), 4);
    }

    #[test]
    fn no_cache_variant_disables_caching() {
        let c = MachineConfig::new(4, 32).with_cache_elems(0);
        assert_eq!(c.cache_pages(), 0);
        assert!(!c.cache_enabled());
    }

    #[test]
    fn builders_override_fields() {
        let c = MachineConfig::new(4, 32)
            .with_cache_elems(1024)
            .with_cache_policy(CachePolicy::Fifo)
            .with_partition(PartitionScheme::Block)
            .with_partial_pages(PartialPagePolicy::Refetch);
        assert_eq!(c.cache_pages(), 32);
        assert_eq!(c.cache_policy, CachePolicy::Fifo);
        assert_eq!(c.partition, PartitionScheme::Block);
        assert_eq!(c.partial_pages, PartialPagePolicy::Refetch);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        assert_eq!(
            MachineConfig::new(0, 32).validate(),
            Err(ConfigError::ZeroPes)
        );
        assert_eq!(
            MachineConfig::new(4, 0).validate(),
            Err(ConfigError::ZeroPageSize)
        );
        assert_eq!(
            MachineConfig::new(4, 32)
                .with_partition(PartitionScheme::BlockCyclic { block_pages: 0 })
                .validate(),
            Err(ConfigError::ZeroBlockPages)
        );
        // Zero PEs is reported before zero page size (first failure wins).
        assert_eq!(
            MachineConfig::new(0, 0).validate(),
            Err(ConfigError::ZeroPes)
        );
        for (tile_rows, tile_cols) in [(0usize, 4usize), (4, 0), (0, 0)] {
            assert_eq!(
                MachineConfig::new(4, 32)
                    .with_partition(PartitionScheme::Tile2D {
                        tile_rows,
                        tile_cols
                    })
                    .validate(),
                Err(ConfigError::ZeroTileShape)
            );
        }
        assert!(MachineConfig::new(4, 32)
            .with_partition(PartitionScheme::Tile2D {
                tile_rows: 8,
                tile_cols: 8
            })
            .validate()
            .is_ok());
        assert!(MachineConfig::new(4, 32)
            .with_partition(PartitionScheme::RowBand)
            .validate()
            .is_ok());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_canonical_constructor() {
        assert_eq!(MachineConfig::paper(8, 32), MachineConfig::new(8, 32));
        assert_eq!(
            MachineConfig::paper_no_cache(8, 32),
            MachineConfig::new(8, 32).with_cache_elems(0)
        );
    }

    #[test]
    fn axis_errors_render() {
        assert_eq!(
            ConfigError::EmptyAxis { axis: "pes" }.to_string(),
            "axis `pes` has no values"
        );
        assert_eq!(
            ConfigError::DuplicateAxis { axis: "cache" }.to_string(),
            "axis `cache` was added twice"
        );
    }

    #[test]
    fn cache_smaller_than_page_disables_caching() {
        let c = MachineConfig::new(4, 512); // 256-elem cache < 512-elem page
        assert_eq!(c.cache_pages(), 0);
        assert!(!c.cache_enabled());
    }
}
