//! The host-processor re-initialization protocol (paper §5).
//!
//! "Each array in a computation has a specific PE assigned to it as an
//! administrative center called the host processor. … For the
//! re-initialization of some array A, each PE sends a re-initialization
//! message to A's host processor. These messages are collected until the
//! last PE has requested re-initialization. Once this happens, the host
//! processor for A broadcasts a message to the other PEs informing them
//! that A can now be reused."

use crate::network::Network;

/// The host PE of array `array_index`.
///
/// "The compiler ensures that the host processors are evenly distributed
/// among the arrays" — round-robin by declaration order.
pub fn host_of(array_index: usize, n_pes: usize) -> usize {
    debug_assert!(n_pes > 0);
    array_index % n_pes
}

/// Outcome of one re-initialization round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReinitSync {
    /// The array's host PE.
    pub host: usize,
    /// Collection messages received by the host (one per other PE).
    pub requests: u64,
    /// Release broadcast messages sent by the host (one per other PE).
    pub broadcasts: u64,
    /// New generation number of the array.
    pub new_generation: u32,
}

impl ReinitSync {
    /// Total protocol messages for this round.
    pub fn total_messages(&self) -> u64 {
        self.requests + self.broadcasts
    }
}

/// Run the §5 protocol over the network model: every non-host PE sends a
/// request to the host; once all `n_pes - 1` have arrived the host
/// broadcasts the release. Returns the accounting record.
pub fn run_reinit_protocol(
    network: &mut Network,
    array_index: usize,
    n_pes: usize,
    new_generation: u32,
) -> ReinitSync {
    let host = host_of(array_index, n_pes);
    let mut requests = 0u64;
    for pe in 0..n_pes {
        if pe != host {
            network.record_message(pe, host);
            requests += 1;
        }
    }
    let mut broadcasts = 0u64;
    for pe in 0..n_pes {
        if pe != host {
            network.record_message(host, pe);
            broadcasts += 1;
        }
    }
    ReinitSync {
        host,
        requests,
        broadcasts,
        new_generation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkTopology;

    #[test]
    fn hosts_are_distributed_round_robin() {
        assert_eq!(host_of(0, 4), 0);
        assert_eq!(host_of(1, 4), 1);
        assert_eq!(host_of(4, 4), 0);
        assert_eq!(host_of(7, 4), 3);
        // Single PE machine: everything is hosted at 0.
        assert_eq!(host_of(5, 1), 0);
    }

    #[test]
    fn protocol_counts_collect_and_broadcast() {
        let mut net = Network::new(NetworkTopology::Crossbar, 8);
        let sync = run_reinit_protocol(&mut net, 2, 8, 1);
        assert_eq!(sync.host, 2);
        assert_eq!(sync.requests, 7);
        assert_eq!(sync.broadcasts, 7);
        assert_eq!(sync.total_messages(), 14);
        assert_eq!(net.messages, 14);
        assert_eq!(sync.new_generation, 1);
    }

    #[test]
    fn single_pe_needs_no_messages() {
        let mut net = Network::new(NetworkTopology::Crossbar, 1);
        let sync = run_reinit_protocol(&mut net, 0, 1, 3);
        assert_eq!(sync.total_messages(), 0);
        assert_eq!(net.messages, 0);
    }
}
