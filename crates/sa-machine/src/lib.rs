//! # sa-machine — the simulated loosely-coupled MIMD multiprocessor
//!
//! The abstract machine of the paper's evaluation (§6): `N` processing
//! elements, each with a local memory and a small page cache, connected by a
//! message-passing network with **no shared memory**. Arrays are segmented
//! into fixed-size *pages* distributed across PEs by a
//! [`PartitionScheme`]; every element access is classified as one of the
//! paper's four kinds (write / local read / cached read / remote read) and
//! accumulated into [`Stats`].
//!
//! Everything the paper varies or proposes is a configuration knob:
//!
//! * number of PEs and page size (the two simulation parameters of §6),
//! * cache size (fixed at 256 elements in the paper; a sweep parameter for
//!   the Random-class ablation of §7.1.4),
//! * replacement policy (LRU in the paper; FIFO/Random for ablation),
//! * partitioning scheme (modulo in the paper; the "division scheme" of §9),
//! * partial-page semantics (§4 "ignoring for now the possibility of
//!   partially filled pages" vs. realistic refetch),
//! * network topology for the message/contention accounting of §9.

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod host;
pub mod machine;
pub mod network;
pub mod partition;
pub mod placement;
pub mod stats;
pub mod timing;

pub use cache::{CacheOutcome, CachePolicy, PageCache, PageKey};
pub use config::{ConfigError, MachineConfig, PartialPagePolicy};
pub use host::{host_of, ReinitSync};
pub use machine::{DistributedMachine, MachineError};
pub use network::{LinkModel, Network, NetworkTopology};
pub use partition::{page_of, pages_in, PartitionScheme};
pub use placement::{ArrayShape, Placement};
pub use stats::{load_balance, AccessKind, LoadBalance, PeCounters, Stats};
pub use timing::AccessCosts;
