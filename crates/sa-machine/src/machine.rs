//! The distributed machine: ownership-checked writes, classified reads.

use sa_mem::{SaArray, TagBits};

use crate::cache::{CacheOutcome, PageCache, PageKey};
use crate::config::{MachineConfig, PartialPagePolicy};
use crate::host::{run_reinit_protocol, ReinitSync};
use crate::network::Network;
use crate::partition::page_of;
use crate::placement::{ArrayShape, Placement};
use crate::stats::{AccessKind, Stats};

/// Description of one array to place on the machine.
#[derive(Debug, Clone)]
pub struct ArraySpec {
    /// Diagnostic name.
    pub name: String,
    /// Total elements (linear address space; multi-dim arrays are
    /// linearized row-major upstream).
    pub len: usize,
    /// Declared dimensions, outermost first (empty means linear `[len]`).
    /// Only the tiled partition schemes read the geometry; the page-linear
    /// schemes place identically whatever is declared here.
    pub dims: Vec<usize>,
    /// Initially defined prefix values (empty for produced arrays).
    pub init: Vec<f64>,
}

impl ArraySpec {
    /// A linear (1-D) array spec.
    pub fn linear(name: impl Into<String>, len: usize, init: Vec<f64>) -> Self {
        ArraySpec {
            name: name.into(),
            len,
            dims: Vec::new(),
            init,
        }
    }

    /// The placement geometry this spec declares.
    pub fn shape(&self) -> ArrayShape {
        if self.dims.is_empty() {
            ArrayShape::linear(self.len)
        } else {
            debug_assert_eq!(
                self.dims.iter().product::<usize>(),
                self.len,
                "declared dims must cover the array"
            );
            ArrayShape::from_dims(&self.dims)
        }
    }
}

/// Errors raised by machine operations.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// Owner-computes violation: a PE tried to write memory it does not own.
    RemoteWrite {
        /// Writing PE.
        pe: usize,
        /// Actual owner.
        owner: usize,
        /// Array name.
        array: String,
        /// Linear address.
        addr: usize,
    },
    /// Single-assignment violation.
    DoubleWrite {
        /// Array name.
        array: String,
        /// Linear address.
        addr: usize,
    },
    /// Read of a cell no one has produced (a scheduling bug in the caller).
    ReadUndefined {
        /// Array name.
        array: String,
        /// Linear address.
        addr: usize,
    },
    /// Address outside the array.
    OutOfBounds {
        /// Array name.
        array: String,
        /// Linear address.
        addr: usize,
        /// Array length.
        len: usize,
    },
    /// Invalid machine configuration.
    BadConfig(crate::config::ConfigError),
    /// Re-initialization attempted with readers still queued.
    ReinitPending {
        /// Array name.
        array: String,
    },
}

impl core::fmt::Display for MachineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MachineError::RemoteWrite {
                pe,
                owner,
                array,
                addr,
            } => write!(
                f,
                "owner-computes violation: PE {pe} wrote {array}[{addr}] owned by PE {owner}"
            ),
            MachineError::DoubleWrite { array, addr } => {
                write!(
                    f,
                    "single-assignment violation: {array}[{addr}] written twice"
                )
            }
            MachineError::ReadUndefined { array, addr } => {
                write!(f, "read of undefined {array}[{addr}]")
            }
            MachineError::OutOfBounds { array, addr, len } => {
                write!(f, "address {addr} out of bounds for {array} (len {len})")
            }
            MachineError::BadConfig(msg) => write!(f, "bad machine config: {msg}"),
            MachineError::ReinitPending { array } => {
                write!(
                    f,
                    "re-initialization of {array} with deferred readers pending"
                )
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// The simulated loosely-coupled MIMD machine.
///
/// Array values are stored globally (the simulation is functional as well
/// as statistical), but *ownership* is page-exact: every access is
/// classified against the partition map and per-PE cache state, exactly as
/// the paper's simulator did.
#[derive(Debug, Clone)]
pub struct DistributedMachine {
    cfg: MachineConfig,
    arrays: Vec<SaArray<f64>>,
    placements: Vec<Placement>,
    caches: Vec<PageCache>,
    stats: Stats,
    network: Network,
}

impl DistributedMachine {
    /// Build a machine and place `specs` on it.
    pub fn new(cfg: MachineConfig, specs: Vec<ArraySpec>) -> Result<Self, MachineError> {
        cfg.validate().map_err(MachineError::BadConfig)?;
        let placements = specs
            .iter()
            .map(|s| Placement::new(cfg.partition, cfg.page_size, cfg.n_pes, s.shape()))
            .collect();
        let arrays = specs
            .into_iter()
            .map(|s| {
                let mut a = SaArray::new(s.name, s.len);
                for (i, v) in s.init.into_iter().enumerate() {
                    a.write(i, v).expect("fresh array accepts init writes");
                }
                a
            })
            .collect();
        let caches = (0..cfg.n_pes)
            .map(|_| PageCache::new(cfg.cache_pages(), cfg.cache_policy))
            .collect();
        Ok(DistributedMachine {
            stats: Stats::new(cfg.n_pes),
            network: Network::new(cfg.network, cfg.n_pes),
            cfg,
            arrays,
            placements,
            caches,
        })
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of arrays placed.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Pages of array `a`.
    pub fn pages_of(&self, a: usize) -> usize {
        self.placements[a].pages()
    }

    /// Placement of array `a`.
    pub fn placement_of(&self, a: usize) -> &Placement {
        &self.placements[a]
    }

    /// Owning PE of `addr` in array `a`.
    pub fn owner_of(&self, a: usize, addr: usize) -> usize {
        self.placements[a].owner_of_addr(addr)
    }

    /// Current generation of array `a`.
    pub fn generation(&self, a: usize) -> u32 {
        self.arrays[a].generation()
    }

    /// Producer write by `pe`. Enforces owner-computes and single
    /// assignment; counts as a (local) write.
    pub fn write(
        &mut self,
        pe: usize,
        a: usize,
        addr: usize,
        value: f64,
    ) -> Result<(), MachineError> {
        let arr = &self.arrays[a];
        if addr >= arr.len() {
            return Err(MachineError::OutOfBounds {
                array: arr.name().to_string(),
                addr,
                len: arr.len(),
            });
        }
        let owner = self.owner_of(a, addr);
        if owner != pe {
            return Err(MachineError::RemoteWrite {
                pe,
                owner,
                array: arr.name().to_string(),
                addr,
            });
        }
        let arr = &mut self.arrays[a];
        let name = arr.name().to_string();
        arr.write(addr, value)
            .map_err(|_| MachineError::DoubleWrite { array: name, addr })?;
        self.stats.record(pe, AccessKind::Write);
        Ok(())
    }

    /// Classified read by `pe`: returns the value, the access kind, and the
    /// one-way hop count (0 unless remote).
    pub fn read(
        &mut self,
        pe: usize,
        a: usize,
        addr: usize,
    ) -> Result<(f64, AccessKind, u32), MachineError> {
        let arr = &self.arrays[a];
        let len = arr.len();
        if addr >= len {
            return Err(MachineError::OutOfBounds {
                array: arr.name().to_string(),
                addr,
                len,
            });
        }
        let value = match arr.read(addr) {
            Ok(Some(v)) => *v,
            _ => {
                return Err(MachineError::ReadUndefined {
                    array: arr.name().to_string(),
                    addr,
                })
            }
        };
        let owner = self.owner_of(a, addr);
        if owner == pe {
            self.stats.record(pe, AccessKind::LocalRead);
            return Ok((value, AccessKind::LocalRead, 0));
        }
        let page = page_of(addr, self.cfg.page_size);
        let key = PageKey {
            array: a,
            page,
            generation: self.arrays[a].generation(),
        };
        let offset = addr - page * self.cfg.page_size;
        if self.cfg.cache_enabled() {
            match self.caches[pe].probe(key, offset, self.cfg.partial_pages) {
                CacheOutcome::Hit => {
                    self.stats.record(pe, AccessKind::CachedRead);
                    return Ok((value, AccessKind::CachedRead, 0));
                }
                CacheOutcome::PartialMiss => {
                    let snapshot = self.page_snapshot(a, page);
                    self.caches[pe].insert(key, snapshot);
                    let hops = self.network.record_fetch(pe, owner);
                    self.stats.record(pe, AccessKind::RemoteRead);
                    self.stats.page_fetches += 1;
                    self.stats.partial_refetches += 1;
                    return Ok((value, AccessKind::RemoteRead, hops));
                }
                CacheOutcome::Miss => {
                    let snapshot = self.page_snapshot(a, page);
                    self.caches[pe].insert(key, snapshot);
                }
            }
        }
        let hops = self.network.record_fetch(pe, owner);
        self.stats.record(pe, AccessKind::RemoteRead);
        self.stats.page_fetches += 1;
        Ok((value, AccessKind::RemoteRead, hops))
    }

    /// Fill snapshot of one page (None when the page is completely defined
    /// or when partial-page accounting is off).
    fn page_snapshot(&self, a: usize, page: usize) -> Option<TagBits> {
        if self.cfg.partial_pages == PartialPagePolicy::Ignore {
            return None;
        }
        let arr = &self.arrays[a];
        let ps = self.cfg.page_size;
        let start = page * ps;
        let end = (start + ps).min(arr.len());
        let mut bits = TagBits::new(end - start);
        let tags = arr.tags();
        let mut full = true;
        for i in start..end {
            if tags.get(i) {
                bits.set(i - start);
            } else {
                full = false;
            }
        }
        if full {
            None
        } else {
            Some(bits)
        }
    }

    /// Re-initialize array `a` via the §5 host protocol: collect + broadcast
    /// messages are charged to the network, every PE drops its cached pages
    /// of `a`, and the array moves to the next generation.
    pub fn reinit(&mut self, a: usize) -> Result<ReinitSync, MachineError> {
        let name = self.arrays[a].name().to_string();
        let new_gen = self.arrays[a]
            .reinit()
            .map_err(|_| MachineError::ReinitPending { array: name })?;
        let sync = run_reinit_protocol(&mut self.network, a, self.cfg.n_pes, new_gen);
        self.stats.reinit_messages += sync.total_messages();
        for cache in &mut self.caches {
            cache.invalidate_array(a);
        }
        Ok(sync)
    }

    /// Ship a reduction partial result from `from` to the host `to`
    /// (paper §9's vector→scalar collection via the host mechanism).
    pub fn send_partial(&mut self, from: usize, to: usize) {
        if from != to {
            self.network.record_message(from, to);
            self.stats.reduction_messages += 1;
        }
    }

    /// Non-counting read for result verification.
    pub fn peek(&self, a: usize, addr: usize) -> Option<f64> {
        self.arrays[a].read(addr).ok().flatten().copied()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Network accounting.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Borrow the array stores (for verification).
    pub fn arrays(&self) -> &[SaArray<f64>] {
        &self.arrays
    }

    /// Tear down into (stats, network, final arrays).
    pub fn finish(self) -> (Stats, Network, Vec<SaArray<f64>>) {
        (self.stats, self.network, self.arrays)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachePolicy;
    use crate::partition::PartitionScheme;

    fn spec(name: &str, len: usize, init: Vec<f64>) -> ArraySpec {
        ArraySpec::linear(name, len, init)
    }

    fn machine(cfg: MachineConfig) -> DistributedMachine {
        DistributedMachine::new(
            cfg,
            vec![
                spec("A", 100, vec![]),
                spec("B", 100, (0..100).map(|i| i as f64).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_ownership() {
        // §2: 4 PEs, page size 32, arrays of 100 elements.
        let m = machine(MachineConfig::new(4, 32));
        assert_eq!(m.pages_of(0), 4);
        assert_eq!(m.owner_of(0, 0), 0); // A(1..32) → PE 0
        assert_eq!(m.owner_of(0, 32), 1); // A(33..64) → PE 1
        assert_eq!(m.owner_of(0, 64), 2); // A(65..96) → PE 2
        assert_eq!(m.owner_of(0, 96), 3); // A(97..100) → PE 3 (partial page)
    }

    #[test]
    fn owner_computes_is_enforced() {
        let mut m = machine(MachineConfig::new(4, 32));
        m.write(0, 0, 5, 1.0).unwrap();
        let err = m.write(0, 0, 40, 1.0).unwrap_err();
        assert!(matches!(
            err,
            MachineError::RemoteWrite {
                pe: 0,
                owner: 1,
                ..
            }
        ));
        assert_eq!(m.stats().writes(), 1);
    }

    #[test]
    fn double_write_is_reported() {
        let mut m = machine(MachineConfig::new(4, 32));
        m.write(0, 0, 5, 1.0).unwrap();
        assert!(matches!(
            m.write(0, 0, 5, 2.0),
            Err(MachineError::DoubleWrite { addr: 5, .. })
        ));
    }

    #[test]
    fn local_read_is_free_of_network() {
        let mut m = machine(MachineConfig::new(4, 32));
        let (v, kind, hops) = m.read(0, 1, 10).unwrap(); // B(10) owned by PE 0
        assert_eq!(v, 10.0);
        assert_eq!(kind, AccessKind::LocalRead);
        assert_eq!(hops, 0);
        assert_eq!(m.network().messages, 0);
    }

    #[test]
    fn remote_then_cached_read_flow() {
        let mut m = machine(MachineConfig::new(4, 32));
        // B(40) is on page 1 → PE 1. PE 0 reads it twice.
        let (_, k1, _) = m.read(0, 1, 40).unwrap();
        assert_eq!(k1, AccessKind::RemoteRead);
        let (_, k2, _) = m.read(0, 1, 41).unwrap();
        assert_eq!(k2, AccessKind::CachedRead, "same page must now be cached");
        assert_eq!(m.network().messages, 2); // one request + one reply
        assert_eq!(m.stats().page_fetches, 1);
        // Another PE has its own (cold) cache.
        let (_, k3, _) = m.read(2, 1, 40).unwrap();
        assert_eq!(k3, AccessKind::RemoteRead);
    }

    #[test]
    fn no_cache_config_always_goes_remote() {
        let mut m = machine(MachineConfig::new(4, 32).with_cache_elems(0));
        for _ in 0..3 {
            let (_, k, _) = m.read(0, 1, 40).unwrap();
            assert_eq!(k, AccessKind::RemoteRead);
        }
        assert_eq!(m.stats().remote_reads(), 3);
        assert_eq!(m.stats().page_fetches, 3);
    }

    #[test]
    fn read_undefined_is_an_error() {
        let mut m = machine(MachineConfig::new(4, 32));
        assert!(matches!(
            m.read(0, 0, 3),
            Err(MachineError::ReadUndefined { .. })
        ));
        assert!(matches!(
            m.read(0, 0, 1000),
            Err(MachineError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn partial_page_refetch_counts_and_upgrades() {
        let cfg = MachineConfig::new(2, 4).with_partial_pages(PartialPagePolicy::Refetch);
        let mut m = DistributedMachine::new(cfg, vec![spec("A", 16, vec![])]).unwrap();
        // Page 1 (addrs 4..8) owned by PE 1. PE 1 fills only addr 4.
        m.write(1, 0, 4, 1.0).unwrap();
        // PE 0 fetches the partial page reading addr 4.
        let (_, k, _) = m.read(0, 0, 4).unwrap();
        assert_eq!(k, AccessKind::RemoteRead);
        // Owner fills addr 5; PE 0's snapshot doesn't have it → refetch.
        m.write(1, 0, 5, 2.0).unwrap();
        let (_, k, _) = m.read(0, 0, 5).unwrap();
        assert_eq!(k, AccessKind::RemoteRead);
        assert_eq!(m.stats().partial_refetches, 1);
        // Snapshot upgraded: both elements now hit.
        assert_eq!(m.read(0, 0, 4).unwrap().1, AccessKind::CachedRead);
        assert_eq!(m.read(0, 0, 5).unwrap().1, AccessKind::CachedRead);
    }

    #[test]
    fn ignore_policy_treats_partial_pages_as_complete() {
        let mut m =
            DistributedMachine::new(MachineConfig::new(2, 4), vec![spec("A", 16, vec![])]).unwrap();
        m.write(1, 0, 4, 1.0).unwrap();
        assert_eq!(m.read(0, 0, 4).unwrap().1, AccessKind::RemoteRead);
        m.write(1, 0, 5, 2.0).unwrap();
        // Paper semantics: the resident page hits even though 5 was not in
        // the original fetch.
        assert_eq!(m.read(0, 0, 5).unwrap().1, AccessKind::CachedRead);
        assert_eq!(m.stats().partial_refetches, 0);
    }

    #[test]
    fn reinit_bumps_generation_invalidates_caches_counts_messages() {
        let mut m = machine(MachineConfig::new(4, 32));
        // Warm PE 0's cache with B page 1.
        m.read(0, 1, 40).unwrap();
        assert_eq!(m.read(0, 1, 41).unwrap().1, AccessKind::CachedRead);
        let sync = m.reinit(1).unwrap();
        assert_eq!(sync.host, 1);
        assert_eq!(sync.total_messages(), 6); // 3 requests + 3 broadcasts
        assert_eq!(m.generation(1), 1);
        assert_eq!(m.stats().reinit_messages, 6);
        // Array is writable again; old cached page can no longer hit.
        m.write(1, 1, 40, 7.0).unwrap();
        assert_eq!(m.read(0, 1, 40).unwrap().1, AccessKind::RemoteRead);
    }

    #[test]
    fn block_partitioning_places_contiguously() {
        let cfg = MachineConfig::new(4, 32).with_partition(PartitionScheme::Block);
        let m = machine(cfg);
        // 4 pages over 4 PEs → one page each, same as modulo here;
        // but with 8 pages (len 256) block differs from modulo.
        let m2 = DistributedMachine::new(
            MachineConfig::new(4, 32).with_partition(PartitionScheme::Block),
            vec![spec("A", 256, vec![])],
        )
        .unwrap();
        assert_eq!(m2.owner_of(0, 0), 0);
        assert_eq!(m2.owner_of(0, 32), 0); // pages 0,1 → PE 0
        assert_eq!(m2.owner_of(0, 64), 1);
        drop(m);
    }

    #[test]
    fn tiled_placement_enforces_owner_computes_by_tile() {
        // 8×8 grid, 2×2-element pages along the flattening, 4 PEs under
        // Tile2D{4,4}: element (0,0) is in tile 0 → PE 0; element (0,4) in
        // tile 1 → PE 1; element (4,0) in tile 2 → PE 2.
        let cfg = MachineConfig::new(4, 2).with_partition(PartitionScheme::Tile2D {
            tile_rows: 4,
            tile_cols: 4,
        });
        let mut m = DistributedMachine::new(
            cfg,
            vec![ArraySpec {
                name: "G".into(),
                len: 64,
                dims: vec![8, 8],
                init: vec![],
            }],
        )
        .unwrap();
        assert_eq!(m.owner_of(0, 0), 0);
        assert_eq!(m.owner_of(0, 4), 1);
        assert_eq!(m.owner_of(0, 4 * 8), 2);
        assert_eq!(m.owner_of(0, 4 * 8 + 4), 3);
        // Owner-computes is enforced against the tile owner.
        m.write(1, 0, 4, 1.0).unwrap();
        assert!(matches!(
            m.write(0, 0, 5, 1.0),
            Err(MachineError::RemoteWrite { owner: 1, .. })
        ));
        // A remote read of PE 1's tile is network traffic for PE 0.
        let (_, k, _) = m.read(0, 0, 4).unwrap();
        assert_eq!(k, AccessKind::RemoteRead);
    }

    #[test]
    fn stats_conservation_total_reads() {
        let mut m = machine(MachineConfig::new(4, 32));
        for addr in 0..100 {
            let _ = m.read(0, 1, addr).unwrap();
        }
        let s = m.stats();
        assert_eq!(
            s.total_reads(),
            s.local_reads() + s.cached_reads() + s.remote_reads()
        );
        assert_eq!(s.total_reads(), 100);
    }

    #[test]
    fn single_pe_everything_local() {
        let mut m = machine(MachineConfig::new(1, 32));
        for addr in 0..100 {
            let (_, k, _) = m.read(0, 1, addr).unwrap();
            assert_eq!(k, AccessKind::LocalRead);
        }
        assert_eq!(m.stats().remote_read_pct(), 0.0);
    }

    #[test]
    fn random_policy_runs() {
        let cfg = MachineConfig::new(4, 32)
            .with_cache_policy(CachePolicy::Random { seed: 42 })
            .with_cache_elems(64); // 2 pages
        let mut m = machine(cfg);
        for addr in 32..100 {
            let _ = m.read(0, 1, addr).unwrap();
        }
        assert!(m.stats().remote_reads() >= 2);
    }
}
