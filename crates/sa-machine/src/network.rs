//! Interconnect models: message and link-load accounting.
//!
//! The paper's abstract claims "the degradation in network performance due
//! to multiprocessing is minimal" and §9 lists "network contention" as the
//! next simulation step. This module provides that step: each remote page
//! fetch is a request/reply pair routed over a topology; we count messages,
//! hops, and per-link traffic so the contention bottleneck (the maximum
//! link load) can be reported alongside remote-read percentages.

use std::collections::HashMap;

/// Interconnect topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkTopology {
    /// Count messages only; zero hops (the paper's implicit model).
    Ideal,
    /// Full crossbar: one hop between any two distinct PEs.
    Crossbar,
    /// Bidirectional ring: minimal cyclic distance.
    Ring,
    /// 2-D mesh (near-square), dimension-ordered (X then Y) routing.
    Mesh2D,
    /// Binary hypercube (PE count rounded up to a power of two),
    /// e-cube routing.
    Hypercube,
}

impl NetworkTopology {
    /// Hop count between `from` and `to` on a machine of `n` PEs.
    pub fn hops(&self, n: usize, from: usize, to: usize) -> u32 {
        if from == to {
            return 0;
        }
        match self {
            NetworkTopology::Ideal => 0,
            NetworkTopology::Crossbar => 1,
            NetworkTopology::Ring => {
                let d = from.abs_diff(to);
                d.min(n - d) as u32
            }
            NetworkTopology::Mesh2D => {
                let cols = mesh_cols(n);
                let (fx, fy) = (from % cols, from / cols);
                let (tx, ty) = (to % cols, to / cols);
                (fx.abs_diff(tx) + fy.abs_diff(ty)) as u32
            }
            NetworkTopology::Hypercube => (from ^ to).count_ones(),
        }
    }

    /// Short name for report tables.
    pub fn name(&self) -> &'static str {
        match self {
            NetworkTopology::Ideal => "ideal",
            NetworkTopology::Crossbar => "crossbar",
            NetworkTopology::Ring => "ring",
            NetworkTopology::Mesh2D => "mesh2d",
            NetworkTopology::Hypercube => "hypercube",
        }
    }
}

/// Column count of the near-square mesh for `n` PEs.
pub fn mesh_cols(n: usize) -> usize {
    (n as f64).sqrt().ceil() as usize
}

/// A directed link between adjacent nodes.
pub type Link = (usize, usize);

/// Message/hop/link accounting for one run.
#[derive(Debug, Clone)]
pub struct Network {
    topology: NetworkTopology,
    n_pes: usize,
    /// Total request+reply messages.
    pub messages: u64,
    /// Total hop traversals (both directions).
    pub hops: u64,
    /// Messages sent per PE (requests it issued).
    pub sent_per_pe: Vec<u64>,
    /// Traffic per directed link (only for hop-routed topologies).
    link_loads: HashMap<Link, u64>,
}

impl Network {
    /// Fresh accounting for `n_pes` PEs on `topology`.
    pub fn new(topology: NetworkTopology, n_pes: usize) -> Self {
        Network {
            topology,
            n_pes,
            messages: 0,
            hops: 0,
            sent_per_pe: vec![0; n_pes],
            link_loads: HashMap::new(),
        }
    }

    /// The configured topology.
    pub fn topology(&self) -> NetworkTopology {
        self.topology
    }

    /// Record a page fetch: a request `from → to` and a reply `to → from`.
    /// Returns the one-way hop count (for the timing model).
    pub fn record_fetch(&mut self, from: usize, to: usize) -> u32 {
        self.record_fetches(from, to, 1)
    }

    /// Record `count` identical page fetches in one accounting step —
    /// message, hop and link-load totals are linear in the count, so bulk
    /// recording is exact (the replay engine's closed-form remote runs).
    pub fn record_fetches(&mut self, from: usize, to: usize, count: u64) -> u32 {
        let h = self.topology.hops(self.n_pes, from, to);
        self.messages += 2 * count;
        self.hops += 2 * h as u64 * count;
        self.sent_per_pe[from] += count;
        self.route_n(from, to, count);
        self.route_n(to, from, count);
        h
    }

    /// Record a single one-way message (host-protocol traffic).
    pub fn record_message(&mut self, from: usize, to: usize) -> u32 {
        let h = self.topology.hops(self.n_pes, from, to);
        self.messages += 1;
        self.hops += h as u64;
        self.sent_per_pe[from] += 1;
        self.route_n(from, to, 1);
        h
    }

    fn route_n(&mut self, from: usize, to: usize, weight: u64) {
        if from == to {
            return;
        }
        match self.topology {
            NetworkTopology::Ideal => {}
            NetworkTopology::Crossbar => {
                *self.link_loads.entry((from, to)).or_insert(0) += weight;
            }
            NetworkTopology::Ring => {
                let n = self.n_pes;
                let d = (to + n - from) % n;
                let step: i64 = if d <= n - d { 1 } else { -1 };
                let mut cur = from as i64;
                while cur as usize != to {
                    let next = (cur + step).rem_euclid(n as i64);
                    *self
                        .link_loads
                        .entry((cur as usize, next as usize))
                        .or_insert(0) += weight;
                    cur = next;
                }
            }
            NetworkTopology::Mesh2D => {
                let cols = mesh_cols(self.n_pes);
                let (mut x, mut y) = (from % cols, from / cols);
                let (tx, ty) = (to % cols, to / cols);
                while x != tx {
                    let nx = if x < tx { x + 1 } else { x - 1 };
                    *self
                        .link_loads
                        .entry((y * cols + x, y * cols + nx))
                        .or_insert(0) += weight;
                    x = nx;
                }
                while y != ty {
                    let ny = if y < ty { y + 1 } else { y - 1 };
                    *self
                        .link_loads
                        .entry((y * cols + x, ny * cols + x))
                        .or_insert(0) += weight;
                    y = ny;
                }
            }
            NetworkTopology::Hypercube => {
                let mut cur = from;
                let mut bit = 0;
                while cur != to {
                    if (cur ^ to) & (1 << bit) != 0 {
                        let next = cur ^ (1 << bit);
                        *self.link_loads.entry((cur, next)).or_insert(0) += weight;
                        cur = next;
                    }
                    bit += 1;
                }
            }
        }
    }

    /// Fold another accounting block into this one: message/hop totals add,
    /// per-PE send counts add, and per-link traffic is summed link by link.
    ///
    /// Network accounting is purely additive, so sharded executions (e.g.
    /// the per-PE access replay of `sa_core::replay`, where every PE records
    /// its own fetches into a private `Network`) merge into exactly the
    /// totals a single sequential accounting pass would have produced.
    ///
    /// Panics if the two blocks describe different machines.
    pub fn merge(&mut self, other: &Network) {
        assert_eq!(self.n_pes, other.n_pes, "PE count mismatch in merge");
        assert_eq!(self.topology, other.topology, "topology mismatch in merge");
        self.messages += other.messages;
        self.hops += other.hops;
        for (a, b) in self.sent_per_pe.iter_mut().zip(&other.sent_per_pe) {
            *a += b;
        }
        for (link, load) in &other.link_loads {
            *self.link_loads.entry(*link).or_insert(0) += load;
        }
    }

    /// Heaviest directed-link traffic — the contention bottleneck.
    pub fn max_link_load(&self) -> u64 {
        self.link_loads.values().copied().max().unwrap_or(0)
    }

    /// Number of distinct links that carried traffic.
    pub fn active_links(&self) -> usize {
        self.link_loads.len()
    }

    /// Mean traffic over active links (0 if none).
    pub fn mean_link_load(&self) -> f64 {
        if self.link_loads.is_empty() {
            0.0
        } else {
            self.link_loads.values().sum::<u64>() as f64 / self.link_loads.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_counts_per_topology() {
        assert_eq!(NetworkTopology::Ideal.hops(8, 0, 5), 0);
        assert_eq!(NetworkTopology::Crossbar.hops(8, 0, 5), 1);
        assert_eq!(NetworkTopology::Crossbar.hops(8, 3, 3), 0);
        // Ring of 8: 0→5 is 3 the short way.
        assert_eq!(NetworkTopology::Ring.hops(8, 0, 5), 3);
        assert_eq!(NetworkTopology::Ring.hops(8, 0, 4), 4);
        // Mesh 3×3 on 9 PEs: 0=(0,0), 8=(2,2) → 4 hops.
        assert_eq!(NetworkTopology::Mesh2D.hops(9, 0, 8), 4);
        // Hypercube: hops = Hamming distance.
        assert_eq!(NetworkTopology::Hypercube.hops(8, 0b000, 0b111), 3);
        assert_eq!(NetworkTopology::Hypercube.hops(8, 0b101, 0b100), 1);
    }

    #[test]
    fn fetch_counts_request_and_reply() {
        let mut n = Network::new(NetworkTopology::Crossbar, 4);
        let h = n.record_fetch(0, 3);
        assert_eq!(h, 1);
        assert_eq!(n.messages, 2);
        assert_eq!(n.hops, 2);
        assert_eq!(n.sent_per_pe, vec![1, 0, 0, 0]);
        assert_eq!(n.active_links(), 2); // 0→3 and 3→0
    }

    #[test]
    fn mesh_routes_dimension_ordered() {
        // 4 PEs → 2×2 mesh. 0=(0,0) to 3=(1,1): X first through node 1.
        let mut n = Network::new(NetworkTopology::Mesh2D, 4);
        n.record_message(0, 3);
        assert_eq!(n.hops, 2);
        assert_eq!(n.active_links(), 2);
        assert_eq!(n.max_link_load(), 1);
    }

    #[test]
    fn ring_takes_short_way_around() {
        let mut n = Network::new(NetworkTopology::Ring, 6);
        n.record_message(0, 5); // short way is 0→5 directly (distance 1)
        assert_eq!(n.hops, 1);
        assert!(n.active_links() == 1);
    }

    #[test]
    fn hypercube_ecube_routing_loads_each_dimension_once() {
        let mut n = Network::new(NetworkTopology::Hypercube, 8);
        n.record_message(0b000, 0b110);
        assert_eq!(n.hops, 2);
        assert_eq!(n.active_links(), 2);
    }

    #[test]
    fn contention_metrics_aggregate() {
        let mut n = Network::new(NetworkTopology::Ring, 4);
        // Everyone sends to PE 0; links near 0 get hot.
        for from in 1..4 {
            n.record_message(from, 0);
        }
        assert!(n.max_link_load() >= 1);
        assert!(n.mean_link_load() >= 1.0);
        // Ideal topology records messages but no links.
        let mut i = Network::new(NetworkTopology::Ideal, 4);
        i.record_fetch(1, 2);
        assert_eq!(i.messages, 2);
        assert_eq!(i.max_link_load(), 0);
        assert_eq!(i.mean_link_load(), 0.0);
    }

    #[test]
    fn merge_matches_sequential_accounting() {
        // Recording fetches into two shards and merging must equal one
        // sequential accounting pass over the same events.
        let events = [(0usize, 3usize), (1, 2), (3, 0), (2, 0), (0, 3)];
        let mut sequential = Network::new(NetworkTopology::Ring, 4);
        for &(f, t) in &events {
            sequential.record_fetch(f, t);
        }
        let mut a = Network::new(NetworkTopology::Ring, 4);
        let mut b = Network::new(NetworkTopology::Ring, 4);
        for (i, &(f, t)) in events.iter().enumerate() {
            if i % 2 == 0 {
                a.record_fetch(f, t);
            } else {
                b.record_fetch(f, t);
            }
        }
        a.merge(&b);
        assert_eq!(a.messages, sequential.messages);
        assert_eq!(a.hops, sequential.hops);
        assert_eq!(a.sent_per_pe, sequential.sent_per_pe);
        assert_eq!(a.max_link_load(), sequential.max_link_load());
        assert_eq!(a.active_links(), sequential.active_links());
        assert_eq!(a.mean_link_load(), sequential.mean_link_load());
    }

    #[test]
    fn self_messages_cost_nothing() {
        let mut n = Network::new(NetworkTopology::Mesh2D, 9);
        let h = n.record_message(4, 4);
        assert_eq!(h, 0);
        assert_eq!(n.hops, 0);
        assert_eq!(n.active_links(), 0);
    }
}
