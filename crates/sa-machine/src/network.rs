//! Interconnect models: message and link-load accounting.
//!
//! The paper's abstract claims "the degradation in network performance due
//! to multiprocessing is minimal" and §9 lists "network contention" as the
//! next simulation step. This module provides that step: each remote page
//! fetch is a request/reply pair routed over a topology; we count messages,
//! hops, and per-link traffic so the contention bottleneck (the maximum
//! link load) can be reported alongside remote-read percentages.

use std::collections::HashMap;

/// How a topology measures and routes point-to-point traffic.
///
/// A link model answers two questions for a machine of `n` PEs: how many
/// link traversals a message `from → to` costs ([`hops`](LinkModel::hops)),
/// and which directed links it crosses on the way
/// ([`route`](LinkModel::route)). [`Network`] calls both on every recorded
/// message, so implementing this trait for a new interconnect is all it
/// takes for message, hop, and per-link contention accounting — on the
/// counting simulator, the replay engine, and the thread runtime alike —
/// to understand it.
///
/// The contract the accounting relies on:
///
/// * `hops(n, p, p) == 0` and `route` visits nothing for a self-message;
/// * `route(n, from, to, visit)` invokes `visit` exactly `hops(n, from,
///   to)` times, once per traversed directed link;
/// * link endpoints passed to `visit` are node ids — they may exceed
///   `n - 1` for switch-only intermediate nodes (a ragged torus row, the
///   [`Bus`](NetworkTopology::Bus)'s shared medium), which carry traffic
///   but never originate it;
/// * models are stateless and [`Sync`], so sharded engines can share one
///   `&'static` instance.
pub trait LinkModel: Sync {
    /// Short name for report tables.
    fn name(&self) -> &'static str;
    /// Link traversals for a message `from → to` on `n` PEs.
    fn hops(&self, n: usize, from: usize, to: usize) -> u32;
    /// Visit each directed link of the route `from → to`, in order.
    fn route(&self, n: usize, from: usize, to: usize, visit: &mut dyn FnMut(usize, usize));
}

/// Interconnect topology. Each variant is backed by a [`LinkModel`]
/// (see [`NetworkTopology::model`]) that defines its distance metric and
/// its routing — the enum is the cheap, `Copy` configuration handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkTopology {
    /// Count messages only; zero hops (the paper's implicit model).
    Ideal,
    /// Full crossbar: one hop between any two distinct PEs.
    Crossbar,
    /// A single shared medium: one hop between any two distinct PEs, but
    /// *every* message loads the same link, so `max_link_load` equals the
    /// total bus traffic — the serialization bottleneck made visible.
    Bus,
    /// Bidirectional ring: minimal cyclic distance.
    Ring,
    /// 2-D mesh (near-square), dimension-ordered (X then Y) routing.
    Mesh2D,
    /// 2-D torus: the mesh plus wraparound links, so each dimension's
    /// distance is cyclic. Ragged PE counts are laid out on the full
    /// near-square rectangle; the unpopulated positions act as
    /// switch-only nodes.
    Torus2D,
    /// Binary hypercube (PE count rounded up to a power of two),
    /// e-cube routing.
    Hypercube,
}

/// The paper's implicit zero-cost interconnect.
struct IdealModel;
/// One hop between any pair; every pair is its own link.
struct CrossbarModel;
/// One shared link for everything.
struct BusModel;
/// Bidirectional ring, shortest way around.
struct RingModel;
/// Near-square mesh, dimension-ordered routing.
struct Mesh2DModel;
/// Near-square torus: per-dimension cyclic shortest way.
struct Torus2DModel;
/// Binary hypercube, e-cube (ascending-bit) routing.
struct HypercubeModel;

impl LinkModel for IdealModel {
    fn name(&self) -> &'static str {
        "ideal"
    }
    fn hops(&self, _n: usize, _from: usize, _to: usize) -> u32 {
        0
    }
    fn route(&self, _n: usize, _from: usize, _to: usize, _visit: &mut dyn FnMut(usize, usize)) {}
}

impl LinkModel for CrossbarModel {
    fn name(&self) -> &'static str {
        "crossbar"
    }
    fn hops(&self, _n: usize, from: usize, to: usize) -> u32 {
        u32::from(from != to)
    }
    fn route(&self, _n: usize, from: usize, to: usize, visit: &mut dyn FnMut(usize, usize)) {
        if from != to {
            visit(from, to);
        }
    }
}

impl LinkModel for BusModel {
    fn name(&self) -> &'static str {
        "bus"
    }
    fn hops(&self, _n: usize, from: usize, to: usize) -> u32 {
        u32::from(from != to)
    }
    fn route(&self, n: usize, from: usize, to: usize, visit: &mut dyn FnMut(usize, usize)) {
        if from != to {
            // The shared medium is modeled as the single pseudo-link
            // (n, n + 1) — ids no real PE pair can collide with — so all
            // traffic aggregates onto one contention figure.
            visit(n, n + 1);
        }
    }
}

impl LinkModel for RingModel {
    fn name(&self) -> &'static str {
        "ring"
    }
    fn hops(&self, n: usize, from: usize, to: usize) -> u32 {
        let d = from.abs_diff(to);
        d.min(n - d) as u32
    }
    fn route(&self, n: usize, from: usize, to: usize, visit: &mut dyn FnMut(usize, usize)) {
        if from == to {
            return;
        }
        let d = (to + n - from) % n;
        let step: i64 = if d <= n - d { 1 } else { -1 };
        let mut cur = from as i64;
        while cur as usize != to {
            let next = (cur + step).rem_euclid(n as i64);
            visit(cur as usize, next as usize);
            cur = next;
        }
    }
}

impl LinkModel for Mesh2DModel {
    fn name(&self) -> &'static str {
        "mesh2d"
    }
    fn hops(&self, n: usize, from: usize, to: usize) -> u32 {
        let cols = mesh_cols(n);
        let (fx, fy) = (from % cols, from / cols);
        let (tx, ty) = (to % cols, to / cols);
        (fx.abs_diff(tx) + fy.abs_diff(ty)) as u32
    }
    fn route(&self, n: usize, from: usize, to: usize, visit: &mut dyn FnMut(usize, usize)) {
        let cols = mesh_cols(n);
        let (mut x, mut y) = (from % cols, from / cols);
        let (tx, ty) = (to % cols, to / cols);
        while x != tx {
            let nx = if x < tx { x + 1 } else { x - 1 };
            visit(y * cols + x, y * cols + nx);
            x = nx;
        }
        while y != ty {
            let ny = if y < ty { y + 1 } else { y - 1 };
            visit(y * cols + x, ny * cols + x);
            y = ny;
        }
    }
}

impl LinkModel for Torus2DModel {
    fn name(&self) -> &'static str {
        "torus2d"
    }
    fn hops(&self, n: usize, from: usize, to: usize) -> u32 {
        if from == to {
            return 0;
        }
        let cols = mesh_cols(n);
        let rows = n.div_ceil(cols).max(1);
        let (fx, fy) = (from % cols, from / cols);
        let (tx, ty) = (to % cols, to / cols);
        let dx = fx.abs_diff(tx);
        let dy = fy.abs_diff(ty);
        (dx.min(cols - dx) + dy.min(rows - dy)) as u32
    }
    fn route(&self, n: usize, from: usize, to: usize, visit: &mut dyn FnMut(usize, usize)) {
        if from == to {
            return;
        }
        let cols = mesh_cols(n);
        let rows = n.div_ceil(cols).max(1);
        let (mut x, mut y) = (from % cols, from / cols);
        let (tx, ty) = (to % cols, to / cols);
        // X first, short way around the cycle (wrap links included);
        // intermediate (y, x) positions on a ragged rectangle may not be
        // populated PEs — they are switch-only nodes.
        while x != tx {
            let d = (tx + cols - x) % cols;
            let nx = if d <= cols - d {
                (x + 1) % cols
            } else {
                (x + cols - 1) % cols
            };
            visit(y * cols + x, y * cols + nx);
            x = nx;
        }
        while y != ty {
            let d = (ty + rows - y) % rows;
            let ny = if d <= rows - d {
                (y + 1) % rows
            } else {
                (y + rows - 1) % rows
            };
            visit(y * cols + x, ny * cols + x);
            y = ny;
        }
    }
}

impl LinkModel for HypercubeModel {
    fn name(&self) -> &'static str {
        "hypercube"
    }
    fn hops(&self, _n: usize, from: usize, to: usize) -> u32 {
        (from ^ to).count_ones()
    }
    fn route(&self, _n: usize, from: usize, to: usize, visit: &mut dyn FnMut(usize, usize)) {
        let mut cur = from;
        let mut bit = 0;
        while cur != to {
            if (cur ^ to) & (1 << bit) != 0 {
                let next = cur ^ (1 << bit);
                visit(cur, next);
                cur = next;
            }
            bit += 1;
        }
    }
}

impl NetworkTopology {
    /// The [`LinkModel`] backing this topology. Models are stateless unit
    /// values, shared as `&'static` across threads and shards.
    pub fn model(&self) -> &'static dyn LinkModel {
        match self {
            NetworkTopology::Ideal => &IdealModel,
            NetworkTopology::Crossbar => &CrossbarModel,
            NetworkTopology::Bus => &BusModel,
            NetworkTopology::Ring => &RingModel,
            NetworkTopology::Mesh2D => &Mesh2DModel,
            NetworkTopology::Torus2D => &Torus2DModel,
            NetworkTopology::Hypercube => &HypercubeModel,
        }
    }

    /// Hop count between `from` and `to` on a machine of `n` PEs.
    pub fn hops(&self, n: usize, from: usize, to: usize) -> u32 {
        if from == to {
            return 0;
        }
        self.model().hops(n, from, to)
    }

    /// Short name for report tables.
    pub fn name(&self) -> &'static str {
        self.model().name()
    }
}

/// Column count of the near-square mesh for `n` PEs.
pub fn mesh_cols(n: usize) -> usize {
    (n as f64).sqrt().ceil() as usize
}

/// A directed link between adjacent nodes.
pub type Link = (usize, usize);

/// Message/hop/link accounting for one run.
#[derive(Debug, Clone)]
pub struct Network {
    topology: NetworkTopology,
    n_pes: usize,
    /// Total request+reply messages.
    pub messages: u64,
    /// Total hop traversals (both directions).
    pub hops: u64,
    /// Messages sent per PE (requests it issued).
    pub sent_per_pe: Vec<u64>,
    /// Traffic per directed link (only for hop-routed topologies).
    link_loads: HashMap<Link, u64>,
}

impl Network {
    /// Fresh accounting for `n_pes` PEs on `topology`.
    pub fn new(topology: NetworkTopology, n_pes: usize) -> Self {
        Network {
            topology,
            n_pes,
            messages: 0,
            hops: 0,
            sent_per_pe: vec![0; n_pes],
            link_loads: HashMap::new(),
        }
    }

    /// The configured topology.
    pub fn topology(&self) -> NetworkTopology {
        self.topology
    }

    /// Record a page fetch: a request `from → to` and a reply `to → from`.
    /// Returns the one-way hop count (for the timing model).
    pub fn record_fetch(&mut self, from: usize, to: usize) -> u32 {
        self.record_fetches(from, to, 1)
    }

    /// Record `count` identical page fetches in one accounting step —
    /// message, hop and link-load totals are linear in the count, so bulk
    /// recording is exact (the replay engine's closed-form remote runs).
    pub fn record_fetches(&mut self, from: usize, to: usize, count: u64) -> u32 {
        let h = self.topology.hops(self.n_pes, from, to);
        self.messages += 2 * count;
        self.hops += 2 * h as u64 * count;
        self.sent_per_pe[from] += count;
        self.route_n(from, to, count);
        self.route_n(to, from, count);
        h
    }

    /// Record a single one-way message (host-protocol traffic).
    pub fn record_message(&mut self, from: usize, to: usize) -> u32 {
        let h = self.topology.hops(self.n_pes, from, to);
        self.messages += 1;
        self.hops += h as u64;
        self.sent_per_pe[from] += 1;
        self.route_n(from, to, 1);
        h
    }

    fn route_n(&mut self, from: usize, to: usize, weight: u64) {
        if from == to {
            return;
        }
        let loads = &mut self.link_loads;
        self.topology
            .model()
            .route(self.n_pes, from, to, &mut |a, b| {
                *loads.entry((a, b)).or_insert(0) += weight;
            });
    }

    /// Fold another accounting block into this one: message/hop totals add,
    /// per-PE send counts add, and per-link traffic is summed link by link.
    ///
    /// Network accounting is purely additive, so sharded executions (e.g.
    /// the per-PE access replay of `sa_core::replay`, where every PE records
    /// its own fetches into a private `Network`) merge into exactly the
    /// totals a single sequential accounting pass would have produced.
    ///
    /// Panics if the two blocks describe different machines.
    pub fn merge(&mut self, other: &Network) {
        assert_eq!(self.n_pes, other.n_pes, "PE count mismatch in merge");
        assert_eq!(self.topology, other.topology, "topology mismatch in merge");
        self.messages += other.messages;
        self.hops += other.hops;
        for (a, b) in self.sent_per_pe.iter_mut().zip(&other.sent_per_pe) {
            *a += b;
        }
        for (link, load) in &other.link_loads {
            *self.link_loads.entry(*link).or_insert(0) += load;
        }
    }

    /// Heaviest directed-link traffic — the contention bottleneck.
    pub fn max_link_load(&self) -> u64 {
        self.link_loads.values().copied().max().unwrap_or(0)
    }

    /// Number of distinct links that carried traffic.
    pub fn active_links(&self) -> usize {
        self.link_loads.len()
    }

    /// Mean traffic over active links (0 if none).
    pub fn mean_link_load(&self) -> f64 {
        if self.link_loads.is_empty() {
            0.0
        } else {
            self.link_loads.values().sum::<u64>() as f64 / self.link_loads.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_counts_per_topology() {
        assert_eq!(NetworkTopology::Ideal.hops(8, 0, 5), 0);
        assert_eq!(NetworkTopology::Crossbar.hops(8, 0, 5), 1);
        assert_eq!(NetworkTopology::Crossbar.hops(8, 3, 3), 0);
        // Ring of 8: 0→5 is 3 the short way.
        assert_eq!(NetworkTopology::Ring.hops(8, 0, 5), 3);
        assert_eq!(NetworkTopology::Ring.hops(8, 0, 4), 4);
        // Mesh 3×3 on 9 PEs: 0=(0,0), 8=(2,2) → 4 hops.
        assert_eq!(NetworkTopology::Mesh2D.hops(9, 0, 8), 4);
        // Hypercube: hops = Hamming distance.
        assert_eq!(NetworkTopology::Hypercube.hops(8, 0b000, 0b111), 3);
        assert_eq!(NetworkTopology::Hypercube.hops(8, 0b101, 0b100), 1);
    }

    #[test]
    fn fetch_counts_request_and_reply() {
        let mut n = Network::new(NetworkTopology::Crossbar, 4);
        let h = n.record_fetch(0, 3);
        assert_eq!(h, 1);
        assert_eq!(n.messages, 2);
        assert_eq!(n.hops, 2);
        assert_eq!(n.sent_per_pe, vec![1, 0, 0, 0]);
        assert_eq!(n.active_links(), 2); // 0→3 and 3→0
    }

    #[test]
    fn mesh_routes_dimension_ordered() {
        // 4 PEs → 2×2 mesh. 0=(0,0) to 3=(1,1): X first through node 1.
        let mut n = Network::new(NetworkTopology::Mesh2D, 4);
        n.record_message(0, 3);
        assert_eq!(n.hops, 2);
        assert_eq!(n.active_links(), 2);
        assert_eq!(n.max_link_load(), 1);
    }

    #[test]
    fn ring_takes_short_way_around() {
        let mut n = Network::new(NetworkTopology::Ring, 6);
        n.record_message(0, 5); // short way is 0→5 directly (distance 1)
        assert_eq!(n.hops, 1);
        assert!(n.active_links() == 1);
    }

    #[test]
    fn hypercube_ecube_routing_loads_each_dimension_once() {
        let mut n = Network::new(NetworkTopology::Hypercube, 8);
        n.record_message(0b000, 0b110);
        assert_eq!(n.hops, 2);
        assert_eq!(n.active_links(), 2);
    }

    #[test]
    fn contention_metrics_aggregate() {
        let mut n = Network::new(NetworkTopology::Ring, 4);
        // Everyone sends to PE 0; links near 0 get hot.
        for from in 1..4 {
            n.record_message(from, 0);
        }
        assert!(n.max_link_load() >= 1);
        assert!(n.mean_link_load() >= 1.0);
        // Ideal topology records messages but no links.
        let mut i = Network::new(NetworkTopology::Ideal, 4);
        i.record_fetch(1, 2);
        assert_eq!(i.messages, 2);
        assert_eq!(i.max_link_load(), 0);
        assert_eq!(i.mean_link_load(), 0.0);
    }

    #[test]
    fn merge_matches_sequential_accounting() {
        // Recording fetches into two shards and merging must equal one
        // sequential accounting pass over the same events.
        let events = [(0usize, 3usize), (1, 2), (3, 0), (2, 0), (0, 3)];
        let mut sequential = Network::new(NetworkTopology::Ring, 4);
        for &(f, t) in &events {
            sequential.record_fetch(f, t);
        }
        let mut a = Network::new(NetworkTopology::Ring, 4);
        let mut b = Network::new(NetworkTopology::Ring, 4);
        for (i, &(f, t)) in events.iter().enumerate() {
            if i % 2 == 0 {
                a.record_fetch(f, t);
            } else {
                b.record_fetch(f, t);
            }
        }
        a.merge(&b);
        assert_eq!(a.messages, sequential.messages);
        assert_eq!(a.hops, sequential.hops);
        assert_eq!(a.sent_per_pe, sequential.sent_per_pe);
        assert_eq!(a.max_link_load(), sequential.max_link_load());
        assert_eq!(a.active_links(), sequential.active_links());
        assert_eq!(a.mean_link_load(), sequential.mean_link_load());
    }

    #[test]
    fn bus_serializes_everything_onto_one_link() {
        let mut n = Network::new(NetworkTopology::Bus, 4);
        n.record_fetch(0, 3);
        n.record_fetch(1, 2);
        n.record_message(2, 0);
        // 2 + 2 + 1 messages, each one hop over the shared medium.
        assert_eq!(n.messages, 5);
        assert_eq!(n.hops, 5);
        assert_eq!(n.active_links(), 1);
        assert_eq!(n.max_link_load(), 5);
    }

    #[test]
    fn torus_wraps_where_mesh_walks() {
        // 3×3 grid: corner to corner is 4 mesh hops but 2 torus hops
        // (one wrap per dimension).
        assert_eq!(NetworkTopology::Mesh2D.hops(9, 0, 8), 4);
        assert_eq!(NetworkTopology::Torus2D.hops(9, 0, 8), 2);
        let mut n = Network::new(NetworkTopology::Torus2D, 9);
        n.record_message(0, 8);
        assert_eq!(n.hops, 2);
        assert_eq!(n.active_links(), 2);
    }

    #[test]
    fn every_route_visits_exactly_hops_links() {
        // The LinkModel contract: route() emits one visit per hop, for
        // every topology and every ordered PE pair, including ragged
        // (non-square, non-power-of-two) machine sizes.
        for topo in [
            NetworkTopology::Ideal,
            NetworkTopology::Crossbar,
            NetworkTopology::Bus,
            NetworkTopology::Ring,
            NetworkTopology::Mesh2D,
            NetworkTopology::Torus2D,
            NetworkTopology::Hypercube,
        ] {
            for n in [1usize, 2, 4, 6, 7, 9, 16] {
                for from in 0..n {
                    for to in 0..n {
                        let mut visits = 0u32;
                        topo.model().route(n, from, to, &mut |a, b| {
                            assert_ne!(a, b, "{topo:?} n={n} degenerate link");
                            visits += 1;
                        });
                        assert_eq!(
                            visits,
                            topo.hops(n, from, to),
                            "{topo:?} n={n} {from}->{to}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn names_cover_all_topologies() {
        assert_eq!(NetworkTopology::Bus.name(), "bus");
        assert_eq!(NetworkTopology::Torus2D.name(), "torus2d");
        assert_eq!(NetworkTopology::Mesh2D.name(), "mesh2d");
    }

    #[test]
    fn self_messages_cost_nothing() {
        let mut n = Network::new(NetworkTopology::Mesh2D, 9);
        let h = n.record_message(4, 4);
        assert_eq!(h, 0);
        assert_eq!(n.hops, 0);
        assert_eq!(n.active_links(), 0);
    }
}
