//! Page-granular data partitioning schemes.
//!
//! The paper's rule (§2): "Data partitioning is accomplished by segmenting
//! each array into pages of some fixed (perhaps parameterized) size. A page
//! *p* is allocated to the local memory of PE *P* if *p = P mod N*."
//! The future-work section (§9) observes that "our simple modulo
//! partitioning scheme performs worse for certain loops than a division
//! scheme" — [`PartitionScheme::Block`] is that division scheme, and
//! [`PartitionScheme::BlockCyclic`] generalizes both.

/// The page index containing linear address `addr`.
pub fn page_of(addr: usize, page_size: usize) -> usize {
    debug_assert!(page_size > 0);
    addr / page_size
}

/// Number of pages needed for `len` elements.
pub fn pages_in(len: usize, page_size: usize) -> usize {
    debug_assert!(page_size > 0);
    len.div_ceil(page_size)
}

/// How pages map onto PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Paper §2: page `p` lives on PE `p mod N` (round-robin / cyclic).
    Modulo,
    /// The "division scheme" (§9): contiguous chunks of `ceil(P/N)` pages
    /// per PE, like HPF `BLOCK` distribution.
    Block,
    /// Chunks of `block_pages` pages dealt round-robin — `BlockCyclic(1)`
    /// is `Modulo`; `BlockCyclic(ceil(P/N))` is `Block`.
    BlockCyclic {
        /// Pages per dealt chunk (≥ 1).
        block_pages: usize,
    },
    /// Contiguous bands of grid *rows* per PE (HPF `BLOCK` on the leading
    /// dimension). Geometry-aware: owners follow the array's declared shape
    /// through [`crate::Placement`]. Without geometry (this enum alone),
    /// rows degenerate to pages and the scheme coincides with [`Block`]
    /// — see [`PartitionScheme::owner`].
    ///
    /// [`Block`]: PartitionScheme::Block
    RowBand,
    /// 2-D tiles of `tile_rows × tile_cols` grid elements, dealt to PEs
    /// round-robin in row-major tile order. Geometry-aware via
    /// [`crate::Placement`]; without geometry it degenerates to
    /// [`BlockCyclic`] with `block_pages = tile_rows` — see
    /// [`PartitionScheme::owner`].
    ///
    /// [`BlockCyclic`]: PartitionScheme::BlockCyclic
    Tile2D {
        /// Tile height in grid rows (≥ 1).
        tile_rows: usize,
        /// Tile width in grid columns (≥ 1).
        tile_cols: usize,
    },
}

impl PartitionScheme {
    /// Owning PE of `page` within an array of `total_pages`, on `n_pes` PEs.
    ///
    /// The result is **always** `< n_pes`, including at the edges of the
    /// domain — each handled by explicit clamping, never by wrap-around
    /// arithmetic that happens to stay in range:
    ///
    /// * `total_pages == 0` — an empty array owns no pages; the (vacuous)
    ///   answer for any `page` is PE 0 under every scheme, so callers that
    ///   iterate `0..pages_in(0, ps)` never observe it and callers that ask
    ///   anyway get a stable value.
    /// * `total_pages < n_pes` — `Block`'s chunk size clamps to 1, so page
    ///   `p` lands on PE `p` and the surplus PEs own nothing (matching the
    ///   paper's partial-allocation example in §2).
    /// * `page >= total_pages` (out of domain) — tolerated, but the schemes
    ///   are deliberately asymmetric about it: `Modulo` and `BlockCyclic`
    ///   **wrap** (owner keeps cycling as if the array were larger), while
    ///   `Block` and the tiled schemes (`RowBand`, `Tile2D`) **clamp** — an
    ///   out-of-domain page is owned by the same PE as the last real page,
    ///   never wrapped back to PE 0. Clamping is the contract the
    ///   geometry-aware [`crate::Placement`] relies on: it derives a page's
    ///   owner from its *first in-domain element*, so a trailing partial
    ///   page can never be attributed to a PE that owns no part of it.
    ///   Both behaviors are defined in all builds and pinned by tests
    ///   (this used to be a debug-only assertion, which left the
    ///   asymmetry unstated and untestable).
    /// * `BlockCyclic { block_pages: 0 }` — rejected by
    ///   [`crate::MachineConfig::validate`]; here it clamps to chunks of 1
    ///   (≡ `Modulo`) so a hand-built scheme still cannot divide by zero.
    ///   `RowBand`/`Tile2D` tile extents clamp to 1 the same way.
    ///
    /// Without geometry this page-space view treats the array as a
    /// one-column grid (`rows = total_pages`, `cols = 1`, tile extents in
    /// pages), under which `RowBand` coincides with `Block` and
    /// `Tile2D { tile_rows: r, .. }` with `BlockCyclic { block_pages: r }`.
    /// Engines always route ownership through [`crate::Placement`], which
    /// applies the true declared shape; this degenerate view exists so the
    /// enum alone is still total.
    ///
    /// `n_pes == 0` has no meaningful answer and panics in all builds.
    pub fn owner(&self, page: usize, total_pages: usize, n_pes: usize) -> usize {
        assert!(n_pes > 0, "owner() on a machine with zero PEs");
        if total_pages == 0 {
            return 0;
        }
        match *self {
            PartitionScheme::Modulo => page % n_pes,
            PartitionScheme::Block | PartitionScheme::RowBand => {
                let chunk = total_pages.div_ceil(n_pes).max(1);
                (page / chunk).min(n_pes - 1)
            }
            PartitionScheme::BlockCyclic { block_pages } => {
                let b = block_pages.max(1);
                (page / b) % n_pes
            }
            PartitionScheme::Tile2D { tile_rows, .. } => {
                let b = tile_rows.max(1);
                (page / b) % n_pes
            }
        }
    }

    /// Short name used in report tables.
    pub fn name(&self) -> String {
        match self {
            PartitionScheme::Modulo => "modulo".to_string(),
            PartitionScheme::Block => "block".to_string(),
            PartitionScheme::BlockCyclic { block_pages } => format!("blockcyclic({block_pages})"),
            PartitionScheme::RowBand => "rowband".to_string(),
            PartitionScheme::Tile2D {
                tile_rows,
                tile_cols,
            } => format!("tile2d({tile_rows}x{tile_cols})"),
        }
    }

    /// Pages of an array owned by `pe` (ascending).
    pub fn pages_of_pe(&self, pe: usize, total_pages: usize, n_pes: usize) -> Vec<usize> {
        (0..total_pages)
            .filter(|&p| self.owner(p, total_pages, n_pes) == pe)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        assert_eq!(page_of(0, 32), 0);
        assert_eq!(page_of(31, 32), 0);
        assert_eq!(page_of(32, 32), 1);
        assert_eq!(pages_in(100, 32), 4); // paper's example: 3 full + 1 partial
        assert_eq!(pages_in(96, 32), 3);
        assert_eq!(pages_in(1, 32), 1);
        assert_eq!(pages_in(0, 32), 0);
    }

    #[test]
    fn modulo_matches_paper_example() {
        // Paper §2: 4 PEs, page size 32, arrays of 100 elements → PEs 0..2
        // hold one full page each, PE 3 holds the partial page.
        let s = PartitionScheme::Modulo;
        let pages = pages_in(100, 32);
        assert_eq!(pages, 4);
        assert_eq!(s.owner(0, pages, 4), 0);
        assert_eq!(s.owner(1, pages, 4), 1);
        assert_eq!(s.owner(2, pages, 4), 2);
        assert_eq!(s.owner(3, pages, 4), 3);
        // Wraps for more pages than PEs.
        assert_eq!(s.owner(5, 8, 4), 1);
    }

    #[test]
    fn block_divides_contiguously() {
        let s = PartitionScheme::Block;
        // 8 pages over 4 PEs → chunks of 2.
        for p in 0..8 {
            assert_eq!(s.owner(p, 8, 4), p / 2);
        }
        // 9 pages over 4 PEs → chunks of 3: PE0 gets 0..2, PE1 3..5, PE2 6..8.
        assert_eq!(s.owner(8, 9, 4), 2);
        // Degenerate: fewer pages than PEs.
        assert_eq!(s.owner(0, 1, 16), 0);
    }

    #[test]
    fn blockcyclic_generalizes_both() {
        let pages = 12;
        let n = 3;
        for p in 0..pages {
            assert_eq!(
                PartitionScheme::BlockCyclic { block_pages: 1 }.owner(p, pages, n),
                PartitionScheme::Modulo.owner(p, pages, n)
            );
            assert_eq!(
                PartitionScheme::BlockCyclic { block_pages: 4 }.owner(p, pages, n),
                PartitionScheme::Block.owner(p, pages, n)
            );
        }
    }

    #[test]
    fn every_page_has_exactly_one_owner_in_range() {
        for &scheme in &[
            PartitionScheme::Modulo,
            PartitionScheme::Block,
            PartitionScheme::BlockCyclic { block_pages: 3 },
        ] {
            for &(pages, n) in &[(1usize, 1usize), (7, 3), (64, 8), (10, 64)] {
                for p in 0..pages {
                    let o = scheme.owner(p, pages, n);
                    assert!(
                        o < n,
                        "{scheme:?} page {p}/{pages} on {n} PEs gave owner {o}"
                    );
                }
            }
        }
    }

    #[test]
    fn pages_of_pe_partitions_the_page_set() {
        let scheme = PartitionScheme::Modulo;
        let mut all = Vec::new();
        for pe in 0..4 {
            all.extend(scheme.pages_of_pe(pe, 10, 4));
        }
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn single_pe_owns_everything() {
        for &scheme in &[PartitionScheme::Modulo, PartitionScheme::Block] {
            for p in 0..20 {
                assert_eq!(scheme.owner(p, 20, 1), 0);
            }
        }
    }

    #[test]
    fn empty_array_owner_is_stable_zero() {
        for scheme in [
            PartitionScheme::Modulo,
            PartitionScheme::Block,
            PartitionScheme::BlockCyclic { block_pages: 3 },
        ] {
            for page in [0usize, 1, 7] {
                assert_eq!(scheme.owner(page, 0, 4), 0);
            }
            assert!(scheme.pages_of_pe(0, 0, 4).is_empty());
        }
    }

    #[test]
    fn fewer_pages_than_pes_leaves_surplus_pes_empty() {
        // 3 pages on 8 PEs: Block clamps its chunk to 1 page, so pages land
        // on PEs 0..3 and PEs 3..8 own nothing; Modulo agrees here.
        for scheme in [PartitionScheme::Modulo, PartitionScheme::Block] {
            for p in 0..3 {
                assert_eq!(scheme.owner(p, 3, 8), p, "{scheme:?}");
            }
            for pe in 3..8 {
                assert!(
                    scheme.pages_of_pe(pe, 3, 8).is_empty(),
                    "{scheme:?} PE {pe}"
                );
            }
        }
    }

    #[test]
    fn zero_block_pages_clamps_to_modulo() {
        // Rejected by config validation, but a hand-built scheme must still
        // be total: chunks clamp to 1 page, i.e. plain modulo placement.
        let degenerate = PartitionScheme::BlockCyclic { block_pages: 0 };
        for p in 0..24 {
            assert_eq!(
                degenerate.owner(p, 24, 5),
                PartitionScheme::Modulo.owner(p, 24, 5)
            );
        }
    }

    #[test]
    fn geometryless_tiled_schemes_have_documented_degenerates() {
        // Without a declared shape, RowBand is Block-over-pages and
        // Tile2D{r, c} is BlockCyclic{r}: the same tile formulas applied to
        // the one-column page grid. Placement supplies the real geometry.
        let pages = 17;
        for n in [1usize, 3, 4, 8] {
            for p in 0..pages {
                assert_eq!(
                    PartitionScheme::RowBand.owner(p, pages, n),
                    PartitionScheme::Block.owner(p, pages, n)
                );
                assert_eq!(
                    PartitionScheme::Tile2D {
                        tile_rows: 3,
                        tile_cols: 5
                    }
                    .owner(p, pages, n),
                    PartitionScheme::BlockCyclic { block_pages: 3 }.owner(p, pages, n)
                );
            }
        }
    }

    #[test]
    fn tiled_schemes_clamp_out_of_domain_pages() {
        // The clamp asymmetry, pinned: Modulo/BlockCyclic wrap out-of-domain
        // pages, Block and the tiled schemes clamp. A release-mode caller
        // probing one page past a 6-page array must see the last real
        // owner, never a wrap back to PE 0.
        let pages = 6;
        let n = 3;
        let last = PartitionScheme::Block.owner(pages - 1, pages, n);
        assert_eq!(PartitionScheme::Block.owner(pages, pages, n), last);
        assert_eq!(PartitionScheme::RowBand.owner(pages, pages, n), last);
        // Wrapping schemes cycle on.
        assert_eq!(PartitionScheme::Modulo.owner(pages, pages, n), pages % n);
    }

    #[test]
    #[should_panic(expected = "zero PEs")]
    fn zero_pes_panics() {
        PartitionScheme::Modulo.owner(0, 4, 0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PartitionScheme::Modulo.name(), "modulo");
        assert_eq!(PartitionScheme::Block.name(), "block");
        assert_eq!(
            PartitionScheme::BlockCyclic { block_pages: 2 }.name(),
            "blockcyclic(2)"
        );
    }
}
