//! Geometry-aware page placement: one shared owner path for every engine.
//!
//! The paper's §2 placement is linear — page `p` of a *flattened* array
//! goes to PE `p mod N` — which is exactly what [`PartitionScheme::owner`]
//! computes. That loses the grid structure 2-D/3-D workloads have: a
//! stencil's halo traffic depends on *where in the grid* a page sits, not
//! on its flattened index. [`Placement`] carries the declared array shape
//! next to the scheme so the tiled schemes ([`PartitionScheme::RowBand`],
//! [`PartitionScheme::Tile2D`]) can compute owners by grid tile, while the
//! legacy page-linear schemes keep their §2 arithmetic bit for bit.
//!
//! Every owner decision in the system — counting simulator, replay engine,
//! thread runtime, lint estimator, legality and deadlock passes — routes
//! through this type, so a scheme added here is automatically understood
//! everywhere.
//!
//! ## The first-element rule
//!
//! Pages remain the unit of distribution (the paper's fetch/caching model
//! is untouched): a page's owner is the owner of its **first in-domain
//! element**, `e = min(page · page_size, len − 1)`. This keeps every page
//! on exactly one PE under any scheme, and it *clamps* rather than wraps:
//! a trailing partial page, or a tile fragment at the grid edge, is owned
//! by a PE that owns real elements of it, and a probe past the last page
//! clamps to the last page's owner — never wrapped back to PE 0 by
//! arithmetic on addresses past the end of the array.

use crate::partition::{pages_in, PartitionScheme};

/// The declared geometry of an array, reduced to the 2-D view placement
/// needs: `rows` along the outermost declared dimension, `cols` the
/// product of all inner dimensions (so a 3-D `[d0, d1, d2]` grid is tiled
/// over the `(d0, d1·d2)` plane, banding along `d0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayShape {
    /// Total elements (`rows · cols` for multi-dimensional arrays).
    pub len: usize,
    /// Extent of the outermost declared dimension.
    pub rows: usize,
    /// Product of the inner dimensions (≥ 1 row-major elements per row).
    pub cols: usize,
}

impl ArrayShape {
    /// Shape of an array declared with `dims` (row-major, outermost first).
    ///
    /// One-dimensional declarations are [`linear`](ArrayShape::linear);
    /// higher ranks fold every inner dimension into `cols`.
    pub fn from_dims(dims: &[usize]) -> Self {
        match dims.len() {
            0 => Self::linear(1),
            1 => Self::linear(dims[0]),
            _ => {
                let rows = dims[0];
                let cols = dims[1..].iter().product::<usize>().max(1);
                ArrayShape {
                    len: rows * cols,
                    rows,
                    cols,
                }
            }
        }
    }

    /// The geometry-free shape: a one-column grid of `len` rows. Under it
    /// the tiled schemes reproduce their documented page-space degenerates
    /// (`RowBand` ≡ `Block`, `Tile2D` ≡ `BlockCyclic`).
    pub fn linear(len: usize) -> Self {
        ArrayShape {
            len,
            rows: len,
            cols: 1,
        }
    }

    /// Grid coordinates of element `e` (row-major).
    fn coords(&self, e: usize) -> (usize, usize) {
        debug_assert!(self.cols > 0);
        (e / self.cols, e % self.cols)
    }
}

/// A complete placement decision for one array: scheme, page size, PE
/// count, and the array's declared shape. Construct one per array (shapes
/// differ) and ask it who owns a page or an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The partitioning scheme.
    pub scheme: PartitionScheme,
    /// Page size in elements (≥ 1).
    pub page_size: usize,
    /// Number of PEs (≥ 1).
    pub n_pes: usize,
    /// The array's declared geometry.
    pub shape: ArrayShape,
}

impl Placement {
    /// Placement of an array of `shape` under `scheme` on `n_pes` PEs with
    /// `page_size`-element pages.
    pub fn new(scheme: PartitionScheme, page_size: usize, n_pes: usize, shape: ArrayShape) -> Self {
        assert!(n_pes > 0, "placement on a machine with zero PEs");
        assert!(page_size > 0, "placement with zero page size");
        Placement {
            scheme,
            page_size,
            n_pes,
            shape,
        }
    }

    /// Number of pages the array occupies.
    pub fn pages(&self) -> usize {
        pages_in(self.shape.len, self.page_size)
    }

    /// Owning PE of `page`, by the first-element rule.
    ///
    /// Legacy page-linear schemes (`Modulo`, `Block`, `BlockCyclic`)
    /// delegate to [`PartitionScheme::owner`] unchanged — their placement
    /// never depended on geometry and must stay bit-identical. The tiled
    /// schemes map the page's first in-domain element to grid coordinates
    /// and own it by band or tile; out-of-domain probes clamp to the last
    /// element, never wrap.
    pub fn page_owner(&self, page: usize) -> usize {
        let total = self.pages();
        match self.scheme {
            PartitionScheme::Modulo
            | PartitionScheme::Block
            | PartitionScheme::BlockCyclic { .. } => self.scheme.owner(page, total, self.n_pes),
            PartitionScheme::RowBand => {
                if self.shape.len == 0 {
                    return 0;
                }
                let e = (page.min(total - 1) * self.page_size).min(self.shape.len - 1);
                let (row, _) = self.shape.coords(e);
                let band = self.shape.rows.div_ceil(self.n_pes).max(1);
                (row / band).min(self.n_pes - 1)
            }
            PartitionScheme::Tile2D {
                tile_rows,
                tile_cols,
            } => {
                if self.shape.len == 0 {
                    return 0;
                }
                let e = (page.min(total - 1) * self.page_size).min(self.shape.len - 1);
                let (r, c) = self.shape.coords(e);
                let (tr, tc) = (tile_rows.max(1), tile_cols.max(1));
                let tiles_per_row = self.shape.cols.div_ceil(tc).max(1);
                let tile = (r / tr) * tiles_per_row + c / tc;
                tile % self.n_pes
            }
        }
    }

    /// Owning PE of the page containing linear address `addr`.
    pub fn owner_of_addr(&self, addr: usize) -> usize {
        self.page_owner(addr / self.page_size)
    }

    /// Invoke `f` on each maximal page interval `[q0, q1)` owned by `pe`
    /// within the inclusive page range `[plo, phi]`.
    ///
    /// The legacy schemes use closed forms — the per-PE cost is
    /// proportional to the PE's own share of the range, which is what lets
    /// the replay engine shard an `n = 10⁷` sweep without walking every
    /// page on every PE. The tiled schemes walk the range grouping
    /// consecutive same-owner pages (owners are constant over tile-strided
    /// runs, so the callback count stays small); exactness over speed.
    pub fn owned_page_intervals(
        &self,
        pe: usize,
        plo: usize,
        phi: usize,
        mut f: impl FnMut(usize, usize),
    ) {
        let n = self.n_pes;
        let total = self.pages();
        match self.scheme {
            PartitionScheme::Modulo => {
                let first = plo + (pe + n - plo % n) % n;
                let mut q = first;
                while q <= phi {
                    f(q, q + 1);
                    q += n;
                }
            }
            PartitionScheme::Block => {
                // owner(q) = min(q / chunk, n - 1): one contiguous interval,
                // extending to the end of the array for the last PE.
                let chunk = total.div_ceil(n).max(1);
                let q0 = pe * chunk;
                let q1 = if pe + 1 == n {
                    total.max(phi + 1)
                } else {
                    q0 + chunk
                };
                if q0 <= phi && q1 > plo {
                    f(q0.max(plo), q1.min(phi + 1));
                }
            }
            PartitionScheme::BlockCyclic { block_pages } => {
                // owner(q) = (q / b) % n: owned blocks are j ≡ pe (mod n).
                let bp = block_pages.max(1);
                let jlo = plo / bp;
                let mut j = jlo + (pe + n - jlo % n) % n;
                loop {
                    let q0 = j * bp;
                    if q0 > phi {
                        break;
                    }
                    f(q0.max(plo), (q0 + bp).min(phi + 1));
                    j += n;
                }
            }
            PartitionScheme::RowBand | PartitionScheme::Tile2D { .. } => {
                let mut q = plo;
                while q <= phi {
                    let o = self.page_owner(q);
                    let mut end = q + 1;
                    while end <= phi && self.page_owner(end) == o {
                        end += 1;
                    }
                    if o == pe {
                        f(q, end);
                    }
                    q = end;
                }
            }
        }
    }

    /// Pages of the array owned by `pe` (ascending).
    pub fn pages_of_pe(&self, pe: usize) -> Vec<usize> {
        (0..self.pages())
            .filter(|&p| self.page_owner(p) == pe)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> Vec<ArrayShape> {
        vec![
            ArrayShape::linear(100),
            ArrayShape::linear(1),
            ArrayShape::from_dims(&[12, 10]),
            ArrayShape::from_dims(&[7, 13]),
            ArrayShape::from_dims(&[4, 5, 6]),
            ArrayShape::from_dims(&[64, 64]),
        ]
    }

    fn schemes() -> Vec<PartitionScheme> {
        vec![
            PartitionScheme::Modulo,
            PartitionScheme::Block,
            PartitionScheme::BlockCyclic { block_pages: 3 },
            PartitionScheme::RowBand,
            PartitionScheme::Tile2D {
                tile_rows: 3,
                tile_cols: 4,
            },
            PartitionScheme::Tile2D {
                tile_rows: 32,
                tile_cols: 32,
            },
        ]
    }

    #[test]
    fn shape_folds_inner_dims() {
        let s = ArrayShape::from_dims(&[4, 5, 6]);
        assert_eq!((s.rows, s.cols, s.len), (4, 30, 120));
        let l = ArrayShape::from_dims(&[9]);
        assert_eq!((l.rows, l.cols, l.len), (9, 1, 9));
        assert_eq!(ArrayShape::linear(9), l);
    }

    #[test]
    fn legacy_schemes_delegate_bit_identically() {
        for shape in shapes() {
            for scheme in [
                PartitionScheme::Modulo,
                PartitionScheme::Block,
                PartitionScheme::BlockCyclic { block_pages: 2 },
            ] {
                let pl = Placement::new(scheme, 8, 4, shape);
                for p in 0..pl.pages() {
                    assert_eq!(pl.page_owner(p), scheme.owner(p, pl.pages(), 4));
                }
            }
        }
    }

    #[test]
    fn every_page_has_one_in_range_owner() {
        for shape in shapes() {
            for scheme in schemes() {
                for n in [1usize, 3, 4, 7] {
                    let pl = Placement::new(scheme, 8, n, shape);
                    for p in 0..pl.pages() {
                        assert!(pl.page_owner(p) < n, "{scheme:?} {shape:?} {n} PEs");
                    }
                }
            }
        }
    }

    #[test]
    fn tiled_owners_clamp_never_wrap() {
        // Out-of-domain probes resolve to the owner of the last in-domain
        // element (the first-element rule clamps `e` to `len - 1`) — never
        // to a wrapped owner computed from addresses past the array.
        let shape = ArrayShape::from_dims(&[10, 7]); // 70 elems, ps 8 → 9 pages
        for scheme in [
            PartitionScheme::RowBand,
            PartitionScheme::Tile2D {
                tile_rows: 4,
                tile_cols: 4,
            },
        ] {
            let pl = Placement::new(scheme, 8, 4, shape);
            // Any probe past the end clamps to the last real page's owner.
            let last_page_owner = pl.page_owner(pl.pages() - 1);
            assert_eq!(pl.page_owner(pl.pages()), last_page_owner, "{scheme:?}");
            assert_eq!(pl.page_owner(pl.pages() + 5), last_page_owner, "{scheme:?}");
        }
    }

    #[test]
    fn rowband_bands_rows_contiguously() {
        // 12×10 grid, page size 10 (one row per page), 3 PEs → bands of 4
        // rows: pages 0..4 on PE 0, 4..8 on PE 1, 8..12 on PE 2.
        let pl = Placement::new(
            PartitionScheme::RowBand,
            10,
            3,
            ArrayShape::from_dims(&[12, 10]),
        );
        for p in 0..12 {
            assert_eq!(pl.page_owner(p), p / 4);
        }
    }

    #[test]
    fn tile2d_deals_tiles_round_robin() {
        // 4×4 grid, 2×2 tiles, page size 1, 4 PEs: tiles (0,0),(0,1),(1,0),
        // (1,1) → PEs 0,1,2,3 in row-major tile order.
        let pl = Placement::new(
            PartitionScheme::Tile2D {
                tile_rows: 2,
                tile_cols: 2,
            },
            1,
            4,
            ArrayShape::from_dims(&[4, 4]),
        );
        let owner_of = |r: usize, c: usize| pl.owner_of_addr(r * 4 + c);
        assert_eq!(owner_of(0, 0), 0);
        assert_eq!(owner_of(1, 1), 0);
        assert_eq!(owner_of(0, 2), 1);
        assert_eq!(owner_of(2, 0), 2);
        assert_eq!(owner_of(3, 3), 3);
    }

    #[test]
    fn owned_intervals_agree_with_brute_force() {
        for shape in shapes() {
            for scheme in schemes() {
                for n in [1usize, 3, 4] {
                    let pl = Placement::new(scheme, 8, n, shape);
                    let pages = pl.pages();
                    if pages == 0 {
                        continue;
                    }
                    for (plo, phi) in [(0, pages - 1), (1.min(pages - 1), pages - 1), (0, 0)] {
                        for pe in 0..n {
                            let mut from_intervals = Vec::new();
                            pl.owned_page_intervals(pe, plo, phi, |q0, q1| {
                                assert!(q0 < q1, "empty interval");
                                from_intervals.extend(q0..q1);
                            });
                            // Closed forms may extend past phi only for
                            // Block's clamped tail; trim like callers that
                            // map intervals back to iterations do.
                            let brute: Vec<usize> =
                                (plo..=phi).filter(|&q| pl.page_owner(q) == pe).collect();
                            let trimmed: Vec<usize> = from_intervals
                                .into_iter()
                                .filter(|&q| q >= plo && q <= phi)
                                .collect();
                            assert_eq!(
                                trimmed, brute,
                                "{scheme:?} {shape:?} n={n} pe={pe} [{plo},{phi}]"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pages_of_pe_partitions_the_page_set() {
        for scheme in schemes() {
            let pl = Placement::new(scheme, 8, 4, ArrayShape::from_dims(&[12, 10]));
            let mut all = Vec::new();
            for pe in 0..4 {
                all.extend(pl.pages_of_pe(pe));
            }
            all.sort_unstable();
            assert_eq!(all, (0..pl.pages()).collect::<Vec<_>>(), "{scheme:?}");
        }
    }

    #[test]
    fn geometryless_shape_reproduces_page_space_degenerates() {
        // Placement over ArrayShape::linear with page_size 1 makes rows =
        // pages, under which RowBand ≡ Block and Tile2D{r,c} ≡ BlockCyclic{r}.
        let shape = ArrayShape::linear(40);
        let band = Placement::new(PartitionScheme::RowBand, 1, 4, shape);
        let block = Placement::new(PartitionScheme::Block, 1, 4, shape);
        let tile = Placement::new(
            PartitionScheme::Tile2D {
                tile_rows: 3,
                tile_cols: 9,
            },
            1,
            4,
            shape,
        );
        let bc = Placement::new(PartitionScheme::BlockCyclic { block_pages: 3 }, 1, 4, shape);
        for p in 0..40 {
            assert_eq!(band.page_owner(p), block.page_owner(p));
            assert_eq!(tile.page_owner(p), bc.page_owner(p));
        }
    }
}
