//! Access accounting and load-balance metrics.
//!
//! The paper's simulation "categorized accesses as: write (always local),
//! local read, cached read, remote read" and accumulated totals per loop
//! (§7). Load balance (§7.2) is judged by how evenly remote and local reads
//! spread across PEs — Figure 5's two series.

/// The four access categories of paper §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A producer write — always local under owner-computes.
    Write,
    /// A read of an element the reading PE owns.
    LocalRead,
    /// A read satisfied by the PE's page cache.
    CachedRead,
    /// A read requiring a page fetch from the owning PE.
    RemoteRead,
}

/// Per-PE access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeCounters {
    /// Producer writes executed by this PE.
    pub writes: u64,
    /// Reads of locally owned elements.
    pub local_reads: u64,
    /// Reads satisfied from the page cache.
    pub cached_reads: u64,
    /// Reads that fetched a page from a remote PE.
    pub remote_reads: u64,
}

impl PeCounters {
    /// All reads by this PE.
    pub fn total_reads(&self) -> u64 {
        self.local_reads + self.cached_reads + self.remote_reads
    }

    /// Record one access.
    pub fn record(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::Write => self.writes += 1,
            AccessKind::LocalRead => self.local_reads += 1,
            AccessKind::CachedRead => self.cached_reads += 1,
            AccessKind::RemoteRead => self.remote_reads += 1,
        }
    }
}

/// Machine-wide access statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Counters per PE.
    pub per_pe: Vec<PeCounters>,
    /// Page fetch messages (request+reply counted by the network model).
    pub page_fetches: u64,
    /// Remote reads that re-fetched a partially filled page already cached
    /// (only non-zero under [`crate::PartialPagePolicy::Refetch`]).
    pub partial_refetches: u64,
    /// Messages spent in host-processor re-initialization rounds (§5).
    pub reinit_messages: u64,
    /// Messages carrying reduction partial results to their host PE (§9's
    /// vector→scalar collection).
    pub reduction_messages: u64,
}

impl Stats {
    /// Counters zeroed for `n_pes` PEs.
    pub fn new(n_pes: usize) -> Self {
        Stats {
            per_pe: vec![PeCounters::default(); n_pes],
            page_fetches: 0,
            partial_refetches: 0,
            reinit_messages: 0,
            reduction_messages: 0,
        }
    }

    /// Record one access by `pe`.
    pub fn record(&mut self, pe: usize, kind: AccessKind) {
        self.per_pe[pe].record(kind);
    }

    /// Total writes across PEs.
    pub fn writes(&self) -> u64 {
        self.per_pe.iter().map(|c| c.writes).sum()
    }

    /// Total reads across PEs.
    pub fn total_reads(&self) -> u64 {
        self.per_pe.iter().map(PeCounters::total_reads).sum()
    }

    /// Total local reads.
    pub fn local_reads(&self) -> u64 {
        self.per_pe.iter().map(|c| c.local_reads).sum()
    }

    /// Total cached reads.
    pub fn cached_reads(&self) -> u64 {
        self.per_pe.iter().map(|c| c.cached_reads).sum()
    }

    /// Total remote reads.
    pub fn remote_reads(&self) -> u64 {
        self.per_pe.iter().map(|c| c.remote_reads).sum()
    }

    /// The paper's headline metric: *% of Reads Remote* (§7).
    /// 0 when no reads occurred.
    pub fn remote_read_pct(&self) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            0.0
        } else {
            100.0 * self.remote_reads() as f64 / total as f64
        }
    }

    /// Fraction of reads served by the cache.
    pub fn cached_read_pct(&self) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            0.0
        } else {
            100.0 * self.cached_reads() as f64 / total as f64
        }
    }

    /// Remote reads per PE (Figure 5's first series).
    pub fn remote_reads_per_pe(&self) -> Vec<u64> {
        self.per_pe.iter().map(|c| c.remote_reads).collect()
    }

    /// Local (+cached) reads per PE (Figure 5's second series — the paper
    /// plots "local" as reads that did not cross the network).
    pub fn local_reads_per_pe(&self) -> Vec<u64> {
        self.per_pe
            .iter()
            .map(|c| c.local_reads + c.cached_reads)
            .collect()
    }

    /// Writes per PE.
    pub fn writes_per_pe(&self) -> Vec<u64> {
        self.per_pe.iter().map(|c| c.writes).collect()
    }

    /// Merge another stats block (used when aggregating phases).
    pub fn merge(&mut self, other: &Stats) {
        assert_eq!(
            self.per_pe.len(),
            other.per_pe.len(),
            "PE count mismatch in merge"
        );
        for (a, b) in self.per_pe.iter_mut().zip(&other.per_pe) {
            a.writes += b.writes;
            a.local_reads += b.local_reads;
            a.cached_reads += b.cached_reads;
            a.remote_reads += b.remote_reads;
        }
        self.page_fetches += other.page_fetches;
        self.partial_refetches += other.partial_refetches;
        self.reinit_messages += other.reinit_messages;
        self.reduction_messages += other.reduction_messages;
    }
}

/// Summary statistics of a per-PE distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadBalance {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest per-PE value.
    pub min: u64,
    /// Largest per-PE value.
    pub max: u64,
    /// Coefficient of variation (σ/μ; 0 = perfectly balanced).
    pub cv: f64,
    /// Jain's fairness index ((Σx)² / (n·Σx²); 1 = perfectly balanced).
    pub jain: f64,
}

/// Compute load-balance metrics over per-PE values.
pub fn load_balance(values: &[u64]) -> LoadBalance {
    if values.is_empty() {
        return LoadBalance {
            mean: 0.0,
            min: 0,
            max: 0,
            cv: 0.0,
            jain: 1.0,
        };
    }
    let n = values.len() as f64;
    let sum: f64 = values.iter().map(|&v| v as f64).sum();
    let mean = sum / n;
    let var = values
        .iter()
        .map(|&v| (v as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    let sq_sum: f64 = values.iter().map(|&v| (v as f64).powi(2)).sum();
    LoadBalance {
        mean,
        min: *values.iter().min().expect("non-empty"),
        max: *values.iter().max().expect("non-empty"),
        cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        jain: if sq_sum > 0.0 {
            sum * sum / (n * sq_sum)
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_record_each_kind() {
        let mut c = PeCounters::default();
        c.record(AccessKind::Write);
        c.record(AccessKind::LocalRead);
        c.record(AccessKind::LocalRead);
        c.record(AccessKind::CachedRead);
        c.record(AccessKind::RemoteRead);
        assert_eq!(c.writes, 1);
        assert_eq!(c.local_reads, 2);
        assert_eq!(c.cached_reads, 1);
        assert_eq!(c.remote_reads, 1);
        assert_eq!(c.total_reads(), 4);
    }

    #[test]
    fn remote_pct_is_remote_over_all_reads() {
        let mut s = Stats::new(2);
        s.record(0, AccessKind::LocalRead);
        s.record(0, AccessKind::RemoteRead);
        s.record(1, AccessKind::CachedRead);
        s.record(1, AccessKind::RemoteRead);
        assert_eq!(s.total_reads(), 4);
        assert_eq!(s.remote_reads(), 2);
        assert!((s.remote_read_pct() - 50.0).abs() < 1e-12);
        assert!((s.cached_read_pct() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_report_zero_pct() {
        let s = Stats::new(4);
        assert_eq!(s.remote_read_pct(), 0.0);
        assert_eq!(s.cached_read_pct(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = Stats::new(2);
        a.record(0, AccessKind::Write);
        a.page_fetches = 3;
        let mut b = Stats::new(2);
        b.record(0, AccessKind::Write);
        b.record(1, AccessKind::RemoteRead);
        b.partial_refetches = 1;
        a.merge(&b);
        assert_eq!(a.per_pe[0].writes, 2);
        assert_eq!(a.per_pe[1].remote_reads, 1);
        assert_eq!(a.page_fetches, 3);
        assert_eq!(a.partial_refetches, 1);
    }

    #[test]
    fn per_pe_series_for_figure_5() {
        let mut s = Stats::new(3);
        s.record(0, AccessKind::LocalRead);
        s.record(0, AccessKind::CachedRead);
        s.record(1, AccessKind::RemoteRead);
        assert_eq!(s.local_reads_per_pe(), vec![2, 0, 0]);
        assert_eq!(s.remote_reads_per_pe(), vec![0, 1, 0]);
    }

    #[test]
    fn perfectly_balanced_load() {
        let lb = load_balance(&[100, 100, 100, 100]);
        assert_eq!(lb.mean, 100.0);
        assert_eq!(lb.cv, 0.0);
        assert!((lb.jain - 1.0).abs() < 1e-12);
        assert_eq!((lb.min, lb.max), (100, 100));
    }

    #[test]
    fn skewed_load_detected() {
        let lb = load_balance(&[0, 0, 0, 400]);
        assert!(lb.cv > 1.0);
        assert!((lb.jain - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        let lb = load_balance(&[]);
        assert_eq!(lb.jain, 1.0);
        let lb = load_balance(&[0, 0]);
        assert_eq!(lb.cv, 0.0);
        assert_eq!(lb.jain, 1.0);
    }
}
