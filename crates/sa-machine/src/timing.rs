//! Cycle-cost model for the execution-time extension (paper §9:
//! "a more sophisticated simulation will better explore the problems of
//! execution time and network contention").
//!
//! Costs are dimensionless "cycles". The defaults are loosely modeled on
//! late-1980s message-passing machines: local memory ≈ 1 cycle, a cache
//! probe ≈ 2, a remote fetch ≈ fixed software/memory overhead plus a few
//! cycles per network hop each way. Only *ratios* matter for the shape of
//! speedup curves.

/// Per-access cycle costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessCosts {
    /// A producer write to local memory.
    pub write: u64,
    /// A read of locally owned memory.
    pub local_read: u64,
    /// A read satisfied by the page cache.
    pub cached_read: u64,
    /// Fixed cost of a remote fetch (request software + remote memory +
    /// reply software), excluding wire time.
    pub remote_base: u64,
    /// Wire cost per hop, charged per direction.
    pub per_hop: u64,
    /// Cost of executing one statement's arithmetic (charged per statement
    /// instance on top of its accesses).
    pub compute: u64,
}

impl Default for AccessCosts {
    fn default() -> Self {
        AccessCosts {
            write: 1,
            local_read: 1,
            cached_read: 2,
            remote_base: 40,
            per_hop: 4,
            compute: 4,
        }
    }
}

impl AccessCosts {
    /// Cycles for a remote read over `hops` (request + reply wire time).
    pub fn remote_read(&self, hops: u32) -> u64 {
        self.remote_base + 2 * self.per_hop * hops as u64
    }

    /// Cycles for one access of `kind` at `hops` distance.
    pub fn of(&self, kind: crate::stats::AccessKind, hops: u32) -> u64 {
        use crate::stats::AccessKind::*;
        match kind {
            Write => self.write,
            LocalRead => self.local_read,
            CachedRead => self.cached_read,
            RemoteRead => self.remote_read(hops),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::AccessKind;

    #[test]
    fn defaults_order_sensibly() {
        let c = AccessCosts::default();
        assert!(c.local_read < c.cached_read);
        assert!(c.cached_read < c.remote_read(0));
        assert!(c.remote_read(0) < c.remote_read(4));
    }

    #[test]
    fn remote_cost_scales_with_hops() {
        let c = AccessCosts::default();
        assert_eq!(c.remote_read(0), 40);
        assert_eq!(c.remote_read(3), 40 + 2 * 4 * 3);
    }

    #[test]
    fn kind_dispatch() {
        let c = AccessCosts::default();
        assert_eq!(c.of(AccessKind::Write, 9), c.write);
        assert_eq!(c.of(AccessKind::LocalRead, 9), c.local_read);
        assert_eq!(c.of(AccessKind::CachedRead, 9), c.cached_read);
        assert_eq!(c.of(AccessKind::RemoteRead, 2), c.remote_read(2));
    }
}
