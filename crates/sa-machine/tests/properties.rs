//! Property tests for the machine substrate.

use proptest::prelude::*;

use sa_machine::machine::{ArraySpec, DistributedMachine};
use sa_machine::{
    AccessKind, CachePolicy, MachineConfig, NetworkTopology, PartialPagePolicy, PartitionScheme,
};

fn any_topology() -> impl Strategy<Value = NetworkTopology> {
    prop_oneof![
        Just(NetworkTopology::Ideal),
        Just(NetworkTopology::Crossbar),
        Just(NetworkTopology::Bus),
        Just(NetworkTopology::Ring),
        Just(NetworkTopology::Mesh2D),
        Just(NetworkTopology::Torus2D),
        Just(NetworkTopology::Hypercube),
    ]
}

proptest! {
    /// Hop counts are symmetric, zero iff self, and bounded by the
    /// topology's diameter.
    #[test]
    fn hops_are_metric_like(
        topo in any_topology(),
        n in 1usize..65,
        a in 0usize..65,
        b in 0usize..65,
    ) {
        let (a, b) = (a % n, b % n);
        let h_ab = topo.hops(n, a, b);
        let h_ba = topo.hops(n, b, a);
        prop_assert_eq!(h_ab, h_ba, "symmetry");
        prop_assert_eq!(h_ab == 0, a == b || matches!(topo, NetworkTopology::Ideal));
        let diameter = match topo {
            NetworkTopology::Ideal => 0,
            NetworkTopology::Crossbar | NetworkTopology::Bus => 1,
            NetworkTopology::Ring => (n / 2) as u32,
            NetworkTopology::Mesh2D => (2 * sa_machine::network::mesh_cols(n)) as u32,
            // Per-dimension cyclic distance is at most half the extent.
            NetworkTopology::Torus2D => sa_machine::network::mesh_cols(n) as u32 + 1,
            NetworkTopology::Hypercube => usize::BITS - n.leading_zeros(),
        };
        prop_assert!(h_ab <= diameter.max(1), "{h_ab} > diameter {diameter}");
    }

    /// For any machine configuration, a full read scan of an input array
    /// conserves counts, never sees coherence traffic, and classifies
    /// every access as exactly one category.
    #[test]
    fn read_scan_conserves_counts(
        n_pes in 1usize..17,
        page_size in prop::sample::select(vec![4usize, 8, 16, 32, 64]),
        cache_elems in prop::sample::select(vec![0usize, 64, 256, 1024]),
        scheme in prop_oneof![
            Just(PartitionScheme::Modulo),
            Just(PartitionScheme::Block),
            (1usize..4).prop_map(|b| PartitionScheme::BlockCyclic { block_pages: b }),
        ],
        reader in 0usize..17,
        len in 1usize..600,
    ) {
        let reader = reader % n_pes;
        let cfg = MachineConfig::new(n_pes, page_size)
            .with_cache_elems(cache_elems)
            .with_partition(scheme);
        let mut m = DistributedMachine::new(
            cfg,
            vec![ArraySpec {
                name: "B".into(),
                len,
                dims: vec![],
                init: (0..len).map(|i| i as f64).collect(),
            }],
        ).unwrap();
        for addr in 0..len {
            let (v, kind, hops) = m.read(reader, 0, addr).unwrap();
            prop_assert_eq!(v, addr as f64);
            if kind != AccessKind::RemoteRead {
                prop_assert_eq!(hops, 0);
            }
        }
        let s = m.stats();
        prop_assert_eq!(s.total_reads(), len as u64);
        prop_assert_eq!(
            s.total_reads(),
            s.local_reads() + s.cached_reads() + s.remote_reads()
        );
        // Fetch messages are exactly 2 per remote read (request + reply).
        prop_assert_eq!(m.network().messages, 2 * s.remote_reads());
        // A second identical scan can only hit local or cache (all pages of
        // an immutable array are complete), if a cache exists that is big
        // enough to keep at least the last page.
        if cfg.cache_enabled() {
            let before = s.remote_reads();
            let mut m2 = m.clone();
            for addr in (0..len).rev().take(page_size.min(len)) {
                let (_, kind, _) = m2.read(reader, 0, addr).unwrap();
                prop_assert_ne!(kind, AccessKind::Write);
            }
            let _ = before;
        }
    }

    /// Reads are repeatable: scanning twice with a warm cache can only
    /// lower the remote count of the second pass.
    #[test]
    fn second_pass_never_worse(
        n_pes in 2usize..9,
        len in 64usize..400,
    ) {
        let cfg = MachineConfig::new(n_pes, 16);
        let mut m = DistributedMachine::new(
            cfg,
            vec![ArraySpec { name: "B".into(), len, dims: vec![], init: vec![1.0; len] }],
        ).unwrap();
        for addr in 0..len {
            m.read(0, 0, addr).unwrap();
        }
        let first = m.stats().remote_reads();
        for addr in 0..len {
            m.read(0, 0, addr).unwrap();
        }
        let second = m.stats().remote_reads() - first;
        prop_assert!(second <= first);
    }

    /// Under the Refetch policy, every partial refetch is also a remote
    /// read, and refetches never occur for fully initialized arrays.
    #[test]
    fn refetch_accounting(
        n_pes in 2usize..9,
        len in 32usize..256,
        policy in prop_oneof![
            Just(PartialPagePolicy::Ignore),
            Just(PartialPagePolicy::Refetch)
        ],
    ) {
        let cfg = MachineConfig::new(n_pes, 8)
            .with_partial_pages(policy)
            .with_cache_policy(CachePolicy::Lru);
        let mut m = DistributedMachine::new(
            cfg,
            vec![ArraySpec { name: "B".into(), len, dims: vec![], init: vec![2.0; len] }],
        ).unwrap();
        for addr in 0..len {
            m.read(0, 0, addr).unwrap();
        }
        prop_assert_eq!(m.stats().partial_refetches, 0);
        prop_assert!(m.stats().partial_refetches <= m.stats().remote_reads());
    }
}

fn any_scheme() -> impl Strategy<Value = PartitionScheme> {
    prop_oneof![
        Just(PartitionScheme::Modulo),
        Just(PartitionScheme::Block),
        (1usize..8).prop_map(|b| PartitionScheme::BlockCyclic { block_pages: b }),
        Just(PartitionScheme::RowBand),
        ((1usize..9), (1usize..9)).prop_map(|(r, c)| PartitionScheme::Tile2D {
            tile_rows: r,
            tile_cols: c,
        }),
    ]
}

proptest! {
    /// Every scheme's owner is a valid PE for every page of the array.
    #[test]
    fn owner_always_below_n_pes(
        scheme in any_scheme(),
        total_pages in 0usize..300,
        n_pes in 1usize..65,
    ) {
        for page in 0..total_pages {
            let o = scheme.owner(page, total_pages, n_pes);
            prop_assert!(
                o < n_pes,
                "{scheme:?}: page {page}/{total_pages} on {n_pes} PEs → {o}"
            );
        }
    }

    /// `BlockCyclic(1)` is exactly the paper's modulo scheme.
    #[test]
    fn blockcyclic_one_is_modulo(total_pages in 1usize..300, n_pes in 1usize..33) {
        let bc = PartitionScheme::BlockCyclic { block_pages: 1 };
        for page in 0..total_pages {
            prop_assert_eq!(
                bc.owner(page, total_pages, n_pes),
                PartitionScheme::Modulo.owner(page, total_pages, n_pes)
            );
        }
    }

    /// `BlockCyclic(ceil(P/N))` is exactly the division (Block) scheme.
    #[test]
    fn blockcyclic_ceil_is_block(total_pages in 1usize..300, n_pes in 1usize..33) {
        let chunk = total_pages.div_ceil(n_pes).max(1);
        let bc = PartitionScheme::BlockCyclic { block_pages: chunk };
        for page in 0..total_pages {
            prop_assert_eq!(
                bc.owner(page, total_pages, n_pes),
                PartitionScheme::Block.owner(page, total_pages, n_pes)
            );
        }
    }

    /// `pages_of_pe` over all PEs is a partition of the page set: every
    /// page appears exactly once, on the PE `owner` names.
    #[test]
    fn every_page_has_exactly_one_owner(
        scheme in any_scheme(),
        total_pages in 0usize..200,
        n_pes in 1usize..33,
    ) {
        let mut seen = vec![0usize; total_pages];
        for pe in 0..n_pes {
            for page in scheme.pages_of_pe(pe, total_pages, n_pes) {
                prop_assert_eq!(scheme.owner(page, total_pages, n_pes), pe);
                seen[page] += 1;
            }
        }
        prop_assert!(
            seen.iter().all(|&c| c == 1),
            "{scheme:?} on {n_pes} PEs: page multiplicities {seen:?}"
        );
    }
}

use sa_machine::{ArrayShape, Placement};

proptest! {
    /// Geometry-aware placement still assigns every page of every shape to
    /// exactly one in-range PE, for all schemes including the tiled ones.
    #[test]
    fn placement_owner_agreement(
        scheme in any_scheme(),
        rows in 1usize..25,
        cols in 1usize..25,
        page_size in prop::sample::select(vec![1usize, 4, 8, 32]),
        n_pes in 1usize..17,
    ) {
        let pl = Placement::new(scheme, page_size, n_pes, ArrayShape::from_dims(&[rows, cols]));
        let mut seen = vec![0usize; pl.pages()];
        for pe in 0..n_pes {
            for page in pl.pages_of_pe(pe) {
                prop_assert_eq!(pl.page_owner(page), pe);
                seen[page] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "{scheme:?}: {seen:?}");
        // The legacy schemes must not notice the geometry at all.
        if matches!(
            scheme,
            PartitionScheme::Modulo | PartitionScheme::Block | PartitionScheme::BlockCyclic { .. }
        ) {
            for p in 0..pl.pages() {
                prop_assert_eq!(pl.page_owner(p), scheme.owner(p, pl.pages(), n_pes));
            }
        }
    }

    /// `owned_page_intervals` enumerates exactly the owned pages of the
    /// probed range, for every scheme over every shape.
    #[test]
    fn placement_intervals_match_brute_force(
        scheme in any_scheme(),
        rows in 1usize..20,
        cols in 1usize..20,
        page_size in prop::sample::select(vec![1usize, 4, 8]),
        n_pes in 1usize..9,
    ) {
        let pl = Placement::new(scheme, page_size, n_pes, ArrayShape::from_dims(&[rows, cols]));
        let pages = pl.pages();
        prop_assert!(pages > 0); // rows, cols ≥ 1 ⇒ at least one page
        let (plo, phi) = (pages / 3, pages - 1);
        for pe in 0..n_pes {
            let mut got = Vec::new();
            pl.owned_page_intervals(pe, plo, phi, |q0, q1| {
                got.extend((q0..q1).filter(|&q| q >= plo && q <= phi));
            });
            let want: Vec<usize> =
                (plo..=phi).filter(|&q| pl.page_owner(q) == pe).collect();
            prop_assert_eq!(got, want, "{:?} pe={} [{}..={}]", scheme, pe, plo, phi);
        }
    }

    /// Tiled schemes never wrap out-of-domain pages: probing past the end
    /// of the array clamps to the owner of the last real page (the clamp
    /// contract `Block` established, extended to `RowBand`/`Tile2D`).
    #[test]
    fn tiled_placement_clamps_out_of_domain(
        rows in 1usize..25,
        cols in 1usize..25,
        tile in (1usize..9, 1usize..9),
        n_pes in 1usize..9,
        past in 0usize..10,
    ) {
        for scheme in [
            PartitionScheme::RowBand,
            PartitionScheme::Tile2D { tile_rows: tile.0, tile_cols: tile.1 },
        ] {
            let pl = Placement::new(scheme, 8, n_pes, ArrayShape::from_dims(&[rows, cols]));
            let last = pl.page_owner(pl.pages() - 1);
            prop_assert_eq!(pl.page_owner(pl.pages() + past), last, "{:?}", scheme);
        }
    }
}
