//! Sequential single-assignment arrays with generations.

use std::collections::HashMap;

use crate::cell::CellRead;
use crate::error::{SaError, SaResult};
use crate::tagged::TagBits;
use crate::Generation;

/// A linear single-assignment array.
///
/// Storage is a dense `Vec<T>` plus a presence bitmap ([`TagBits`]) rather
/// than a `Vec<SaCell<T>>`: deferred-read queues are sparse in practice, so
/// they live in a side table keyed by index. This is the "array + tag bits"
/// layout the paper assumes hardware support for (§3) and keeps the hot path
/// (defined read) branch-cheap.
///
/// Multi-dimensional arrays are linearized *row-major* by the IR layer before
/// they reach this type, exactly as in the paper's simulation (§7).
#[derive(Debug, Clone)]
pub struct SaArray<T> {
    name: String,
    values: Vec<T>,
    tags: TagBits,
    waiters: HashMap<usize, Vec<u64>>,
    generation: Generation,
}

impl<T: Clone + Default> SaArray<T> {
    /// A fresh array of `len` undefined cells.
    pub fn new(name: impl Into<String>, len: usize) -> Self {
        SaArray {
            name: name.into(),
            values: vec![T::default(); len],
            tags: TagBits::new(len),
            waiters: HashMap::new(),
            generation: 0,
        }
    }

    /// An array pre-filled with initialization data — every cell is defined
    /// at generation 0 ("prior to execution, an array is either undefined or
    /// filled with initialization data", paper §3).
    pub fn with_init(name: impl Into<String>, init: Vec<T>) -> Self {
        let len = init.len();
        SaArray {
            name: name.into(),
            values: init,
            tags: TagBits::all_set(len),
            waiters: HashMap::new(),
            generation: 0,
        }
    }

    /// The array's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the array has zero cells.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current generation (bumped by [`SaArray::reinit`]).
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Number of defined cells.
    pub fn defined_count(&self) -> usize {
        self.tags.count_ones()
    }

    /// True once every cell has been written.
    pub fn is_fully_defined(&self) -> bool {
        self.tags.is_full()
    }

    /// Presence bitmap (borrowed) — used by the machine layer to snapshot
    /// page fill state.
    pub fn tags(&self) -> &TagBits {
        &self.tags
    }

    /// Total deferred readers across all cells.
    pub fn pending_waiters(&self) -> usize {
        self.waiters.values().map(Vec::len).sum()
    }

    fn check(&self, index: usize) -> SaResult<()> {
        if index >= self.values.len() {
            Err(SaError::OutOfBounds {
                index,
                len: self.values.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Single assignment of cell `index`.
    ///
    /// Returns the deferred-read tokens queued on that cell (FIFO). Fails
    /// with [`SaError::DoubleWrite`] if the cell is already defined in the
    /// current generation.
    pub fn write(&mut self, index: usize, value: T) -> SaResult<Vec<u64>> {
        self.check(index)?;
        if self.tags.get(index) {
            return Err(SaError::DoubleWrite {
                index,
                generation: self.generation,
            });
        }
        self.values[index] = value;
        self.tags.set(index);
        Ok(self.waiters.remove(&index).unwrap_or_default())
    }

    /// Read cell `index`: `Ok(Some(&v))` if defined, `Ok(None)` if not.
    pub fn read(&self, index: usize) -> SaResult<Option<&T>> {
        self.check(index)?;
        Ok(if self.tags.get(index) {
            Some(&self.values[index])
        } else {
            None
        })
    }

    /// Read cell `index`, queueing `token` as a deferred reader if undefined.
    pub fn read_or_defer(&mut self, index: usize, token: u64) -> SaResult<CellRead<&T>> {
        self.check(index)?;
        if self.tags.get(index) {
            Ok(CellRead::Ready(&self.values[index]))
        } else {
            self.waiters.entry(index).or_default().push(token);
            Ok(CellRead::Deferred)
        }
    }

    /// Raw value slice — only meaningful where the tags say defined.
    /// Used by the machine layer to copy page payloads.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Re-initialize: every cell returns to undefined and the generation is
    /// bumped. Refuses to run while deferred readers are pending
    /// ([`SaError::PendingReaders`]); the host-processor protocol guarantees
    /// this cannot happen in a well-formed program (paper §5).
    pub fn reinit(&mut self) -> SaResult<Generation> {
        let pending = self.pending_waiters();
        if pending > 0 {
            return Err(SaError::PendingReaders { waiters: pending });
        }
        self.tags.clear();
        self.generation += 1;
        Ok(self.generation)
    }

    /// Re-initialize with fresh contents (all cells defined at the new
    /// generation) — models arrays whose next generation starts from
    /// initialization data.
    pub fn reinit_with(&mut self, init: Vec<T>) -> SaResult<Generation> {
        if init.len() != self.values.len() {
            return Err(SaError::OutOfBounds {
                index: init.len(),
                len: self.values.len(),
            });
        }
        let gen = self.reinit()?;
        self.values = init;
        self.tags = TagBits::all_set(self.values.len());
        Ok(gen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut a = SaArray::new("A", 8);
        assert_eq!(a.read(3).unwrap(), None);
        a.write(3, 2.5f64).unwrap();
        assert_eq!(a.read(3).unwrap(), Some(&2.5));
        assert_eq!(a.defined_count(), 1);
        assert_eq!(a.name(), "A");
    }

    #[test]
    fn double_write_reports_index_and_generation() {
        let mut a = SaArray::new("A", 4);
        a.write(1, 1.0).unwrap();
        assert_eq!(
            a.write(1, 2.0).unwrap_err(),
            SaError::DoubleWrite {
                index: 1,
                generation: 0
            }
        );
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut a = SaArray::<f64>::new("A", 4);
        assert_eq!(
            a.write(4, 0.0).unwrap_err(),
            SaError::OutOfBounds { index: 4, len: 4 }
        );
        assert_eq!(
            a.read(9).unwrap_err(),
            SaError::OutOfBounds { index: 9, len: 4 }
        );
    }

    #[test]
    fn with_init_is_fully_defined_and_reusable_after_reinit() {
        let mut a = SaArray::with_init("B", vec![1.0, 2.0, 3.0]);
        assert!(a.is_fully_defined());
        assert_eq!(a.read(2).unwrap(), Some(&3.0));
        assert_eq!(a.generation(), 0);
        assert_eq!(a.reinit().unwrap(), 1);
        assert_eq!(a.read(2).unwrap(), None);
        // Cells are writable again in the new generation.
        a.write(2, 9.0).unwrap();
        assert_eq!(a.read(2).unwrap(), Some(&9.0));
    }

    #[test]
    fn deferred_read_tokens_flow_through_write() {
        let mut a = SaArray::new("A", 4);
        assert!(a.read_or_defer(0, 11).unwrap().is_deferred());
        assert!(a.read_or_defer(0, 22).unwrap().is_deferred());
        assert_eq!(a.pending_waiters(), 2);
        let woken = a.write(0, 5.0).unwrap();
        assert_eq!(woken, vec![11, 22]);
        assert_eq!(a.pending_waiters(), 0);
        assert_eq!(a.read_or_defer(0, 33).unwrap().unwrap_ready(), &5.0);
    }

    #[test]
    fn reinit_refuses_pending_readers() {
        let mut a = SaArray::<f64>::new("A", 2);
        let _ = a.read_or_defer(1, 7).unwrap();
        assert_eq!(
            a.reinit().unwrap_err(),
            SaError::PendingReaders { waiters: 1 }
        );
    }

    #[test]
    fn reinit_with_replaces_contents_at_next_generation() {
        let mut a = SaArray::with_init("A", vec![1.0, 2.0]);
        let gen = a.reinit_with(vec![7.0, 8.0]).unwrap();
        assert_eq!(gen, 1);
        assert!(a.is_fully_defined());
        assert_eq!(a.read(0).unwrap(), Some(&7.0));
        // Wrong-length init is rejected.
        assert!(a.reinit_with(vec![0.0]).is_err());
    }
}
