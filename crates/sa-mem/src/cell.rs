//! A single write-once memory cell with a deferred-read queue.

use crate::error::{SaError, SaResult};

/// Outcome of a read against a possibly-undefined cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellRead<T> {
    /// The cell was defined; here is its value.
    Ready(T),
    /// The cell is undefined; the caller's token was queued and will be
    /// returned by the eventual [`SaCell::write`].
    Deferred,
}

impl<T> CellRead<T> {
    /// Returns the value if the read completed, panicking otherwise.
    ///
    /// Intended for tests and call sites that have already established
    /// definedness via [`SaCell::is_defined`].
    pub fn unwrap_ready(self) -> T {
        match self {
            CellRead::Ready(v) => v,
            CellRead::Deferred => panic!("unwrap_ready on a deferred cell read"),
        }
    }

    /// True if the read was deferred.
    pub fn is_deferred(&self) -> bool {
        matches!(self, CellRead::Deferred)
    }
}

/// A write-once cell: the unit of the paper's tagged memory.
///
/// An undefined cell carries a queue of *deferred read tokens* — opaque
/// `u64`s chosen by the caller (the simulator uses them to identify the
/// stalled PE/continuation). Writing the cell returns the queued tokens so
/// the caller can wake them, mirroring I-structure semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SaCell<T> {
    /// No value yet; readers queue here.
    Undefined {
        /// Tokens of deferred readers, in arrival order.
        waiters: Vec<u64>,
    },
    /// The single assigned value.
    Defined(T),
}

impl<T> Default for SaCell<T> {
    fn default() -> Self {
        SaCell::new()
    }
}

impl<T> SaCell<T> {
    /// A fresh, undefined cell with no waiters.
    pub const fn new() -> Self {
        SaCell::Undefined {
            waiters: Vec::new(),
        }
    }

    /// True once the cell has been written.
    pub fn is_defined(&self) -> bool {
        matches!(self, SaCell::Defined(_))
    }

    /// Number of deferred readers currently queued.
    pub fn waiter_count(&self) -> usize {
        match self {
            SaCell::Undefined { waiters } => waiters.len(),
            SaCell::Defined(_) => 0,
        }
    }

    /// Perform the single assignment.
    ///
    /// On success returns the deferred-read tokens that were queued while the
    /// cell was undefined (in FIFO order) so the caller can resume them.
    /// A second write fails with [`SaError::DoubleWrite`]; `index` and
    /// `generation` are threaded through for the error report only.
    pub fn write(&mut self, value: T, index: usize, generation: u32) -> SaResult<Vec<u64>> {
        match self {
            SaCell::Defined(_) => Err(SaError::DoubleWrite { index, generation }),
            SaCell::Undefined { waiters } => {
                let woken = std::mem::take(waiters);
                *self = SaCell::Defined(value);
                Ok(woken)
            }
        }
    }

    /// Non-destructive read: `Some(&value)` if defined, `None` otherwise.
    pub fn read(&self) -> Option<&T> {
        match self {
            SaCell::Defined(v) => Some(v),
            SaCell::Undefined { .. } => None,
        }
    }

    /// Read, queueing `token` if the cell is still undefined.
    pub fn read_or_defer(&mut self, token: u64) -> CellRead<&T> {
        match self {
            SaCell::Defined(v) => CellRead::Ready(v),
            SaCell::Undefined { waiters } => {
                waiters.push(token);
                CellRead::Deferred
            }
        }
    }

    /// Reset to undefined, dropping the value.
    ///
    /// Fails with [`SaError::PendingReaders`] if deferred readers are queued —
    /// re-initialization must be coordinated (host protocol, paper §5) so no
    /// reader is left dangling across a generation boundary.
    pub fn reset(&mut self) -> SaResult<()> {
        match self {
            SaCell::Undefined { waiters } if !waiters.is_empty() => Err(SaError::PendingReaders {
                waiters: waiters.len(),
            }),
            _ => {
                *self = SaCell::new();
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cell_is_undefined() {
        let c: SaCell<f64> = SaCell::new();
        assert!(!c.is_defined());
        assert_eq!(c.read(), None);
        assert_eq!(c.waiter_count(), 0);
    }

    #[test]
    fn single_write_defines_and_returns_no_waiters() {
        let mut c = SaCell::new();
        let woken = c.write(3.25, 0, 0).unwrap();
        assert!(woken.is_empty());
        assert_eq!(c.read(), Some(&3.25));
    }

    #[test]
    fn double_write_is_a_runtime_error() {
        let mut c = SaCell::new();
        c.write(1.0, 5, 2).unwrap();
        let err = c.write(2.0, 5, 2).unwrap_err();
        assert_eq!(
            err,
            SaError::DoubleWrite {
                index: 5,
                generation: 2
            }
        );
        // Original value is preserved.
        assert_eq!(c.read(), Some(&1.0));
    }

    #[test]
    fn deferred_readers_are_woken_in_fifo_order() {
        let mut c: SaCell<i32> = SaCell::new();
        assert!(c.read_or_defer(10).is_deferred());
        assert!(c.read_or_defer(20).is_deferred());
        assert!(c.read_or_defer(30).is_deferred());
        assert_eq!(c.waiter_count(), 3);
        let woken = c.write(7, 0, 0).unwrap();
        assert_eq!(woken, vec![10, 20, 30]);
        // Subsequent reads complete immediately.
        assert_eq!(c.read_or_defer(40).unwrap_ready(), &7);
    }

    #[test]
    fn reset_clears_value_but_refuses_pending_readers() {
        let mut c = SaCell::new();
        c.write(1u8, 0, 0).unwrap();
        c.reset().unwrap();
        assert!(!c.is_defined());

        let mut c: SaCell<u8> = SaCell::new();
        let _ = c.read_or_defer(1);
        assert_eq!(c.reset(), Err(SaError::PendingReaders { waiters: 1 }));
    }

    #[test]
    fn unwrap_ready_panics_on_deferred() {
        let mut c: SaCell<u8> = SaCell::new();
        let r = c.read_or_defer(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.unwrap_ready()));
        assert!(caught.is_err());
    }
}
