//! Error types for single-assignment memory violations.

use core::fmt;

/// Errors raised by single-assignment memory.
///
/// `DoubleWrite` is the paper's headline runtime error: under single
/// assignment "there will never be a race condition for writes to a memory
/// cell, since only one PE may write to any particular cell and writing more
/// than once results in a runtime error" (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaError {
    /// A cell that is already defined was written again.
    DoubleWrite {
        /// Linear index of the offending cell.
        index: usize,
        /// Generation of the array at the time of the violation.
        generation: u32,
    },
    /// An index outside the array bounds was accessed.
    OutOfBounds {
        /// The offending index.
        index: usize,
        /// Length of the array.
        len: usize,
    },
    /// An operation was attempted against the wrong array generation
    /// (e.g. a deferred read woke up after a re-initialization).
    StaleGeneration {
        /// Generation the operation was issued against.
        expected: u32,
        /// Current generation of the array.
        actual: u32,
    },
    /// A re-initialization was attempted while readers were still queued
    /// on undefined cells; the host protocol must drain them first.
    PendingReaders {
        /// Number of deferred readers still queued.
        waiters: usize,
    },
}

impl fmt::Display for SaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SaError::DoubleWrite { index, generation } => write!(
                f,
                "single-assignment violation: cell {index} written twice (generation {generation})"
            ),
            SaError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for array of length {len}")
            }
            SaError::StaleGeneration { expected, actual } => write!(
                f,
                "stale generation: operation issued for generation {expected}, array is at {actual}"
            ),
            SaError::PendingReaders { waiters } => write!(
                f,
                "re-initialization with {waiters} deferred readers still pending"
            ),
        }
    }
}

impl std::error::Error for SaError {}

/// Convenience result alias used throughout the substrate.
pub type SaResult<T> = Result<T, SaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SaError::DoubleWrite {
            index: 7,
            generation: 2,
        };
        assert!(e.to_string().contains("cell 7"));
        assert!(e.to_string().contains("generation 2"));
        let e = SaError::OutOfBounds { index: 10, len: 4 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("4"));
        let e = SaError::StaleGeneration {
            expected: 1,
            actual: 3,
        };
        assert!(e.to_string().contains("generation 1"));
        let e = SaError::PendingReaders { waiters: 5 };
        assert!(e.to_string().contains("5"));
    }

    #[test]
    fn errors_are_comparable_and_copy() {
        let a = SaError::DoubleWrite {
            index: 1,
            generation: 0,
        };
        let b = a;
        assert_eq!(a, b);
        assert_ne!(
            a,
            SaError::DoubleWrite {
                index: 2,
                generation: 0
            }
        );
    }
}
