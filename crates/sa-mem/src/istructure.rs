//! Concurrent I-structure memory for real-thread execution.
//!
//! The paper cites HEP full/empty bits and dataflow I-structures
//! (\[ANP87\], \[A&C86\]) as the hardware that enforces write-before-read. This
//! module provides the software equivalent: an array of write-once slots
//! where readers *block* (park) until the producer writes, and a second
//! write is an error.
//!
//! Slots are striped across `STRIPES` independent `Mutex`/`Condvar` pairs so
//! unrelated cells do not contend — the same trick hardware uses by banking
//! tag memory.

use parking_lot::{Condvar, Mutex};

use crate::error::{SaError, SaResult};

const STRIPES: usize = 64;

struct Stripe<T> {
    slots: Mutex<Vec<Option<T>>>,
    cond: Condvar,
}

/// A fixed-size array of write-once cells safe to share across threads.
///
/// Indexing is dense `0..len`; the stripe for index `i` is `i % STRIPES`,
/// and slot `i / STRIPES` within it, so contiguous indices land on distinct
/// stripes (good for the sequential scans the Livermore loops perform).
pub struct IStructure<T> {
    stripes: Vec<Stripe<T>>,
    len: usize,
}

impl<T: Clone> IStructure<T> {
    /// A fresh structure of `len` undefined cells.
    pub fn new(len: usize) -> Self {
        let per = len.div_ceil(STRIPES);
        let stripes = (0..STRIPES)
            .map(|_| Stripe {
                slots: Mutex::new(vec![None; per]),
                cond: Condvar::new(),
            })
            .collect();
        IStructure { stripes, len }
    }

    /// Build a structure whose every cell is already defined.
    pub fn from_init(init: &[T]) -> Self {
        let s = IStructure::new(init.len());
        for (i, v) in init.iter().enumerate() {
            s.write(i, v.clone())
                .expect("fresh structure accepts first writes");
        }
        s
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the structure has zero cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn locate(&self, index: usize) -> SaResult<(usize, usize)> {
        if index >= self.len {
            return Err(SaError::OutOfBounds {
                index,
                len: self.len,
            });
        }
        Ok((index % STRIPES, index / STRIPES))
    }

    /// Single assignment of cell `index`, waking any parked readers.
    pub fn write(&self, index: usize, value: T) -> SaResult<()> {
        let (s, off) = self.locate(index)?;
        let stripe = &self.stripes[s];
        let mut slots = stripe.slots.lock();
        if slots[off].is_some() {
            return Err(SaError::DoubleWrite {
                index,
                generation: 0,
            });
        }
        slots[off] = Some(value);
        stripe.cond.notify_all();
        Ok(())
    }

    /// Blocking read: parks the calling thread until the cell is defined.
    ///
    /// This is the deferred-read queue of paper §3 realised with a condvar;
    /// the "queue of read requests" is the OS parking list.
    pub fn read_blocking(&self, index: usize) -> SaResult<T> {
        let (s, off) = self.locate(index)?;
        let stripe = &self.stripes[s];
        let mut slots = stripe.slots.lock();
        while slots[off].is_none() {
            stripe.cond.wait(&mut slots);
        }
        Ok(slots[off].as_ref().expect("guarded by loop").clone())
    }

    /// Non-blocking read.
    pub fn try_read(&self, index: usize) -> SaResult<Option<T>> {
        let (s, off) = self.locate(index)?;
        Ok(self.stripes[s].slots.lock()[off].clone())
    }

    /// True once cell `index` has been written.
    pub fn is_defined(&self, index: usize) -> SaResult<bool> {
        Ok(self.try_read(index)?.is_some())
    }

    /// Number of defined cells (O(n); diagnostics only).
    pub fn defined_count(&self) -> usize {
        (0..self.len)
            .filter(|&i| self.is_defined(i).unwrap_or(false))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn write_then_reads_complete() {
        let s = IStructure::new(100);
        s.write(42, 3.5f64).unwrap();
        assert_eq!(s.try_read(42).unwrap(), Some(3.5));
        assert_eq!(s.read_blocking(42).unwrap(), 3.5);
        assert_eq!(s.try_read(41).unwrap(), None);
    }

    #[test]
    fn double_write_rejected() {
        let s = IStructure::new(10);
        s.write(0, 1u32).unwrap();
        assert!(matches!(
            s.write(0, 2),
            Err(SaError::DoubleWrite { index: 0, .. })
        ));
        assert_eq!(s.read_blocking(0).unwrap(), 1);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let s = IStructure::<u8>::new(3);
        assert!(matches!(s.write(3, 0), Err(SaError::OutOfBounds { .. })));
        assert!(matches!(
            s.read_blocking(9),
            Err(SaError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn from_init_defines_all() {
        let s = IStructure::from_init(&[1, 2, 3]);
        assert_eq!(s.defined_count(), 3);
        assert_eq!(s.read_blocking(2).unwrap(), 3);
    }

    #[test]
    fn blocked_reader_resumes_on_write() {
        let s = Arc::new(IStructure::new(8));
        let r = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || s.read_blocking(5).unwrap())
        };
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            !r.is_finished(),
            "reader must be parked until the producer writes"
        );
        s.write(5, 99u64).unwrap();
        assert_eq!(r.join().unwrap(), 99);
    }

    #[test]
    fn producer_consumer_pipeline_over_stripes() {
        // Consumer chases the producer through a recurrence X(i) = X(i-1)+1:
        // write-before-read is enforced purely by the memory, no barriers.
        let n = 1000;
        let x = Arc::new(IStructure::new(n));
        x.write(0, 0u64).unwrap();
        let producer = {
            let x = Arc::clone(&x);
            std::thread::spawn(move || {
                for i in 1..n {
                    let prev = x.read_blocking(i - 1).unwrap();
                    x.write(i, prev + 1).unwrap();
                }
            })
        };
        let consumer = {
            let x = Arc::clone(&x);
            std::thread::spawn(move || x.read_blocking(n - 1).unwrap())
        };
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), (n - 1) as u64);
    }
}
