//! One-shot write-once synchronization variable.

use parking_lot::{Condvar, Mutex};

use crate::error::{SaError, SaResult};

/// A single-assignment variable shared between threads.
///
/// `IVar` is the scalar special case of an I-structure: one producer calls
/// [`IVar::write`] exactly once, any number of consumers call
/// [`IVar::read`] and block until the value exists. Used by the runtime for
/// vector→scalar reduction results collected at an array's host PE
/// (paper §9, "extension of the host processor mechanism").
#[derive(Debug, Default)]
pub struct IVar<T> {
    slot: Mutex<Option<T>>,
    cond: Condvar,
}

impl<T: Clone> IVar<T> {
    /// A fresh, empty IVar.
    pub fn new() -> Self {
        IVar {
            slot: Mutex::new(None),
            cond: Condvar::new(),
        }
    }

    /// Perform the single assignment, waking all blocked readers.
    pub fn write(&self, value: T) -> SaResult<()> {
        let mut guard = self.slot.lock();
        if guard.is_some() {
            return Err(SaError::DoubleWrite {
                index: 0,
                generation: 0,
            });
        }
        *guard = Some(value);
        self.cond.notify_all();
        Ok(())
    }

    /// Blocking read: waits until the producer has written.
    pub fn read(&self) -> T {
        let mut guard = self.slot.lock();
        while guard.is_none() {
            self.cond.wait(&mut guard);
        }
        guard.as_ref().expect("guarded by loop").clone()
    }

    /// Non-blocking read.
    pub fn try_read(&self) -> Option<T> {
        self.slot.lock().clone()
    }

    /// True once written.
    pub fn is_defined(&self) -> bool {
        self.slot.lock().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn write_once_then_read() {
        let v = IVar::new();
        assert!(!v.is_defined());
        assert_eq!(v.try_read(), None);
        v.write(42).unwrap();
        assert_eq!(v.read(), 42);
        assert_eq!(v.try_read(), Some(42));
    }

    #[test]
    fn second_write_fails() {
        let v = IVar::new();
        v.write(1).unwrap();
        assert!(matches!(v.write(2), Err(SaError::DoubleWrite { .. })));
        assert_eq!(v.read(), 1);
    }

    #[test]
    fn blocking_read_waits_for_producer() {
        let v = Arc::new(IVar::new());
        let mut readers = Vec::new();
        for _ in 0..4 {
            let v = Arc::clone(&v);
            readers.push(std::thread::spawn(move || v.read()));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        v.write(7u64).unwrap();
        for r in readers {
            assert_eq!(r.join().unwrap(), 7);
        }
    }

    #[test]
    fn concurrent_writers_exactly_one_wins() {
        let v = Arc::new(IVar::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let v = Arc::clone(&v);
                std::thread::spawn(move || v.write(i).is_ok())
            })
            .collect();
        let successes = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&ok| ok)
            .count();
        assert_eq!(successes, 1);
        assert!(v.is_defined());
    }
}
