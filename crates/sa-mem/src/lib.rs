//! # sa-mem — single-assignment memory substrate
//!
//! This crate implements the *memory tagging mechanism* of Bic, Nagel & Roy
//! (UCI TR 89-08, §3): every memory cell is either **undefined** or
//! **defined**, writes are allowed exactly once per cell per array
//! *generation*, and reads of undefined cells can be *deferred* (queued)
//! until the producer writes — the write-once/read-many discipline of HEP
//! full/empty bits and dataflow I-structures.
//!
//! The substrate comes in two flavours:
//!
//! * **Sequential** building blocks used by the simulator
//!   ([`SaCell`], [`TagBits`], [`SaArray`]) — deterministic, no locking.
//! * **Concurrent** structures used by the real-thread runtime
//!   ([`IStructure`], [`IVar`]) — blocking reads implemented with
//!   `parking_lot` locks and condvars, so "synchronization through single
//!   assignment" (paper §3) can be demonstrated on actual hardware threads.
//!
//! A second write to the same cell is a *runtime error* ([`SaError::DoubleWrite`]),
//! exactly as the paper prescribes ("writing more than once results in a
//! runtime error", §3). Arrays may be *re-initialized* (all cells return to
//! undefined) which bumps their [`Generation`]; the machine layer couples this
//! to the host-processor protocol of paper §5.

#![warn(missing_docs)]

pub mod array;
pub mod cell;
pub mod error;
pub mod istructure;
pub mod ivar;
pub mod page;
pub mod tagged;

pub use array::SaArray;
pub use cell::{CellRead, SaCell};
pub use error::{SaError, SaResult};
pub use istructure::IStructure;
pub use ivar::IVar;
pub use page::TaggedPage;
pub use tagged::TagBits;

/// Monotonically increasing version of an array's contents.
///
/// Single assignment holds *within* a generation; the host-processor
/// re-initialization protocol (paper §5) is the only sanctioned way to move
/// an array to the next generation. Caches key pages by `(array, page,
/// generation)` so a stale page can never produce a hit.
pub type Generation = u32;
