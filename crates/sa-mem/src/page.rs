//! Tagged page buffers — the unit of transfer between PEs.
//!
//! A [`TaggedPage`] is a fixed-length run of cells with a presence bit per
//! cell: the common shape of a worker's owned page frame, the payload of a
//! page reply shipped over the interconnect, a cached copy, and the
//! resolution snapshots the runtime keeps for indirect statement anchors.
//! Centralizing it here keeps the *upgrade* semantics (merging a refetched
//! partial page into a resident copy, paper §8) in exactly one place.

use crate::tagged::TagBits;

/// A fixed-length cell buffer with per-cell presence tags.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedPage {
    values: Vec<f64>,
    fill: TagBits,
}

impl TaggedPage {
    /// An all-undefined page of `len` cells.
    pub fn undefined(len: usize) -> Self {
        TaggedPage {
            values: vec![0.0; len],
            fill: TagBits::new(len),
        }
    }

    /// A fully defined page holding `values`.
    pub fn full(values: Vec<f64>) -> Self {
        let fill = TagBits::all_set(values.len());
        TaggedPage { values, fill }
    }

    /// Assemble from raw parts (a shipped reply). Panics on length mismatch.
    pub fn from_parts(values: Vec<f64>, fill: TagBits) -> Self {
        assert_eq!(values.len(), fill.len(), "page/fill length mismatch");
        TaggedPage { values, fill }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the page covers zero cells.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of cell `offset`, or `None` while it is undefined.
    pub fn get(&self, offset: usize) -> Option<f64> {
        if offset < self.len() && self.fill.get(offset) {
            Some(self.values[offset])
        } else {
            None
        }
    }

    /// Define cell `offset`; returns whether it was *already* defined (the
    /// caller's single-assignment check).
    pub fn set(&mut self, offset: usize, value: f64) -> bool {
        self.values[offset] = value;
        self.fill.set(offset)
    }

    /// Presence bitmap.
    pub fn fill(&self) -> &TagBits {
        &self.fill
    }

    /// Raw cell values (undefined cells hold garbage; gate with [`fill`]).
    ///
    /// [`fill`]: TaggedPage::fill
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// True if every cell is defined.
    pub fn is_full(&self) -> bool {
        self.fill.is_full()
    }

    /// Upgrade in place from another snapshot of the same page: copy the
    /// cells `other` has defined and union the presence bits (§8 partial
    /// page refetch). Panics on length mismatch.
    pub fn merge_from(&mut self, other: &TaggedPage) {
        for i in other.fill.iter_set() {
            self.values[i] = other.values[i];
        }
        self.fill.union_with(&other.fill);
    }

    /// Return every cell to undefined (re-initialization).
    pub fn clear(&mut self) {
        self.fill.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undefined_then_set_then_get() {
        let mut p = TaggedPage::undefined(4);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.get(2), None);
        assert!(!p.set(2, 7.0), "first write is not a double");
        assert_eq!(p.get(2), Some(7.0));
        assert!(p.set(2, 8.0), "second write reports prior definition");
        assert!(!p.is_full());
    }

    #[test]
    fn full_pages_answer_everywhere() {
        let p = TaggedPage::full(vec![1.0, 2.0]);
        assert!(p.is_full());
        assert_eq!(p.get(0), Some(1.0));
        assert_eq!(p.get(1), Some(2.0));
        assert_eq!(p.get(2), None, "out of range is undefined, not a panic");
    }

    #[test]
    fn merge_upgrades_without_losing_cells() {
        let mut a = TaggedPage::undefined(4);
        a.set(0, 1.0);
        let mut b = TaggedPage::undefined(4);
        b.set(3, 9.0);
        a.merge_from(&b);
        assert_eq!(a.get(0), Some(1.0), "old cells survive the upgrade");
        assert_eq!(a.get(3), Some(9.0));
        assert_eq!(a.fill().count_ones(), 2);
    }

    #[test]
    fn clear_returns_to_undefined() {
        let mut p = TaggedPage::full(vec![1.0]);
        p.clear();
        assert_eq!(p.get(0), None);
        assert!(!p.is_full());
    }

    #[test]
    fn from_parts_round_trips() {
        let mut fill = TagBits::new(3);
        fill.set(1);
        let p = TaggedPage::from_parts(vec![0.0, 5.0, 0.0], fill.clone());
        assert_eq!(p.get(0), None);
        assert_eq!(p.get(1), Some(5.0));
        assert_eq!(p.fill(), &fill);
        assert_eq!(p.values(), &[0.0, 5.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_parts_rejects_mismatched_lengths() {
        let _ = TaggedPage::from_parts(vec![0.0], TagBits::new(2));
    }
}
