//! Presence bitmaps — the "memory tagging mechanism" of paper §3.
//!
//! One bit per cell (packed 64 to a word) records defined/undefined. The
//! machine layer uses [`TagBits`] both for PE-local page frames and for the
//! *filled snapshot* shipped with a page reply, which is what makes
//! partial-page refetch accounting possible.

/// A fixed-length bitmap with one presence bit per memory cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagBits {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl TagBits {
    /// All-undefined bitmap over `len` cells.
    pub fn new(len: usize) -> Self {
        TagBits {
            words: vec![0; len.div_ceil(64)],
            len,
            ones: 0,
        }
    }

    /// All-defined bitmap over `len` cells (arrays "filled with
    /// initialization data", paper §3).
    pub fn all_set(len: usize) -> Self {
        let mut t = TagBits::new(len);
        for i in 0..len {
            t.set(i);
        }
        t
    }

    /// Number of cells covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap covers zero cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of defined cells.
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// True if every covered cell is defined.
    pub fn is_full(&self) -> bool {
        self.ones == self.len
    }

    /// Presence bit for cell `i`. Panics if out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "tag index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Mark cell `i` defined; returns the previous state.
    pub fn set(&mut self, i: usize) -> bool {
        assert!(i < self.len, "tag index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let prev = *w & mask != 0;
        if !prev {
            *w |= mask;
            self.ones += 1;
        }
        prev
    }

    /// Clear every presence bit (re-initialization).
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// True if all cells in `range` are defined.
    pub fn all_set_in(&self, range: core::ops::Range<usize>) -> bool {
        range.clone().all(|i| self.get(i))
    }

    /// Index of the first undefined cell, if any.
    pub fn first_unset(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != u64::MAX {
                let bit = (!w).trailing_zeros() as usize;
                let idx = wi * 64 + bit;
                if idx < self.len {
                    return Some(idx);
                }
            }
        }
        None
    }

    /// Iterator over the indices of defined cells, ascending.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// Bitwise-OR another bitmap of the same length into this one
    /// (used to *upgrade* a cached partial page with a refetched snapshot).
    pub fn union_with(&mut self, other: &TagBits) {
        assert_eq!(self.len, other.len, "tag bitmap length mismatch");
        let mut ones = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
            ones += a.count_ones() as usize;
        }
        self.ones = ones;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_unset() {
        let t = TagBits::new(130);
        assert_eq!(t.len(), 130);
        assert_eq!(t.count_ones(), 0);
        assert!(!t.is_full());
        assert_eq!(t.first_unset(), Some(0));
        assert!(!t.get(0));
        assert!(!t.get(129));
    }

    #[test]
    fn set_and_get_roundtrip_across_word_boundaries() {
        let mut t = TagBits::new(200);
        for &i in &[0, 1, 63, 64, 65, 127, 128, 199] {
            assert!(!t.set(i), "first set of {i} should report previously-unset");
            assert!(t.get(i));
        }
        assert_eq!(t.count_ones(), 8);
        // Second set reports already-set and does not double count.
        assert!(t.set(63));
        assert_eq!(t.count_ones(), 8);
    }

    #[test]
    fn all_set_constructor_is_full() {
        let t = TagBits::all_set(77);
        assert!(t.is_full());
        assert_eq!(t.count_ones(), 77);
        assert_eq!(t.first_unset(), None);
    }

    #[test]
    fn first_unset_skips_full_words() {
        let mut t = TagBits::new(150);
        for i in 0..128 {
            t.set(i);
        }
        assert_eq!(t.first_unset(), Some(128));
        for i in 128..150 {
            t.set(i);
        }
        assert_eq!(t.first_unset(), None);
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = TagBits::all_set(65);
        t.clear();
        assert_eq!(t.count_ones(), 0);
        assert!(!t.get(64));
    }

    #[test]
    fn all_set_in_ranges() {
        let mut t = TagBits::new(100);
        for i in 10..20 {
            t.set(i);
        }
        assert!(t.all_set_in(10..20));
        assert!(!t.all_set_in(9..20));
        assert!(!t.all_set_in(10..21));
        assert!(t.all_set_in(15..15)); // empty range is trivially full
    }

    #[test]
    fn iter_set_yields_sorted_indices() {
        let mut t = TagBits::new(70);
        for &i in &[5, 64, 69, 0] {
            t.set(i);
        }
        let v: Vec<usize> = t.iter_set().collect();
        assert_eq!(v, vec![0, 5, 64, 69]);
    }

    #[test]
    fn union_upgrades_partial_snapshot() {
        let mut a = TagBits::new(128);
        a.set(3);
        let mut b = TagBits::new(128);
        b.set(100);
        b.set(3);
        a.union_with(&b);
        assert!(a.get(3) && a.get(100));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let t = TagBits::new(10);
        t.get(10);
    }
}
