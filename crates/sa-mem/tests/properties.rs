//! Property tests for the single-assignment memory substrate.

use proptest::prelude::*;

use sa_mem::{CellRead, IStructure, SaArray, SaError, TagBits};

proptest! {
    /// For any sequence of writes, exactly the first write to each index
    /// succeeds and the value read back is that first value.
    #[test]
    fn first_write_wins_everywhere(
        len in 1usize..128,
        writes in prop::collection::vec((0usize..128, -1e6f64..1e6), 1..300),
    ) {
        let mut a = SaArray::new("A", len);
        let mut model: Vec<Option<f64>> = vec![None; len];
        let mut defined = 0usize;
        for (i, v) in writes {
            let r = a.write(i % len, v);
            let slot = &mut model[i % len];
            match slot {
                None => {
                    prop_assert!(r.is_ok());
                    *slot = Some(v);
                    defined += 1;
                }
                Some(_) => {
                    let is_double_write = matches!(r, Err(SaError::DoubleWrite { .. }));
                    prop_assert!(is_double_write);
                }
            }
        }
        prop_assert_eq!(a.defined_count(), defined);
        for (i, want) in model.iter().enumerate() {
            prop_assert_eq!(a.read(i).unwrap().copied(), *want);
        }
    }

    /// Deferred readers are woken exactly once, in FIFO order, by the
    /// single write; later reads are immediate.
    #[test]
    fn deferred_tokens_fifo(tokens in prop::collection::vec(0u64..1000, 1..32)) {
        let mut a = SaArray::new("A", 4);
        for &t in &tokens {
            prop_assert!(matches!(a.read_or_defer(2, t), Ok(CellRead::Deferred)));
        }
        let woken = a.write(2, 1.5).unwrap();
        prop_assert_eq!(woken, tokens);
        prop_assert_eq!(a.pending_waiters(), 0);
        prop_assert!(matches!(a.read_or_defer(2, 9), Ok(CellRead::Ready(&1.5))));
    }

    /// Tag bitmaps agree with a boolean-vector model under arbitrary
    /// set/clear/union operations.
    #[test]
    fn tagbits_matches_model(
        len in 1usize..300,
        sets in prop::collection::vec(0usize..300, 0..400),
    ) {
        let mut t = TagBits::new(len);
        let mut model = vec![false; len];
        for s in sets {
            let i = s % len;
            let prev = t.set(i);
            prop_assert_eq!(prev, model[i]);
            model[i] = true;
        }
        prop_assert_eq!(t.count_ones(), model.iter().filter(|&&b| b).count());
        for (i, &m) in model.iter().enumerate() {
            prop_assert_eq!(t.get(i), m);
        }
        prop_assert_eq!(t.first_unset(), model.iter().position(|&b| !b));
        let collected: Vec<usize> = t.iter_set().collect();
        let expect: Vec<usize> =
            model.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        prop_assert_eq!(collected, expect);
    }

    /// Re-initialization makes every cell writable exactly once more and
    /// bumps the generation each time.
    #[test]
    fn reinit_generations(rounds in 1u32..6, len in 1usize..64) {
        let mut a = SaArray::new("A", len);
        for g in 0..rounds {
            prop_assert_eq!(a.generation(), g);
            for i in 0..len {
                a.write(i, g as f64).unwrap();
            }
            prop_assert!(a.is_fully_defined());
            prop_assert!(a.write(0, 9.9).is_err());
            a.reinit().unwrap();
        }
        prop_assert_eq!(a.generation(), rounds);
        prop_assert_eq!(a.defined_count(), 0);
    }
}

#[test]
fn istructure_races_have_one_winner_per_cell() {
    // 8 threads race to write every cell of a shared I-structure; exactly
    // one write per cell may succeed, and afterwards every cell holds the
    // winner's value.
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    let n = 256;
    let s = Arc::new(IStructure::new(n));
    let successes = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..8)
        .map(|tid| {
            let s = Arc::clone(&s);
            let successes = Arc::clone(&successes);
            std::thread::spawn(move || {
                for i in 0..n {
                    if s.write(i, tid as f64).is_ok() {
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(successes.load(Ordering::Relaxed), n);
    assert_eq!(s.defined_count(), n);
    for i in 0..n {
        let v = s.read_blocking(i).unwrap();
        assert!((0.0..8.0).contains(&v));
    }
}
