//! Spawn, coordinate and join the worker threads.

use crossbeam::channel::unbounded;

use sa_core::screening::PartitionMap;
use sa_ir::Program;
use sa_machine::{MachineConfig, PartitionScheme, Stats};
use sa_mem::SaArray;

use crate::net::Msg;
use crate::worker::{Worker, WorkerResult, WorkerSpec};

/// Configuration of a real-thread run (the machine parameters that matter
/// to the runtime; network topology and cost models are simulator-side).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Number of worker threads (PEs).
    pub n_pes: usize,
    /// Page size in elements.
    pub page_size: usize,
    /// Per-PE cache size in elements (0 disables caching).
    pub cache_elems: usize,
    /// Page placement scheme.
    pub partition: PartitionScheme,
}

impl RuntimeConfig {
    /// The paper's machine: modulo placement, 256-element cache.
    pub fn paper(n_pes: usize, page_size: usize) -> Self {
        RuntimeConfig {
            n_pes,
            page_size,
            cache_elems: 256,
            partition: PartitionScheme::Modulo,
        }
    }

    /// Adopt the counting simulator's parameters.
    pub fn from_machine(cfg: &MachineConfig) -> Self {
        RuntimeConfig {
            n_pes: cfg.n_pes,
            page_size: cfg.page_size,
            cache_elems: cfg.cache_elems,
            partition: cfg.partition,
        }
    }

    /// The equivalent counting-simulator configuration.
    pub fn to_machine(&self) -> MachineConfig {
        MachineConfig::new(self.n_pes, self.page_size)
            .with_cache_elems(self.cache_elems)
            .with_partition(self.partition)
    }

    /// Validate the configuration (delegates to [`MachineConfig::validate`],
    /// so the runtime and the simulator reject exactly the same configs).
    pub fn validate(&self) -> Result<(), sa_machine::ConfigError> {
        self.to_machine().validate()
    }

    /// Cache capacity in pages. Only meaningful on a validated config —
    /// zero page sizes are rejected by [`RuntimeConfig::validate`] rather
    /// than silently treated as "no cache".
    fn cache_pages(&self) -> usize {
        debug_assert!(self.page_size > 0, "cache_pages on an unvalidated config");
        self.cache_elems / self.page_size
    }
}

/// Runtime failures.
#[derive(Debug)]
pub enum RuntimeError {
    /// Bad configuration.
    InvalidConfig(String),
    /// A worker thread panicked (a semantic violation such as a double
    /// write, or an internal bug); the payload is its panic message.
    WorkerPanicked(String),
}

impl core::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RuntimeError::InvalidConfig(m) => write!(f, "invalid runtime config: {m}"),
            RuntimeError::WorkerPanicked(m) => write!(f, "worker panicked: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Result of a real-thread run.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Aggregated access statistics (same categories as the simulator).
    pub stats: Stats,
    /// Final array contents assembled from the workers' frames.
    pub arrays: Vec<SaArray<f64>>,
    /// Final reduction values.
    pub scalars: Vec<f64>,
    /// Total messages sent across all workers.
    pub messages: u64,
}

/// Execute `program` on `cfg.n_pes` real threads.
pub fn execute(program: &Program, cfg: &RuntimeConfig) -> Result<RuntimeReport, RuntimeError> {
    cfg.validate()
        .map_err(|e| RuntimeError::InvalidConfig(e.to_string()))?;
    let machine_cfg = cfg.to_machine();
    let map = PartitionMap::new(program, &machine_cfg);

    let mut txs = Vec::with_capacity(cfg.n_pes);
    let mut rxs = Vec::with_capacity(cfg.n_pes);
    for _ in 0..cfg.n_pes {
        let (tx, rx) = unbounded::<Msg>();
        txs.push(tx);
        rxs.push(rx);
    }
    let (done_tx, done_rx) = unbounded::<usize>();

    let results: Result<Vec<WorkerResult>, RuntimeError> = std::thread::scope(|s| {
        let handles: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(me, inbox)| {
                let spec = WorkerSpec {
                    me,
                    n_pes: cfg.n_pes,
                    page_size: cfg.page_size,
                    cache_pages: cfg.cache_pages(),
                    inbox,
                    peers: txs.clone(),
                };
                let map = map.clone();
                let done = done_tx.clone();
                s.spawn(move || Worker::new(program, map, spec).run(&done))
            })
            .collect();
        // Workers stay alive (serving remote reads) until everyone is done.
        for _ in 0..cfg.n_pes {
            done_rx.recv().map_err(|_| {
                RuntimeError::WorkerPanicked("a worker exited before finishing".into())
            })?;
        }
        for tx in &txs {
            let _ = tx.send(Msg::Shutdown);
        }
        handles
            .into_iter()
            .map(|h| {
                h.join().map_err(|e| {
                    let msg = e
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "unknown panic".into());
                    RuntimeError::WorkerPanicked(msg)
                })
            })
            .collect()
    });
    let results = results?;

    // Assemble global arrays from the owned frames.
    let mut arrays: Vec<SaArray<f64>> = program
        .arrays
        .iter()
        .map(|d| SaArray::new(d.name.clone(), d.len()))
        .collect();
    let mut stats = Stats::new(cfg.n_pes);
    let mut messages = 0u64;
    for (pe, r) in results.iter().enumerate() {
        stats.per_pe[pe] = r.stats.counters;
        stats.page_fetches += r.stats.page_fetches;
        stats.partial_refetches += r.stats.partial_refetches;
        stats.reinit_messages += r.stats.reinit_messages;
        stats.reduction_messages += r.stats.reduction_messages;
        messages += r.stats.messages_sent;
        for (&(a, page), frame) in &r.frames {
            let start = page * cfg.page_size;
            for off in frame.tags.iter_set() {
                arrays[a]
                    .write(start + off, frame.values[off])
                    .expect("frames are disjoint across owners");
            }
        }
    }
    let scalars = results
        .first()
        .map(|r| r.scalars.clone())
        .unwrap_or_default();
    Ok(RuntimeReport {
        stats,
        arrays,
        scalars,
        messages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::{interpret, InitPattern, ProgramBuilder, ProgramResult};

    fn check_against_reference(program: &Program, cfg: &RuntimeConfig) {
        let golden = interpret(program).expect("reference runs");
        let rep = execute(program, cfg).expect("runtime runs");
        let got = ProgramResult {
            arrays: rep.arrays,
            scalars: rep.scalars,
            writes: 0,
            reads: 0,
        };
        golden
            .assert_matches(&got, 1e-9)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn map_program(n: usize) -> Program {
        let mut b = ProgramBuilder::new("map");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("m", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) * 2.0 + 1.0);
        });
        b.finish()
    }

    #[test]
    fn matched_map_runs_on_many_thread_counts() {
        let p = map_program(300);
        for n in [1usize, 2, 4, 7] {
            check_against_reference(&p, &RuntimeConfig::paper(n, 32));
        }
    }

    #[test]
    fn cross_pe_recurrence_pipelines_via_deferred_reads() {
        // X(i) = Z(i)*(Y(i) - X(i-1)) — K5's chain: PE k+1 blocks on the
        // last element of PE k's page until it is produced.
        let n = 257;
        let mut b = ProgramBuilder::new("chain");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let z = b.input("Z", &[n], InitPattern::Harmonic);
        let x = b.array_with(
            "X",
            &[n],
            sa_ir::program::ArrayInit::Prefix {
                pattern: InitPattern::Const(0.3),
                len: 1,
            },
        );
        b.nest("chain", &[("i", 1, n as i64 - 1)], |nb| {
            nb.assign(
                x,
                [iv(0)],
                nb.read(z, [iv(0)]) * (nb.read(y, [iv(0)]) - nb.read(x, [iv(0).plus(-1)])),
            );
        });
        let p = b.finish();
        for n_pes in [1usize, 3, 8] {
            check_against_reference(&p, &RuntimeConfig::paper(n_pes, 32));
        }
    }

    #[test]
    fn reduction_collects_at_host_and_broadcasts() {
        let n = 200;
        let mut b = ProgramBuilder::new("dotchain");
        let y = b.input(
            "Y",
            &[n],
            InitPattern::Linear {
                base: 1.0,
                step: 0.0,
            },
        );
        let x = b.output("X", &[n]);
        let s = b.scalar("s");
        b.nest("sum", &[("k", 0, n as i64 - 1)], |nb| {
            nb.reduce(s, sa_ir::ReduceOp::Sum, nb.read(y, [iv(0)]));
        });
        // Consumers on every PE read the broadcast scalar.
        b.nest("use", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.scalar_value(s) + nb.read(y, [iv(0)]));
        });
        let p = b.finish();
        for n_pes in [1usize, 4, 6] {
            let rep = execute(&p, &RuntimeConfig::paper(n_pes, 32)).unwrap();
            assert_eq!(rep.scalars[0], 200.0);
            check_against_reference(&p, &RuntimeConfig::paper(n_pes, 32));
        }
    }

    #[test]
    fn reinit_protocol_runs_between_generations() {
        let n = 128;
        let mut b = ProgramBuilder::new("gen");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("g0", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]));
        });
        b.reinit(x);
        b.nest("g1", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) * 5.0);
        });
        let p = b.finish();
        let cfg = RuntimeConfig::paper(4, 16);
        let rep = execute(&p, &cfg).unwrap();
        // §5 message count: (N-1) requests + (N-1) releases.
        assert_eq!(rep.stats.reinit_messages, 6);
        check_against_reference(&p, &cfg);
    }

    #[test]
    fn stats_are_plausible_and_conserved() {
        let p = map_program(1024);
        let rep = execute(&p, &RuntimeConfig::paper(4, 32)).unwrap();
        let s = &rep.stats;
        assert_eq!(s.writes(), 1024);
        assert_eq!(s.total_reads(), 1024);
        // Matched loop: all local.
        assert_eq!(s.remote_reads(), 0);
        assert_eq!(rep.messages, 0);
    }

    #[test]
    fn skewed_loop_message_count_matches_fetches() {
        let n = 512;
        let mut b = ProgramBuilder::new("skew");
        let y = b.input("Y", &[n + 16], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("s", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0).plus(11)]));
        });
        let p = b.finish();
        let rep = execute(&p, &RuntimeConfig::paper(4, 32)).unwrap();
        assert!(rep.stats.remote_reads() > 0);
        assert_eq!(rep.stats.page_fetches, rep.stats.remote_reads());
        // request + reply per fetch (read-only inputs: replies immediate).
        assert_eq!(rep.messages, 2 * rep.stats.page_fetches);
        // With the cache, boundary crossings collapse to ~1 fetch per page.
        assert!(rep.stats.remote_reads() <= (n as u64 / 32) * 2);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let p = map_program(8);
        assert!(matches!(
            execute(
                &p,
                &RuntimeConfig {
                    n_pes: 0,
                    ..RuntimeConfig::paper(1, 32)
                }
            ),
            Err(RuntimeError::InvalidConfig(_))
        ));
        assert!(matches!(
            execute(
                &p,
                &RuntimeConfig {
                    page_size: 0,
                    ..RuntimeConfig::paper(1, 32)
                }
            ),
            Err(RuntimeError::InvalidConfig(_))
        ));
        // The runtime shares the simulator's validation: a zero-sized
        // block-cyclic chunk is rejected up front, not clamped mid-run.
        assert!(matches!(
            execute(
                &p,
                &RuntimeConfig {
                    partition: PartitionScheme::BlockCyclic { block_pages: 0 },
                    ..RuntimeConfig::paper(2, 32)
                }
            ),
            Err(RuntimeError::InvalidConfig(_))
        ));
    }
}
